# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_validate "/root/repo/build/tools/scshare" "validate" "/root/repo/examples/configs/three_sc.json")
set_tests_properties(cli_validate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_baseline "/root/repo/build/tools/scshare" "baseline" "/root/repo/examples/configs/three_sc.json" "--compact")
set_tests_properties(cli_baseline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_metrics_simulation "/root/repo/build/tools/scshare" "metrics" "/root/repo/examples/configs/three_sc.json" "--backend" "simulation" "--compact")
set_tests_properties(cli_metrics_simulation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_costs_simulation "/root/repo/build/tools/scshare" "costs" "/root/repo/examples/configs/three_sc.json" "--backend" "simulation" "--compact")
set_tests_properties(cli_costs_simulation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/tools/scshare" "simulate" "/root/repo/examples/configs/three_sc.json" "--compact")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_unknown_command "/root/repo/build/tools/scshare" "frobnicate" "/root/repo/examples/configs/three_sc.json")
set_tests_properties(cli_rejects_unknown_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_missing_file "/root/repo/build/tools/scshare" "metrics" "/nonexistent.json")
set_tests_properties(cli_rejects_missing_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
