file(REMOVE_RECURSE
  "CMakeFiles/scshare_cli.dir/scshare_cli.cpp.o"
  "CMakeFiles/scshare_cli.dir/scshare_cli.cpp.o.d"
  "scshare"
  "scshare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scshare_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
