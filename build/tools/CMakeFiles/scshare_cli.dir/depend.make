# Empty dependencies file for scshare_cli.
# This may be replaced when dependencies are built.
