file(REMOVE_RECURSE
  "CMakeFiles/fig5_forwarding.dir/fig5_forwarding.cpp.o"
  "CMakeFiles/fig5_forwarding.dir/fig5_forwarding.cpp.o.d"
  "fig5_forwarding"
  "fig5_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
