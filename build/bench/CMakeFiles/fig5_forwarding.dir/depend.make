# Empty dependencies file for fig5_forwarding.
# This may be replaced when dependencies are built.
