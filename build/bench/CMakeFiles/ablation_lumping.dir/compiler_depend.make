# Empty compiler generated dependencies file for ablation_lumping.
# This may be replaced when dependencies are built.
