file(REMOVE_RECURSE
  "CMakeFiles/ablation_lumping.dir/ablation_lumping.cpp.o"
  "CMakeFiles/ablation_lumping.dir/ablation_lumping.cpp.o.d"
  "ablation_lumping"
  "ablation_lumping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lumping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
