# Empty compiler generated dependencies file for ablation_exact_cross.
# This may be replaced when dependencies are built.
