file(REMOVE_RECURSE
  "CMakeFiles/ablation_exact_cross.dir/ablation_exact_cross.cpp.o"
  "CMakeFiles/ablation_exact_cross.dir/ablation_exact_cross.cpp.o.d"
  "ablation_exact_cross"
  "ablation_exact_cross.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_exact_cross.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
