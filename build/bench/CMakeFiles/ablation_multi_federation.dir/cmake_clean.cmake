file(REMOVE_RECURSE
  "CMakeFiles/ablation_multi_federation.dir/ablation_multi_federation.cpp.o"
  "CMakeFiles/ablation_multi_federation.dir/ablation_multi_federation.cpp.o.d"
  "ablation_multi_federation"
  "ablation_multi_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multi_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
