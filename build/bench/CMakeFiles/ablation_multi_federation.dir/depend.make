# Empty dependencies file for ablation_multi_federation.
# This may be replaced when dependencies are built.
