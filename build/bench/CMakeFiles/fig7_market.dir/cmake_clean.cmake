file(REMOVE_RECURSE
  "CMakeFiles/fig7_market.dir/fig7_market.cpp.o"
  "CMakeFiles/fig7_market.dir/fig7_market.cpp.o.d"
  "fig7_market"
  "fig7_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
