# Empty compiler generated dependencies file for fig7_market.
# This may be replaced when dependencies are built.
