file(REMOVE_RECURSE
  "CMakeFiles/ablation_service_dist.dir/ablation_service_dist.cpp.o"
  "CMakeFiles/ablation_service_dist.dir/ablation_service_dist.cpp.o.d"
  "ablation_service_dist"
  "ablation_service_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_service_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
