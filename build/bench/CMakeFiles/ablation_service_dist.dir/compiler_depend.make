# Empty compiler generated dependencies file for ablation_service_dist.
# This may be replaced when dependencies are built.
