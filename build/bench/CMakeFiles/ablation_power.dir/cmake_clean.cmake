file(REMOVE_RECURSE
  "CMakeFiles/ablation_power.dir/ablation_power.cpp.o"
  "CMakeFiles/ablation_power.dir/ablation_power.cpp.o.d"
  "ablation_power"
  "ablation_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
