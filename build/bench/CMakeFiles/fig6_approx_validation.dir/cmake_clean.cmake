file(REMOVE_RECURSE
  "CMakeFiles/fig6_approx_validation.dir/fig6_approx_validation.cpp.o"
  "CMakeFiles/fig6_approx_validation.dir/fig6_approx_validation.cpp.o.d"
  "fig6_approx_validation"
  "fig6_approx_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_approx_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
