# Empty compiler generated dependencies file for fig6_approx_validation.
# This may be replaced when dependencies are built.
