file(REMOVE_RECURSE
  "libscshare_market.a"
)
