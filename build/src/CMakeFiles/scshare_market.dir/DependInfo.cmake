
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/market/cost.cpp" "src/CMakeFiles/scshare_market.dir/market/cost.cpp.o" "gcc" "src/CMakeFiles/scshare_market.dir/market/cost.cpp.o.d"
  "/root/repo/src/market/fairness.cpp" "src/CMakeFiles/scshare_market.dir/market/fairness.cpp.o" "gcc" "src/CMakeFiles/scshare_market.dir/market/fairness.cpp.o.d"
  "/root/repo/src/market/game.cpp" "src/CMakeFiles/scshare_market.dir/market/game.cpp.o" "gcc" "src/CMakeFiles/scshare_market.dir/market/game.cpp.o.d"
  "/root/repo/src/market/multi_federation.cpp" "src/CMakeFiles/scshare_market.dir/market/multi_federation.cpp.o" "gcc" "src/CMakeFiles/scshare_market.dir/market/multi_federation.cpp.o.d"
  "/root/repo/src/market/sweep.cpp" "src/CMakeFiles/scshare_market.dir/market/sweep.cpp.o" "gcc" "src/CMakeFiles/scshare_market.dir/market/sweep.cpp.o.d"
  "/root/repo/src/market/tabu.cpp" "src/CMakeFiles/scshare_market.dir/market/tabu.cpp.o" "gcc" "src/CMakeFiles/scshare_market.dir/market/tabu.cpp.o.d"
  "/root/repo/src/market/utility.cpp" "src/CMakeFiles/scshare_market.dir/market/utility.cpp.o" "gcc" "src/CMakeFiles/scshare_market.dir/market/utility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scshare_federation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scshare_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scshare_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scshare_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scshare_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scshare_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
