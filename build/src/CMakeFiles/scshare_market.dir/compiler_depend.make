# Empty compiler generated dependencies file for scshare_market.
# This may be replaced when dependencies are built.
