file(REMOVE_RECURSE
  "CMakeFiles/scshare_market.dir/market/cost.cpp.o"
  "CMakeFiles/scshare_market.dir/market/cost.cpp.o.d"
  "CMakeFiles/scshare_market.dir/market/fairness.cpp.o"
  "CMakeFiles/scshare_market.dir/market/fairness.cpp.o.d"
  "CMakeFiles/scshare_market.dir/market/game.cpp.o"
  "CMakeFiles/scshare_market.dir/market/game.cpp.o.d"
  "CMakeFiles/scshare_market.dir/market/multi_federation.cpp.o"
  "CMakeFiles/scshare_market.dir/market/multi_federation.cpp.o.d"
  "CMakeFiles/scshare_market.dir/market/sweep.cpp.o"
  "CMakeFiles/scshare_market.dir/market/sweep.cpp.o.d"
  "CMakeFiles/scshare_market.dir/market/tabu.cpp.o"
  "CMakeFiles/scshare_market.dir/market/tabu.cpp.o.d"
  "CMakeFiles/scshare_market.dir/market/utility.cpp.o"
  "CMakeFiles/scshare_market.dir/market/utility.cpp.o.d"
  "libscshare_market.a"
  "libscshare_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scshare_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
