# Empty dependencies file for scshare_io.
# This may be replaced when dependencies are built.
