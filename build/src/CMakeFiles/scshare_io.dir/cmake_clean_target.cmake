file(REMOVE_RECURSE
  "libscshare_io.a"
)
