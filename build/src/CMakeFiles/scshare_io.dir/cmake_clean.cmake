file(REMOVE_RECURSE
  "CMakeFiles/scshare_io.dir/io/config_io.cpp.o"
  "CMakeFiles/scshare_io.dir/io/config_io.cpp.o.d"
  "CMakeFiles/scshare_io.dir/io/json.cpp.o"
  "CMakeFiles/scshare_io.dir/io/json.cpp.o.d"
  "libscshare_io.a"
  "libscshare_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scshare_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
