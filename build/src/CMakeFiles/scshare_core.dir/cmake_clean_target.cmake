file(REMOVE_RECURSE
  "libscshare_core.a"
)
