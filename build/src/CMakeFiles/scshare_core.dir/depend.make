# Empty dependencies file for scshare_core.
# This may be replaced when dependencies are built.
