file(REMOVE_RECURSE
  "CMakeFiles/scshare_core.dir/core/framework.cpp.o"
  "CMakeFiles/scshare_core.dir/core/framework.cpp.o.d"
  "libscshare_core.a"
  "libscshare_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scshare_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
