file(REMOVE_RECURSE
  "libscshare_sim.a"
)
