# Empty compiler generated dependencies file for scshare_sim.
# This may be replaced when dependencies are built.
