file(REMOVE_RECURSE
  "CMakeFiles/scshare_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/scshare_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/scshare_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/scshare_sim.dir/sim/stats.cpp.o.d"
  "libscshare_sim.a"
  "libscshare_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scshare_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
