file(REMOVE_RECURSE
  "libscshare_federation.a"
)
