file(REMOVE_RECURSE
  "CMakeFiles/scshare_federation.dir/federation/approx_model.cpp.o"
  "CMakeFiles/scshare_federation.dir/federation/approx_model.cpp.o.d"
  "CMakeFiles/scshare_federation.dir/federation/backends.cpp.o"
  "CMakeFiles/scshare_federation.dir/federation/backends.cpp.o.d"
  "CMakeFiles/scshare_federation.dir/federation/detailed_model.cpp.o"
  "CMakeFiles/scshare_federation.dir/federation/detailed_model.cpp.o.d"
  "libscshare_federation.a"
  "libscshare_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scshare_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
