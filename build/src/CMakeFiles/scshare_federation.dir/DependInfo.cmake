
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/federation/approx_model.cpp" "src/CMakeFiles/scshare_federation.dir/federation/approx_model.cpp.o" "gcc" "src/CMakeFiles/scshare_federation.dir/federation/approx_model.cpp.o.d"
  "/root/repo/src/federation/backends.cpp" "src/CMakeFiles/scshare_federation.dir/federation/backends.cpp.o" "gcc" "src/CMakeFiles/scshare_federation.dir/federation/backends.cpp.o.d"
  "/root/repo/src/federation/detailed_model.cpp" "src/CMakeFiles/scshare_federation.dir/federation/detailed_model.cpp.o" "gcc" "src/CMakeFiles/scshare_federation.dir/federation/detailed_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scshare_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scshare_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scshare_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scshare_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scshare_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
