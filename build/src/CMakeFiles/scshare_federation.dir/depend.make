# Empty dependencies file for scshare_federation.
# This may be replaced when dependencies are built.
