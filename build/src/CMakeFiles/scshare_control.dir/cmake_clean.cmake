file(REMOVE_RECURSE
  "CMakeFiles/scshare_control.dir/control/sharing_controller.cpp.o"
  "CMakeFiles/scshare_control.dir/control/sharing_controller.cpp.o.d"
  "CMakeFiles/scshare_control.dir/control/workload_monitor.cpp.o"
  "CMakeFiles/scshare_control.dir/control/workload_monitor.cpp.o.d"
  "libscshare_control.a"
  "libscshare_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scshare_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
