# Empty dependencies file for scshare_control.
# This may be replaced when dependencies are built.
