file(REMOVE_RECURSE
  "libscshare_control.a"
)
