file(REMOVE_RECURSE
  "libscshare_common.a"
)
