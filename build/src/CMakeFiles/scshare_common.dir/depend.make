# Empty dependencies file for scshare_common.
# This may be replaced when dependencies are built.
