file(REMOVE_RECURSE
  "CMakeFiles/scshare_common.dir/common/math.cpp.o"
  "CMakeFiles/scshare_common.dir/common/math.cpp.o.d"
  "CMakeFiles/scshare_common.dir/common/rng.cpp.o"
  "CMakeFiles/scshare_common.dir/common/rng.cpp.o.d"
  "libscshare_common.a"
  "libscshare_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scshare_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
