file(REMOVE_RECURSE
  "libscshare_linalg.a"
)
