# Empty compiler generated dependencies file for scshare_linalg.
# This may be replaced when dependencies are built.
