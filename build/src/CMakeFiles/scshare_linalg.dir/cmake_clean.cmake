file(REMOVE_RECURSE
  "CMakeFiles/scshare_linalg.dir/linalg/csr_matrix.cpp.o"
  "CMakeFiles/scshare_linalg.dir/linalg/csr_matrix.cpp.o.d"
  "CMakeFiles/scshare_linalg.dir/linalg/vector_ops.cpp.o"
  "CMakeFiles/scshare_linalg.dir/linalg/vector_ops.cpp.o.d"
  "libscshare_linalg.a"
  "libscshare_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scshare_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
