file(REMOVE_RECURSE
  "libscshare_markov.a"
)
