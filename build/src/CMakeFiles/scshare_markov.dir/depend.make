# Empty dependencies file for scshare_markov.
# This may be replaced when dependencies are built.
