
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/markov/ctmc.cpp" "src/CMakeFiles/scshare_markov.dir/markov/ctmc.cpp.o" "gcc" "src/CMakeFiles/scshare_markov.dir/markov/ctmc.cpp.o.d"
  "/root/repo/src/markov/lumping.cpp" "src/CMakeFiles/scshare_markov.dir/markov/lumping.cpp.o" "gcc" "src/CMakeFiles/scshare_markov.dir/markov/lumping.cpp.o.d"
  "/root/repo/src/markov/steady_state.cpp" "src/CMakeFiles/scshare_markov.dir/markov/steady_state.cpp.o" "gcc" "src/CMakeFiles/scshare_markov.dir/markov/steady_state.cpp.o.d"
  "/root/repo/src/markov/transient.cpp" "src/CMakeFiles/scshare_markov.dir/markov/transient.cpp.o" "gcc" "src/CMakeFiles/scshare_markov.dir/markov/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scshare_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scshare_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
