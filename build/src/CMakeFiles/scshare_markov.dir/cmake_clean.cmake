file(REMOVE_RECURSE
  "CMakeFiles/scshare_markov.dir/markov/ctmc.cpp.o"
  "CMakeFiles/scshare_markov.dir/markov/ctmc.cpp.o.d"
  "CMakeFiles/scshare_markov.dir/markov/lumping.cpp.o"
  "CMakeFiles/scshare_markov.dir/markov/lumping.cpp.o.d"
  "CMakeFiles/scshare_markov.dir/markov/steady_state.cpp.o"
  "CMakeFiles/scshare_markov.dir/markov/steady_state.cpp.o.d"
  "CMakeFiles/scshare_markov.dir/markov/transient.cpp.o"
  "CMakeFiles/scshare_markov.dir/markov/transient.cpp.o.d"
  "libscshare_markov.a"
  "libscshare_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scshare_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
