
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queueing/forwarding.cpp" "src/CMakeFiles/scshare_queueing.dir/queueing/forwarding.cpp.o" "gcc" "src/CMakeFiles/scshare_queueing.dir/queueing/forwarding.cpp.o.d"
  "/root/repo/src/queueing/mmc.cpp" "src/CMakeFiles/scshare_queueing.dir/queueing/mmc.cpp.o" "gcc" "src/CMakeFiles/scshare_queueing.dir/queueing/mmc.cpp.o.d"
  "/root/repo/src/queueing/no_share_model.cpp" "src/CMakeFiles/scshare_queueing.dir/queueing/no_share_model.cpp.o" "gcc" "src/CMakeFiles/scshare_queueing.dir/queueing/no_share_model.cpp.o.d"
  "/root/repo/src/queueing/phase_type_model.cpp" "src/CMakeFiles/scshare_queueing.dir/queueing/phase_type_model.cpp.o" "gcc" "src/CMakeFiles/scshare_queueing.dir/queueing/phase_type_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scshare_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scshare_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scshare_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
