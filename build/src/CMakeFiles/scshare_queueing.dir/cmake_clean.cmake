file(REMOVE_RECURSE
  "CMakeFiles/scshare_queueing.dir/queueing/forwarding.cpp.o"
  "CMakeFiles/scshare_queueing.dir/queueing/forwarding.cpp.o.d"
  "CMakeFiles/scshare_queueing.dir/queueing/mmc.cpp.o"
  "CMakeFiles/scshare_queueing.dir/queueing/mmc.cpp.o.d"
  "CMakeFiles/scshare_queueing.dir/queueing/no_share_model.cpp.o"
  "CMakeFiles/scshare_queueing.dir/queueing/no_share_model.cpp.o.d"
  "CMakeFiles/scshare_queueing.dir/queueing/phase_type_model.cpp.o"
  "CMakeFiles/scshare_queueing.dir/queueing/phase_type_model.cpp.o.d"
  "libscshare_queueing.a"
  "libscshare_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scshare_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
