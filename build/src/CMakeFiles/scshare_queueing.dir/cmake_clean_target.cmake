file(REMOVE_RECURSE
  "libscshare_queueing.a"
)
