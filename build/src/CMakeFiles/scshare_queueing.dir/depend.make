# Empty dependencies file for scshare_queueing.
# This may be replaced when dependencies are built.
