# Empty dependencies file for test_approx_sweep.
# This may be replaced when dependencies are built.
