file(REMOVE_RECURSE
  "CMakeFiles/test_approx_sweep.dir/test_approx_sweep.cpp.o"
  "CMakeFiles/test_approx_sweep.dir/test_approx_sweep.cpp.o.d"
  "test_approx_sweep"
  "test_approx_sweep.pdb"
  "test_approx_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_approx_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
