file(REMOVE_RECURSE
  "CMakeFiles/test_detailed_model.dir/test_detailed_model.cpp.o"
  "CMakeFiles/test_detailed_model.dir/test_detailed_model.cpp.o.d"
  "test_detailed_model"
  "test_detailed_model.pdb"
  "test_detailed_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detailed_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
