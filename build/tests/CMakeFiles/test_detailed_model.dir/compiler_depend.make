# Empty compiler generated dependencies file for test_detailed_model.
# This may be replaced when dependencies are built.
