file(REMOVE_RECURSE
  "CMakeFiles/test_game_updates.dir/test_game_updates.cpp.o"
  "CMakeFiles/test_game_updates.dir/test_game_updates.cpp.o.d"
  "test_game_updates"
  "test_game_updates.pdb"
  "test_game_updates[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_game_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
