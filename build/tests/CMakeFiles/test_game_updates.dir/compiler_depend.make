# Empty compiler generated dependencies file for test_game_updates.
# This may be replaced when dependencies are built.
