file(REMOVE_RECURSE
  "CMakeFiles/test_mmc.dir/test_mmc.cpp.o"
  "CMakeFiles/test_mmc.dir/test_mmc.cpp.o.d"
  "test_mmc"
  "test_mmc.pdb"
  "test_mmc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
