file(REMOVE_RECURSE
  "CMakeFiles/test_state_index.dir/test_state_index.cpp.o"
  "CMakeFiles/test_state_index.dir/test_state_index.cpp.o.d"
  "test_state_index"
  "test_state_index.pdb"
  "test_state_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_state_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
