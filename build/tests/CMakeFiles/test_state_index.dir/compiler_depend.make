# Empty compiler generated dependencies file for test_state_index.
# This may be replaced when dependencies are built.
