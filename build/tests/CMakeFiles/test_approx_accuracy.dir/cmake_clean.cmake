file(REMOVE_RECURSE
  "CMakeFiles/test_approx_accuracy.dir/test_approx_accuracy.cpp.o"
  "CMakeFiles/test_approx_accuracy.dir/test_approx_accuracy.cpp.o.d"
  "test_approx_accuracy"
  "test_approx_accuracy.pdb"
  "test_approx_accuracy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_approx_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
