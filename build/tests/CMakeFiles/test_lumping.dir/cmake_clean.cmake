file(REMOVE_RECURSE
  "CMakeFiles/test_lumping.dir/test_lumping.cpp.o"
  "CMakeFiles/test_lumping.dir/test_lumping.cpp.o.d"
  "test_lumping"
  "test_lumping.pdb"
  "test_lumping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lumping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
