# Empty dependencies file for test_lumping.
# This may be replaced when dependencies are built.
