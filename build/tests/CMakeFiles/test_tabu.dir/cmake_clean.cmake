file(REMOVE_RECURSE
  "CMakeFiles/test_tabu.dir/test_tabu.cpp.o"
  "CMakeFiles/test_tabu.dir/test_tabu.cpp.o.d"
  "test_tabu"
  "test_tabu.pdb"
  "test_tabu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tabu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
