# Empty dependencies file for test_markov_steady.
# This may be replaced when dependencies are built.
