file(REMOVE_RECURSE
  "CMakeFiles/test_markov_steady.dir/test_markov_steady.cpp.o"
  "CMakeFiles/test_markov_steady.dir/test_markov_steady.cpp.o.d"
  "test_markov_steady"
  "test_markov_steady.pdb"
  "test_markov_steady[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_markov_steady.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
