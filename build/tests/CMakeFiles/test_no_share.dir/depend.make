# Empty dependencies file for test_no_share.
# This may be replaced when dependencies are built.
