file(REMOVE_RECURSE
  "CMakeFiles/test_no_share.dir/test_no_share.cpp.o"
  "CMakeFiles/test_no_share.dir/test_no_share.cpp.o.d"
  "test_no_share"
  "test_no_share.pdb"
  "test_no_share[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_no_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
