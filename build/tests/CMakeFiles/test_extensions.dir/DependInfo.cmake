
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/test_extensions.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/test_extensions.dir/test_extensions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scshare_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scshare_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scshare_control.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scshare_market.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scshare_federation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scshare_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scshare_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scshare_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scshare_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scshare_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
