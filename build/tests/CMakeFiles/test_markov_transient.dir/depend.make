# Empty dependencies file for test_markov_transient.
# This may be replaced when dependencies are built.
