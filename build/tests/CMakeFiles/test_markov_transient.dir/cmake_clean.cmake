file(REMOVE_RECURSE
  "CMakeFiles/test_markov_transient.dir/test_markov_transient.cpp.o"
  "CMakeFiles/test_markov_transient.dir/test_markov_transient.cpp.o.d"
  "test_markov_transient"
  "test_markov_transient.pdb"
  "test_markov_transient[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_markov_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
