file(REMOVE_RECURSE
  "CMakeFiles/test_multi_federation.dir/test_multi_federation.cpp.o"
  "CMakeFiles/test_multi_federation.dir/test_multi_federation.cpp.o.d"
  "test_multi_federation"
  "test_multi_federation.pdb"
  "test_multi_federation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
