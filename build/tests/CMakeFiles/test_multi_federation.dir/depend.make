# Empty dependencies file for test_multi_federation.
# This may be replaced when dependencies are built.
