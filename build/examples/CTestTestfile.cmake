# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_outage_failover "/root/repo/build/examples/outage_failover")
set_tests_properties(example_outage_failover PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_surge_analysis "/root/repo/build/examples/surge_analysis")
set_tests_properties(example_surge_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
