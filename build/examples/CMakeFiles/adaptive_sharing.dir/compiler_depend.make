# Empty compiler generated dependencies file for adaptive_sharing.
# This may be replaced when dependencies are built.
