# Empty compiler generated dependencies file for diurnal_peaks.
# This may be replaced when dependencies are built.
