file(REMOVE_RECURSE
  "CMakeFiles/diurnal_peaks.dir/diurnal_peaks.cpp.o"
  "CMakeFiles/diurnal_peaks.dir/diurnal_peaks.cpp.o.d"
  "diurnal_peaks"
  "diurnal_peaks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diurnal_peaks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
