# Empty compiler generated dependencies file for surge_analysis.
# This may be replaced when dependencies are built.
