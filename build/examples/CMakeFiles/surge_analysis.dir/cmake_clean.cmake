file(REMOVE_RECURSE
  "CMakeFiles/surge_analysis.dir/surge_analysis.cpp.o"
  "CMakeFiles/surge_analysis.dir/surge_analysis.cpp.o.d"
  "surge_analysis"
  "surge_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surge_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
