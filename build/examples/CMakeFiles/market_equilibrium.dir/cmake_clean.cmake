file(REMOVE_RECURSE
  "CMakeFiles/market_equilibrium.dir/market_equilibrium.cpp.o"
  "CMakeFiles/market_equilibrium.dir/market_equilibrium.cpp.o.d"
  "market_equilibrium"
  "market_equilibrium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_equilibrium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
