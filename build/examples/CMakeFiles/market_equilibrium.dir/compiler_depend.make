# Empty compiler generated dependencies file for market_equilibrium.
# This may be replaced when dependencies are built.
