file(REMOVE_RECURSE
  "CMakeFiles/outage_failover.dir/outage_failover.cpp.o"
  "CMakeFiles/outage_failover.dir/outage_failover.cpp.o.d"
  "outage_failover"
  "outage_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outage_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
