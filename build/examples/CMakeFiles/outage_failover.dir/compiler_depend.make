# Empty compiler generated dependencies file for outage_failover.
# This may be replaced when dependencies are built.
