#include "market/fairness.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mkt = scshare::market;

TEST(Welfare, UtilitarianIsWeightedSum) {
  const std::vector<int> shares = {2, 3};
  const std::vector<double> utilities = {1.5, 2.0};
  EXPECT_DOUBLE_EQ(
      mkt::welfare(mkt::Fairness::kUtilitarian, shares, utilities),
      2 * 1.5 + 3 * 2.0);
}

TEST(Welfare, ProportionalIsWeightedLogSum) {
  const std::vector<int> shares = {2, 3};
  const std::vector<double> utilities = {1.5, 2.0};
  EXPECT_NEAR(mkt::welfare(mkt::Fairness::kProportional, shares, utilities),
              2 * std::log(1.5) + 3 * std::log(2.0), 1e-12);
}

TEST(Welfare, MaxMinIsMinimumOverParticipants) {
  const std::vector<int> shares = {2, 3, 0};
  const std::vector<double> utilities = {1.5, 2.0, 0.0};
  // The non-participant (share 0) is excluded from the minimum.
  EXPECT_DOUBLE_EQ(mkt::welfare(mkt::Fairness::kMaxMin, shares, utilities),
                   1.5);
}

TEST(Welfare, NonParticipantsCarryNoWeight) {
  const std::vector<int> shares = {0, 3};
  const std::vector<double> utilities = {100.0, 2.0};
  EXPECT_DOUBLE_EQ(
      mkt::welfare(mkt::Fairness::kUtilitarian, shares, utilities), 6.0);
}

TEST(Welfare, EmptyFederationIsZero) {
  const std::vector<int> shares = {0, 0};
  const std::vector<double> utilities = {0.0, 0.0};
  for (auto f : mkt::kAllFairness) {
    EXPECT_DOUBLE_EQ(mkt::welfare(f, shares, utilities), 0.0);
  }
}

TEST(Welfare, ProportionalWithZeroUtilityIsMinusInfinity) {
  const std::vector<int> shares = {2, 3};
  const std::vector<double> utilities = {0.0, 2.0};
  const double w =
      mkt::welfare(mkt::Fairness::kProportional, shares, utilities);
  EXPECT_TRUE(std::isinf(w));
  EXPECT_LT(w, 0.0);
}

TEST(Welfare, SizeMismatchThrows) {
  const std::vector<int> shares = {1};
  const std::vector<double> utilities = {1.0, 2.0};
  EXPECT_THROW(
      (void)mkt::welfare(mkt::Fairness::kUtilitarian, shares, utilities),
      scshare::Error);
}

TEST(Efficiency, PlainRatioForUtilitarian) {
  EXPECT_DOUBLE_EQ(
      mkt::efficiency(mkt::Fairness::kUtilitarian, 3.0, 4.0), 0.75);
  EXPECT_DOUBLE_EQ(mkt::efficiency(mkt::Fairness::kMaxMin, 1.0, 2.0), 0.5);
}

TEST(Efficiency, ZeroOptimumGivesZero) {
  EXPECT_DOUBLE_EQ(mkt::efficiency(mkt::Fairness::kUtilitarian, 0.0, 0.0),
                   0.0);
}

TEST(Efficiency, ProportionalComparesGeometricMeans) {
  // Equal weights: exp(W_a - W_o).
  EXPECT_NEAR(mkt::efficiency(mkt::Fairness::kProportional, 2.0, 4.0),
              std::exp(-2.0), 1e-12);
  // Matching geometric means (different weights): 1.
  EXPECT_DOUBLE_EQ(
      mkt::efficiency(mkt::Fairness::kProportional, 2.0, 4.0, 2.0, 4.0), 1.0);
  // Negative welfare (utilities below 1) is handled smoothly.
  EXPECT_NEAR(mkt::efficiency(mkt::Fairness::kProportional, -4.0, -2.0, 2.0,
                              2.0),
              std::exp(-1.0), 1e-12);
  // Excluded participant (welfare -inf): 0.
  EXPECT_DOUBLE_EQ(mkt::efficiency(mkt::Fairness::kProportional,
                                   -std::numeric_limits<double>::infinity(),
                                   1.0),
                   0.0);
  // Empty allocations: 0.
  EXPECT_DOUBLE_EQ(
      mkt::efficiency(mkt::Fairness::kProportional, 1.0, 1.0, 0.0, 3.0), 0.0);
}

TEST(Efficiency, ClampedToUnitInterval) {
  EXPECT_DOUBLE_EQ(mkt::efficiency(mkt::Fairness::kUtilitarian, 5.0, 4.0),
                   1.0);
  EXPECT_DOUBLE_EQ(mkt::efficiency(mkt::Fairness::kProportional, 5.0, 4.0),
                   1.0);
}

TEST(FairnessName, AllNamed) {
  EXPECT_STREQ(mkt::fairness_name(mkt::Fairness::kUtilitarian), "utilitarian");
  EXPECT_STREQ(mkt::fairness_name(mkt::Fairness::kProportional),
               "proportional");
  EXPECT_STREQ(mkt::fairness_name(mkt::Fairness::kMaxMin), "max-min");
}
