// Telemetry-plane tests: the minimal HTTP listener (src/net/http.*), the
// StatusBoard, the TelemetryServer endpoints, and — the load-bearing one —
// concurrent scrapes: /metrics fetched in a loop over real sockets while
// worker threads hammer counters/histograms must always parse as well-formed
// OpenMetrics with monotone counter families.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/json.hpp"
#include "net/http.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/status.hpp"
#include "obs/telemetry_server.hpp"
#include "openmetrics_check.hpp"

namespace net = scshare::net;
namespace obs = scshare::obs;
namespace io = scshare::io;

namespace {

/// Sends raw bytes to 127.0.0.1:`port` and returns everything the server
/// writes back before closing — lets tests exercise request shapes the
/// well-behaved net::http_get client never produces.
std::string raw_request(std::uint16_t port, const std::string& bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return {};
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

}  // namespace

TEST(HttpServer, ServesHandlerResponseOnEphemeralPort) {
  net::HttpServer server(0, [](const net::HttpRequest& request) {
    net::HttpResponse response;
    response.body = "path=" + request.path + " target=" + request.target;
    return response;
  });
  ASSERT_GT(server.port(), 0);
  const auto result = net::http_get(server.port(), "/abc?x=1");
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, "path=/abc target=/abc?x=1");
  EXPECT_NE(result.headers.find("Content-Length:"), std::string::npos);
  EXPECT_NE(result.headers.find("Connection: close"), std::string::npos);
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(HttpServer, StopIsIdempotentAndReleasesPort) {
  std::uint16_t port = 0;
  {
    net::HttpServer server(0, [](const net::HttpRequest&) {
      return net::HttpResponse{};
    });
    port = server.port();
    server.stop();
    server.stop();  // second stop must be a no-op
    EXPECT_FALSE(server.running());
  }
  // The port is free again: bind it explicitly.
  net::HttpServer rebound(port, [](const net::HttpRequest&) {
    return net::HttpResponse{};
  });
  EXPECT_EQ(rebound.port(), port);
}

TEST(HttpServer, RejectsUnsupportedMethodsWith405) {
  std::atomic<int> handler_calls{0};
  net::HttpServer server(0, [&](const net::HttpRequest&) {
    handler_calls.fetch_add(1);
    return net::HttpResponse{};
  });
  const std::string response = raw_request(
      server.port(), "PUT / HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n");
  EXPECT_NE(response.find("405"), std::string::npos) << response;
  EXPECT_EQ(handler_calls.load(), 0);
}

TEST(TelemetryServer, RejectsPostWith405) {
  obs::TelemetryServer server({.port = 0, .backend_label = "t405"});
  const auto result =
      net::http_request(server.port(), "POST", "/metrics", "{}");
  EXPECT_EQ(result.status, 405);
}

TEST(HttpServer, HeadGetsHeadersWithoutBody) {
  net::HttpServer server(0, [](const net::HttpRequest&) {
    net::HttpResponse response;
    response.body = "should-not-be-sent";
    return response;
  });
  const std::string response =
      raw_request(server.port(), "HEAD / HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("200"), std::string::npos) << response;
  EXPECT_NE(response.find("Content-Length: 18"), std::string::npos)
      << response;
  EXPECT_EQ(response.find("should-not-be-sent"), std::string::npos)
      << response;
}

TEST(HttpServer, MalformedRequestLineGets400) {
  net::HttpServer server(0, [](const net::HttpRequest&) {
    return net::HttpResponse{};
  });
  const std::string response =
      raw_request(server.port(), "nonsense\r\n\r\n");
  EXPECT_NE(response.find("400"), std::string::npos) << response;
}

TEST(HttpServer, OversizedRequestHeadGets431) {
  net::HttpServer server(0, [](const net::HttpRequest&) {
    return net::HttpResponse{};
  });
  std::string request = "GET / HTTP/1.1\r\nX-Pad: ";
  request.append(net::HttpServer::kMaxRequestBytes, 'a');
  request += "\r\n\r\n";
  const std::string response = raw_request(server.port(), request);
  EXPECT_NE(response.find("431"), std::string::npos) << response;
}

TEST(HttpServer, HandlerExceptionBecomes500) {
  net::HttpServer server(0, [](const net::HttpRequest&) -> net::HttpResponse {
    throw std::runtime_error("boom");
  });
  const auto result = net::http_get(server.port(), "/");
  EXPECT_EQ(result.status, 500);
  EXPECT_NE(result.body.find("boom"), std::string::npos);
}

TEST(StatusBoard, RendersTypedValuesAsSortedJson) {
  obs::StatusBoard board;
  board.set("z.last", 3);
  board.set("a.first", "text with \"quotes\"");
  board.set("m.mid", true);
  board.set("m.vec", std::vector<int>{1, 2, 3});
  board.set("m.pi", 3.5);
  const std::string json = board.to_json();
  const io::Json parsed = io::Json::parse(json);
  EXPECT_EQ(parsed.at("z.last").as_int(), 3);
  EXPECT_EQ(parsed.at("a.first").as_string(), "text with \"quotes\"");
  EXPECT_TRUE(parsed.at("m.mid").as_bool());
  EXPECT_EQ(parsed.at("m.vec").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(parsed.at("m.pi").as_double(), 3.5);
  // Keys render sorted, so documents are stable across runs.
  EXPECT_LT(json.find("a.first"), json.find("m.mid"));
  EXPECT_LT(json.find("m.vec"), json.find("z.last"));

  board.erase("z.last");
  EXPECT_EQ(board.to_json().find("z.last"), std::string::npos);
  board.clear();
  EXPECT_EQ(board.to_json(), "{}");
}

TEST(StatusBoard, OverwritesInPlace) {
  obs::StatusBoard board;
  board.set("round", 1);
  board.set("round", 2);
  EXPECT_EQ(io::Json::parse(board.to_json()).at("round").as_int(), 2);
  EXPECT_EQ(board.snapshot().size(), 1u);
}

TEST(TelemetryServer, EndpointsServeLiveDocuments) {
  obs::MetricsRegistry::global().counter("market.game.rounds").add(3);
  obs::StatusBoard::global().set("game.round", 3);

  obs::TelemetryServer::Options options;
  options.backend_label = "unit-test";
  obs::TelemetryServer server(std::move(options));
  ASSERT_GT(server.port(), 0);

  const auto metrics = net::http_get(server.port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  const auto problems = scshare::test::check_openmetrics(metrics.body);
  EXPECT_TRUE(problems.empty()) << scshare::test::join_problems(problems);
  EXPECT_NE(metrics.body.find("backend=\"unit-test\""), std::string::npos);
  EXPECT_NE(metrics.headers.find("application/openmetrics-text"),
            std::string::npos);

  const auto healthz = net::http_get(server.port(), "/healthz");
  EXPECT_EQ(healthz.status, 200);
  const io::Json health = io::Json::parse(healthz.body);
  EXPECT_EQ(health.at("status").as_string(), "ok");
  EXPECT_GE(health.at("uptime_seconds").as_double(), 0.0);

  const auto statusz = net::http_get(server.port(), "/statusz");
  EXPECT_EQ(statusz.status, 200);
  const io::Json status = io::Json::parse(statusz.body);
  EXPECT_EQ(status.at("game.round").as_int(), 3);
  EXPECT_GE(status.at("telemetry.requests_served").as_int(), 2);

  const auto profilez = net::http_get(server.port(), "/profilez");
  EXPECT_EQ(profilez.status, 200);
  (void)io::Json::parse(profilez.body);

  const auto missing = net::http_get(server.port(), "/nope");
  EXPECT_EQ(missing.status, 404);

  const auto index = net::http_get(server.port(), "/");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/metrics"), std::string::npos);
}

TEST(TelemetryServer, SloAndFlightEndpointsServeParseableJson) {
  obs::SloPlane::global().record(obs::RequestOutcome::kOk, 0.010);
  obs::FlightRecorder::global().note_event("test.telemetry", "slosz probe");
  obs::TelemetryServer server{obs::TelemetryServer::Options{}};

  const auto slosz = net::http_get(server.port(), "/slosz");
  ASSERT_EQ(slosz.status, 200);
  EXPECT_NE(slosz.headers.find("application/json"), std::string::npos);
  const io::Json slo = io::Json::parse(slosz.body);
  EXPECT_TRUE(slo.contains("objectives"));
  ASSERT_EQ(slo.at("windows").size(), 3u);
  for (const io::Json& window : slo.at("windows").as_array()) {
    EXPECT_GT(window.at("window_seconds").as_int(), 0);
    EXPECT_TRUE(window.contains("outcomes"));
  }
  // The widest window saw the ok sample recorded above.
  EXPECT_GE(
      slo.at("windows").as_array().back().at("outcomes").at("ok").as_int(), 1);

  const auto flight = net::http_get(server.port(), "/debugz/flight");
  ASSERT_EQ(flight.status, 200);
  const io::Json debugz = io::Json::parse(flight.body);
  EXPECT_GT(debugz.at("capacity").as_int(), 0);
  EXPECT_GE(debugz.at("records_held").as_int(), 1);
  EXPECT_NE(flight.body.find("slosz probe"), std::string::npos);

  // The index advertises both endpoints.
  const auto index = net::http_get(server.port(), "/");
  EXPECT_NE(index.body.find("/slosz"), std::string::npos);
  EXPECT_NE(index.body.find("/debugz/flight"), std::string::npos);
}

TEST(TelemetryServer, HealthzCarriesBuildIdentityAndSloState) {
  obs::TelemetryServer server{obs::TelemetryServer::Options{}};
  const io::Json health =
      io::Json::parse(net::http_get(server.port(), "/healthz").body);
  const io::Json& build = health.at("build");
  EXPECT_FALSE(build.at("version").as_string().empty());
  EXPECT_FALSE(build.at("compiler").as_string().empty());
  EXPECT_FALSE(build.at("build_type").as_string().empty());
  // slo_burning is always present; with no objectives configured it is false.
  EXPECT_TRUE(health.contains("slo_burning"));
}

TEST(TelemetryServer, HttpSelfMetricsCountScrapesByPath) {
  obs::TelemetryServer server{obs::TelemetryServer::Options{}};
  ASSERT_EQ(net::http_get(server.port(), "/healthz").status, 200);
  const auto result = net::http_get(server.port(), "/metrics");
  ASSERT_EQ(result.status, 200);
  const auto samples = scshare::test::parse_openmetrics_samples(result.body);
  const auto it = samples.find(
      "scshare_http_requests_total{path=\"/healthz\",code=\"200\"}");
  ASSERT_NE(it, samples.end()) << result.body;
  EXPECT_GE(it->second, 1.0);
  // The latency histogram rides along, and unknown paths collapse to
  // "other" so the label space stays bounded.
  EXPECT_NE(result.body.find("scshare_http_request_seconds"),
            std::string::npos);
  ASSERT_EQ(net::http_get(server.port(), "/not-a-real-path-xyz").status, 404);
  const auto again = net::http_get(server.port(), "/metrics");
  EXPECT_NE(again.body.find("path=\"other\",code=\"404\""), std::string::npos);
}

TEST(TelemetryServer, HealthzReportsDegradedCounters) {
  obs::TelemetryServer server{obs::TelemetryServer::Options{}};
  const io::Json before =
      io::Json::parse(net::http_get(server.port(), "/healthz").body);
  const std::int64_t base = before.at("degraded_runs").as_int();

  obs::MetricsRegistry::global().counter("market.game.degraded_runs").add();
  const io::Json after =
      io::Json::parse(net::http_get(server.port(), "/healthz").body);
  EXPECT_EQ(after.at("degraded_runs").as_int(), base + 1);
  EXPECT_TRUE(after.at("degraded").as_bool());
  // Degraded is a quality flag, not a liveness failure.
  EXPECT_EQ(after.at("status").as_string(), "ok");
}

// The tentpole guarantee: scraping /metrics over real sockets while worker
// threads mutate the registry always yields well-formed OpenMetrics, counter
// families are monotone scrape-over-scrape, and histogram _count equals the
// cumulative le="+Inf" bucket within every single document.
TEST(TelemetryServer, ConcurrentScrapesStayWellFormedAndMonotone) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  obs::Counter& hammered = registry.counter("test.telemetry.hammered");
  obs::Histogram& hist = registry.histogram("test.telemetry.latency");

  obs::TelemetryServer server{obs::TelemetryServer::Options{}};

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      double v = 1e-6 * (t + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        hammered.add();
        hist.observe(v);
        v = v < 1.0 ? v * 1.7 : 1e-6 * (t + 1);
      }
    });
  }

  double last_hammered = -1.0;
  double last_hist_count = -1.0;
  for (int scrape = 0; scrape < 25; ++scrape) {
    const auto result = net::http_get(server.port(), "/metrics");
    ASSERT_EQ(result.status, 200);
    const auto problems = scshare::test::check_openmetrics(result.body);
    ASSERT_TRUE(problems.empty())
        << "scrape " << scrape << ":\n"
        << scshare::test::join_problems(problems);

    const auto samples = scshare::test::parse_openmetrics_samples(result.body);
    const auto counter_it =
        samples.find("scshare_test_telemetry_hammered_total");
    ASSERT_NE(counter_it, samples.end());
    EXPECT_GE(counter_it->second, last_hammered) << "scrape " << scrape;
    last_hammered = counter_it->second;

    const auto count_it = samples.find("scshare_test_telemetry_latency_count");
    const auto inf_it =
        samples.find("scshare_test_telemetry_latency_bucket{le=\"+Inf\"}");
    ASSERT_NE(count_it, samples.end());
    ASSERT_NE(inf_it, samples.end());
    // Internal consistency within one scrape: the cumulative +Inf bucket is
    // the count (Histogram::snapshot derives count from the bucket loads).
    EXPECT_DOUBLE_EQ(count_it->second, inf_it->second)
        << "scrape " << scrape;
    EXPECT_GE(count_it->second, last_hist_count) << "scrape " << scrape;
    last_hist_count = count_it->second;
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();
  EXPECT_GT(last_hammered, 0.0);
}
