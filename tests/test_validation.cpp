// Tests of the differential validation harness (src/validation/): scenario
// generation, the statistical comparator, the oracle registry, the harness
// end to end (including thread-count determinism and the injected-fault
// self-test), and the metamorphic properties.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "validation/comparator.hpp"
#include "validation/harness.hpp"
#include "validation/oracles.hpp"
#include "validation/scenario.hpp"

namespace v = scshare::validation;
namespace fed = scshare::federation;

namespace {

fed::ScConfig make_sc(int num_vms, double lambda, double mu, double max_wait) {
  fed::ScConfig sc;
  sc.num_vms = num_vms;
  sc.lambda = lambda;
  sc.mu = mu;
  sc.max_wait = max_wait;
  return sc;
}

v::ScenarioSpec two_sc_spec() {
  v::ScenarioSpec spec;
  spec.name = "test:two-sc";
  spec.sim_seed = 99;
  spec.config.scs = {make_sc(4, 3.0, 1.0, 0.2), make_sc(3, 1.5, 1.0, 0.1)};
  spec.config.shares = {2, 1};
  spec.prices.public_price = {1.0, 1.0};
  spec.prices.federation_price = 0.5;
  return spec;
}

/// Short simulation windows keep the whole suite fast; the CI-multiplier
/// tolerance absorbs the extra noise.
v::OracleOptions fast_oracles() {
  v::OracleOptions options;
  options.sim_warmup_time = 200.0;
  options.sim_measure_time = 3000.0;
  options.sim_batches = 10;
  options.sim_warmup_batches = 2;
  return options;
}

}  // namespace

// ---- scenario generation --------------------------------------------------

TEST(ScenarioGenerator, IsDeterministicPerSeedAndIndex) {
  const v::ScenarioGenerator gen_a(42);
  const v::ScenarioGenerator gen_b(42);
  for (std::size_t i = 0; i < 8; ++i) {
    const auto a = gen_a.make(i);
    const auto b = gen_b.make(i);
    EXPECT_EQ(a.name, b.name) << "index " << i;
    EXPECT_EQ(a.sim_seed, b.sim_seed);
    ASSERT_EQ(a.config.size(), b.config.size());
    for (std::size_t s = 0; s < a.config.size(); ++s) {
      EXPECT_EQ(a.config.scs[s].num_vms, b.config.scs[s].num_vms);
      EXPECT_DOUBLE_EQ(a.config.scs[s].lambda, b.config.scs[s].lambda);
      EXPECT_EQ(a.config.shares[s], b.config.shares[s]);
    }
  }
}

TEST(ScenarioGenerator, DifferentSeedsGiveDifferentStreams) {
  const v::ScenarioGenerator gen_a(1);
  const v::ScenarioGenerator gen_b(2);
  // Index 1 is a random draw (0 is a corner); seeds must decorrelate it.
  const auto a = gen_a.make(1);
  const auto b = gen_b.make(1);
  EXPECT_NE(a.sim_seed, b.sim_seed);
}

TEST(ScenarioGenerator, EveryFifthScenarioIsACorner) {
  const v::ScenarioGenerator gen(42);
  for (std::size_t i = 0; i < 3 * v::ScenarioGenerator::kCornerPeriod; ++i) {
    const auto spec = gen.make(i);
    if (i % v::ScenarioGenerator::kCornerPeriod == 0) {
      EXPECT_EQ(spec.name.rfind("corner:", 0), 0u) << spec.name;
    } else {
      EXPECT_EQ(spec.name, "random");
    }
    EXPECT_NO_THROW(spec.config.validate());
  }
}

TEST(ScenarioGenerator, ParsesExplicitScenarioFile) {
  const auto json = scshare::io::Json::parse(R"({
    "scenarios": [
      {"name": "loss-system", "sim_seed": 7,
       "federation": {"scs": [
         {"num_vms": 5, "lambda": 3.5, "mu": 1.0, "max_wait": 0.0}]},
       "prices": {"public_price": 1.0, "federation_price": 0.25},
       "utility": {"gamma": 1.0}}
    ]})");
  const auto specs = v::parse_scenarios(json);
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].name, "loss-system");
  EXPECT_EQ(specs[0].sim_seed, 7u);
  EXPECT_EQ(specs[0].config.scs[0].num_vms, 5);
  EXPECT_DOUBLE_EQ(specs[0].prices.federation_price, 0.25);
  EXPECT_DOUBLE_EQ(specs[0].utility.gamma, 1.0);
}

// ---- comparator -----------------------------------------------------------

TEST(Comparator, EnvelopeCombinesAbsRelAndCiTerms) {
  const v::Tolerance t{0.1, 0.05, 2.0};
  // |1.0 - 1.3| = 0.3 vs 0.1 + 0.05 * 1.3 = 0.165: fails without a CI term.
  EXPECT_FALSE(v::within(1.0, 1.3, 0.0, t));
  // A half-width of 0.1 widens the envelope by 0.2: passes.
  EXPECT_TRUE(v::within(1.0, 1.3, 0.1, t));
  EXPECT_GT(v::excess(1.0, 1.3, 0.0, t), 0.0);
  EXPECT_LT(v::excess(1.0, 1.3, 0.1, t), 0.0);
}

TEST(Comparator, NonFiniteValuesNeverAgree) {
  const v::Tolerance loose{1e9, 1e9, 1e9};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(v::within(nan, 0.0, 0.0, loose));
  EXPECT_FALSE(v::within(0.0, inf, 0.0, loose));
}

TEST(Comparator, InvariantsFlagNegativeForwardRate) {
  const auto spec = two_sc_spec();
  fed::FederationMetrics metrics;
  metrics.resize(spec.config.size());
  metrics[0].forward_rate = -0.5;
  metrics[0].forward_prob = 0.1;
  metrics[0].utilization = 0.5;
  metrics[1].forward_prob = 0.1;
  metrics[1].utilization = 0.5;
  const auto violations =
      v::invariant_violations("test", spec.config, metrics);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("forward_rate"), std::string::npos);
}

TEST(Comparator, InvariantsAcceptSaneMetrics) {
  const auto spec = two_sc_spec();
  fed::FederationMetrics metrics;
  metrics.resize(spec.config.size());
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    metrics[i].forward_rate = 0.2;
    metrics[i].forward_prob = 0.1;
    metrics[i].utilization = 0.6;
    metrics[i].lent = 0.5;
    metrics[i].borrowed = 0.5;
  }
  EXPECT_TRUE(v::invariant_violations("test", spec.config, metrics).empty());
}

// ---- oracle registry ------------------------------------------------------

TEST(Oracles, RunAllFourInFixedOrder) {
  auto spec = two_sc_spec();
  const auto runs = v::run_oracles(spec, fast_oracles());
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0].name, "detailed");
  EXPECT_EQ(runs[1].name, "approx");
  EXPECT_EQ(runs[2].name, "simulation");
  EXPECT_EQ(runs[3].name, "closed_form");
  EXPECT_TRUE(runs[0].ok);
  EXPECT_TRUE(runs[1].ok);
  EXPECT_TRUE(runs[2].ok);
  // Closed form needs an all-zero sharing vector.
  EXPECT_FALSE(runs[3].applicable);
  EXPECT_EQ(runs[0].utilities.size(), spec.config.size());
  EXPECT_EQ(runs[2].sim_stats.size(), spec.config.size());
}

TEST(Oracles, ClosedFormAppliesToDecoupledFederation) {
  auto spec = two_sc_spec();
  spec.config.shares = {0, 0};
  const auto runs = v::run_oracles(spec, fast_oracles());
  EXPECT_TRUE(runs[3].applicable);
  ASSERT_TRUE(runs[3].ok);
  // Decoupled: detailed and closed form are the same chain.
  for (std::size_t i = 0; i < spec.config.size(); ++i) {
    EXPECT_NEAR(runs[3].metrics[i].forward_rate,
                runs[0].metrics[i].forward_rate, 1e-6);
    EXPECT_NEAR(runs[3].metrics[i].utilization,
                runs[0].metrics[i].utilization, 1e-6);
  }
}

TEST(Oracles, DetailedReportsInapplicableOnStateSpaceBlowUp) {
  auto spec = two_sc_spec();
  auto options = fast_oracles();
  options.detailed_max_states = 4;  // absurdly small ceiling
  const auto runs = v::run_oracles(spec, options);
  EXPECT_FALSE(runs[0].applicable);
  EXPECT_FALSE(runs[0].error.empty());
}

// ---- harness --------------------------------------------------------------

TEST(Harness, SmallRunHasZeroDisagreements) {
  v::HarnessOptions options;
  options.scenarios = 6;
  options.seed = 42;
  options.oracles = fast_oracles();
  const auto report = v::run_validation(options);
  EXPECT_EQ(report.scenarios, 6u);
  EXPECT_GT(report.comparisons, 0u);
  std::string detail;
  for (const auto& outcome : report.outcomes) {
    for (const auto& f : outcome.failures) {
      detail += outcome.name + " #" + std::to_string(outcome.index) + " " +
                f.metric + " " + f.left + "=" + std::to_string(f.left_value) +
                " vs " + f.right + "=" + std::to_string(f.right_value) + "\n";
    }
    for (const auto& s : outcome.invariant_violations) detail += s + "\n";
    for (const auto& s : outcome.oracle_errors) detail += s + "\n";
  }
  EXPECT_EQ(report.disagreements, 0u) << detail;
  EXPECT_TRUE(report.pass());
}

TEST(Harness, ReportIsBitIdenticalAcrossThreadCounts) {
  v::HarnessOptions options;
  options.scenarios = 6;
  options.seed = 7;
  options.oracles = fast_oracles();
  options.threads = 1;
  const auto serial = v::to_json(v::run_validation(options)).dump(2);
  options.threads = 4;
  const auto parallel = v::to_json(v::run_validation(options)).dump(2);
  EXPECT_EQ(serial, parallel);
}

TEST(Harness, CatchesInjectedSignFlipInApproxForwarding) {
  v::HarnessOptions options;
  options.scenarios = 4;
  options.seed = 42;
  options.oracles = fast_oracles();
  options.oracles.flip_approx_forward_sign = true;
  options.check_equilibria = false;
  const auto report = v::run_validation(options);
  EXPECT_GT(report.disagreements, 0u)
      << "a sign flip in the approx forwarding metrics must not pass";
  EXPECT_FALSE(report.pass());
}

TEST(Harness, ExplicitScenariosBypassTheGenerator) {
  v::HarnessOptions options;
  options.explicit_scenarios = {two_sc_spec()};
  options.oracles = fast_oracles();
  options.check_equilibria = false;
  const auto report = v::run_validation(options);
  EXPECT_EQ(report.scenarios, 1u);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_EQ(report.outcomes[0].name, "test:two-sc");
  EXPECT_EQ(report.disagreements, 0u);
}

TEST(Harness, JsonReportCarriesSummaryAndOutcomes) {
  v::HarnessOptions options;
  options.explicit_scenarios = {two_sc_spec()};
  options.oracles = fast_oracles();
  options.check_equilibria = false;
  const auto json = v::to_json(v::run_validation(options));
  EXPECT_TRUE(json.at("pass").as_bool());
  EXPECT_EQ(json.at("scenarios").as_int(), 1);
  EXPECT_GT(json.at("comparisons").as_int(), 0);
  const auto& outcome = json.at("outcomes").at(0);
  EXPECT_EQ(outcome.at("name").as_string(), "test:two-sc");
  EXPECT_EQ(outcome.at("oracles").size(), 4u);
  EXPECT_TRUE(outcome.at("config").is_object());
}

// ---- metamorphic properties ----------------------------------------------

TEST(Metamorphic, ForwardRateIsMonotoneInPooledCapacity) {
  fed::FederationConfig config;
  config.scs = {make_sc(3, 2.7, 1.0, 0.2), make_sc(4, 1.0, 1.0, 0.2)};
  config.shares = {0, 0};
  const auto violations =
      v::check_pool_monotonicity(config, /*observer=*/0, /*donor=*/1,
                                 /*max_share=*/4);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());
}

TEST(Metamorphic, DetailedModelIsRelabelInvariant) {
  fed::FederationConfig config;
  config.scs = {make_sc(3, 2.4, 1.0, 0.2), make_sc(4, 2.0, 0.5, 0.1),
                make_sc(2, 1.0, 1.0, 0.5)};
  config.shares = {1, 2, 1};
  const std::vector<std::size_t> permutation = {2, 0, 1};
  const auto violations = v::check_relabel_invariance(config, permutation);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());
}

TEST(Metamorphic, LumpedAndUnlumpedSteadyStatesAgree) {
  for (std::uint64_t seed : {7ULL, 8ULL, 9ULL}) {
    const auto violations = v::check_lumping_equivalence(seed, 40);
    EXPECT_TRUE(violations.empty())
        << "seed " << seed << ": "
        << (violations.empty() ? "" : violations.front());
  }
}
