#include "federation/config.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace fed = scshare::federation;

namespace {

fed::FederationConfig valid() {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 10, .lambda = 5.0, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 8, .lambda = 4.0, .mu = 2.0, .max_wait = 0.1}};
  cfg.shares = {3, 2};
  return cfg;
}

}  // namespace

TEST(FederationConfig, ValidConfigPasses) {
  EXPECT_NO_THROW(valid().validate());
}

TEST(FederationConfig, EmptyFederationRejected) {
  fed::FederationConfig cfg;
  EXPECT_THROW(cfg.validate(), scshare::Error);
}

TEST(FederationConfig, ShareSizeMismatchRejected) {
  auto cfg = valid();
  cfg.shares = {3};
  EXPECT_THROW(cfg.validate(), scshare::Error);
}

TEST(FederationConfig, ShareBeyondVmsRejected) {
  auto cfg = valid();
  cfg.shares[0] = 11;
  EXPECT_THROW(cfg.validate(), scshare::Error);
}

TEST(FederationConfig, NegativeShareRejected) {
  auto cfg = valid();
  cfg.shares[0] = -1;
  EXPECT_THROW(cfg.validate(), scshare::Error);
}

TEST(FederationConfig, NonPositiveRatesRejected) {
  auto cfg = valid();
  cfg.scs[0].lambda = 0.0;
  EXPECT_THROW(cfg.validate(), scshare::Error);
  cfg = valid();
  cfg.scs[1].mu = -1.0;
  EXPECT_THROW(cfg.validate(), scshare::Error);
  cfg = valid();
  cfg.scs[0].num_vms = 0;
  EXPECT_THROW(cfg.validate(), scshare::Error);
}

TEST(FederationConfig, NegativeSlaRejected) {
  auto cfg = valid();
  cfg.scs[0].max_wait = -0.1;
  EXPECT_THROW(cfg.validate(), scshare::Error);
}

TEST(FederationConfig, BadTruncationEpsilonRejected) {
  auto cfg = valid();
  cfg.truncation_epsilon = 0.0;
  EXPECT_THROW(cfg.validate(), scshare::Error);
  cfg.truncation_epsilon = 1.0;
  EXPECT_THROW(cfg.validate(), scshare::Error);
}

TEST(FederationConfig, SharedPoolExcluding) {
  const auto cfg = valid();
  EXPECT_EQ(cfg.shared_pool_excluding(0), 2);
  EXPECT_EQ(cfg.shared_pool_excluding(1), 3);
}

TEST(FederationConfig, SharedPoolSingleSc) {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 5, .lambda = 1.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {2};
  EXPECT_EQ(cfg.shared_pool_excluding(0), 0);
}
