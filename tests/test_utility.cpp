#include "market/utility.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mkt = scshare::market;

TEST(Utility, Gamma0IsSquaredCostReduction) {
  const mkt::UtilityParams uf0{.gamma = 0.0};
  // C0 = 10, C = 4: reduction 6 -> utility 36.
  EXPECT_DOUBLE_EQ(mkt::sc_utility_raw(10.0, 4.0, 0.5, 0.7, 3, uf0), 36.0);
}

TEST(Utility, Gamma1DividesByUtilizationDelta) {
  const mkt::UtilityParams uf1{.gamma = 1.0};
  // reduction 6, delta rho = 0.2 -> 36 / 0.2 = 180.
  EXPECT_NEAR(mkt::sc_utility_raw(10.0, 4.0, 0.5, 0.7, 3, uf1), 180.0, 1e-9);
}

TEST(Utility, IntermediateGamma) {
  const mkt::UtilityParams uf{.gamma = 0.5};
  const double expected = 36.0 / std::sqrt(0.2);
  EXPECT_NEAR(mkt::sc_utility_raw(10.0, 4.0, 0.5, 0.7, 3, uf), expected, 1e-9);
}

TEST(Utility, NonParticipantHasZeroUtility) {
  const mkt::UtilityParams uf{.gamma = 1.0};
  EXPECT_DOUBLE_EQ(mkt::sc_utility_raw(10.0, 4.0, 0.5, 0.7, 0, uf), 0.0);
}

TEST(Utility, CostIncreaseClampsToZero) {
  const mkt::UtilityParams uf{.gamma = 0.0};
  EXPECT_DOUBLE_EQ(mkt::sc_utility_raw(4.0, 10.0, 0.5, 0.7, 3, uf), 0.0);
}

TEST(Utility, ZeroReductionAvoidsZeroByZeroDivision) {
  const mkt::UtilityParams uf{.gamma = 1.0};
  // No cost reduction and no utilization change: utility must be 0, not NaN.
  const double u = mkt::sc_utility_raw(10.0, 10.0, 0.5, 0.5, 3, uf);
  EXPECT_DOUBLE_EQ(u, 0.0);
}

TEST(Utility, NoisyUtilizationDeltaIsClamped) {
  const mkt::UtilityParams uf{.gamma = 1.0, .min_utilization_delta = 1e-6};
  // Slightly negative measured delta (simulation noise): clamped, finite.
  const double u = mkt::sc_utility_raw(10.0, 9.0, 0.5, 0.4999, 3, uf);
  EXPECT_TRUE(std::isfinite(u));
  EXPECT_GT(u, 0.0);
}

TEST(Utility, HigherUtilizationIncreaseLowersUf1) {
  const mkt::UtilityParams uf1{.gamma = 1.0};
  const double small_delta = mkt::sc_utility_raw(10.0, 4.0, 0.5, 0.55, 3, uf1);
  const double large_delta = mkt::sc_utility_raw(10.0, 4.0, 0.5, 0.9, 3, uf1);
  EXPECT_GT(small_delta, large_delta);
}

TEST(Utility, InvalidGammaThrows) {
  const mkt::UtilityParams bad{.gamma = 1.5};
  EXPECT_THROW((void)mkt::sc_utility_raw(10.0, 4.0, 0.5, 0.7, 3, bad),
               scshare::Error);
}

TEST(Utility, FromMetricsUsesEquationOne) {
  scshare::federation::ScMetrics m;
  m.forward_rate = 0.5;
  m.borrowed = 1.0;
  m.lent = 2.0;
  m.utilization = 0.8;
  mkt::Baseline baseline;
  baseline.cost = 10.0;
  baseline.utilization = 0.6;
  const mkt::UtilityParams uf0{.gamma = 0.0};
  // cost = 0.5*8 + (1-2)*2 = 2 -> reduction 8 -> utility 64.
  EXPECT_DOUBLE_EQ(mkt::sc_utility(m, baseline, 8.0, 2.0, 3, uf0), 64.0);
}
