#include "queueing/phase_type_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/simulator.hpp"

namespace q = scshare::queueing;

TEST(PhaseTypeModel, SingleStageEqualsExponentialModel) {
  const q::PhaseTypeParams params{.num_vms = 10, .lambda = 8.0, .mu = 1.0,
                                  .max_wait = 0.2, .stages = 1};
  const auto erlang = q::solve_no_share_phase_type(params);
  const auto exponential = q::solve_no_share(
      {.num_vms = 10, .lambda = 8.0, .mu = 1.0, .max_wait = 0.2});
  EXPECT_NEAR(erlang.forward_prob, exponential.forward_prob, 1e-9);
  EXPECT_NEAR(erlang.utilization, exponential.utilization, 1e-9);
  EXPECT_NEAR(erlang.mean_queue_length, exponential.mean_queue_length, 1e-9);
}

TEST(PhaseTypeModel, FlowBalance) {
  const q::PhaseTypeParams params{.num_vms = 10, .lambda = 8.5, .mu = 1.0,
                                  .max_wait = 0.2, .stages = 3};
  const auto r = q::solve_no_share_phase_type(params);
  const double accepted = 8.5 * (1.0 - r.forward_prob);
  EXPECT_NEAR(accepted, 10.0 * r.utilization * 1.0, 1e-7);
}

TEST(PhaseTypeModel, LowerVarianceForwardsLess) {
  // With the same admission rule, steadier services keep the queue shorter,
  // so fewer arrivals face unfavourable queue states.
  double prev = 1.0;
  for (int k : {1, 2, 4}) {
    const auto r = q::solve_no_share_phase_type(
        {.num_vms = 10, .lambda = 9.0, .mu = 1.0, .max_wait = 0.2,
         .stages = k});
    EXPECT_LT(r.forward_prob, prev) << "stages=" << k;
    prev = r.forward_prob;
  }
}

TEST(PhaseTypeModel, MatchesErlangServiceSimulation) {
  const int k = 4;
  const q::PhaseTypeParams params{.num_vms = 10, .lambda = 9.0, .mu = 1.0,
                                  .max_wait = 0.2, .stages = k};
  const auto model = q::solve_no_share_phase_type(params);

  scshare::federation::FederationConfig cfg;
  cfg.scs = {{.num_vms = 10, .lambda = 9.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {0};
  scshare::sim::SimOptions o;
  o.warmup_time = 1000.0;
  o.measure_time = 60000.0;
  o.seed = 71;
  o.service = scshare::sim::ServiceDistribution::kErlang;
  o.erlang_shape = k;
  scshare::sim::Simulator s(cfg, o);
  const auto sim = s.run()[0];

  EXPECT_NEAR(model.forward_prob, sim.metrics.forward_prob, 0.01);
  EXPECT_NEAR(model.utilization, sim.metrics.utilization, 0.01);
}

TEST(PhaseTypeModel, ZeroSlaIsLossSystem) {
  // Q = 0: M/E_k/N/N. The Erlang loss formula is insensitive to the service
  // distribution (only the mean matters), so the blocking probability must
  // match the exponential case exactly.
  const auto erlang = q::solve_no_share_phase_type(
      {.num_vms = 8, .lambda = 6.0, .mu = 1.0, .max_wait = 0.0, .stages = 3});
  const auto exponential = q::solve_no_share(
      {.num_vms = 8, .lambda = 6.0, .mu = 1.0, .max_wait = 0.0});
  EXPECT_NEAR(erlang.forward_prob, exponential.forward_prob, 1e-8);
}

TEST(PhaseTypeModel, StateCountGrowsWithStages) {
  std::size_t prev = 0;
  for (int k : {1, 2, 3}) {
    const auto r = q::solve_no_share_phase_type(
        {.num_vms = 6, .lambda = 4.0, .mu = 1.0, .max_wait = 0.2,
         .stages = k});
    EXPECT_GT(r.num_states, prev);
    prev = r.num_states;
  }
}

TEST(PhaseTypeModel, InvalidParamsThrow) {
  EXPECT_THROW((void)q::solve_no_share_phase_type(
                   {.num_vms = 0, .lambda = 1.0, .mu = 1.0}),
               scshare::Error);
  EXPECT_THROW((void)q::solve_no_share_phase_type(
                   {.num_vms = 1, .lambda = 1.0, .mu = 1.0, .max_wait = 0.1,
                    .stages = 0}),
               scshare::Error);
}
