#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "control/sharing_controller.hpp"
#include "federation/backend.hpp"

namespace ctl = scshare::control;
namespace fed = scshare::federation;
namespace mkt = scshare::market;

namespace {

/// Feeds Poisson arrivals at `rate` into the monitor over [t0, t1].
double feed_poisson(ctl::WorkloadMonitor& monitor, scshare::Rng& rng,
                    double t0, double t1, double rate) {
  double t = t0;
  for (;;) {
    t += rng.exponential(rate);
    if (t >= t1) return t1;
    monitor.record_arrival(t);
  }
}

}  // namespace

TEST(WorkloadMonitor, EstimatesStationaryRate) {
  ctl::WorkloadMonitor monitor;
  scshare::Rng rng(5);
  feed_poisson(monitor, rng, 0.0, 10000.0, 4.0);
  EXPECT_NEAR(monitor.fast_rate(), 4.0, 0.8);
  EXPECT_NEAR(monitor.slow_rate(), 4.0, 0.5);
  EXPECT_FALSE(monitor.change_detected());
}

TEST(WorkloadMonitor, DetectsSustainedRateJump) {
  ctl::WorkloadMonitor monitor;
  scshare::Rng rng(7);
  feed_poisson(monitor, rng, 0.0, 8000.0, 3.0);
  ASSERT_FALSE(monitor.change_detected());
  feed_poisson(monitor, rng, 8000.0, 10000.0, 7.0);  // regime shift
  EXPECT_TRUE(monitor.change_detected());
  EXPECT_GT(monitor.fast_rate(), 5.0);

  monitor.acknowledge_change();
  EXPECT_FALSE(monitor.change_detected());
  // After acknowledgment the new regime is the baseline: no re-trigger.
  feed_poisson(monitor, rng, 10000.0, 14000.0, 7.0);
  EXPECT_FALSE(monitor.change_detected());
}

TEST(WorkloadMonitor, IgnoresShortBursts) {
  ctl::MonitorOptions options;
  options.confirmation_time = 500.0;
  ctl::WorkloadMonitor monitor(options);
  scshare::Rng rng(9);
  double t = feed_poisson(monitor, rng, 0.0, 8000.0, 3.0);
  // A burst much shorter than the confirmation time.
  t = feed_poisson(monitor, rng, t, t + 100.0, 12.0);
  EXPECT_FALSE(monitor.change_detected());
  // Back to normal: the divergence clock resets.
  feed_poisson(monitor, rng, t, t + 2000.0, 3.0);
  EXPECT_FALSE(monitor.change_detected());
}

TEST(WorkloadMonitor, InvalidOptionsThrow) {
  ctl::MonitorOptions bad;
  bad.fast_window = 100.0;
  bad.slow_window = 50.0;
  EXPECT_THROW(ctl::WorkloadMonitor{bad}, scshare::Error);
}

TEST(SharingController, RenegotiatesAfterRegimeShift) {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 4, .lambda = 1.5, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 4, .lambda = 2.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {1, 1};
  mkt::PriceConfig prices;
  prices.public_price = {1.0, 1.0};
  prices.federation_price = 0.4;

  fed::CachingBackend backend(std::make_unique<fed::DetailedBackend>());
  ctl::ControllerOptions options;
  options.game.method = mkt::BestResponseMethod::kExhaustive;
  ctl::SharingController controller(cfg, prices, backend, options);

  scshare::Rng rng(11);
  // Phase 1: arrivals match the configured rates; nothing to do.
  double t0 = 0.0, t1 = 8000.0;
  {
    double t = t0;
    while (t < t1) {
      t += rng.exponential(3.5);
      const bool sc0 = rng.bernoulli(1.5 / 3.5);
      controller.observe_arrival(sc0 ? 0 : 1, std::min(t, t1));
    }
  }
  EXPECT_FALSE(controller.renegotiation_due());

  // Phase 2: SC 0's load more than doubles.
  {
    double t = t1;
    while (t < t1 + 3000.0) {
      t += rng.exponential(5.5);
      const bool sc0 = rng.bernoulli(3.5 / 5.5);
      controller.observe_arrival(sc0 ? 0 : 1, t);
    }
  }
  ASSERT_TRUE(controller.renegotiation_due());

  const auto decision = controller.renegotiate(t1 + 3000.0);
  EXPECT_TRUE(decision.converged);
  // The re-estimated rate reflects the shift.
  EXPECT_GT(decision.estimated_lambdas[0], 2.5);
  EXPECT_EQ(controller.shares(), decision.new_shares);
  EXPECT_FALSE(controller.renegotiation_due());
}

TEST(SharingController, ObserveOutOfRangeThrows) {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 4, .lambda = 1.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {0};
  mkt::PriceConfig prices;
  prices.public_price = {1.0};
  prices.federation_price = 0.5;
  fed::DetailedBackend backend;
  ctl::SharingController controller(cfg, prices, backend);
  EXPECT_THROW(controller.observe_arrival(3, 1.0), scshare::Error);
}
