// Tests for the span profiler (src/obs/profiler.*): nesting and parenting,
// cross-thread-pool span adoption, the disabled fast path, Chrome trace
// export, profile-tree aggregation, and wall-clock coverage of an
// instrumented Framework run.
#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "exec/thread_pool.hpp"
#include "io/json.hpp"
#include "market/game.hpp"
#include "obs/profiler.hpp"

namespace obs = scshare::obs;
namespace fed = scshare::federation;
namespace io = scshare::io;

namespace {

/// Enables the profiler for one test and guarantees disable + clear on exit
/// (the profiler is process-wide state; a leak would poison later tests).
class ProfilerGuard {
 public:
  ProfilerGuard() { obs::Profiler::instance().enable(); }
  ~ProfilerGuard() {
    obs::Profiler::instance().disable();
    obs::Profiler::instance().clear();
  }
};

fed::FederationConfig small_federation() {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 4, .lambda = 2.5, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 4, .lambda = 3.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {1, 1};
  cfg.truncation_epsilon = 1e-7;
  return cfg;
}

scshare::market::PriceConfig default_prices(std::size_t n) {
  scshare::market::PriceConfig prices;
  prices.public_price.assign(n, 1.0);
  prices.federation_price = 0.5;
  return prices;
}

const obs::SpanRecord* find_by_name(const std::vector<obs::SpanRecord>& rs,
                                    const std::string& name) {
  for (const auto& r : rs) {
    if (name == r.name) return &r;
  }
  return nullptr;
}

}  // namespace

TEST(Profiler, DisabledSpansRecordNothing) {
  ASSERT_FALSE(obs::profiler_enabled());
  {
    const obs::Span a("off.outer");
    const obs::Span b("off.inner");
  }
  EXPECT_EQ(obs::Profiler::instance().record_count(), 0u);
  EXPECT_EQ(obs::current_span(), 0u);
}

TEST(Profiler, NestedSpansFormParentChain) {
  const ProfilerGuard guard;
  {
    const obs::Span outer("t.outer");
    {
      const obs::Span middle("t.middle");
      const obs::Span inner("t.inner");
    }
    const obs::Span sibling("t.sibling");
  }
  const auto records = obs::Profiler::instance().records();
  ASSERT_EQ(records.size(), 4u);

  const auto* outer = find_by_name(records, "t.outer");
  const auto* middle = find_by_name(records, "t.middle");
  const auto* inner = find_by_name(records, "t.inner");
  const auto* sibling = find_by_name(records, "t.sibling");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(middle, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(sibling, nullptr);

  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(middle->parent, outer->id);
  EXPECT_EQ(inner->parent, middle->id);
  EXPECT_EQ(sibling->parent, outer->id);  // not under the closed middle/inner

  // Ids are unique and nonzero; children start no earlier than parents and
  // fit inside them.
  std::set<std::uint64_t> ids;
  for (const auto& r : records) {
    EXPECT_GT(r.id, 0u);
    EXPECT_TRUE(ids.insert(r.id).second);
    EXPECT_GE(r.duration_ns, 0);
  }
  EXPECT_GE(inner->start_ns, middle->start_ns);
  EXPECT_LE(inner->start_ns + inner->duration_ns,
            middle->start_ns + middle->duration_ns);
}

TEST(Profiler, ThreadPoolWorkersAdoptDispatchSpan) {
  const ProfilerGuard guard;
  std::uint64_t dispatch_id = 0;
  {
    const obs::Span dispatch("t.dispatch");
    dispatch_id = obs::current_span();
    ASSERT_NE(dispatch_id, 0u);
    scshare::exec::ThreadPool pool(4);
    pool.parallel_for(64, [](std::size_t) {
      const obs::Span work("t.work");
      // Long enough per index that the calling thread cannot drain the
      // atomic cursor before the pool's workers wake and claim indices.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  }
  const auto records = obs::Profiler::instance().records();
  std::set<std::uint32_t> threads;
  std::size_t work_spans = 0;
  for (const auto& r : records) {
    if (std::string(r.name) == "t.work") {
      ++work_spans;
      EXPECT_EQ(r.parent, dispatch_id)
          << "worker span not parented under the dispatch site";
      threads.insert(r.thread);
    }
  }
  EXPECT_EQ(work_spans, 64u);
  // With 64 items on 4 workers at least two distinct threads should have
  // executed spans (the pool hands out index ranges, not single items).
  EXPECT_GE(threads.size(), 2u);
}

TEST(Profiler, CurrentSpanRestoredAfterScopedParent) {
  const ProfilerGuard guard;
  const obs::Span outer("t.outer");
  const std::uint64_t before = obs::current_span();
  {
    const obs::ScopedSpanParent adopt(12345);
    EXPECT_EQ(obs::current_span(), 12345u);
  }
  EXPECT_EQ(obs::current_span(), before);
}

TEST(Profiler, ChromeTraceIsValidJsonWithCompleteEvents) {
  const ProfilerGuard guard;
  {
    const obs::Span outer("t.outer");
    const obs::Span inner("t.inner");
  }
  const auto records = obs::Profiler::instance().records();
  const std::string trace = obs::to_chrome_trace(records);
  const io::Json parsed = io::Json::parse(trace);

  ASSERT_TRUE(parsed.contains("traceEvents"));
  EXPECT_EQ(parsed.at("displayTimeUnit").as_string(), "ms");
  const auto& events = parsed.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), records.size());
  for (const auto& e : events) {
    EXPECT_EQ(e.at("ph").as_string(), "X");
    EXPECT_EQ(e.at("cat").as_string(), "scshare");
    EXPECT_EQ(e.at("pid").as_int(), 1);
    EXPECT_GE(e.at("ts").as_double(), 0.0);
    EXPECT_GE(e.at("dur").as_double(), 0.0);
    EXPECT_TRUE(e.at("args").contains("span"));
    EXPECT_TRUE(e.at("args").contains("parent"));
  }
  // Events are sorted by start time, so the outer span comes first.
  EXPECT_EQ(events.at(std::size_t{0}).at("name").as_string(), "t.outer");
}

TEST(Profiler, ProfileTreeAggregatesByNamePath) {
  const ProfilerGuard guard;
  for (int i = 0; i < 3; ++i) {
    const obs::Span outer("t.outer");
    for (int j = 0; j < 2; ++j) {
      const obs::Span inner("t.inner");
    }
  }
  const auto tree =
      obs::build_profile_tree(obs::Profiler::instance().records());
  EXPECT_EQ(tree.name, "all");
  EXPECT_EQ(tree.count, 9u);  // every record, counted once
  ASSERT_EQ(tree.children.size(), 1u);

  const auto& outer = tree.children.front();
  EXPECT_EQ(outer.name, "t.outer");
  EXPECT_EQ(outer.count, 3u);
  ASSERT_EQ(outer.children.size(), 1u);
  EXPECT_EQ(outer.children.front().name, "t.inner");
  EXPECT_EQ(outer.children.front().count, 6u);

  // total = self + children's totals, and the synthetic root's total covers
  // its children exactly.
  EXPECT_NEAR(outer.total_seconds,
              outer.self_seconds + outer.children.front().total_seconds,
              1e-12);
  EXPECT_NEAR(tree.total_seconds, outer.total_seconds, 1e-12);
}

TEST(Profiler, FrameworkRunIsCoveredByTheSpanTree) {
  const ProfilerGuard guard;
  std::int64_t run_ns = 0;
  {
    const obs::Span root("test.run");
    const auto start = obs::Profiler::instance().now_since_epoch_ns();
    const auto cfg = small_federation();
    scshare::FrameworkOptions options;
    options.exec.threads = 4;
    scshare::Framework fw(cfg, default_prices(cfg.size()), {}, options);
    scshare::market::GameOptions game;
    game.method = scshare::market::BestResponseMethod::kExhaustive;
    game.max_rounds = 8;
    (void)fw.find_equilibrium(game);
    run_ns = obs::Profiler::instance().now_since_epoch_ns() - start;
  }
  const auto records = obs::Profiler::instance().records();
  const auto* root = find_by_name(records, "test.run");
  ASSERT_NE(root, nullptr);

  // The instrumented phases under the root must cover >= 95% of its wall
  // clock: sum the durations of its direct children.
  std::int64_t children_ns = 0;
  std::map<std::string, int> names;
  for (const auto& r : records) {
    ++names[r.name];
    if (r.parent == root->id) children_ns += r.duration_ns;
  }
  EXPECT_GT(names["game.run"], 0);
  EXPECT_GT(names["game.round"], 0);
  EXPECT_GT(names["game.best_response"], 0);
  EXPECT_GT(names["backend.eval_batch"], 0);
  EXPECT_GT(names["backend.eval"], 0);
  EXPECT_GT(names["solve.gauss_seidel"], 0);
  ASSERT_GT(run_ns, 0);
  EXPECT_GE(static_cast<double>(children_ns) / static_cast<double>(run_ns),
            0.95)
      << "span tree covers too little of the run: " << children_ns << " of "
      << run_ns << " ns";

  // Worker-side eval spans must parent under a batch span, never the root.
  std::set<std::uint64_t> batch_ids;
  for (const auto& r : records) {
    if (std::string(r.name) == "backend.eval_batch") batch_ids.insert(r.id);
  }
  for (const auto& r : records) {
    if (std::string(r.name) == "backend.eval") {
      EXPECT_TRUE(batch_ids.count(r.parent) == 1)
          << "backend.eval span parented outside backend.eval_batch";
    }
  }
}

TEST(Profiler, EnableRestartsEpochAndClearsRecords) {
  {
    const ProfilerGuard guard;
    const obs::Span s("t.first");
  }
  obs::Profiler::instance().enable();
  EXPECT_EQ(obs::Profiler::instance().record_count(), 0u);
  {
    const obs::Span s("t.second");
  }
  const auto records = obs::Profiler::instance().records();
  obs::Profiler::instance().disable();
  obs::Profiler::instance().clear();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_GE(records.front().start_ns, 0);
}
