// Transport hardening of the minimal HTTP server (src/net/http.*): POST
// bodies, oversized-body rejection, slow-client timeouts, 100-continue,
// custom response headers, and the two-phase stop_accepting()/stop()
// shutdown that graceful drain builds on. The telemetry-plane behaviour
// (GET scrapes, concurrent /metrics) lives in test_telemetry.cpp.
#include "net/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace net = scshare::net;

namespace {

/// Echo server used throughout: replies with the method and body so tests
/// can confirm exactly what reached the handler.
net::HttpResponse echo_handler(const net::HttpRequest& request) {
  net::HttpResponse response;
  response.body = request.method + "|" + request.path + "|" + request.body;
  return response;
}

/// Connects to 127.0.0.1:`port`; returns the fd or -1.
int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
}

/// Reads until the peer closes (or `until` appears when non-empty).
std::string recv_until(int fd, const std::string& until = {}) {
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
    if (!until.empty() && response.find(until) != std::string::npos) break;
  }
  return response;
}

/// One-shot raw exchange: send `bytes`, return everything written back.
std::string raw_request(std::uint16_t port, const std::string& bytes) {
  const int fd = connect_to(port);
  if (fd < 0) return {};
  send_all(fd, bytes);
  const std::string response = recv_until(fd);
  ::close(fd);
  return response;
}

}  // namespace

TEST(HttpPost, BodyIsDeliveredToTheHandler) {
  net::HttpServer server(net::HttpServerOptions{}, echo_handler);
  const auto result =
      net::http_request(server.port(), "POST", "/v1/x", "{\"a\": 1}");
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, "POST|/v1/x|{\"a\": 1}");
}

TEST(HttpPost, EmptyBodyPostIsServed) {
  net::HttpServer server(net::HttpServerOptions{}, echo_handler);
  const auto result = net::http_request(server.port(), "POST", "/v1/x", "");
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, "POST|/v1/x|");
}

TEST(HttpPost, OversizedBodyIsRejected413WithoutReadingIt) {
  net::HttpServerOptions options;
  options.max_body_bytes = 16;
  net::HttpServer server(options, echo_handler);
  // The server must answer from the Content-Length header alone — the body
  // here is never sent, yet the response arrives.
  const std::string head =
      "POST /v1/x HTTP/1.1\r\nHost: x\r\nContent-Length: 1000000\r\n\r\n";
  const std::string response = raw_request(server.port(), head);
  EXPECT_NE(response.find("413"), std::string::npos) << response;
}

TEST(HttpPost, ChunkedTransferEncodingIsRejected400) {
  net::HttpServer server(net::HttpServerOptions{}, echo_handler);
  const std::string response = raw_request(
      server.port(),
      "POST /v1/x HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_NE(response.find("400"), std::string::npos) << response;
  EXPECT_NE(response.find("chunked"), std::string::npos) << response;
}

TEST(HttpPost, Expect100ContinueIsHonored) {
  net::HttpServer server(net::HttpServerOptions{}, echo_handler);
  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  send_all(fd,
           "POST /v1/x HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n"
           "Expect: 100-continue\r\n\r\n");
  const std::string interim = recv_until(fd, "\r\n\r\n");
  EXPECT_NE(interim.find("100 Continue"), std::string::npos) << interim;
  send_all(fd, "hello");
  const std::string response = recv_until(fd);
  ::close(fd);
  EXPECT_NE(response.find("200"), std::string::npos) << response;
  EXPECT_NE(response.find("POST|/v1/x|hello"), std::string::npos) << response;
}

TEST(HttpTimeout, SlowClientGets408) {
  net::HttpServerOptions options;
  options.read_timeout_ms = 100;
  net::HttpServer server(options, echo_handler);
  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  // Trickle an incomplete request head and stall: the kernel receive
  // timeout must fire and the server answer 408 instead of pinning the io
  // thread forever.
  send_all(fd, "GET /metr");
  const std::string response = recv_until(fd);
  ::close(fd);
  EXPECT_NE(response.find("408"), std::string::npos) << response;
}

TEST(HttpTimeout, SlowBodyGets408) {
  net::HttpServerOptions options;
  options.read_timeout_ms = 100;
  net::HttpServer server(options, echo_handler);
  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  send_all(fd,
           "POST /v1/x HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\n"
           "only-part");
  const std::string response = recv_until(fd);
  ::close(fd);
  EXPECT_NE(response.find("408"), std::string::npos) << response;
}

TEST(HttpHeaders, ExtraResponseHeadersAreEmitted) {
  net::HttpServer server(net::HttpServerOptions{},
                         [](const net::HttpRequest&) {
                           net::HttpResponse response;
                           response.status = 429;
                           response.body = "shed\n";
                           response.headers.emplace_back("Retry-After", "1");
                           return response;
                         });
  const auto result = net::http_get(server.port(), "/");
  EXPECT_EQ(result.status, 429);
  EXPECT_NE(result.headers.find("Retry-After: 1"), std::string::npos)
      << result.headers;
}

TEST(HttpShutdown, StopAcceptingRefusesNewConnectionsButKeepsServing) {
  net::HttpServer server(net::HttpServerOptions{}, echo_handler);
  ASSERT_TRUE(server.accepting());
  const auto before = net::http_get(server.port(), "/ok");
  EXPECT_EQ(before.status, 200);

  server.stop_accepting();
  EXPECT_FALSE(server.accepting());
  EXPECT_TRUE(server.running());  // io threads still draining
  // The listener is closed: new connects are refused by the kernel.
  EXPECT_LT(connect_to(server.port()), 0);

  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(HttpShutdown, StopAloneStillPerformsBothPhases) {
  net::HttpServerOptions options;
  options.io_threads = 4;
  net::HttpServer server(options, echo_handler);
  const auto result = net::http_request(server.port(), "POST", "/x", "b");
  EXPECT_EQ(result.status, 200);
  server.stop();
  EXPECT_FALSE(server.accepting());
  EXPECT_FALSE(server.running());
  EXPECT_GE(server.requests_served(), 1u);
}

TEST(HttpConcurrency, ParallelPostsAreAllServed) {
  net::HttpServerOptions options;
  options.io_threads = 4;
  net::HttpServer server(options, echo_handler);
  constexpr int kClients = 16;
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      const auto result = net::http_request(
          server.port(), "POST", "/v1/x", "client-" + std::to_string(i));
      if (result.status == 200 &&
          result.body == "POST|/v1/x|client-" + std::to_string(i)) {
        ok.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients);
  EXPECT_GE(server.requests_served(), static_cast<std::uint64_t>(kClients));
}
