#include "market/sweep.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "federation/backend.hpp"

namespace fed = scshare::federation;
namespace mkt = scshare::market;

namespace {

fed::FederationConfig small_federation() {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 4, .lambda = 3.2, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 4, .lambda = 2.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {0, 0};
  return cfg;
}

}  // namespace

TEST(ShareGrid, EnumeratesFullGrid) {
  const auto grid = mkt::share_grid(small_federation(), 1);
  EXPECT_EQ(grid.size(), 25u);  // (4+1)^2
}

TEST(ShareGrid, StrideSkipsButKeepsEndpoints) {
  const auto grid = mkt::share_grid(small_federation(), 2);
  // values per SC: {0, 2, 4} -> 9 points.
  EXPECT_EQ(grid.size(), 9u);
  bool has_max = false;
  for (const auto& p : grid) {
    if (p[0] == 4 && p[1] == 4) has_max = true;
  }
  EXPECT_TRUE(has_max);
}

TEST(ShareGrid, InvalidStrideThrows) {
  EXPECT_THROW((void)mkt::share_grid(small_federation(), 0), scshare::Error);
}

TEST(PriceSweep, ProducesOnePointPerRatio) {
  fed::CachingBackend backend(std::make_unique<fed::DetailedBackend>());
  mkt::SweepOptions options;
  options.ratios = {0.2, 0.5, 0.8};
  options.game.method = mkt::BestResponseMethod::kExhaustive;
  const auto points =
      mkt::run_price_sweep(small_federation(), backend, options);
  ASSERT_EQ(points.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(points[i].ratio, options.ratios[i]);
    EXPECT_EQ(points[i].equilibria.size(), 3u);  // default initial points
  }
}

TEST(PriceSweep, EfficiencyInUnitInterval) {
  fed::CachingBackend backend(std::make_unique<fed::DetailedBackend>());
  mkt::SweepOptions options;
  options.ratios = {0.3, 0.7};
  options.game.method = mkt::BestResponseMethod::kExhaustive;
  const auto points =
      mkt::run_price_sweep(small_federation(), backend, options);
  for (const auto& point : points) {
    for (const auto& outcome : point.outcomes) {
      EXPECT_GE(outcome.efficiency, 0.0);
      EXPECT_LE(outcome.efficiency, 1.0);
      EXPECT_GE(outcome.welfare_opt, outcome.welfare_ne);
    }
  }
}

TEST(PriceSweep, OptimumBeatsOrMatchesEveryEquilibrium) {
  fed::CachingBackend backend(std::make_unique<fed::DetailedBackend>());
  mkt::SweepOptions options;
  options.ratios = {0.4};
  options.game.method = mkt::BestResponseMethod::kExhaustive;
  const auto points =
      mkt::run_price_sweep(small_federation(), backend, options);
  const auto& point = points[0];
  for (std::size_t f = 0; f < mkt::kAllFairness.size(); ++f) {
    for (const auto& eq : point.equilibria) {
      const double w =
          mkt::welfare(mkt::kAllFairness[f], eq.shares, eq.utilities);
      EXPECT_LE(w, point.outcomes[f].welfare_opt + 1e-9);
    }
  }
}

TEST(PriceSweep, CachePreventsGrowthAcrossRatios) {
  fed::CachingBackend backend(std::make_unique<fed::DetailedBackend>());
  mkt::SweepOptions options;
  options.ratios = {0.3};
  options.game.method = mkt::BestResponseMethod::kExhaustive;
  (void)mkt::run_price_sweep(small_federation(), backend, options);
  const auto after_first = backend.cache_size();
  // The optimum search touches the full grid, so the cache holds at most
  // (N+1)^K vectors; subsequent ratios add nothing.
  EXPECT_LE(after_first, 25u);
  options.ratios = {0.6, 0.9};
  (void)mkt::run_price_sweep(small_federation(), backend, options);
  EXPECT_EQ(backend.cache_size(), after_first);
}

TEST(PriceSweep, InvalidRatiosThrow) {
  fed::CachingBackend backend(std::make_unique<fed::DetailedBackend>());
  mkt::SweepOptions options;
  options.ratios = {};
  EXPECT_THROW(
      (void)mkt::run_price_sweep(small_federation(), backend, options),
      scshare::Error);
  options.ratios = {1.5};
  EXPECT_THROW(
      (void)mkt::run_price_sweep(small_federation(), backend, options),
      scshare::Error);
}
