#include "queueing/mmc.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace q = scshare::queueing;

TEST(Mmc, SingleServerReducesToMm1) {
  // M/M/1: Erlang C = rho, L = rho / (1 - rho), W_q = rho / (mu - lambda).
  const q::MmcParams p{.lambda = 0.6, .mu = 1.0, .servers = 1};
  EXPECT_NEAR(q::erlang_c(p), 0.6, 1e-12);
  EXPECT_NEAR(q::mean_customers(p), 0.6 / 0.4, 1e-12);
  EXPECT_NEAR(q::mean_wait(p), 0.6 / (1.0 - 0.6), 1e-12);
}

TEST(Mmc, ErlangCKnownValue) {
  // Classic tabulated value: c = 2, a = 1 (rho = 0.5): C = 1/3.
  const q::MmcParams p{.lambda = 1.0, .mu = 1.0, .servers = 2};
  EXPECT_NEAR(q::erlang_c(p), 1.0 / 3.0, 1e-12);
}

TEST(Mmc, ErlangBKnownValue) {
  // B(c=2, a=1) = (1/2) / (1 + 1 + 1/2) = 0.2.
  const q::MmcParams p{.lambda = 1.0, .mu = 1.0, .servers = 2};
  EXPECT_NEAR(q::erlang_b(p), 0.2, 1e-12);
}

TEST(Mmc, ErlangBBelowErlangC) {
  const q::MmcParams p{.lambda = 7.0, .mu = 1.0, .servers = 10};
  EXPECT_LT(q::erlang_b(p), q::erlang_c(p));
}

TEST(Mmc, StateProbabilitiesSumToOne) {
  const q::MmcParams p{.lambda = 4.0, .mu = 1.0, .servers = 6};
  double total = 0.0;
  for (int n = 0; n < 400; ++n) total += q::state_probability(p, n);
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(Mmc, MeanCustomersMatchesStateSum) {
  const q::MmcParams p{.lambda = 4.0, .mu = 1.0, .servers = 6};
  double mean = 0.0;
  for (int n = 0; n < 500; ++n) {
    mean += static_cast<double>(n) * q::state_probability(p, n);
  }
  EXPECT_NEAR(mean, q::mean_customers(p), 1e-8);
}

TEST(Mmc, WaitExceedsZeroEqualsErlangC) {
  const q::MmcParams p{.lambda = 7.0, .mu = 1.0, .servers = 10};
  EXPECT_NEAR(q::wait_exceeds(p, 0.0), q::erlang_c(p), 1e-12);
}

TEST(Mmc, WaitTailDecays) {
  const q::MmcParams p{.lambda = 7.0, .mu = 1.0, .servers = 10};
  EXPECT_GT(q::wait_exceeds(p, 0.1), q::wait_exceeds(p, 1.0));
  EXPECT_LT(q::wait_exceeds(p, 10.0), 1e-10);
}

TEST(Mmc, StableForLargeServerCounts) {
  // 100 servers at rho = 0.9: log-space evaluation must not overflow.
  const q::MmcParams p{.lambda = 90.0, .mu = 1.0, .servers = 100};
  const double c = q::erlang_c(p);
  EXPECT_GT(c, 0.0);
  EXPECT_LT(c, 1.0);
  EXPECT_NEAR(q::utilization(p), 0.9, 1e-12);
}

TEST(Mmc, OverloadedQueueRejected) {
  const q::MmcParams p{.lambda = 2.0, .mu = 1.0, .servers = 1};
  EXPECT_THROW((void)q::erlang_c(p), scshare::Error);
}

TEST(Mmc, InvalidParamsRejected) {
  EXPECT_THROW((void)q::erlang_c({.lambda = 0.0, .mu = 1.0, .servers = 1}),
               scshare::Error);
  EXPECT_THROW((void)q::erlang_c({.lambda = 1.0, .mu = 0.0, .servers = 1}),
               scshare::Error);
  EXPECT_THROW((void)q::erlang_c({.lambda = 1.0, .mu = 1.0, .servers = 0}),
               scshare::Error);
}
