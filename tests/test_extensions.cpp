// Tests for the beyond-paper extensions: phase-type service times in the
// simulator (paper Sect. VII) and the power-extended cost function
// (paper Sect. II-B future work).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "federation/backend.hpp"
#include "market/game.hpp"
#include "sim/simulator.hpp"

namespace fed = scshare::federation;
namespace mkt = scshare::market;
namespace sim = scshare::sim;

// ---------------------------------------------------------------------------
// Phase-type samplers.
// ---------------------------------------------------------------------------
TEST(PhaseType, ErlangMeanAndVariance) {
  scshare::Rng rng(1);
  const int k = 4;
  const double rate = 4.0;  // mean = k / rate = 1
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.erlang(k, rate);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.01);
  EXPECT_NEAR(var, 0.25, 0.01);  // scv = 1/k = 0.25
}

TEST(PhaseType, HyperexponentialMeanAndVariance) {
  scshare::Rng rng(2);
  const double rate = 1.0, scv = 4.0;
  double sum = 0.0, sum_sq = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.hyperexponential(rate, scv);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.02);
  EXPECT_NEAR(var, scv, 0.15);
}

TEST(PhaseType, InvalidParamsThrow) {
  scshare::Rng rng(3);
  EXPECT_THROW((void)rng.erlang(0, 1.0), scshare::Error);
  EXPECT_THROW((void)rng.hyperexponential(1.0, 1.0), scshare::Error);
}

// ---------------------------------------------------------------------------
// Service-time distribution in the simulator.
// ---------------------------------------------------------------------------
namespace {

fed::FederationConfig single_sc(double lambda) {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 10, .lambda = lambda, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {0};
  return cfg;
}

sim::ScSimStats run_with(sim::ServiceDistribution dist, double lambda) {
  sim::SimOptions o;
  o.warmup_time = 500.0;
  o.measure_time = 20000.0;
  o.seed = 21;
  o.service = dist;
  sim::Simulator s(single_sc(lambda), o);
  return s.run()[0];
}

}  // namespace

TEST(ServiceDistribution, UtilizationIndependentOfFamily) {
  // With equal means, the offered load (and hence utilization) is the same
  // for every service-time family (M/G/c insensitivity of the carried load).
  const auto exp = run_with(sim::ServiceDistribution::kExponential, 6.0);
  const auto erl = run_with(sim::ServiceDistribution::kErlang, 6.0);
  const auto hyp = run_with(sim::ServiceDistribution::kHyperExponential, 6.0);
  EXPECT_NEAR(erl.metrics.utilization, exp.metrics.utilization, 0.02);
  EXPECT_NEAR(hyp.metrics.utilization, exp.metrics.utilization, 0.03);
}

TEST(ServiceDistribution, VariabilityOrdersWaitingTimes) {
  // Low-variance services (Erlang) wait less than exponential, bursty
  // services (H2) wait more — the qualitative effect the paper warns about
  // when relaxing the exponential assumption.
  const auto erl = run_with(sim::ServiceDistribution::kErlang, 9.0);
  const auto exp = run_with(sim::ServiceDistribution::kExponential, 9.0);
  const auto hyp = run_with(sim::ServiceDistribution::kHyperExponential, 9.0);
  EXPECT_LT(erl.mean_wait, exp.mean_wait);
  EXPECT_GT(hyp.mean_wait, exp.mean_wait);
}

TEST(ServiceDistribution, InvalidOptionsThrow) {
  sim::SimOptions o;
  o.service = sim::ServiceDistribution::kErlang;
  o.erlang_shape = 0;
  EXPECT_THROW(sim::Simulator(single_sc(5.0), o), scshare::Error);
  o.service = sim::ServiceDistribution::kHyperExponential;
  o.erlang_shape = 4;
  o.hyper_scv = 0.5;
  EXPECT_THROW(sim::Simulator(single_sc(5.0), o), scshare::Error);
}

// ---------------------------------------------------------------------------
// Power-extended cost function.
// ---------------------------------------------------------------------------
TEST(PowerCost, ZeroPowerReproducesPaperCost) {
  fed::ScMetrics m;
  m.forward_rate = 1.0;
  m.borrowed = 0.5;
  m.lent = 0.2;
  m.utilization = 0.8;
  EXPECT_DOUBLE_EQ(mkt::operating_cost(m, 2.0, 1.0),
                   mkt::operating_cost(m, 2.0, 1.0, 0.0, 10));
}

TEST(PowerCost, ChargesBusyVms) {
  fed::ScMetrics m;
  m.utilization = 0.8;
  // 0.8 * 10 busy VMs at 0.1 each = 0.8.
  EXPECT_DOUBLE_EQ(mkt::operating_cost(m, 2.0, 1.0, 0.1, 10), 0.8);
}

TEST(PowerCost, BaselineIncludesPower) {
  const fed::ScConfig sc{.num_vms = 10, .lambda = 6.0, .mu = 1.0,
                         .max_wait = 0.2};
  const auto plain = mkt::compute_baseline(sc, 1.0);
  const auto powered = mkt::compute_baseline(sc, 1.0, 1e-9, 0.1);
  EXPECT_NEAR(powered.cost - plain.cost, 0.1 * plain.utilization * 10.0,
              1e-10);
}

TEST(PowerCost, NegativePowerPriceRejected) {
  mkt::PriceConfig prices;
  prices.public_price = {1.0};
  prices.federation_price = 0.5;
  prices.power_price = -0.1;
  EXPECT_THROW(prices.validate(1), scshare::Error);
}

TEST(PowerCost, ExpensivePowerDiscouragesLending) {
  // When running a VM costs more than the federation price earns, lending
  // destroys value and equilibrium shares shrink.
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 4, .lambda = 3.2, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 4, .lambda = 2.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {0, 0};

  const auto total_shares = [&](double power_price) {
    fed::CachingBackend backend(std::make_unique<fed::DetailedBackend>());
    mkt::PriceConfig prices;
    prices.public_price = {1.0, 1.0};
    prices.federation_price = 0.4;
    prices.power_price = power_price;
    mkt::GameOptions options;
    options.method = mkt::BestResponseMethod::kExhaustive;
    mkt::Game game(cfg, prices, {.gamma = 0.0}, backend, options);
    const auto result = game.run();
    int total = 0;
    for (int s : result.shares) total += s;
    return total;
  };

  EXPECT_LE(total_shares(0.8), total_shares(0.0));
}
