#include "federation/approx_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "federation/detailed_model.hpp"
#include "queueing/no_share_model.hpp"

namespace fed = scshare::federation;

namespace {

fed::FederationConfig two_sc(double l1, double l2, int s1, int s2, int n = 5) {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = n, .lambda = l1, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = n, .lambda = l2, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {s1, s2};
  return cfg;
}

}  // namespace

TEST(ApproxModel, SingleScEqualsNoShareModel) {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 10, .lambda = 8.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {4};  // irrelevant: nobody to share with
  const auto m = fed::solve_approx_target(cfg, 0);
  const auto ref = scshare::queueing::solve_no_share(
      {.num_vms = 10, .lambda = 8.0, .mu = 1.0, .max_wait = 0.2});
  EXPECT_NEAR(m.forward_prob, ref.forward_prob, 1e-8);
  EXPECT_NEAR(m.utilization, ref.utilization, 1e-8);
  EXPECT_DOUBLE_EQ(m.lent, 0.0);
  EXPECT_DOUBLE_EQ(m.borrowed, 0.0);
}

TEST(ApproxModel, NoSharesDecouplesScs) {
  const auto cfg = two_sc(4.0, 3.0, 0, 0);
  const auto m = fed::solve_approx(cfg);
  const auto ref0 = scshare::queueing::solve_no_share(
      {.num_vms = 5, .lambda = 4.0, .mu = 1.0, .max_wait = 0.2});
  EXPECT_NEAR(m[0].forward_prob, ref0.forward_prob, 1e-7);
  EXPECT_DOUBLE_EQ(m[0].lent, 0.0);
  EXPECT_DOUBLE_EQ(m[0].borrowed, 0.0);
}

TEST(ApproxModel, MetricsWithinBounds) {
  const auto cfg = two_sc(4.0, 3.5, 2, 2);
  const auto m = fed::solve_approx(cfg);
  for (const auto& sc : m) {
    EXPECT_GE(sc.lent, 0.0);
    EXPECT_LE(sc.lent, 2.0 + 1e-9);
    EXPECT_GE(sc.borrowed, 0.0);
    EXPECT_LE(sc.borrowed, 2.0 + 1e-9);  // B_i = other SC's share = 2
    EXPECT_GE(sc.forward_prob, 0.0);
    EXPECT_LE(sc.forward_prob, 1.0);
    EXPECT_GE(sc.utilization, 0.0);
    EXPECT_LE(sc.utilization, 1.0 + 1e-9);
  }
}

TEST(ApproxModel, TracksDetailedModelAtModerateLoad) {
  // Paper Sect. V-A reports ~10-20% errors, with Ī systematically
  // under-estimated (the hierarchy breaks the direct coupling between the
  // target and the other SCs). Our implementation reproduces that shape;
  // the tolerances below document the achieved accuracy at this load
  // (utilization within 2%, Ō within 10%, P̄ under-estimated by up to ~40%,
  // net flow Ō - Ī within 30% of the gross exchanged volume).
  const auto cfg = two_sc(3.5, 3.0, 2, 2);  // rho ~ 0.7 / 0.6
  const auto exact = fed::solve_detailed(cfg);
  const auto approx = fed::solve_approx(cfg);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(approx[i].forward_prob, exact[i].forward_prob,
                0.4 * std::max(exact[i].forward_prob, 0.02))
        << "sc=" << i;
    EXPECT_NEAR(approx[i].utilization, exact[i].utilization, 0.02)
        << "sc=" << i;
    EXPECT_NEAR(approx[i].borrowed, exact[i].borrowed,
                0.1 * std::max(exact[i].borrowed, 0.05))
        << "sc=" << i;
    // Lent is under-estimated by design; require the right sign and order.
    EXPECT_LT(approx[i].lent, exact[i].lent * 1.1) << "sc=" << i;
    EXPECT_GT(approx[i].lent, exact[i].lent * 0.5) << "sc=" << i;
    const double gross =
        std::max({exact[i].lent, exact[i].borrowed, 0.05});
    EXPECT_NEAR(approx[i].borrowed - approx[i].lent,
                exact[i].borrowed - exact[i].lent, 0.3 * gross)
        << "sc=" << i;
  }
}

TEST(ApproxModel, SharingReducesForwarding) {
  const auto base = fed::solve_approx_target(two_sc(4.0, 4.0, 0, 0), 0);
  const auto shared = fed::solve_approx_target(two_sc(4.0, 4.0, 3, 3), 0);
  EXPECT_LT(shared.forward_prob, base.forward_prob);
}

TEST(ApproxModel, LoadedScIsNetBorrower) {
  const auto m = fed::solve_approx(two_sc(4.8, 2.0, 3, 3));
  EXPECT_GT(m[0].borrowed, m[0].lent);
  EXPECT_GT(m[1].lent, m[1].borrowed);
}

TEST(ApproxModel, IdleScLendsMoreWhenSharingMore) {
  // SC 1 is mostly idle; increasing its share cap should increase its lent
  // volume monotonically (the overloaded SC 0 absorbs everything).
  double prev = -1.0;
  for (int share : {0, 1, 2, 3}) {
    const auto m = fed::solve_approx_target(two_sc(6.5, 1.0, 0, share, 5), 1);
    EXPECT_GE(m.lent, prev) << "share=" << share;
    prev = m.lent;
  }
  EXPECT_GT(prev, 0.3);
}

TEST(ApproxModel, ThreeScHierarchySolves) {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 5, .lambda = 3.0, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 5, .lambda = 3.7, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 5, .lambda = 4.2, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {2, 2, 2};
  fed::ApproxModel model(cfg);
  const auto m = model.solve_target(2);
  EXPECT_GT(model.last_chain_states(), 10u);
  EXPECT_GT(model.last_total_states(), model.last_chain_states());
  EXPECT_GT(m.borrowed, 0.0);
  EXPECT_GT(m.lent, 0.0);
}

TEST(ApproxModel, TargetOrderingIsUsed) {
  // Asymmetric federation: the target's metrics should reflect its own load.
  const auto cfg = two_sc(4.8, 2.0, 2, 2);
  const auto m0 = fed::solve_approx_target(cfg, 0);
  const auto m1 = fed::solve_approx_target(cfg, 1);
  EXPECT_GT(m0.forward_prob, m1.forward_prob);
  EXPECT_GT(m0.utilization, m1.utilization);
}

TEST(ApproxModel, TimeBucketingIsAccurate) {
  // Interaction-time bucketing is a performance knob; it must not change
  // results materially.
  const auto cfg = two_sc(4.0, 3.0, 2, 2);
  fed::ApproxModelOptions exact_opts;
  exact_opts.time_bucket_ratio = 0.0;  // disabled
  fed::ApproxModelOptions bucketed_opts;
  bucketed_opts.time_bucket_ratio = 1.3;
  const auto a = fed::solve_approx_target(cfg, 1, exact_opts);
  const auto b = fed::solve_approx_target(cfg, 1, bucketed_opts);
  EXPECT_NEAR(a.lent, b.lent, 0.03);
  EXPECT_NEAR(a.borrowed, b.borrowed, 0.03);
  EXPECT_NEAR(a.forward_prob, b.forward_prob, 0.01);
}

TEST(ApproxModel, InvalidTargetThrows) {
  fed::ApproxModel model(two_sc(4.0, 3.0, 1, 1));
  EXPECT_THROW((void)model.solve_target(2), scshare::Error);
}
