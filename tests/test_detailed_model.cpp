#include "federation/detailed_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/math.hpp"
#include "queueing/no_share_model.hpp"
#include "sim/simulator.hpp"

namespace fed = scshare::federation;

namespace {

fed::FederationConfig two_sc(double l1, double l2, int s1, int s2, int n = 5) {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = n, .lambda = l1, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = n, .lambda = l2, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {s1, s2};
  return cfg;
}

}  // namespace

TEST(DetailedModel, SingleScEqualsNoShareModel) {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 10, .lambda = 8.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {0};
  const auto m = fed::solve_detailed(cfg);
  const auto ref = scshare::queueing::solve_no_share(
      {.num_vms = 10, .lambda = 8.0, .mu = 1.0, .max_wait = 0.2});
  EXPECT_NEAR(m[0].forward_prob, ref.forward_prob, 1e-8);
  EXPECT_NEAR(m[0].utilization, ref.utilization, 1e-8);
  EXPECT_DOUBLE_EQ(m[0].lent, 0.0);
  EXPECT_DOUBLE_EQ(m[0].borrowed, 0.0);
}

TEST(DetailedModel, NoSharesDecouplesScs) {
  const auto cfg = two_sc(4.0, 3.0, 0, 0);
  const auto m = fed::solve_detailed(cfg);
  const auto ref0 = scshare::queueing::solve_no_share(
      {.num_vms = 5, .lambda = 4.0, .mu = 1.0, .max_wait = 0.2});
  const auto ref1 = scshare::queueing::solve_no_share(
      {.num_vms = 5, .lambda = 3.0, .mu = 1.0, .max_wait = 0.2});
  EXPECT_NEAR(m[0].forward_prob, ref0.forward_prob, 1e-7);
  EXPECT_NEAR(m[1].forward_prob, ref1.forward_prob, 1e-7);
}

TEST(DetailedModel, LendingConservation) {
  const auto cfg = two_sc(4.0, 3.5, 2, 2);
  const auto m = fed::solve_detailed(cfg);
  EXPECT_NEAR(m[0].lent + m[1].lent, m[0].borrowed + m[1].borrowed, 1e-8);
  EXPECT_GT(m[0].lent + m[1].lent, 0.0);
}

TEST(DetailedModel, SymmetricScsGetSymmetricMetrics) {
  const auto cfg = two_sc(4.0, 4.0, 2, 2);
  const auto m = fed::solve_detailed(cfg);
  EXPECT_NEAR(m[0].lent, m[1].lent, 1e-8);
  EXPECT_NEAR(m[0].borrowed, m[1].borrowed, 1e-8);
  EXPECT_NEAR(m[0].forward_prob, m[1].forward_prob, 1e-8);
  EXPECT_NEAR(m[0].utilization, m[1].utilization, 1e-8);
}

TEST(DetailedModel, SharingReducesForwarding) {
  const auto base = fed::solve_detailed(two_sc(4.0, 4.0, 0, 0));
  const auto shared = fed::solve_detailed(two_sc(4.0, 4.0, 3, 3));
  EXPECT_LT(shared[0].forward_prob, base[0].forward_prob);
  EXPECT_LT(shared[1].forward_prob, base[1].forward_prob);
}

TEST(DetailedModel, LoadedScIsNetBorrower) {
  const auto m = fed::solve_detailed(two_sc(4.8, 2.0, 3, 3));
  EXPECT_GT(m[0].borrowed, m[0].lent);
  EXPECT_GT(m[1].lent, m[1].borrowed);
}

TEST(DetailedModel, AgreesWithSimulator) {
  // Both implement the same policy, so they must agree within simulation
  // noise. This cross-validates two independent implementations.
  const auto cfg = two_sc(4.0, 3.0, 2, 2);
  const auto exact = fed::solve_detailed(cfg);

  scshare::sim::SimOptions so;
  so.warmup_time = 2000.0;
  so.measure_time = 60000.0;
  so.seed = 9;
  const auto simulated = scshare::sim::simulate_metrics(cfg, so);

  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(simulated[i].lent, exact[i].lent,
                0.05 * std::max(exact[i].lent, 0.05))
        << "sc=" << i;
    EXPECT_NEAR(simulated[i].borrowed, exact[i].borrowed,
                0.05 * std::max(exact[i].borrowed, 0.05))
        << "sc=" << i;
    EXPECT_NEAR(simulated[i].utilization, exact[i].utilization, 0.01)
        << "sc=" << i;
    EXPECT_NEAR(simulated[i].forward_prob, exact[i].forward_prob, 0.01)
        << "sc=" << i;
  }
}

TEST(DetailedModel, ThreeScFederationSolves) {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 3, .lambda = 2.0, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 3, .lambda = 2.5, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 3, .lambda = 1.5, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {1, 1, 1};
  fed::DetailedModel model(cfg);
  const auto m = model.solve();
  EXPECT_GT(model.num_states(), 100u);
  EXPECT_NEAR(m[0].lent + m[1].lent + m[2].lent,
              m[0].borrowed + m[1].borrowed + m[2].borrowed, 1e-7);
  for (const auto& sc : m) {
    EXPECT_GE(sc.forward_prob, 0.0);
    EXPECT_LE(sc.forward_prob, 1.0);
    EXPECT_LE(sc.utilization, 1.0 + 1e-9);
  }
}

TEST(DetailedModel, StateSpaceGuardThrows) {
  fed::DetailedModelOptions opts;
  opts.max_states = 10;
  EXPECT_THROW((void)fed::solve_detailed(two_sc(4.0, 4.0, 3, 3), opts),
               scshare::Error);
}
