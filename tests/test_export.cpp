// OpenMetrics sanity tests for the RunReport exporters (src/obs/export.*,
// io::make_exporter): name sanitization, unique families with one # TYPE
// line each, label escaping, cumulative histogram buckets, the trailing
// # EOF, and the json/prom factory.
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "io/config_io.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "openmetrics_check.hpp"

namespace obs = scshare::obs;
namespace io = scshare::io;

namespace {

obs::RunReport sample_report() {
  obs::RunReport report;
  report.backend = "cache(approx)";
  report.metrics.counters["market.game.rounds"] = 7;
  report.metrics.counters["federation.cache.hits"] = 42;
  report.metrics.gauges["exec.pool.threads"] = 4.0;

  obs::HistogramSnapshot hist;
  hist.bounds = {0.001, 0.01, 0.1};
  hist.counts = {2, 3, 0, 1};  // last entry = overflow bucket
  hist.count = 6;
  hist.sum = 0.5;
  hist.min = 0.0005;
  hist.max = 0.2;
  report.metrics.histograms["backend.eval.seconds"] = hist;
  return report;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

}  // namespace

TEST(Export, SanitizeMetricNamePrefixesAndReplaces) {
  EXPECT_EQ(obs::sanitize_metric_name("market.game.rounds"),
            "scshare_market_game_rounds");
  EXPECT_EQ(obs::sanitize_metric_name("a-b c"), "scshare_a_b_c");
  EXPECT_EQ(obs::sanitize_metric_name("ok_name:x"), "scshare_ok_name:x");
  // A leading digit gains a guard underscore.
  EXPECT_EQ(obs::sanitize_metric_name("2fast"), "scshare__2fast");
}

TEST(Export, EscapeLabelValueHandlesSpecials) {
  EXPECT_EQ(obs::escape_label_value("plain"), "plain");
  EXPECT_EQ(obs::escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::escape_label_value("a\nb"), "a\\nb");
}

TEST(Export, OpenMetricsDocumentIsWellFormed) {
  const obs::OpenMetricsExporter exporter;
  EXPECT_STREQ(exporter.format_name(), "prom");
  const std::string text = exporter.render(sample_report());

  // Shared checker (openmetrics_check.hpp): # EOF terminator, one # TYPE
  // per family, every sample declared. The live /metrics scrape tests apply
  // the same rules.
  const auto problems = scshare::test::check_openmetrics(text);
  EXPECT_TRUE(problems.empty()) << scshare::test::join_problems(problems);

  std::set<std::string> families;
  for (const auto& line : lines_of(text)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      families.insert(line.substr(7, line.find(' ', 7) - 7));
    }
  }
  EXPECT_TRUE(families.count("scshare_run_info") == 1);
  EXPECT_TRUE(families.count("scshare_market_game_rounds") == 1);
  EXPECT_TRUE(families.count("scshare_exec_pool_threads") == 1);
  EXPECT_TRUE(families.count("scshare_backend_eval_seconds") == 1);
}

TEST(Export, OpenMetricsCountersGetTotalSuffix) {
  const std::string text =
      obs::OpenMetricsExporter().render(sample_report());
  EXPECT_NE(text.find("scshare_market_game_rounds_total 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("scshare_federation_cache_hits_total 42\n"),
            std::string::npos);
}

TEST(Export, OpenMetricsHistogramBucketsAreCumulative) {
  const std::string text =
      obs::OpenMetricsExporter().render(sample_report());
  EXPECT_NE(
      text.find("scshare_backend_eval_seconds_bucket{le=\"0.001\"} 2\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("scshare_backend_eval_seconds_bucket{le=\"0.01\"} 5\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("scshare_backend_eval_seconds_bucket{le=\"0.1\"} 5\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("scshare_backend_eval_seconds_bucket{le=\"+Inf\"} 6\n"),
      std::string::npos);
  EXPECT_NE(text.find("scshare_backend_eval_seconds_sum 0.5"),
            std::string::npos);
  EXPECT_NE(text.find("scshare_backend_eval_seconds_count 6\n"),
            std::string::npos);
}

TEST(Export, OpenMetricsEscapesBackendLabel) {
  obs::RunReport report;
  report.backend = "weird\"name\\with\nnewline";
  const std::string text = obs::OpenMetricsExporter().render(report);
  EXPECT_NE(
      text.find(
          "scshare_run_info{backend=\"weird\\\"name\\\\with\\nnewline\"} 1"),
      std::string::npos);
}

TEST(Export, LabeledMetricNameBuildsEscapedSeriesNames) {
  EXPECT_EQ(obs::labeled_metric_name("serve.http.requests", {}),
            "serve.http.requests");
  EXPECT_EQ(obs::labeled_metric_name(
                "serve.http.requests", {{"path", "/metrics"}, {"code", "200"}}),
            "serve.http.requests{path=\"/metrics\",code=\"200\"}");
  EXPECT_EQ(obs::labeled_metric_name("x", {{"k", "a\"b"}}),
            "x{k=\"a\\\"b\"}");
}

TEST(Export, LabeledFamiliesGetExactlyOneTypeLine) {
  obs::RunReport report;
  // '_' sorts before '{' so `serve_http_requests_other` would interleave
  // between the two labeled series under naive map-order rendering; the
  // family must still be declared exactly once.
  report.metrics.counters["serve.http.requests{path=\"/metrics\"}"] = 3;
  report.metrics.counters["serve.http.requests{path=\"/slosz\"}"] = 2;
  report.metrics.counters["serve.http.requests.other"] = 1;
  report.metrics.gauges["serve.queue.depth{pool=\"jobs\"}"] = 4.0;
  const std::string text = obs::OpenMetricsExporter().render(report);

  const auto problems = scshare::test::check_openmetrics(text);
  EXPECT_TRUE(problems.empty()) << scshare::test::join_problems(problems);

  std::map<std::string, int> type_lines;
  for (const auto& line : lines_of(text)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      ++type_lines[line.substr(7, line.find(' ', 7) - 7)];
    }
  }
  EXPECT_EQ(type_lines["scshare_serve_http_requests"], 1);
  EXPECT_EQ(type_lines["scshare_serve_http_requests_other"], 1);
  EXPECT_EQ(type_lines["scshare_serve_queue_depth"], 1);
  EXPECT_NE(
      text.find("scshare_serve_http_requests_total{path=\"/metrics\"} 3\n"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("scshare_serve_http_requests_total{path=\"/slosz\"} 2\n"),
      std::string::npos);
  EXPECT_NE(text.find("scshare_serve_queue_depth{pool=\"jobs\"} 4\n"),
            std::string::npos);
}

TEST(Export, BuildInfoMetricCarriesTheBinaryIdentity) {
  const std::string text =
      obs::OpenMetricsExporter().render(sample_report());
  const obs::BuildIdentity& build = obs::build_identity();
  EXPECT_FALSE(build.version.empty());
  EXPECT_FALSE(build.compiler.empty());
  const std::string expected = "scshare_build_info{version=\"" +
                               obs::escape_label_value(build.version) +
                               "\",compiler=\"" +
                               obs::escape_label_value(build.compiler) +
                               "\",build_type=\"" +
                               obs::escape_label_value(build.build_type) +
                               "\"} 1\n";
  EXPECT_NE(text.find(expected), std::string::npos) << text;
}

TEST(Export, FactoryBuildsBothFormatsAndRejectsUnknown) {
  const auto json = io::make_exporter("json");
  const auto prom = io::make_exporter("prom");
  EXPECT_STREQ(json->format_name(), "json");
  EXPECT_STREQ(prom->format_name(), "prom");
  EXPECT_THROW((void)io::make_exporter("xml"), scshare::Error);

  // The JSON exporter renders the io::to_json(RunReport) document.
  const std::string rendered = json->render(sample_report());
  const io::Json parsed = io::Json::parse(rendered);
  EXPECT_EQ(parsed.at("backend").as_string(), "cache(approx)");
  EXPECT_EQ(
      parsed.at("metrics").at("counters").at("market.game.rounds").as_int(),
      7);
}
