#include "io/config_io.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace io = scshare::io;
namespace fed = scshare::federation;
namespace mkt = scshare::market;
namespace sim = scshare::sim;

namespace {

const char* kFederation = R"({
  "scs": [
    {"num_vms": 10, "lambda": 7.0, "share": 3},
    {"num_vms": 8, "lambda": 4.0, "mu": 2.0, "max_wait": 0.1}
  ]
})";

}  // namespace

TEST(ConfigIo, ParseFederation) {
  const auto cfg = io::parse_federation(io::Json::parse(kFederation));
  ASSERT_EQ(cfg.size(), 2u);
  EXPECT_EQ(cfg.scs[0].num_vms, 10);
  EXPECT_DOUBLE_EQ(cfg.scs[0].lambda, 7.0);
  EXPECT_DOUBLE_EQ(cfg.scs[0].mu, 1.0);        // default
  EXPECT_DOUBLE_EQ(cfg.scs[0].max_wait, 0.2);  // default
  EXPECT_EQ(cfg.shares[0], 3);
  EXPECT_EQ(cfg.shares[1], 0);  // default
  EXPECT_DOUBLE_EQ(cfg.scs[1].mu, 2.0);
}

TEST(ConfigIo, ParseFederationValidates) {
  const auto bad = io::Json::parse(
      R"({"scs": [{"num_vms": 2, "lambda": 1.0, "share": 5}]})");
  EXPECT_THROW((void)io::parse_federation(bad), scshare::Error);
}

TEST(ConfigIo, FederationRoundTrip) {
  const auto cfg = io::parse_federation(io::Json::parse(kFederation));
  const auto round = io::parse_federation(io::to_json(cfg));
  ASSERT_EQ(round.size(), cfg.size());
  for (std::size_t i = 0; i < cfg.size(); ++i) {
    EXPECT_EQ(round.scs[i].num_vms, cfg.scs[i].num_vms);
    EXPECT_DOUBLE_EQ(round.scs[i].lambda, cfg.scs[i].lambda);
    EXPECT_EQ(round.shares[i], cfg.shares[i]);
  }
}

TEST(ConfigIo, ParsePricesScalarBroadcasts) {
  const auto prices = io::parse_prices(
      io::Json::parse(R"({"public_price": 2.0, "federation_price": 1.0})"),
      3);
  ASSERT_EQ(prices.public_price.size(), 3u);
  EXPECT_DOUBLE_EQ(prices.public_price[2], 2.0);
  EXPECT_DOUBLE_EQ(prices.power_price, 0.0);
}

TEST(ConfigIo, ParsePricesPerSc) {
  const auto prices = io::parse_prices(
      io::Json::parse(
          R"({"public_price": [1.0, 2.0], "federation_price": 0.5,
              "power_price": 0.1})"),
      2);
  EXPECT_DOUBLE_EQ(prices.public_price[1], 2.0);
  EXPECT_DOUBLE_EQ(prices.power_price, 0.1);
}

TEST(ConfigIo, ParseSimOptions) {
  const auto options = io::parse_sim_options(io::Json::parse(R"({
    "measure_time": 5000, "seed": 9, "policy": "deadline",
    "service": "erlang", "erlang_shape": 3,
    "arrivals": "sinusoidal", "sin_amplitude": 0.4
  })"));
  EXPECT_DOUBLE_EQ(options.measure_time, 5000.0);
  EXPECT_EQ(options.seed, 9u);
  EXPECT_EQ(options.policy, sim::ForwardingPolicy::kDeadline);
  EXPECT_EQ(options.service, sim::ServiceDistribution::kErlang);
  EXPECT_EQ(options.erlang_shape, 3);
  EXPECT_EQ(options.arrivals, sim::ArrivalProcess::kSinusoidal);
  EXPECT_DOUBLE_EQ(options.sin_amplitude, 0.4);
}

TEST(ConfigIo, ParseSimOptionsRejectsUnknownEnums) {
  EXPECT_THROW(
      (void)io::parse_sim_options(io::Json::parse(R"({"policy": "magic"})")),
      scshare::Error);
}

TEST(ConfigIo, ParseGameOptions) {
  const auto options = io::parse_game_options(io::Json::parse(R"({
    "method": "exhaustive", "update_rule": "simultaneous",
    "max_rounds": 7, "improvement_tolerance": 0.1,
    "initial_shares": [1, 2],
    "tabu": {"distance": 5}
  })"));
  EXPECT_EQ(options.method, mkt::BestResponseMethod::kExhaustive);
  EXPECT_EQ(options.update_rule, mkt::UpdateRule::kSimultaneous);
  EXPECT_EQ(options.max_rounds, 7);
  EXPECT_DOUBLE_EQ(options.improvement_tolerance, 0.1);
  EXPECT_EQ(options.initial_shares, (std::vector<int>{1, 2}));
  EXPECT_EQ(options.tabu.distance, 5);
  EXPECT_EQ(options.tabu.tenure, mkt::TabuOptions{}.tenure);  // default kept
}

TEST(ConfigIo, MetricsSerialization) {
  fed::ScMetrics m;
  m.lent = 1.5;
  m.borrowed = 0.5;
  m.forward_rate = 0.25;
  m.forward_prob = 0.05;
  m.utilization = 0.8;
  const auto j = io::to_json(m);
  EXPECT_DOUBLE_EQ(j.at("lent").as_double(), 1.5);
  EXPECT_DOUBLE_EQ(j.at("utilization").as_double(), 0.8);
}

TEST(ConfigIo, GameResultSerialization) {
  mkt::GameResult result;
  result.shares = {2, 3};
  result.utilities = {1.0, 4.0};
  result.costs = {0.1, -0.2};
  result.rounds = 5;
  result.converged = true;
  result.trajectory = {{1, 1}, {2, 3}};
  const auto j = io::to_json(result);
  EXPECT_EQ(j.at("shares").at(1).as_int(), 3);
  EXPECT_TRUE(j.at("converged").as_bool());
  EXPECT_EQ(j.at("trajectory").size(), 2u);
  EXPECT_EQ(j.at("trajectory").at(1).at(0).as_int(), 2);
}

TEST(ConfigIo, ExampleConfigParses) {
  // The sample configuration shipped with the repo must stay valid.
  const std::string path =
      std::string(SCSHARE_SOURCE_DIR) + "/examples/configs/three_sc.json";
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << "sample config not found: " << path;
  std::string text;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  const auto doc = io::Json::parse(text);
  const auto cfg = io::parse_federation(doc.at("federation"));
  EXPECT_EQ(cfg.size(), 3u);
  (void)io::parse_prices(doc.at("prices"), cfg.size());
  (void)io::parse_sim_options(doc.at("sim"));
  (void)io::parse_game_options(doc.at("game"));
}
