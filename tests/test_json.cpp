#include "io/json.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

using scshare::io::Json;
using scshare::io::JsonArray;
using scshare::io::JsonObject;

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("42").as_double(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-3.25e2").as_double(), -325.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, IntegerAccessor) {
  EXPECT_EQ(Json::parse("7").as_int(), 7);
  EXPECT_THROW((void)Json::parse("7.5").as_int(), scshare::Error);
}

TEST(JsonParse, NestedStructures) {
  const auto j = Json::parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j.at("a").size(), 3u);
  EXPECT_DOUBLE_EQ(j.at("a").at(0).as_double(), 1.0);
  EXPECT_TRUE(j.at("a").at(2).at("b").as_bool());
  EXPECT_EQ(j.at("c").as_string(), "x");
}

TEST(JsonParse, WhitespaceTolerant) {
  const auto j = Json::parse("  {\n\t\"k\" :\r [ ] }  ");
  EXPECT_TRUE(j.at("k").is_array());
  EXPECT_EQ(j.at("k").size(), 0u);
}

TEST(JsonParse, StringEscapes) {
  const auto j = Json::parse(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(j.as_string(), "a\"b\\c\nd\teA");
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");   // é
  EXPECT_EQ(Json::parse(R"("€")").as_string(), "\xe2\x82\xac");  // €
}

TEST(JsonParse, Errors) {
  EXPECT_THROW((void)Json::parse(""), scshare::Error);
  EXPECT_THROW((void)Json::parse("{"), scshare::Error);
  EXPECT_THROW((void)Json::parse("[1,]"), scshare::Error);
  EXPECT_THROW((void)Json::parse("{\"a\" 1}"), scshare::Error);
  EXPECT_THROW((void)Json::parse("tru"), scshare::Error);
  EXPECT_THROW((void)Json::parse("\"unterminated"), scshare::Error);
  EXPECT_THROW((void)Json::parse("1 2"), scshare::Error);
  EXPECT_THROW((void)Json::parse("01a"), scshare::Error);
}

TEST(JsonAccessors, TypeMismatchThrows) {
  const auto j = Json::parse("[1]");
  EXPECT_THROW((void)j.as_object(), scshare::Error);
  EXPECT_THROW((void)j.at("k"), scshare::Error);
  EXPECT_THROW((void)j.at(5), scshare::Error);
  EXPECT_THROW((void)j.as_string(), scshare::Error);
}

TEST(JsonAccessors, GetOrDefaults) {
  const auto j = Json::parse(R"({"x": 2, "s": "v", "b": true})");
  EXPECT_DOUBLE_EQ(j.get_or("x", 9.0), 2.0);
  EXPECT_DOUBLE_EQ(j.get_or("missing", 9.0), 9.0);
  EXPECT_EQ(j.get_or("x", 9), 2);
  EXPECT_EQ(j.get_or("s", std::string("d")), "v");
  EXPECT_EQ(j.get_or("missing", std::string("d")), "d");
  EXPECT_TRUE(j.get_or("b", false));
  EXPECT_TRUE(j.get_or("missing", true));
}

TEST(JsonDump, CompactRoundTrip) {
  const std::string source =
      R"({"a":[1,2.5,true,null],"b":{"c":"x\ny"},"d":-7})";
  const auto j = Json::parse(source);
  const auto round = Json::parse(j.dump());
  EXPECT_EQ(round.at("a").at(1).as_double(), 2.5);
  EXPECT_TRUE(round.at("a").at(3).is_null());
  EXPECT_EQ(round.at("b").at("c").as_string(), "x\ny");
  EXPECT_EQ(round.at("d").as_int(), -7);
}

TEST(JsonDump, IntegersStayIntegral) {
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-3).dump(), "-3");
}

TEST(JsonDump, DoublesPreserved) {
  const double value = 0.12345678901234567;
  const auto round = Json::parse(Json(value).dump());
  EXPECT_DOUBLE_EQ(round.as_double(), value);
}

TEST(JsonDump, PrettyPrintIsParseable) {
  JsonObject o;
  o["list"] = Json(JsonArray{Json(1), Json(2)});
  o["name"] = Json("scshare");
  const auto pretty = Json(std::move(o)).dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  const auto round = Json::parse(pretty);
  EXPECT_EQ(round.at("name").as_string(), "scshare");
}

TEST(JsonDump, ControlCharactersEscaped) {
  const auto s = Json(std::string("a\x01z")).dump();
  EXPECT_EQ(s, "\"a\\u0001z\"");
  EXPECT_EQ(Json::parse(s).as_string(), std::string("a\x01z"));
}
