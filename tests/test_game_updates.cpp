// Update-rule comparison: sequential best responses must converge where
// simultaneous ones may cycle, and both must agree on true equilibria.
#include <gtest/gtest.h>

#include "federation/backend.hpp"
#include "market/game.hpp"

namespace fed = scshare::federation;
namespace mkt = scshare::market;

namespace {

fed::FederationConfig small_federation() {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 4, .lambda = 3.2, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 4, .lambda = 2.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {0, 0};
  return cfg;
}

mkt::PriceConfig prices(double ratio) {
  mkt::PriceConfig p;
  p.public_price = {1.0, 1.0};
  p.federation_price = ratio;
  return p;
}

}  // namespace

TEST(GameUpdates, SequentialConverges) {
  fed::CachingBackend backend(std::make_unique<fed::DetailedBackend>());
  mkt::GameOptions options;
  options.method = mkt::BestResponseMethod::kExhaustive;
  options.update_rule = mkt::UpdateRule::kSequential;
  mkt::Game game(small_federation(), prices(0.5), {.gamma = 0.0}, backend,
                 options);
  const auto result = game.run();
  EXPECT_TRUE(result.converged);
}

TEST(GameUpdates, SequentialFixedPointIsNashForSimultaneous) {
  // A sequential fixed point is a mutual best response, hence also a fixed
  // point of the simultaneous dynamics started there.
  fed::CachingBackend backend(std::make_unique<fed::DetailedBackend>());
  mkt::GameOptions seq;
  seq.method = mkt::BestResponseMethod::kExhaustive;
  seq.update_rule = mkt::UpdateRule::kSequential;
  mkt::Game g1(small_federation(), prices(0.5), {.gamma = 0.0}, backend, seq);
  const auto eq = g1.run();
  ASSERT_TRUE(eq.converged);

  mkt::GameOptions sim;
  sim.method = mkt::BestResponseMethod::kExhaustive;
  sim.update_rule = mkt::UpdateRule::kSimultaneous;
  sim.initial_shares = eq.shares;
  mkt::Game g2(small_federation(), prices(0.5), {.gamma = 0.0}, backend, sim);
  const auto confirm = g2.run();
  EXPECT_TRUE(confirm.converged);
  EXPECT_EQ(confirm.shares, eq.shares);
  EXPECT_EQ(confirm.rounds, 1);
}

TEST(GameUpdates, SequentialRespectsRoundBudget) {
  fed::CachingBackend backend(std::make_unique<fed::DetailedBackend>());
  mkt::GameOptions options;
  options.method = mkt::BestResponseMethod::kExhaustive;
  options.max_rounds = 1;
  mkt::Game game(small_federation(), prices(0.5), {.gamma = 0.0}, backend,
                 options);
  const auto result = game.run();
  EXPECT_EQ(result.rounds, 1);
}
