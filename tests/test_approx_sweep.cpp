#include <gtest/gtest.h>

#include "common/error.hpp"
#include "federation/approx_model.hpp"

namespace fed = scshare::federation;

namespace {

fed::FederationConfig two_sc(double l1, double l2, int s1, int s2) {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 5, .lambda = l1, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 5, .lambda = l2, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {s1, s2};
  return cfg;
}

}  // namespace

TEST(ApproxSweep, MatchesIndividualSolves) {
  auto cfg = two_sc(3.5, 3.0, 2, 2);
  const std::vector<double> lambdas = {2.0, 3.0, 4.0};

  fed::ApproxModel sweep_model(cfg);
  const auto swept = sweep_model.solve_target_sweep(1, lambdas);
  ASSERT_EQ(swept.size(), 3u);

  for (std::size_t i = 0; i < lambdas.size(); ++i) {
    auto point = cfg;
    point.scs[1].lambda = lambdas[i];
    fed::ApproxModel single(point);
    const auto ref = single.solve_target(1);
    // The sweep reuses the hierarchy (whose availability environment is
    // fitted at the configured target rate), so allow small drift.
    EXPECT_NEAR(swept[i].lent, ref.lent, 0.05) << "lambda=" << lambdas[i];
    EXPECT_NEAR(swept[i].borrowed, ref.borrowed, 0.05)
        << "lambda=" << lambdas[i];
    EXPECT_NEAR(swept[i].forward_prob, ref.forward_prob, 0.01)
        << "lambda=" << lambdas[i];
    EXPECT_NEAR(swept[i].utilization, ref.utilization, 0.01)
        << "lambda=" << lambdas[i];
  }
}

TEST(ApproxSweep, ConfiguredLambdaReproducesSolveTarget) {
  auto cfg = two_sc(3.5, 3.0, 2, 2);
  fed::ApproxModel a(cfg);
  fed::ApproxModel b(cfg);
  const auto single = a.solve_target(1);
  const auto swept = b.solve_target_sweep(1, {3.0});
  EXPECT_DOUBLE_EQ(swept[0].lent, single.lent);
  EXPECT_DOUBLE_EQ(swept[0].borrowed, single.borrowed);
  EXPECT_DOUBLE_EQ(swept[0].forward_prob, single.forward_prob);
}

TEST(ApproxSweep, MonotoneInLoad) {
  auto cfg = two_sc(3.5, 3.0, 2, 2);
  fed::ApproxModel model(cfg);
  const auto swept = model.solve_target_sweep(1, {1.0, 2.0, 3.0, 4.0, 4.5});
  for (std::size_t i = 1; i < swept.size(); ++i) {
    EXPECT_GE(swept[i].utilization, swept[i - 1].utilization);
    EXPECT_GE(swept[i].forward_prob, swept[i - 1].forward_prob - 1e-9);
  }
}

TEST(ApproxSweep, EmptyLambdasThrow) {
  fed::ApproxModel model(two_sc(3.0, 3.0, 1, 1));
  EXPECT_THROW((void)model.solve_target_sweep(0, {}), scshare::Error);
}
