// Deeper simulator policy tests: probabilistic vs deadline forwarding across
// loads, outage semantics, and interactions between policies and sharing.
#include <gtest/gtest.h>

#include "queueing/mmc.hpp"
#include "sim/simulator.hpp"

namespace fed = scshare::federation;
namespace sim = scshare::sim;

namespace {

fed::FederationConfig single_sc(double lambda, double max_wait = 0.2) {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 10, .lambda = lambda, .mu = 1.0, .max_wait = max_wait}};
  cfg.shares = {0};
  return cfg;
}

sim::ScSimStats run_policy(sim::ForwardingPolicy policy, double lambda,
                           double max_wait = 0.2) {
  sim::SimOptions o;
  o.warmup_time = 1000.0;
  o.measure_time = 30000.0;
  o.seed = 83;
  o.policy = policy;
  sim::Simulator s(single_sc(lambda, max_wait), o);
  return s.run()[0];
}

}  // namespace

// Both policies target the same SLA; their forwarding volumes must be of the
// same order across loads (the probabilistic policy is the model's estimator
// of the deadline behaviour).
class PolicyComparison : public ::testing::TestWithParam<double> {};

TEST_P(PolicyComparison, ForwardingVolumesComparable) {
  const double lambda = GetParam();
  const auto prob = run_policy(sim::ForwardingPolicy::kProbabilistic, lambda);
  const auto deadline = run_policy(sim::ForwardingPolicy::kDeadline, lambda);
  // Same order of magnitude: within a factor of 2.5 (plus an absolute floor
  // for the nearly-zero low-load regime).
  const double hi = std::max(prob.metrics.forward_prob,
                             deadline.metrics.forward_prob);
  const double lo = std::min(prob.metrics.forward_prob,
                             deadline.metrics.forward_prob);
  EXPECT_LT(hi, 2.5 * lo + 0.01) << "lambda=" << lambda;
}

INSTANTIATE_TEST_SUITE_P(Loads, PolicyComparison,
                         ::testing::Values(7.0, 8.5, 9.5));

TEST(DeadlinePolicy, ZeroSlaActsAsLossSystem) {
  const auto stats = run_policy(sim::ForwardingPolicy::kDeadline, 8.0, 0.0);
  const scshare::queueing::MmcParams mmc{.lambda = 8.0, .mu = 1.0,
                                         .servers = 10};
  EXPECT_NEAR(stats.metrics.forward_prob, scshare::queueing::erlang_b(mmc),
              0.02);
  EXPECT_DOUBLE_EQ(stats.mean_wait, 0.0);
}

TEST(DeadlinePolicy, ServedWaitsNeverExceedSla) {
  const auto stats = run_policy(sim::ForwardingPolicy::kDeadline, 9.5, 0.3);
  EXPECT_LE(stats.wait_p99, 0.3 + 1e-9);
  EXPECT_DOUBLE_EQ(stats.sla_violation_prob, 0.0);
}

TEST(Outage, NoServiceStartsDuringFullOutage) {
  // A lone SC in outage for the whole measurement window forwards
  // (deadline policy) everything that cannot be served.
  auto cfg = single_sc(5.0);
  sim::SimOptions o;
  o.warmup_time = 500.0;
  o.measure_time = 5000.0;
  o.seed = 89;
  sim::Simulator s(cfg, o);
  s.add_outage(0, 0.0, 100000.0);  // covers warmup + measurement
  const auto stats = s.run()[0];
  EXPECT_EQ(stats.served_local, 0u);
  EXPECT_EQ(stats.served_remote, 0u);
  EXPECT_GT(stats.forwarded, 0u);
  EXPECT_NEAR(stats.metrics.forward_prob, 1.0, 1e-9);
}

TEST(Outage, OutagedScStopsLending) {
  // SC 1 (the donor) goes down; during its outage SC 0 cannot borrow, so
  // SC 1's lent average over the run drops versus the no-outage run.
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 10, .lambda = 9.5, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 10, .lambda = 2.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {0, 5};
  sim::SimOptions o;
  o.warmup_time = 500.0;
  o.measure_time = 10000.0;
  o.seed = 91;

  sim::Simulator healthy(cfg, o);
  const auto base = healthy.run();

  sim::Simulator down(cfg, o);
  down.add_outage(1, 500.0, 10500.0);  // whole measurement window
  const auto out = down.run();

  EXPECT_GT(base[1].metrics.lent, 0.2);
  EXPECT_LT(out[1].metrics.lent, 0.05);
  // SC 0 forwards more without the donor.
  EXPECT_GT(out[0].metrics.forward_prob, base[0].metrics.forward_prob);
}

TEST(Policies, SeedChangesResultsSlightly) {
  // Different seeds must produce different (but statistically close) runs —
  // a guard against accidentally reusing one stream everywhere.
  auto cfg = single_sc(8.0);
  sim::SimOptions o;
  o.warmup_time = 500.0;
  o.measure_time = 10000.0;
  o.seed = 1;
  const auto a = scshare::sim::simulate_metrics(cfg, o);
  o.seed = 2;
  const auto b = scshare::sim::simulate_metrics(cfg, o);
  EXPECT_NE(a[0].forward_rate, b[0].forward_rate);
  EXPECT_NEAR(a[0].forward_prob, b[0].forward_prob, 0.02);
}
