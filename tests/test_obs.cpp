// Tests for the observability subsystem (src/obs/): metric instruments and
// registry semantics, trace sinks and the JSONL wire format, ScopedTimer, and
// the Framework::report() integration that the CLI's --metrics-out exposes.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "io/config_io.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace obs = scshare::obs;
namespace fed = scshare::federation;
namespace io = scshare::io;

namespace {

/// Restores the global trace sink on scope exit so tests cannot leak sinks
/// into each other (the sink is process-wide state).
class SinkGuard {
 public:
  explicit SinkGuard(obs::TraceSink* sink)
      : previous_(obs::set_trace_sink(sink)) {}
  ~SinkGuard() { obs::set_trace_sink(previous_); }

 private:
  obs::TraceSink* previous_;
};

fed::FederationConfig small_federation() {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 4, .lambda = 2.5, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 4, .lambda = 3.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {1, 1};
  return cfg;
}

scshare::market::PriceConfig default_prices(std::size_t n) {
  scshare::market::PriceConfig prices;
  prices.public_price.assign(n, 1.0);
  prices.federation_price = 0.5;
  return prices;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

}  // namespace

// ---- instruments ----------------------------------------------------------

TEST(Metrics, CounterAddsAndResets) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeLastWriteWins) {
  obs::Gauge g;
  g.set(1.5);
  g.set(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), -2.0);
}

TEST(Metrics, HistogramBucketsObservations) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (bounds are upper-inclusive)
  h.observe(5.0);    // bucket 1
  h.observe(1000.0); // overflow bucket
  const auto s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 0u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 1006.5);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  EXPECT_DOUBLE_EQ(s.mean(), 1006.5 / 4.0);
}

TEST(Metrics, HistogramRejectsNonIncreasingBounds) {
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Metrics, EmptyHistogramMeanIsZero) {
  obs::Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.snapshot().mean(), 0.0);
}

// ---- registry -------------------------------------------------------------

TEST(Metrics, RegistryReturnsStableHandles) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("x");
  obs::Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  registry.reset();  // zeroes, but the handle stays valid
  EXPECT_EQ(b.value(), 0u);
  a.add(1);
  EXPECT_EQ(registry.counter("x").value(), 1u);
}

TEST(Metrics, RegistrySnapshotCapturesAllInstruments) {
  obs::MetricsRegistry registry;
  registry.counter("c").add(7);
  registry.gauge("g").set(2.5);
  registry.histogram("h", {1.0}).observe(0.5);
  const auto s = registry.snapshot();
  EXPECT_EQ(s.counters.at("c"), 7u);
  EXPECT_DOUBLE_EQ(s.gauges.at("g"), 2.5);
  EXPECT_EQ(s.histograms.at("h").count, 1u);
}

TEST(Metrics, SnapshotDeltaSubtractsCountersAndHistograms) {
  obs::MetricsRegistry registry;
  registry.counter("c").add(10);
  registry.histogram("h", {1.0}).observe(0.5);
  const auto baseline = registry.snapshot();

  registry.counter("c").add(5);
  registry.counter("new").add(2);
  registry.histogram("h", {1.0}).observe(0.25);
  const auto delta = registry.snapshot().delta_from(baseline);

  EXPECT_EQ(delta.counters.at("c"), 5u);
  EXPECT_EQ(delta.counters.at("new"), 2u);  // absent from baseline: passthrough
  EXPECT_EQ(delta.histograms.at("h").count, 1u);
  EXPECT_DOUBLE_EQ(delta.histograms.at("h").sum, 0.25);
}

TEST(Metrics, RegistryIsThreadSafe) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kIncrements; ++i) {
        registry.counter("shared").add();
        // Concurrent lookup-or-create of distinct names.
        registry.counter("per_thread." + std::to_string(t)).add();
        registry.histogram("lat").observe(1e-5);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto s = registry.snapshot();
  EXPECT_EQ(s.counters.at("shared"),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(s.histograms.at("lat").count,
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

// ---- timers ---------------------------------------------------------------

TEST(Timer, ScopedTimerObservesOnDestruction) {
  obs::Histogram h({1.0, 10.0});
  {
    const obs::ScopedTimer timer(&h);
    EXPECT_TRUE(timer.active());
  }
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(Timer, ScopedTimerWithNullHistogramIsInert) {
  const obs::ScopedTimer timer(nullptr);
  EXPECT_FALSE(timer.active());
  EXPECT_DOUBLE_EQ(timer.seconds(), 0.0);
}

TEST(Timer, StopwatchAdvances) {
  const obs::Stopwatch sw;
  EXPECT_GE(sw.seconds(), 0.0);
}

// ---- trace sinks ----------------------------------------------------------

TEST(Trace, EventTypeNames) {
  EXPECT_STREQ(obs::event_type_name(obs::SolverIterationEvent{}),
               "solver_iteration");
  EXPECT_STREQ(obs::event_type_name(obs::BackendEvalEvent{}), "backend_eval");
  EXPECT_STREQ(obs::event_type_name(obs::BestResponseEvent{}),
               "best_response");
  EXPECT_STREQ(obs::event_type_name(obs::EquilibriumRoundEvent{}),
               "equilibrium_round");
  EXPECT_STREQ(obs::event_type_name(obs::LumpingStatsEvent{}),
               "lumping_stats");
  EXPECT_STREQ(obs::event_type_name(obs::ExecBatchEvent{}), "exec_batch");
}

TEST(Trace, JsonLinesParseBackAsValidJson) {
  const std::vector<obs::TraceEvent> events = {
      obs::SolverIterationEvent{"gauss_seidel", 128, 1e-13, true},
      obs::BackendEvalEvent{"approx", {3, 1, 2}, false, 0.25},
      obs::BestResponseEvent{1, 3, 2, -0.5, 0.75},
      obs::EquilibriumRoundEvent{4, {2, 2}, false},
      obs::LumpingStatsEvent{120, 36},
  };
  for (const auto& e : events) {
    const io::Json parsed = io::Json::parse(obs::to_json_line(e));
    EXPECT_EQ(parsed.at("type").as_string(),
              std::string(obs::event_type_name(e)));
  }
  const io::Json eval = io::Json::parse(obs::to_json_line(events[1]));
  EXPECT_EQ(eval.at("shares").as_array().size(), 3u);
  EXPECT_FALSE(eval.at("cache_hit").as_bool());
  EXPECT_DOUBLE_EQ(eval.at("wall_seconds").as_double(), 0.25);
}

TEST(Trace, JsonEscapesStringContent) {
  const obs::TraceEvent event =
      obs::SolverIterationEvent{"a\"b\\c\nd", 1, 0.0, false};
  const io::Json parsed = io::Json::parse(obs::to_json_line(event));
  EXPECT_EQ(parsed.at("solver").as_string(), "a\"b\\c\nd");
}

TEST(Trace, RingBufferKeepsMostRecentEvents) {
  obs::RingBufferSink sink(3);
  for (int i = 0; i < 5; ++i) {
    sink.emit(obs::EquilibriumRoundEvent{i, {}, false});
  }
  EXPECT_EQ(sink.total_emitted(), 5u);
  EXPECT_EQ(sink.dropped(), 2u);
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 3u);
  // Oldest first, and the two oldest (rounds 0, 1) were overwritten.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(std::get<obs::EquilibriumRoundEvent>(events[i]).round, i + 2);
  }
  sink.clear();
  EXPECT_EQ(sink.total_emitted(), 0u);
  EXPECT_TRUE(sink.events().empty());
}

TEST(Trace, JsonLinesSinkWritesOneObjectPerLine) {
  const std::string path = temp_path("obs_trace.jsonl");
  {
    obs::JsonLinesSink sink(path);
    sink.emit(obs::SolverIterationEvent{"power", 7, 1e-9, true});
    sink.emit(obs::LumpingStatsEvent{10, 4});
    sink.flush();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    const io::Json parsed = io::Json::parse(line);
    EXPECT_TRUE(parsed.contains("type"));
    ++lines;
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(Trace, JsonLinesSinkThrowsOnUnopenablePath) {
  EXPECT_THROW(obs::JsonLinesSink("/nonexistent-dir/trace.jsonl"),
               std::runtime_error);
}

TEST(Trace, TeeForwardsToBothSinks) {
  obs::RingBufferSink a(8), b(8);
  obs::TeeSink tee(&a, &b);
  tee.emit(obs::LumpingStatsEvent{2, 1});
  EXPECT_EQ(a.total_emitted(), 1u);
  EXPECT_EQ(b.total_emitted(), 1u);
}

TEST(Trace, SetSinkReturnsPrevious) {
  obs::RingBufferSink sink(8);
  obs::TraceSink* before = obs::trace_sink();
  obs::TraceSink* previous = obs::set_trace_sink(&sink);
  EXPECT_EQ(previous, before);
  EXPECT_EQ(obs::trace_sink(), &sink);
  obs::set_trace_sink(before);
}

// ---- trace-ring self-metrics ----------------------------------------------

TEST(Trace, RingBufferSelfMetricsCountEmitsAndDrops) {
  // The ring reports its own health through the global registry so a
  // truncated report is visible in the metrics snapshot itself.
  auto& registry = obs::MetricsRegistry::global();
  const auto baseline = registry.snapshot();

  obs::RingBufferSink sink(2);
  for (int i = 0; i < 5; ++i) {
    sink.emit(obs::EquilibriumRoundEvent{i, {}, false});
  }
  const auto delta = registry.snapshot().delta_from(baseline);
  EXPECT_EQ(delta.counters.at("obs.trace.events_total"), 5u);
  EXPECT_EQ(delta.counters.at("obs.trace.events_dropped"), 3u);
  EXPECT_EQ(sink.dropped(), 3u);
}

// ---- histogram extremes under contention ----------------------------------

TEST(Metrics, HistogramMinMaxExactUnderConcurrentObserves) {
  // Each thread t observes the distinct values t*kPerThread .. t*kPerThread +
  // kPerThread-1, so after quiescing the exact min/max/count/sum are known.
  // This exercises the CAS fold in atomic_min/atomic_max: a lost update
  // would surface as a min above 0 or a max below kTotal-1.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  constexpr std::int64_t kTotal = kThreads * kPerThread;
  obs::Histogram h({1.0, 100.0, 10000.0});
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<double>(t) * kPerThread + i);
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kTotal));
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, static_cast<double>(kTotal - 1));
  // Sum of 0..kTotal-1; every term is integral so the double sum is exact
  // well below 2^53.
  EXPECT_DOUBLE_EQ(s.sum, static_cast<double>(kTotal) * (kTotal - 1) / 2.0);
}

// ---- sinks under concurrent emitters --------------------------------------

TEST(Trace, JsonLinesSinkKeepsLinesAtomicUnderConcurrentEmit) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  const std::string path = temp_path("obs_concurrent.jsonl");
  {
    obs::JsonLinesSink sink(path);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&sink, t] {
        for (int i = 0; i < kPerThread; ++i) {
          // round encodes (thread, index) so we can check set equality below.
          sink.emit(obs::EquilibriumRoundEvent{t * 1000 + i, {t, i}, false});
        }
      });
    }
    for (auto& t : threads) t.join();
    sink.flush();
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<bool> seen(kThreads * 1000, false);
  int lines = 0;
  while (std::getline(in, line)) {
    // Interleaved writes would leave a line that no longer parses, or one
    // whose round was already consumed.
    const io::Json parsed = io::Json::parse(line);
    EXPECT_EQ(parsed.at("type").as_string(), "equilibrium_round");
    const int round = parsed.at("round").as_int();
    ASSERT_GE(round, 0);
    ASSERT_LT(round, kThreads * 1000);
    EXPECT_FALSE(seen[round]) << "duplicate line for round " << round;
    seen[round] = true;
    ++lines;
  }
  EXPECT_EQ(lines, kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      EXPECT_TRUE(seen[t * 1000 + i]);
    }
  }
  std::remove(path.c_str());
}

TEST(Trace, TeeSinkDeliversEveryEventToBothSinksUnderConcurrency) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  obs::RingBufferSink a(kThreads * kPerThread);
  obs::RingBufferSink b(kThreads * kPerThread);
  obs::TeeSink tee(&a, &b);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tee, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tee.emit(obs::EquilibriumRoundEvent{t * 1000 + i, {}, false});
      }
    });
  }
  for (auto& t : threads) t.join();

  for (obs::RingBufferSink* sink : {&a, &b}) {
    EXPECT_EQ(sink->total_emitted(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(sink->dropped(), 0u);
    std::vector<bool> seen(kThreads * 1000, false);
    for (const auto& e : sink->events()) {
      const int round = std::get<obs::EquilibriumRoundEvent>(e).round;
      ASSERT_GE(round, 0);
      ASSERT_LT(round, kThreads * 1000);
      EXPECT_FALSE(seen[round]);
      seen[round] = true;
    }
  }
}

// ---- pipeline integration -------------------------------------------------

TEST(Report, FrameworkReportCountsSolverAndCacheActivity) {
  const auto cfg = small_federation();
  scshare::Framework fw(cfg, default_prices(cfg.size()), {});

  (void)fw.metrics();  // miss (vs. the baseline solves at construction)
  (void)fw.metrics();  // hit: same sharing vector

  const obs::RunReport report = fw.report();
  EXPECT_EQ(report.backend, "approx");
  EXPECT_GT(report.metrics.counters.at(
                "markov.steady_state.gauss_seidel.solves"),
            0u);
  EXPECT_GT(report.metrics.counters.at(
                "markov.steady_state.gauss_seidel.iterations"),
            0u);
  EXPECT_GE(report.metrics.counters.at("federation.cache.hits"), 1u);
  EXPECT_GE(report.metrics.counters.at("federation.cache.misses"), 1u);

  bool saw_hit = false, saw_miss = false;
  for (const auto& e : report.events) {
    if (const auto* eval = std::get_if<obs::BackendEvalEvent>(&e)) {
      (eval->cache_hit ? saw_hit : saw_miss) = true;
    }
  }
  EXPECT_TRUE(saw_hit);
  EXPECT_TRUE(saw_miss);
  EXPECT_EQ(report.events_total,
            static_cast<std::uint64_t>(report.events.size()));
  EXPECT_EQ(report.events_dropped, 0u);
}

TEST(Report, EquilibriumEmitsRoundAndBestResponseEvents) {
  const auto cfg = small_federation();
  scshare::Framework fw(cfg, default_prices(cfg.size()), {});
  scshare::market::GameOptions game;
  game.method = scshare::market::BestResponseMethod::kExhaustive;
  game.max_rounds = 8;
  (void)fw.find_equilibrium(game);

  const obs::RunReport report = fw.report();
  int rounds = 0, responses = 0;
  for (const auto& e : report.events) {
    if (std::holds_alternative<obs::EquilibriumRoundEvent>(e)) ++rounds;
    if (std::holds_alternative<obs::BestResponseEvent>(e)) ++responses;
  }
  EXPECT_GT(rounds, 0);
  EXPECT_GT(responses, 0);
  EXPECT_EQ(report.metrics.counters.at("market.game.rounds"),
            static_cast<std::uint64_t>(rounds));
}

TEST(Report, CacheDisabledBypassesCacheCounters) {
  const auto cfg = small_federation();
  scshare::FrameworkOptions options;
  options.cache = false;
  scshare::Framework fw(cfg, default_prices(cfg.size()), {}, options);
  (void)fw.metrics();
  (void)fw.metrics();  // would be a hit if the cache were on

  const obs::RunReport report = fw.report();
  const auto hits = report.metrics.counters.find("federation.cache.hits");
  const auto misses = report.metrics.counters.find("federation.cache.misses");
  if (hits != report.metrics.counters.end()) {
    EXPECT_EQ(hits->second, 0u);
  }
  if (misses != report.metrics.counters.end()) {
    EXPECT_EQ(misses->second, 0u);
  }
  // The solvers still ran (twice: nothing memoized the second evaluate).
  EXPECT_GT(report.metrics.counters.at(
                "markov.steady_state.gauss_seidel.solves"),
            0u);
}

TEST(Report, FrameworkRestoresPreviousSinkOnDestruction) {
  obs::RingBufferSink outer(16);
  const SinkGuard guard(&outer);
  {
    const auto cfg = small_federation();
    scshare::Framework fw(cfg, default_prices(cfg.size()), {});
    EXPECT_NE(obs::trace_sink(), &outer);  // the Framework teed on top
    (void)fw.metrics();
  }
  EXPECT_EQ(obs::trace_sink(), &outer);  // restored
  EXPECT_GT(outer.total_emitted(), 0u);  // and the tee forwarded to us
}

TEST(Report, SerializesToValidJson) {
  const auto cfg = small_federation();
  scshare::Framework fw(cfg, default_prices(cfg.size()), {});
  (void)fw.metrics();

  const io::Json json = io::to_json(fw.report());
  // Round-trip through the parser: dump() must be valid JSON.
  const io::Json reparsed = io::Json::parse(json.dump(2));
  EXPECT_EQ(reparsed.at("backend").as_string(), "approx");
  const auto& counters = reparsed.at("metrics").at("counters");
  EXPECT_GT(counters.at("markov.steady_state.gauss_seidel.iterations")
                .as_double(),
            0.0);
  EXPECT_TRUE(reparsed.at("events").is_array());
  EXPECT_FALSE(reparsed.at("events").as_array().empty());
}
