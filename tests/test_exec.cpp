// Thread pool and executor contract: completion, ordered output, exception
// propagation, re-entrancy, and per-task seed independence.
#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace exec = scshare::exec;

TEST(TaskSeed, DeterministicAndDistinct) {
  // Equal inputs give equal seeds; distinct indices give distinct seeds
  // (SplitMix64 is a bijection of the combined word).
  EXPECT_EQ(exec::task_seed(42, 7), exec::task_seed(42, 7));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(exec::task_seed(42, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);
  // Different base seeds give different streams for the same index.
  EXPECT_NE(exec::task_seed(1, 0), exec::task_seed(2, 0));
}

TEST(TaskSeed, StreamsAreScheduleIndependent) {
  // The uniform drawn from a task's seed must not depend on which thread
  // ran it or in which order — only on (base, index).
  std::vector<double> serial(64);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    scshare::Rng rng(exec::task_seed(9, i));
    serial[i] = rng.next_double();
  }
  exec::ThreadPool pool(4);
  std::vector<double> parallel(64);
  pool.parallel_for(parallel.size(), [&](std::size_t i) {
    scshare::Rng rng(exec::task_seed(9, i));
    parallel[i] = rng.next_double();
  });
  EXPECT_EQ(serial, parallel);
}

TEST(SerialExecutor, RunsEveryIndexInOrder) {
  exec::SerialExecutor executor;
  EXPECT_EQ(executor.concurrency(), 1u);
  std::vector<std::size_t> order;
  executor.parallel_for(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  exec::ThreadPool pool(4);
  EXPECT_EQ(pool.concurrency(), 4u);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, OrderedOutputByIndexIsDeterministic) {
  // The canonical usage pattern: write by index, reduce in order.
  exec::ThreadPool pool(8);
  std::vector<int> out(257);
  pool.parallel_for(out.size(), [&](std::size_t i) {
    out[i] = static_cast<int>(i * i % 97);
  });
  std::vector<int> expected(out.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expected[i] = static_cast<int>(i * i % 97);
  }
  EXPECT_EQ(out, expected);
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  exec::ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, TaskExceptionRethrownAfterAllIndicesComplete) {
  exec::ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 13) throw std::runtime_error("boom");
                          completed.fetch_add(1, std::memory_order_relaxed);
                        }),
      std::runtime_error);
  // Every non-throwing index still ran (no early abandonment).
  EXPECT_EQ(completed.load(), 99);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  exec::ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(4, [&](std::size_t) {
    // A naive implementation would deadlock here: the outer tasks occupy
    // every worker while the inner loop waits for a free one.
    pool.parallel_for(8, [&](std::size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ThreadPool, SubmitDeliversResultsAndExceptions) {
  exec::ThreadPool pool(2);
  auto ok = pool.submit([] { return 6 * 7; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("nope"); });
  EXPECT_EQ(ok.get(), 42);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    exec::ThreadPool pool(1);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 16; ++i) {
      futures.push_back(pool.submit([&] {
        ran.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    // Pool destroyed with tasks potentially still queued.
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, InvalidThreadCountThrows) {
  EXPECT_THROW(exec::ThreadPool pool(0), scshare::Error);
}
