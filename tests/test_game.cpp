#include "market/game.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "federation/backend.hpp"

namespace fed = scshare::federation;
namespace mkt = scshare::market;

namespace {

/// Small, fast federation: exact detailed backend is feasible.
fed::FederationConfig small_federation() {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 4, .lambda = 3.2, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 4, .lambda = 2.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {0, 0};
  return cfg;
}

mkt::PriceConfig prices(double ratio) {
  mkt::PriceConfig p;
  p.public_price = {1.0, 1.0};
  p.federation_price = ratio;
  return p;
}

}  // namespace

TEST(Game, ConvergesOnSmallFederation) {
  fed::CachingBackend backend(std::make_unique<fed::DetailedBackend>());
  mkt::GameOptions options;
  options.method = mkt::BestResponseMethod::kExhaustive;
  mkt::Game game(small_federation(), prices(0.5), {.gamma = 0.0}, backend,
                 options);
  const auto result = game.run();
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.rounds, 0);
  ASSERT_EQ(result.shares.size(), 2u);
  for (int s : result.shares) {
    EXPECT_GE(s, 0);
    EXPECT_LE(s, 4);
  }
}

TEST(Game, EquilibriumIsMutualBestResponse) {
  fed::CachingBackend backend(std::make_unique<fed::DetailedBackend>());
  mkt::GameOptions options;
  options.method = mkt::BestResponseMethod::kExhaustive;
  mkt::Game game(small_federation(), prices(0.5), {.gamma = 0.0}, backend,
                 options);
  const auto result = game.run();
  ASSERT_TRUE(result.converged);
  // No SC can unilaterally improve: verify the Nash property directly.
  for (std::size_t i = 0; i < 2; ++i) {
    const double at_eq = game.utility_of(i, result.shares);
    for (int s = 0; s <= 4; ++s) {
      auto deviated = result.shares;
      deviated[i] = s;
      EXPECT_LE(game.utility_of(i, deviated), at_eq + 1e-12)
          << "sc=" << i << " deviation=" << s;
    }
  }
}

TEST(Game, CheapFederationPriceEncouragesSharing) {
  fed::CachingBackend backend(std::make_unique<fed::DetailedBackend>());
  mkt::GameOptions options;
  options.method = mkt::BestResponseMethod::kExhaustive;
  mkt::Game game(small_federation(), prices(0.3), {.gamma = 0.0}, backend,
                 options);
  const auto result = game.run();
  // With a cheap federation price, at least one SC shares.
  int total = 0;
  for (int s : result.shares) total += s;
  EXPECT_GT(total, 0);
}

TEST(Game, TabuAndExhaustiveAgreeOnSmallGame) {
  fed::CachingBackend backend(std::make_unique<fed::DetailedBackend>());
  mkt::GameOptions exhaustive;
  exhaustive.method = mkt::BestResponseMethod::kExhaustive;
  mkt::Game g1(small_federation(), prices(0.5), {.gamma = 0.0}, backend,
               exhaustive);
  const auto r1 = g1.run();

  mkt::GameOptions tabu;
  tabu.method = mkt::BestResponseMethod::kTabu;
  tabu.tabu.distance = 2;
  tabu.tabu.max_iterations = 16;
  mkt::Game g2(small_federation(), prices(0.5), {.gamma = 0.0}, backend, tabu);
  const auto r2 = g2.run();

  // On this small game both search methods find the same equilibrium.
  EXPECT_EQ(r1.shares, r2.shares);
}

TEST(Game, UtilitiesAndCostsReported) {
  fed::CachingBackend backend(std::make_unique<fed::DetailedBackend>());
  mkt::GameOptions options;
  options.method = mkt::BestResponseMethod::kExhaustive;
  mkt::Game game(small_federation(), prices(0.4), {.gamma = 0.0}, backend,
                 options);
  const auto result = game.run();
  ASSERT_EQ(result.utilities.size(), 2u);
  ASSERT_EQ(result.costs.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_GE(result.utilities[i], 0.0);
    // Participation must not be worse than the baseline: the utility
    // definition guarantees cost <= baseline when utility > 0.
    if (result.utilities[i] > 0.0) {
      EXPECT_LT(result.costs[i], game.baselines()[i].cost);
    }
  }
}

TEST(Game, CachingBackendAvoidsRecomputation) {
  auto inner = std::make_unique<fed::DetailedBackend>();
  fed::CachingBackend backend(std::move(inner));
  mkt::GameOptions options;
  options.method = mkt::BestResponseMethod::kExhaustive;
  mkt::Game game(small_federation(), prices(0.5), {.gamma = 0.0}, backend,
                 options);
  (void)game.run();
  const auto first_count = backend.cache_size();
  // Re-running the game hits only cached vectors.
  mkt::Game game2(small_federation(), prices(0.5), {.gamma = 0.0}, backend,
                  options);
  (void)game2.run();
  EXPECT_EQ(backend.cache_size(), first_count);
}

TEST(Game, RespectsInitialShares) {
  fed::CachingBackend backend(std::make_unique<fed::DetailedBackend>());
  mkt::GameOptions options;
  options.method = mkt::BestResponseMethod::kExhaustive;
  options.initial_shares = {4, 4};
  mkt::Game game(small_federation(), prices(0.5), {.gamma = 0.0}, backend,
                 options);
  const auto result = game.run();
  EXPECT_FALSE(result.trajectory.empty());
}

TEST(Game, InvalidInitialSharesThrow) {
  fed::CachingBackend backend(std::make_unique<fed::DetailedBackend>());
  mkt::GameOptions options;
  options.initial_shares = {5, 0};  // exceeds num_vms = 4
  EXPECT_THROW(mkt::Game(small_federation(), prices(0.5), {.gamma = 0.0},
                         backend, options),
               scshare::Error);
}

TEST(Game, Gamma1ProducesSmallerShares) {
  // Paper Fig. 7b: under UF1 SCs share very little (marginal cost reduction
  // per utilization increase shrinks with more sharing).
  fed::CachingBackend backend(std::make_unique<fed::DetailedBackend>());
  mkt::GameOptions options;
  options.method = mkt::BestResponseMethod::kExhaustive;
  mkt::Game g0(small_federation(), prices(0.5), {.gamma = 0.0}, backend,
               options);
  mkt::Game g1(small_federation(), prices(0.5), {.gamma = 1.0}, backend,
               options);
  const auto r0 = g0.run();
  const auto r1 = g1.run();
  int total0 = 0, total1 = 0;
  for (int s : r0.shares) total0 += s;
  for (int s : r1.shares) total1 += s;
  EXPECT_LE(total1, total0);
}
