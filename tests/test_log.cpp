// Structured logging + correlation tests (src/obs/log.*): wire formats
// (logfmt and JSON lines), level filtering, field rendering, correlation
// scoping, and propagation across exec::ThreadPool::parallel_for.
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/thread_pool.hpp"
#include "io/json.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"

namespace obs = scshare::obs;
namespace io = scshare::io;

namespace {

/// Redirects the global logger to a tmpfile for the test's lifetime and
/// returns everything written on destruction-less read().
class CaptureLog {
 public:
  CaptureLog() : file_(std::tmpfile()) {
    previous_ = obs::Logger::global().set_stream(file_);
    saved_level_ = obs::Logger::global().level();
    saved_format_ = obs::Logger::global().format();
  }
  ~CaptureLog() {
    obs::Logger::global().set_stream(previous_);
    obs::Logger::global().set_level(saved_level_);
    obs::Logger::global().set_format(saved_format_);
    std::fclose(file_);
  }

  std::string read() {
    std::fflush(file_);
    std::rewind(file_);
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), file_)) > 0) {
      out.append(buf, n);
    }
    return out;
  }

  std::vector<std::string> lines() {
    std::vector<std::string> result;
    const std::string text = read();
    std::size_t start = 0;
    while (start < text.size()) {
      const std::size_t eol = text.find('\n', start);
      if (eol == std::string::npos) break;
      result.push_back(text.substr(start, eol - start));
      start = eol + 1;
    }
    return result;
  }

 private:
  FILE* file_;
  FILE* previous_;
  obs::LogLevel saved_level_;
  obs::LogFormat saved_format_;
};

}  // namespace

TEST(Log, TextFormatCarriesSchemaFields) {
  CaptureLog capture;
  obs::Logger::global().set_format(obs::LogFormat::kText);
  obs::log_warn("solver", "tolerance relaxed",
                {obs::field("attempts", 2), obs::field("residual", 0.5)});
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_EQ(line.rfind("ts=", 0), 0u) << line;
  EXPECT_NE(line.find(" level=warn "), std::string::npos) << line;
  EXPECT_NE(line.find(" comp=solver "), std::string::npos) << line;
  EXPECT_NE(line.find(" msg=\"tolerance relaxed\""), std::string::npos)
      << line;
  EXPECT_NE(line.find(" attempts=2"), std::string::npos) << line;
  EXPECT_NE(line.find(" residual=0.5"), std::string::npos) << line;
  // No active correlation: no ctx field.
  EXPECT_EQ(line.find(" ctx="), std::string::npos) << line;
}

TEST(Log, JsonFormatLinesParse) {
  CaptureLog capture;
  obs::Logger::global().set_format(obs::LogFormat::kJson);
  const obs::ScopedCorrelation ctx(17);
  obs::log_error("backend", "evaluation \"failed\"",
                 {obs::field("code", "timeout"), obs::field("tier", 1)});
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  const io::Json parsed = io::Json::parse(lines[0]);
  EXPECT_EQ(parsed.at("level").as_string(), "error");
  EXPECT_EQ(parsed.at("comp").as_string(), "backend");
  EXPECT_EQ(parsed.at("msg").as_string(), "evaluation \"failed\"");
  EXPECT_EQ(parsed.at("ctx").as_int(), 17);
  EXPECT_EQ(parsed.at("code").as_string(), "timeout");
  EXPECT_EQ(parsed.at("tier").as_int(), 1);
  EXPECT_FALSE(parsed.at("ts").as_string().empty());
}

TEST(Log, LevelThresholdFilters) {
  CaptureLog capture;
  obs::Logger::global().set_level(obs::LogLevel::kWarn);
  obs::log_debug("t", "dropped debug");
  obs::log_info("t", "dropped info");
  obs::log_warn("t", "kept warn");
  obs::log_error("t", "kept error");
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("kept warn"), std::string::npos);
  EXPECT_NE(lines[1].find("kept error"), std::string::npos);
  EXPECT_FALSE(obs::Logger::global().enabled(obs::LogLevel::kInfo));
  EXPECT_TRUE(obs::Logger::global().enabled(obs::LogLevel::kError));
}

TEST(Log, ParseLogLevelRoundTripsAndRejects) {
  obs::LogLevel level = obs::LogLevel::kInfo;
  EXPECT_TRUE(obs::parse_log_level("debug", level));
  EXPECT_EQ(level, obs::LogLevel::kDebug);
  EXPECT_TRUE(obs::parse_log_level("error", level));
  EXPECT_EQ(level, obs::LogLevel::kError);
  EXPECT_FALSE(obs::parse_log_level("verbose", level));
  EXPECT_EQ(level, obs::LogLevel::kError);  // untouched on failure
  EXPECT_STREQ(obs::log_level_name(obs::LogLevel::kWarn), "warn");
}

TEST(Log, LogfmtQuotesOnlyWhenNeeded) {
  CaptureLog capture;
  obs::Logger::global().set_format(obs::LogFormat::kText);
  obs::log_info("t", "m",
                {obs::field("plain", "bare-token"),
                 obs::field("spaced", "two words"),
                 obs::field("quoted", "a\"b"), obs::field("flag", true)});
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("plain=bare-token"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("spaced=\"two words\""), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("quoted=\"a\\\"b\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("flag=true"), std::string::npos) << lines[0];
}

TEST(Correlation, ScopesNestAndRestore) {
  EXPECT_EQ(obs::current_correlation(), 0u);
  {
    const obs::ScopedCorrelation outer(5);
    EXPECT_EQ(obs::current_correlation(), 5u);
    {
      const obs::ScopedCorrelation inner(9);
      EXPECT_EQ(obs::current_correlation(), 9u);
    }
    EXPECT_EQ(obs::current_correlation(), 5u);
  }
  EXPECT_EQ(obs::current_correlation(), 0u);
}

TEST(Correlation, NextIdIsUniqueAndNonZero) {
  const obs::CorrelationId a = obs::next_correlation_id();
  const obs::CorrelationId b = obs::next_correlation_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(Correlation, PropagatesAcrossParallelFor) {
  scshare::exec::ThreadPool pool(4);
  const obs::CorrelationId id = obs::next_correlation_id();
  const obs::ScopedCorrelation scope(id);

  std::mutex mutex;
  std::set<obs::CorrelationId> seen;
  pool.parallel_for(64, [&](std::size_t) {
    const std::lock_guard<std::mutex> lock(mutex);
    seen.insert(obs::current_correlation());
  });
  // Every worker observed exactly the dispatching thread's id.
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), id);
}

TEST(Correlation, WorkersRestoreAfterParallelFor) {
  scshare::exec::ThreadPool pool(4);
  {
    const obs::ScopedCorrelation scope(obs::next_correlation_id());
    pool.parallel_for(64, [](std::size_t) {});
  }
  // With no scope active at dispatch, workers must see 0 again — the adopted
  // id from the previous dispatch may not leak.
  std::mutex mutex;
  std::set<obs::CorrelationId> seen;
  pool.parallel_for(64, [&](std::size_t) {
    const std::lock_guard<std::mutex> lock(mutex);
    seen.insert(obs::current_correlation());
  });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), 0u);
}

TEST(Correlation, TraceJsonLineStampsCtx) {
  const obs::TraceEvent event =
      obs::EquilibriumRoundEvent{3, {1, 2}, true};
  const std::string plain = obs::to_json_line(event);
  EXPECT_EQ(plain.find("\"ctx\""), std::string::npos);
  const std::string stamped = obs::to_json_line(event, 21);
  EXPECT_NE(stamped.find(",\"ctx\":21}"), std::string::npos) << stamped;
  // ctx = 0 means "no context" and is omitted.
  EXPECT_EQ(obs::to_json_line(event, 0), plain);
  // Both remain valid JSON.
  (void)io::Json::parse(stamped);
}

TEST(Log, LinesWrittenCounterAdvances) {
  CaptureLog capture;
  const std::uint64_t before = obs::Logger::global().lines_written();
  obs::log_info("t", "one");
  obs::log_info("t", "two");
  EXPECT_EQ(obs::Logger::global().lines_written(), before + 2);
}

TEST(Log, WarnRateLimitBurstsThenSuppressesWithSummary) {
  CaptureLog capture;
  obs::Logger::global().set_format(obs::LogFormat::kText);
  obs::reset_log_rate_limits();
  const std::int64_t t0 = 1'000'000'000;  // deterministic refill clock

  int emitted = 0;
  for (int i = 0; i < 20; ++i) {
    if (obs::log_warn_limited_at("lim", "hot warning", {}, t0)) ++emitted;
  }
  EXPECT_EQ(emitted, static_cast<int>(obs::kLogRateLimitBurst));

  // 3 seconds later 3 tokens have refilled; the next line that passes must
  // carry the 15 suppressed repeats as a suppressed=N field.
  EXPECT_TRUE(obs::log_warn_limited_at("lim", "hot warning", {},
                                       t0 + 3'000'000'000));
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 6u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(lines[i].find("suppressed="), std::string::npos) << lines[i];
  }
  EXPECT_NE(lines[5].find("suppressed=15"), std::string::npos) << lines[5];
}

TEST(Log, WarnRateLimitKeysAreIndependent) {
  CaptureLog capture;
  obs::reset_log_rate_limits();
  const std::int64_t t0 = 1'000'000'000;
  for (int i = 0; i < 10; ++i) {
    (void)obs::log_warn_limited_at("a", "same message", {}, t0);
  }
  // A different (component, message) key draws from its own full bucket.
  EXPECT_TRUE(obs::log_warn_limited_at("b", "same message", {}, t0));
  EXPECT_TRUE(obs::log_warn_limited_at("a", "other message", {}, t0));
}

TEST(Log, SuppressedTotalMetricAdvances) {
  CaptureLog capture;
  obs::reset_log_rate_limits();
  const std::uint64_t before = obs::log_suppressed_total();
  const std::int64_t t0 = 1'000'000'000;
  for (int i = 0; i < 8; ++i) {
    (void)obs::log_warn_limited_at("metric", "counted warning", {}, t0);
  }
  EXPECT_EQ(obs::log_suppressed_total(), before + 3);  // 8 calls - 5 burst
}
