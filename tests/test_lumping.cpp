#include "markov/lumping.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "markov/steady_state.hpp"
#include "markov/transient.hpp"
#include "queueing/mmc.hpp"

namespace mk = scshare::markov;

namespace {

/// Symmetric 4-state chain: states 1 and 2 are interchangeable.
/// 0 -> 1 (a/2), 0 -> 2 (a/2); 1 -> 3 (b), 2 -> 3 (b); 3 -> 0 (c).
mk::Ctmc diamond(double a, double b, double c) {
  mk::Ctmc chain(4);
  chain.add_rate(0, 1, a / 2.0);
  chain.add_rate(0, 2, a / 2.0);
  chain.add_rate(1, 3, b);
  chain.add_rate(2, 3, b);
  chain.add_rate(3, 0, c);
  chain.finalize();
  return chain;
}

/// Chain over the busy-set of `servers` identical servers: arrivals pick a
/// uniformly random idle server, services complete independently. Lumpable
/// by popcount onto the M/M/c loss birth-death chain.
mk::Ctmc server_subsets(int servers, double lambda, double mu) {
  const std::size_t n = 1u << servers;
  mk::Ctmc chain(n);
  for (std::size_t mask = 0; mask < n; ++mask) {
    const int busy = __builtin_popcount(static_cast<unsigned>(mask));
    const int idle = servers - busy;
    for (int s = 0; s < servers; ++s) {
      const std::size_t bit = 1u << s;
      if ((mask & bit) == 0) {
        chain.add_rate(mask, mask | bit, lambda / idle);
      } else {
        chain.add_rate(mask, mask & ~bit, mu);
      }
    }
  }
  chain.finalize();
  return chain;
}

}  // namespace

TEST(Lumping, DiamondLumpsSymmetricStates) {
  const auto chain = diamond(2.0, 3.0, 1.0);
  const auto result = mk::lump(chain);
  EXPECT_EQ(result.num_blocks, 3u);
  EXPECT_EQ(result.block_of[1], result.block_of[2]);
  EXPECT_NE(result.block_of[0], result.block_of[1]);
  EXPECT_NE(result.block_of[3], result.block_of[1]);
}

TEST(Lumping, DiamondLumpedSteadyStateMatchesAggregation) {
  const auto chain = diamond(2.0, 3.0, 1.0);
  const auto result = mk::lump(chain);
  const auto full = mk::solve_steady_state(chain);
  const auto lumped = mk::solve_steady_state(result.lumped);
  const auto aggregated = mk::aggregate_distribution(result, full.pi);
  ASSERT_EQ(aggregated.size(), lumped.pi.size());
  for (std::size_t b = 0; b < aggregated.size(); ++b) {
    EXPECT_NEAR(aggregated[b], lumped.pi[b], 1e-9) << "block " << b;
  }
}

TEST(Lumping, ServerSubsetsLumpToBirthDeath) {
  const int servers = 4;
  const auto chain = server_subsets(servers, 3.0, 1.0);
  const auto result = mk::lump(chain);
  // 2^4 = 16 states collapse to 5 busy-count levels.
  EXPECT_EQ(result.num_blocks, 5u);
  // Lumped chain equals M/M/4/4: blocking probability = Erlang-B.
  const auto lumped = mk::solve_steady_state(result.lumped);
  // Identify the all-busy block (the block of state 0b1111).
  const std::size_t full_block = result.block_of[15];
  const scshare::queueing::MmcParams mmc{.lambda = 3.0, .mu = 1.0,
                                         .servers = servers};
  EXPECT_NEAR(lumped.pi[full_block], scshare::queueing::erlang_b(mmc), 1e-9);
}

TEST(Lumping, AsymmetricChainDoesNotLump) {
  mk::Ctmc chain(3);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(0, 2, 2.0);  // asymmetric: 1 and 2 differ as targets? They
  chain.add_rate(1, 0, 3.0);  // differ through their exit rates.
  chain.add_rate(2, 0, 4.0);
  chain.finalize();
  const auto result = mk::lump(chain);
  EXPECT_EQ(result.num_blocks, 3u);
}

TEST(Lumping, InitialPartitionIsRespected) {
  // Even though 1 and 2 are symmetric, forcing different labels keeps them
  // apart (e.g., because they carry different rewards).
  const auto chain = diamond(2.0, 3.0, 1.0);
  const auto result = mk::lump(chain, {0, 1, 2, 0});
  EXPECT_NE(result.block_of[1], result.block_of[2]);
  EXPECT_EQ(result.num_blocks, 4u);  // 0 and 3 split by their dynamics
}

TEST(Lumping, PartitionSizeMismatchThrows) {
  const auto chain = diamond(1.0, 1.0, 1.0);
  EXPECT_THROW((void)mk::lump(chain, {0, 0}), scshare::Error);
}

TEST(Lumping, AggregateDistributionSumsPreserved) {
  const auto chain = server_subsets(3, 2.0, 1.0);
  const auto result = mk::lump(chain);
  const auto full = mk::solve_steady_state(chain);
  const auto aggregated = mk::aggregate_distribution(result, full.pi);
  double total = 0.0;
  for (double p : aggregated) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Lumping, RandomizedInitialPartitionsPreserveSteadyState) {
  // Whatever labels the caller insists on keeping apart, the refined lumped
  // chain must reproduce the aggregated stationary distribution exactly.
  const auto chain = server_subsets(4, 3.0, 1.0);
  const auto full = mk::solve_steady_state(chain);
  ASSERT_TRUE(full.converged);
  scshare::Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t num_labels = 1 + rng.next_below(5);
    std::vector<std::size_t> partition(chain.num_states());
    for (auto& label : partition) label = rng.next_below(num_labels);

    const auto result = mk::lump(chain, partition);
    // Refinement only splits: states sharing a block share their label.
    for (std::size_t s = 0; s < partition.size(); ++s) {
      for (std::size_t t = s + 1; t < partition.size(); ++t) {
        if (result.block_of[s] == result.block_of[t]) {
          ASSERT_EQ(partition[s], partition[t])
              << "trial " << trial << " merged labels of states " << s
              << " and " << t;
        }
      }
    }
    const auto lumped = mk::solve_steady_state(result.lumped);
    ASSERT_TRUE(lumped.converged) << "trial " << trial;
    const auto aggregated = mk::aggregate_distribution(result, full.pi);
    ASSERT_EQ(aggregated.size(), lumped.pi.size());
    for (std::size_t b = 0; b < aggregated.size(); ++b) {
      EXPECT_NEAR(aggregated[b], lumped.pi[b], 1e-9)
          << "trial " << trial << " block " << b;
    }
  }
}

TEST(Lumping, LumpedTransientMatchesAggregatedTransient) {
  const auto chain = server_subsets(3, 2.5, 1.0);
  const auto result = mk::lump(chain);

  const mk::TransientSolver full_solver(chain);
  const mk::TransientSolver lumped_solver(result.lumped);

  std::vector<double> p0_full(chain.num_states(), 0.0);
  p0_full[0] = 1.0;  // empty system
  std::vector<double> p0_lumped(result.num_blocks, 0.0);
  p0_lumped[result.block_of[0]] = 1.0;

  for (double t : {0.1, 0.5, 2.0}) {
    const auto pt_full = full_solver.evolve(p0_full, t);
    const auto pt_lumped = lumped_solver.evolve(p0_lumped, t);
    const auto aggregated = mk::aggregate_distribution(result, pt_full);
    for (std::size_t b = 0; b < aggregated.size(); ++b) {
      EXPECT_NEAR(aggregated[b], pt_lumped[b], 1e-8)
          << "t=" << t << " block=" << b;
    }
  }
}
