#include "markov/transient.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "markov/ctmc.hpp"
#include "markov/steady_state.hpp"

namespace mk = scshare::markov;

namespace {

mk::Ctmc two_state(double a, double b) {
  mk::Ctmc chain(2);
  chain.add_rate(0, 1, a);
  chain.add_rate(1, 0, b);
  chain.finalize();
  return chain;
}

/// Closed-form occupancy of state 1 at time t for the two-state chain started
/// in state 0: p1(t) = a/(a+b) * (1 - exp(-(a+b) t)).
double p1_exact(double a, double b, double t) {
  return a / (a + b) * (1.0 - std::exp(-(a + b) * t));
}

}  // namespace

TEST(Transient, ZeroTimeIsIdentity) {
  const auto chain = two_state(2.0, 1.0);
  const mk::TransientSolver solver(chain);
  const std::vector<double> p0 = {0.3, 0.7};
  const auto p = solver.evolve(p0, 0.0);
  EXPECT_DOUBLE_EQ(p[0], 0.3);
  EXPECT_DOUBLE_EQ(p[1], 0.7);
}

TEST(Transient, TwoStateClosedForm) {
  const double a = 2.0, b = 1.0;
  const auto chain = two_state(a, b);
  const mk::TransientSolver solver(chain);
  const std::vector<double> p0 = {1.0, 0.0};
  for (double t : {0.01, 0.1, 0.5, 1.0, 3.0}) {
    const auto p = solver.evolve(p0, t);
    EXPECT_NEAR(p[1], p1_exact(a, b, t), 1e-10) << "t=" << t;
    EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
  }
}

TEST(Transient, LongHorizonReachesSteadyState) {
  const auto chain = two_state(3.0, 2.0);
  const mk::TransientSolver solver(chain);
  const std::vector<double> p0 = {1.0, 0.0};
  const auto p = solver.evolve(p0, 100.0);
  const auto ss = mk::solve_steady_state(chain);
  EXPECT_NEAR(p[0], ss.pi[0], 1e-9);
  EXPECT_NEAR(p[1], ss.pi[1], 1e-9);
}

TEST(Transient, PreservesProbabilityMassOnLargerChain) {
  // Birth-death chain, arbitrary rates.
  mk::Ctmc chain(10);
  for (std::size_t q = 0; q + 1 < 10; ++q) {
    chain.add_rate(q, q + 1, 1.7);
    chain.add_rate(q + 1, q, 0.9 * static_cast<double>(q + 1));
  }
  chain.finalize();
  const mk::TransientSolver solver(chain);
  std::vector<double> p0(10, 0.0);
  p0[4] = 1.0;
  for (double t : {0.05, 0.3, 2.0}) {
    const auto p = solver.evolve(p0, t);
    double total = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-12) << "t=" << t;
  }
}

TEST(Transient, AccumulatedRewardMatchesClosedForm) {
  // Reward = 1 in state 1: expected time spent in state 1 over [0, T]
  // starting from state 0 is a/(a+b) * (T - (1 - e^{-(a+b)T}) / (a+b)).
  const double a = 2.0, b = 1.0;
  const auto chain = two_state(a, b);
  const mk::TransientSolver solver(chain);
  const std::vector<double> p0 = {1.0, 0.0};
  const std::vector<double> rewards = {0.0, 1.0};
  for (double t : {0.2, 1.0, 5.0}) {
    const double s = a + b;
    const double expected = a / s * (t - (1.0 - std::exp(-s * t)) / s);
    EXPECT_NEAR(solver.accumulated_reward(p0, rewards, t), expected, 1e-8)
        << "t=" << t;
  }
}

TEST(Transient, AccumulatedRewardZeroHorizon) {
  const auto chain = two_state(1.0, 1.0);
  const mk::TransientSolver solver(chain);
  const std::vector<double> p0 = {1.0, 0.0};
  const std::vector<double> rewards = {5.0, 7.0};
  EXPECT_DOUBLE_EQ(solver.accumulated_reward(p0, rewards, 0.0), 0.0);
}

TEST(Transient, AccumulatedConstantRewardEqualsHorizon) {
  const auto chain = two_state(1.3, 0.4);
  const mk::TransientSolver solver(chain);
  const std::vector<double> p0 = {0.5, 0.5};
  const std::vector<double> rewards = {1.0, 1.0};
  EXPECT_NEAR(solver.accumulated_reward(p0, rewards, 3.0), 3.0, 1e-8);
}

TEST(Transient, SemigroupProperty) {
  // Evolving by t then by s equals evolving by t + s.
  const auto chain = two_state(1.3, 0.8);
  const mk::TransientSolver solver(chain);
  const std::vector<double> p0 = {0.6, 0.4};
  const auto p_direct = solver.evolve(p0, 0.9);
  const auto p_half = solver.evolve(p0, 0.4);
  const auto p_chained = solver.evolve(p_half, 0.5);
  EXPECT_NEAR(p_direct[0], p_chained[0], 1e-10);
  EXPECT_NEAR(p_direct[1], p_chained[1], 1e-10);
}
