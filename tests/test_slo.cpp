// SLO-plane tests (src/obs/digest|window|slo|flight_recorder):
//  * LogBucketDigest rank accuracy (<= 1% rank error on a deterministic
//    log-uniform workload), merge equivalence, and clamping;
//  * windowed rotation under a fake clock and count monotonicity under a
//    concurrent writer/scraper hammer (the TSan target of the suite);
//  * SloPlane burn-rate accounting, the edge-triggered burn transition, and
//    the /slosz JSON schema;
//  * FlightRecorder ring bounds, dump artifacts, rate limiting, and the
//    global logger tap.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/json.hpp"
#include "obs/digest.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/slo.hpp"
#include "obs/window.hpp"

namespace obs = scshare::obs;
namespace io = scshare::io;

namespace {

constexpr std::int64_t kNs = 1'000'000'000;

/// Deterministic log-uniform latency workload over [1e-4, 10] seconds.
std::vector<double> log_uniform_workload(std::size_t n) {
  std::vector<double> values;
  values.reserve(n);
  std::uint64_t state = 42;
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u =
        static_cast<double>(state >> 11) / 9007199254740992.0;  // [0, 1)
    values.push_back(1e-4 * std::pow(10.0, 5.0 * u));
  }
  return values;
}

/// Rank error of reporting `reported` as quantile `q` of `sorted`: distance
/// from q to the closest rank (as a fraction) the reported value actually
/// occupies.
double rank_error(const std::vector<double>& sorted, double q,
                  double reported) {
  const auto lo = std::lower_bound(sorted.begin(), sorted.end(), reported);
  const auto hi = std::upper_bound(sorted.begin(), sorted.end(), reported);
  const double n = static_cast<double>(sorted.size());
  const double lo_frac = static_cast<double>(lo - sorted.begin()) / n;
  const double hi_frac = static_cast<double>(hi - sorted.begin()) / n;
  if (q < lo_frac) return lo_frac - q;
  if (q > hi_frac) return q - hi_frac;
  return 0.0;
}

}  // namespace

TEST(Digest, RankErrorStaysUnderOnePercent) {
  obs::LogBucketDigest digest;
  std::vector<double> values = log_uniform_workload(10000);
  for (double v : values) digest.add(v);
  std::sort(values.begin(), values.end());

  for (double q : {0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 0.999}) {
    const double reported = digest.quantile(q);
    EXPECT_LE(rank_error(values, q, reported), 0.01)
        << "q=" << q << " reported=" << reported;
  }
  EXPECT_EQ(digest.count(), values.size());
  EXPECT_DOUBLE_EQ(digest.min(), values.front());
  EXPECT_DOUBLE_EQ(digest.max(), values.back());
}

TEST(Digest, MergeMatchesSingleStream) {
  obs::LogBucketDigest all, left, right;
  const std::vector<double> values = log_uniform_workload(4000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    all.add(values[i]);
    (i % 2 == 0 ? left : right).add(values[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  // Sums differ only by floating-point addition order.
  EXPECT_NEAR(left.sum(), all.sum(), 1e-9 * all.sum());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(left.quantile(q), all.quantile(q)) << "q=" << q;
  }
}

TEST(Digest, MergeRejectsMismatchedGeometry) {
  obs::DigestOptions narrow;
  narrow.max_value = 1.0;
  obs::LogBucketDigest a, b{narrow};
  a.add(0.5);
  b.add(0.5);
  EXPECT_THROW(a.merge(b), std::exception);
}

TEST(Digest, ClampsOutliersAndHandlesEmpty) {
  obs::LogBucketDigest digest;
  EXPECT_TRUE(digest.empty());
  EXPECT_DOUBLE_EQ(digest.quantile(0.99), 0.0);

  digest.add(-5.0);          // negative: underflow bucket
  digest.add(1e9);           // beyond max_value: overflow bucket
  digest.add(0.25, 8);       // weighted add
  EXPECT_EQ(digest.count(), 10u);
  // Quantiles stay within the observed value range despite the clamps.
  EXPECT_GE(digest.quantile(0.0), digest.min());
  EXPECT_LE(digest.quantile(1.0), digest.max());
  EXPECT_EQ(digest.count_at_or_below(0.5), 9u);

  digest.reset();
  EXPECT_TRUE(digest.empty());
  EXPECT_EQ(digest.count_at_or_below(1.0), 0u);
}

TEST(Window, CounterRotatesEventsOutOfTheHorizon) {
  obs::WindowOptions options;  // 31 x 10s
  obs::WindowedCounter counter(options);
  const std::int64_t t0 = 5 * kNs;  // middle of slot 0
  counter.add_at(5, t0);
  EXPECT_EQ(counter.sum_at(10, t0), 5u);
  // Two slots later the event has left the 10s horizon but not the 5m one.
  EXPECT_EQ(counter.sum_at(10, t0 + 20 * kNs), 0u);
  EXPECT_EQ(counter.sum_at(300, t0 + 20 * kNs), 5u);
  // Once the ring wraps past slot 0 the event is gone everywhere.
  EXPECT_EQ(counter.sum_at(300, t0 + 400 * kNs), 0u);
}

TEST(Window, HistogramSnapshotsMergeTrailingSlots) {
  obs::WindowedHistogram histogram{obs::WindowOptions{}};
  const std::int64_t t0 = 5 * kNs;
  histogram.record_at(0.010, t0);
  histogram.record_at(0.020, t0 + 30 * kNs);   // slot 3
  histogram.record_at(0.040, t0 + 60 * kNs);   // slot 6

  // At t0+60s the 10s window sees only the newest sample...
  EXPECT_EQ(histogram.snapshot_at(10, t0 + 60 * kNs).count(), 1u);
  // ...the 1m window all three...
  const obs::LogBucketDigest minute = histogram.snapshot_at(60, t0 + 60 * kNs);
  EXPECT_EQ(minute.count(), 3u);
  EXPECT_DOUBLE_EQ(minute.max(), 0.040);
  // ...and after five minutes of silence everything ages out.
  EXPECT_TRUE(histogram.snapshot_at(300, t0 + 700 * kNs).empty());
}

TEST(Window, RejectsDegenerateOptions) {
  obs::WindowOptions bad;
  bad.slot_seconds = 0;
  EXPECT_THROW(obs::WindowedCounter{bad}, std::exception);
  bad.slot_seconds = 10;
  bad.slots = 1;
  EXPECT_THROW(obs::WindowedHistogram{bad}, std::exception);
}

// The TSan target: writers and scrapers hammer one instrument at a pinned
// clock (no rotation), and within a fixed slot every scraper must observe
// non-decreasing counts. Run under -DSCSHARE_SANITIZE=thread this asserts
// the rotation/observation locking is race-free.
TEST(Window, ConcurrentScrapeHammerSeesMonotoneCounts) {
  obs::WindowedCounter counter{obs::WindowOptions{}};
  obs::WindowedHistogram histogram{obs::WindowOptions{}};
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2000;
  const std::int64_t now = 123 * kNs;

  std::atomic<bool> stop{false};
  std::atomic<bool> monotone{true};
  std::vector<std::thread> scrapers;
  for (int s = 0; s < 2; ++s) {
    scrapers.emplace_back([&] {
      std::uint64_t last_count = 0;
      std::uint64_t last_samples = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t count = counter.sum_at(60, now);
        const std::uint64_t samples = histogram.snapshot_at(60, now).count();
        if (count < last_count || samples < last_samples) {
          monotone.store(false, std::memory_order_release);
          return;
        }
        last_count = count;
        last_samples = samples;
      }
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerWriter; ++i) {
        counter.add_at(1, now);
        histogram.record_at(0.001 * static_cast<double>(i % 100 + 1), now);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : scrapers) t.join();

  EXPECT_TRUE(monotone.load());
  EXPECT_EQ(counter.sum_at(60, now),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(histogram.snapshot_at(60, now).count(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
}

TEST(Slo, BurnRateEdgeTriggersExactlyOnceAndClears) {
  obs::SloPlane plane;
  obs::SloObjectives objectives;
  objectives.latency_ms = 100.0;
  objectives.availability = 0.99;
  objectives.burn_threshold = 2.0;
  plane.set_objectives(objectives);

  const std::int64_t t0 = 1000 * kNs;
  for (int i = 0; i < 98; ++i) {
    EXPECT_FALSE(plane.record_at(obs::RequestOutcome::kOk, 0.010, t0));
  }
  EXPECT_FALSE(plane.burning());
  // burn = 100k/(98+k) for k errors: crosses 2.0 at exactly k = 2.
  EXPECT_FALSE(plane.record_at(obs::RequestOutcome::kError, -1.0, t0));
  EXPECT_TRUE(plane.record_at(obs::RequestOutcome::kError, -1.0, t0));
  EXPECT_TRUE(plane.burning());
  // Already burning: no second edge.
  EXPECT_FALSE(plane.record_at(obs::RequestOutcome::kError, -1.0, t0));
  EXPECT_TRUE(plane.burning());

  // 20 seconds later the bad requests have left the fast window; the next
  // healthy record clears the burning latch.
  EXPECT_FALSE(
      plane.record_at(obs::RequestOutcome::kOk, 0.010, t0 + 20 * kNs));
  EXPECT_FALSE(plane.burning());
}

TEST(Slo, LatencyViolationsBurnBudgetWithoutErrors) {
  obs::SloPlane plane;
  obs::SloObjectives objectives;
  objectives.latency_ms = 100.0;
  objectives.availability = 0.90;
  plane.set_objectives(objectives);

  const std::int64_t t0 = 1000 * kNs;
  // Half the ok requests violate the 100ms objective.
  for (int i = 0; i < 10; ++i) {
    (void)plane.record_at(obs::RequestOutcome::kOk, i % 2 == 0 ? 0.050 : 0.500,
                          t0);
  }
  // availability = 5/10; burn = 0.5 / 0.1 = 5.
  EXPECT_NEAR(plane.burn_rate(10, t0), 5.0, 1e-12);
}

TEST(Slo, RenderSloszIsWellFormedAndAccountsOutcomes) {
  obs::SloPlane plane;
  obs::SloObjectives objectives;
  objectives.latency_ms = 100.0;
  objectives.availability = 0.90;
  plane.set_objectives(objectives);

  const std::int64_t t0 = 1000 * kNs;
  (void)plane.record_at(obs::RequestOutcome::kOk, 0.010, t0);
  (void)plane.record_at(obs::RequestOutcome::kOk, 0.020, t0);
  (void)plane.record_at(obs::RequestOutcome::kOk, 0.500, t0);  // violation
  (void)plane.record_at(obs::RequestOutcome::kError, -1.0, t0);
  (void)plane.record_at(obs::RequestOutcome::kShed, -1.0, t0);
  (void)plane.record_at(obs::RequestOutcome::kDeadlineExceeded, 1.0, t0);

  const io::Json doc = io::Json::parse(plane.render_slosz_at(t0));
  EXPECT_DOUBLE_EQ(doc.at("objectives").at("latency_ms").as_double(), 100.0);
  EXPECT_DOUBLE_EQ(doc.at("objectives").at("availability").as_double(), 0.90);

  const auto& windows = doc.at("windows").as_array();
  ASSERT_EQ(windows.size(), 3u);
  for (const io::Json& window : windows) {
    const io::Json& outcomes = window.at("outcomes");
    EXPECT_EQ(outcomes.at("ok").as_int(), 3);
    EXPECT_EQ(outcomes.at("error").as_int(), 1);
    EXPECT_EQ(outcomes.at("shed").as_int(), 1);
    EXPECT_EQ(outcomes.at("deadline_exceeded").as_int(), 1);
    EXPECT_EQ(outcomes.at("cancelled").as_int(), 0);
    EXPECT_EQ(window.at("requests").as_int(), 6);
    EXPECT_EQ(window.at("slo_latency_violations").as_int(), 1);

    // 4 latency samples (shed/error carried none); percentiles monotone.
    const io::Json& latency = window.at("latency_ms");
    ASSERT_FALSE(latency.is_null());
    EXPECT_EQ(latency.at("samples").as_int(), 4);
    const double p50 = latency.at("p50").as_double();
    const double p95 = latency.at("p95").as_double();
    const double p999 = latency.at("p999").as_double();
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p999);
    EXPECT_LE(p999, latency.at("max").as_double() * (1 + 1e-9));

    // good = ok - violations = 2 of 6; burn = (1 - 1/3) / 0.1.
    EXPECT_NEAR(window.at("availability").as_double(), 2.0 / 6.0, 1e-6);
    EXPECT_NEAR(window.at("error_budget_burn").as_double(),
                (1.0 - 2.0 / 6.0) / 0.1, 1e-3);
  }
}

TEST(Slo, NoObjectivesMeansNullAvailabilityAndNoEdges) {
  obs::SloPlane plane;  // objectives left unset
  const std::int64_t t0 = 1000 * kNs;
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(plane.record_at(obs::RequestOutcome::kError, -1.0, t0));
  }
  EXPECT_FALSE(plane.burning());
  EXPECT_LT(plane.burn_rate(10, t0), 0.0);

  const io::Json doc = io::Json::parse(plane.render_slosz_at(t0));
  EXPECT_TRUE(doc.at("objectives").at("availability").is_null());
  for (const io::Json& window : doc.at("windows").as_array()) {
    EXPECT_TRUE(window.at("availability").is_null());
    EXPECT_TRUE(window.at("error_budget_burn").is_null());
  }
}

TEST(Flight, RingKeepsOnlyTheMostRecentRecords) {
  obs::FlightRecorderOptions options;
  options.capacity = 4;
  obs::FlightRecorder recorder(options);
  for (int i = 0; i < 10; ++i) {
    recorder.note_event("e" + std::to_string(i), "detail");
  }
  const io::Json doc = io::Json::parse(recorder.render_debugz());
  EXPECT_EQ(doc.at("capacity").as_int(), 4);
  EXPECT_EQ(doc.at("records_held").as_int(), 4);
  const auto& records = doc.at("records").as_array();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().at("name").as_string(), "e6");  // oldest kept
  EXPECT_EQ(records.back().at("name").as_string(), "e9");   // newest last
}

TEST(Flight, TriggerWritesArtifactAndRendersLastDump) {
  obs::FlightRecorderOptions options;
  options.artifact_dir = testing::TempDir();
  obs::FlightRecorder recorder(options);
  recorder.note_event("job.admitted", "job-1");
  recorder.note_span("serve.job", 12.5);
  recorder.note_log(obs::LogLevel::kWarn, "something shaped like a log line");

  const std::string document = recorder.trigger("deadline_exceeded", "job-1");
  ASSERT_FALSE(document.empty());
  const io::Json parsed = io::Json::parse(document);
  EXPECT_EQ(parsed.at("reason").as_string(), "deadline_exceeded");
  EXPECT_EQ(parsed.at("detail").as_string(), "job-1");
  EXPECT_EQ(parsed.at("seq").as_int(), 1);
  ASSERT_EQ(parsed.at("records").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(
      parsed.at("records").as_array()[1].at("duration_ms").as_double(), 12.5);

  EXPECT_EQ(recorder.dumps(), 1u);
  const obs::FlightRecorder::DumpInfo last = recorder.last_dump();
  EXPECT_EQ(last.seq, 1u);
  EXPECT_EQ(last.reason, "deadline_exceeded");
  ASSERT_FALSE(last.path.empty());

  // The artifact on disk is the same document.
  std::ifstream in(last.path);
  ASSERT_TRUE(in.good()) << last.path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), document);
  std::remove(last.path.c_str());
}

TEST(Flight, RepeatTriggersInsideTheIntervalAreSuppressed) {
  obs::FlightRecorderOptions options;
  options.min_interval_ms = 1000;
  obs::FlightRecorder recorder(options);
  recorder.note_event("e", "d");
  const std::int64_t t0 = 50 * kNs;
  EXPECT_FALSE(recorder.trigger_at("burn", "", t0).empty());
  EXPECT_TRUE(recorder.trigger_at("burn", "", t0 + kNs / 2).empty());
  EXPECT_FALSE(recorder.trigger_at("burn", "", t0 + 2 * kNs).empty());
  EXPECT_EQ(recorder.dumps(), 2u);
}

TEST(Flight, ConfigureShrinksRingKeepingNewest) {
  obs::FlightRecorder recorder;
  for (int i = 0; i < 6; ++i) {
    recorder.note_event("e" + std::to_string(i), "");
  }
  obs::FlightRecorderOptions smaller;
  smaller.capacity = 3;
  recorder.configure(smaller);
  const io::Json doc = io::Json::parse(recorder.render_debugz());
  EXPECT_EQ(doc.at("records_held").as_int(), 3);
  const auto& records = doc.at("records").as_array();
  EXPECT_EQ(records.front().at("name").as_string(), "e3");
  EXPECT_EQ(records.back().at("name").as_string(), "e5");
}

TEST(Flight, GlobalRecorderTapsEveryEmittedLogLine) {
  // Redirect the logger sink so the test stays quiet; the tap fires on emit
  // regardless of the sink.
  FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  FILE* previous = obs::Logger::global().set_stream(sink);
  obs::log_warn("flighttap", "unique-flight-marker-5309");
  obs::Logger::global().set_stream(previous);
  std::fclose(sink);

  const std::string debugz = obs::FlightRecorder::global().render_debugz();
  EXPECT_NE(debugz.find("unique-flight-marker-5309"), std::string::npos);
}
