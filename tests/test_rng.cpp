#include "common/rng.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

using scshare::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, DoublesHaveCorrectMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(5);
  std::array<int, 5> counts{};
  for (int i = 0; i < 5000; ++i) ++counts[rng.next_below(5)];
  for (int c : counts) EXPECT_GT(c, 800);  // ~1000 expected each
}

TEST(Rng, NextBelowRejectsZero) {
  Rng rng(1);
  EXPECT_THROW((void)rng.next_below(0), scshare::Error);
}

TEST(Rng, ExponentialHasCorrectMean) {
  Rng rng(13);
  const double rate = 2.5;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW((void)rng.exponential(0.0), scshare::Error);
  EXPECT_THROW((void)rng.exponential(-1.0), scshare::Error);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}
