#include "federation/backend.hpp"

#include <gtest/gtest.h>

namespace fed = scshare::federation;

namespace {

fed::FederationConfig small() {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 4, .lambda = 3.0, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 4, .lambda = 2.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {2, 2};
  return cfg;
}

/// One-element-batch helper: unwraps the EvalResult, throwing on failure.
fed::FederationMetrics eval_one(fed::PerformanceBackend& backend,
                                const fed::FederationConfig& config) {
  fed::EvalRequest request;
  request.config = config;
  auto results = backend.evaluate_batch({&request, 1});
  if (!results.front().ok) throw results.front().to_error();
  return std::move(results.front().metrics);
}

/// Counts evaluations so caching behaviour is observable.
class CountingBackend final : public fed::ComputeBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "counting"; }
  int calls = 0;

 protected:
  fed::FederationMetrics compute(const fed::FederationConfig& config) override {
    ++calls;
    fed::FederationMetrics m(config.size());
    for (std::size_t i = 0; i < config.size(); ++i) {
      m[i].lent = static_cast<double>(config.shares[i]);
    }
    return m;
  }
};

}  // namespace

TEST(Backends, Names) {
  EXPECT_EQ(fed::ApproxBackend().name(), "approx");
  EXPECT_EQ(fed::DetailedBackend().name(), "detailed");
  EXPECT_EQ(fed::SimulationBackend().name(), "simulation");
}

TEST(Backends, CachingForwardsName) {
  fed::CachingBackend backend(std::make_unique<fed::DetailedBackend>());
  EXPECT_EQ(backend.name(), "detailed");
}

TEST(Backends, CachingMemoizesBySharingVector) {
  auto counting = std::make_unique<CountingBackend>();
  auto* raw = counting.get();
  fed::CachingBackend backend(std::move(counting));

  auto cfg = small();
  (void)eval_one(backend, cfg);
  (void)eval_one(backend, cfg);
  EXPECT_EQ(raw->calls, 1);

  cfg.shares = {1, 2};
  (void)eval_one(backend, cfg);
  EXPECT_EQ(raw->calls, 2);
  EXPECT_EQ(backend.cache_size(), 2u);

  cfg.shares = {2, 2};
  const auto m = eval_one(backend, cfg);
  EXPECT_EQ(raw->calls, 2);  // cache hit
  EXPECT_DOUBLE_EQ(m[0].lent, 2.0);
}

TEST(Backends, CachingAccountsHitsAndMisses) {
  auto counting = std::make_unique<CountingBackend>();
  fed::CachingBackend backend(std::move(counting));

  auto cfg = small();
  (void)eval_one(backend, cfg);  // miss
  (void)eval_one(backend, cfg);  // hit
  (void)eval_one(backend, cfg);  // hit
  cfg.shares = {1, 2};
  (void)eval_one(backend, cfg);  // miss

  EXPECT_EQ(backend.hits(), 2u);
  EXPECT_EQ(backend.misses(), 2u);
  EXPECT_EQ(backend.evaluations(), 2u);
  EXPECT_EQ(backend.evictions(), 0u);
}

TEST(Backends, CachingEvictsFifoWhenBounded) {
  auto counting = std::make_unique<CountingBackend>();
  auto* raw = counting.get();
  fed::CachingBackend backend(std::move(counting), /*max_entries=*/2);

  auto cfg = small();
  cfg.shares = {2, 2};
  (void)eval_one(backend, cfg);  // miss: cache {2,2}
  cfg.shares = {1, 2};
  (void)eval_one(backend, cfg);  // miss: cache {2,2} {1,2}
  cfg.shares = {0, 2};
  (void)eval_one(backend, cfg);  // miss: evicts oldest {2,2}
  EXPECT_EQ(backend.evictions(), 1u);
  EXPECT_EQ(backend.cache_size(), 2u);

  cfg.shares = {2, 2};
  (void)eval_one(backend, cfg);  // evicted above, so this is a miss again
  EXPECT_EQ(raw->calls, 4);
  EXPECT_EQ(backend.evictions(), 2u);
  EXPECT_EQ(backend.cache_size(), 2u);

  cfg.shares = {0, 2};
  (void)eval_one(backend, cfg);  // still resident: a hit, no eviction
  EXPECT_EQ(raw->calls, 4);
  EXPECT_EQ(backend.hits(), 1u);
}

TEST(Backends, DetailedAndApproxAgreeOnDecoupledFederation) {
  auto cfg = small();
  cfg.shares = {0, 0};  // no interaction: both must be exact
  fed::DetailedBackend detailed;
  fed::ApproxBackend approx;
  const auto d = eval_one(detailed, cfg);
  const auto a = eval_one(approx, cfg);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(d[i].forward_prob, a[i].forward_prob, 1e-7);
    EXPECT_NEAR(d[i].utilization, a[i].utilization, 1e-7);
  }
}

TEST(Backends, SimulationBackendUsesOptions) {
  scshare::sim::SimOptions so;
  so.warmup_time = 100.0;
  so.measure_time = 2000.0;
  so.seed = 5;
  fed::SimulationBackend backend(so);
  const auto m = eval_one(backend, small());
  EXPECT_GT(m[0].utilization, 0.3);
}
