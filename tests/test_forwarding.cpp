#include "queueing/forwarding.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/math.hpp"

namespace q = scshare::queueing;

TEST(Forwarding, ImmediateServiceNeverForwards) {
  for (int qn = 0; qn < 10; ++qn) {
    EXPECT_DOUBLE_EQ(q::prob_no_forward(qn, 10, 1.0, 0.2), 1.0) << "q=" << qn;
  }
}

TEST(Forwarding, MatchesPoissonTail) {
  // q = N + 2, so 3 departures must occur within Q at rate N mu.
  const int n = 10;
  const double mu = 1.0, Q = 0.5;
  const double expected = scshare::math::poisson_sf(3, n * mu * Q);
  EXPECT_NEAR(q::prob_no_forward(n + 2, n, mu, Q), expected, 1e-12);
}

TEST(Forwarding, DecreasesWithQueueLength) {
  double prev = 1.0;
  for (int qn = 10; qn < 40; ++qn) {
    const double p = q::prob_no_forward(qn, 10, 1.0, 0.2);
    EXPECT_LE(p, prev) << "q=" << qn;
    prev = p;
  }
  EXPECT_LT(prev, 1e-9);
}

TEST(Forwarding, IncreasesWithSlaBound) {
  const double tight = q::prob_no_forward(15, 10, 1.0, 0.1);
  const double loose = q::prob_no_forward(15, 10, 1.0, 1.0);
  EXPECT_LT(tight, loose);
}

TEST(Forwarding, IncreasesWithServers) {
  // Same backlog, more servers -> faster drain -> higher admission.
  const double few = q::prob_no_forward(15, 10, 1.0, 0.2);
  const double many = q::prob_no_forward(15, 14, 1.0, 0.2);
  EXPECT_LT(few, many);
}

TEST(Forwarding, ZeroSlaMeansLossSystem) {
  // Q = 0: any request that cannot start immediately is forwarded.
  EXPECT_DOUBLE_EQ(q::prob_no_forward(10, 10, 1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(q::prob_no_forward(9, 10, 1.0, 0.0), 1.0);
}

TEST(Forwarding, ZeroServersAlwaysForwards) {
  EXPECT_DOUBLE_EQ(q::prob_no_forward(5, 0, 1.0, 0.2), 0.0);
}

TEST(Forwarding, InvalidArgumentsThrow) {
  EXPECT_THROW((void)q::prob_no_forward(-1, 10, 1.0, 0.2), scshare::Error);
  EXPECT_THROW((void)q::prob_no_forward(0, 10, 0.0, 0.2), scshare::Error);
  EXPECT_THROW((void)q::prob_no_forward(0, 10, 1.0, -0.1), scshare::Error);
}

TEST(TruncationQueueLength, ThresholdIsTight) {
  const int n = 10;
  const double mu = 1.0, Q = 0.2, eps = 1e-9;
  const int qt = q::truncation_queue_length(n, mu, Q, eps);
  EXPECT_LT(q::prob_no_forward(qt, n, mu, Q), eps);
  EXPECT_GE(q::prob_no_forward(qt - 1, n, mu, Q), eps);
}

TEST(TruncationQueueLength, GrowsWithSla) {
  const int tight = q::truncation_queue_length(10, 1.0, 0.2);
  const int loose = q::truncation_queue_length(10, 1.0, 2.0);
  EXPECT_LT(tight, loose);
}

TEST(TruncationQueueLength, ZeroSlaGivesServers) {
  EXPECT_EQ(q::truncation_queue_length(10, 1.0, 0.0), 10);
}

TEST(TruncationQueueLength, RespectsCap) {
  EXPECT_EQ(q::truncation_queue_length(10, 1.0, 1e9, 1e-9, 50), 60);
}
