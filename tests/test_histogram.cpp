#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace sim = scshare::sim;

TEST(Histogram, QuantilesOfUniformStream) {
  sim::Histogram h(1.0, 1000);
  for (int i = 0; i < 100000; ++i) {
    h.add(static_cast<double>(i % 1000) / 1000.0);
  }
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.01);
  EXPECT_NEAR(h.quantile(0.95), 0.95, 0.01);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 0.01);
}

TEST(Histogram, QuantilesOfExponentialSample) {
  scshare::Rng rng(5);
  sim::Histogram h(20.0, 2000);
  for (int i = 0; i < 200000; ++i) h.add(rng.exponential(1.0));
  // Median of Exp(1) = ln 2; P95 = ln 20.
  EXPECT_NEAR(h.quantile(0.5), std::log(2.0), 0.02);
  EXPECT_NEAR(h.quantile(0.95), std::log(20.0), 0.05);
}

TEST(Histogram, FractionAbove) {
  sim::Histogram h(10.0, 1000);
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i) / 10.0);
  EXPECT_NEAR(h.fraction_above(5.0), 0.5, 0.02);
  EXPECT_NEAR(h.fraction_above(9.9), 0.01, 0.011);
  EXPECT_DOUBLE_EQ(h.fraction_above(10.0), 0.0);
}

TEST(Histogram, ValuesBeyondRangeClampToLastBin) {
  sim::Histogram h(1.0, 10);
  h.add(100.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.quantile(0.5), 0.9);
}

TEST(Histogram, EmptyIsZero) {
  const sim::Histogram h(1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction_above(0.5), 0.0);
}

TEST(Histogram, InvalidArgumentsThrow) {
  EXPECT_THROW(sim::Histogram(0.0), scshare::Error);
  sim::Histogram h(1.0);
  EXPECT_THROW(h.add(-1.0), scshare::Error);
  EXPECT_THROW((void)h.quantile(1.5), scshare::Error);
}

TEST(WaitPercentiles, ReportedBySimulator) {
  scshare::federation::FederationConfig cfg;
  cfg.scs = {{.num_vms = 10, .lambda = 9.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {0};
  sim::SimOptions o;
  o.warmup_time = 500.0;
  o.measure_time = 20000.0;
  o.seed = 61;
  sim::Simulator s(cfg, o);
  const auto stats = s.run()[0];
  // Percentiles must be ordered and consistent with the SLA violation rate:
  // if P[w > Q] < 5%, then P95 <= Q (up to bin resolution).
  EXPECT_LE(stats.wait_p50, stats.wait_p95);
  EXPECT_LE(stats.wait_p95, stats.wait_p99);
  if (stats.sla_violation_prob < 0.05) {
    EXPECT_LE(stats.wait_p95, 0.2 + 0.01);
  }
  // Median wait is 0 at this load (most requests start immediately).
  EXPECT_LT(stats.wait_p50, 0.05);
}
