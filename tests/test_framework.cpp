#include "core/framework.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace fed = scshare::federation;
namespace mkt = scshare::market;

namespace {

fed::FederationConfig small_federation() {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 4, .lambda = 3.2, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 4, .lambda = 2.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {1, 1};
  return cfg;
}

mkt::PriceConfig prices() {
  mkt::PriceConfig p;
  p.public_price = {1.0, 1.0};
  p.federation_price = 0.5;
  return p;
}

scshare::FrameworkOptions detailed_backend() {
  scshare::FrameworkOptions o;
  o.backend = scshare::BackendKind::kDetailed;
  return o;
}

}  // namespace

TEST(Framework, MetricsForConfiguredShares) {
  scshare::Framework fw(small_federation(), prices(), {.gamma = 0.0},
                        detailed_backend());
  const auto m = fw.metrics();
  ASSERT_EQ(m.size(), 2u);
  EXPECT_GT(m[0].utilization, 0.0);
}

TEST(Framework, CostsAndUtilitiesConsistent) {
  scshare::Framework fw(small_federation(), prices(), {.gamma = 0.0},
                        detailed_backend());
  const std::vector<int> shares = {2, 2};
  const auto costs = fw.costs(shares);
  const auto utilities = fw.utilities(shares);
  ASSERT_EQ(costs.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const double reduction =
        std::max(fw.baselines()[i].cost - costs[i], 0.0);
    EXPECT_NEAR(utilities[i], reduction * reduction, 1e-9);
  }
}

TEST(Framework, EquilibriumSearchWorks) {
  scshare::Framework fw(small_federation(), prices(), {.gamma = 0.0},
                        detailed_backend());
  mkt::GameOptions options;
  options.method = mkt::BestResponseMethod::kExhaustive;
  const auto eq = fw.find_equilibrium(options);
  EXPECT_TRUE(eq.converged);
}

TEST(Framework, WelfareMatchesManualComputation) {
  scshare::Framework fw(small_federation(), prices(), {.gamma = 0.0},
                        detailed_backend());
  const std::vector<int> shares = {2, 1};
  const auto utilities = fw.utilities(shares);
  const double manual = 2 * utilities[0] + 1 * utilities[1];
  EXPECT_NEAR(fw.welfare_of(mkt::Fairness::kUtilitarian, shares), manual,
              1e-9);
}

TEST(Framework, SimulationBackendWorks) {
  scshare::FrameworkOptions o;
  o.backend = scshare::BackendKind::kSimulation;
  o.sim.warmup_time = 200.0;
  o.sim.measure_time = 2000.0;
  scshare::Framework fw(small_federation(), prices(), {.gamma = 0.0}, o);
  const auto m = fw.metrics();
  EXPECT_GT(m[0].utilization, 0.0);
}

TEST(Framework, ApproxBackendWorks) {
  scshare::FrameworkOptions o;
  o.backend = scshare::BackendKind::kApprox;
  scshare::Framework fw(small_federation(), prices(), {.gamma = 0.0}, o);
  const auto m = fw.metrics();
  EXPECT_GT(m[0].utilization, 0.0);
}

TEST(Framework, SweepDelegationWorks) {
  scshare::Framework fw(small_federation(), prices(), {.gamma = 0.0},
                        detailed_backend());
  mkt::SweepOptions options;
  options.ratios = {0.5};
  options.game.method = mkt::BestResponseMethod::kExhaustive;
  const auto points = fw.sweep_prices(options);
  ASSERT_EQ(points.size(), 1u);
}

TEST(Framework, InvalidConfigThrows) {
  auto cfg = small_federation();
  cfg.shares = {10, 0};  // exceeds num_vms
  EXPECT_THROW(
      scshare::Framework(cfg, prices(), {.gamma = 0.0}, detailed_backend()),
      scshare::Error);
}

TEST(Framework, MismatchedPricesThrow) {
  mkt::PriceConfig bad;
  bad.public_price = {1.0};
  bad.federation_price = 0.5;
  EXPECT_THROW(scshare::Framework(small_federation(), bad, {.gamma = 0.0},
                                  detailed_backend()),
               scshare::Error);
}
