// End-to-end tests of the scshare_serve daemon (src/serve/daemon.*): request
// routing, CLI-identical results, async job polling, admission control
// (429), per-request deadlines (504), graceful drain, and the counter
// contract serve.submitted == admitted + shed + invalid and
// serve.admitted == completed + failed + deadline_exceeded + cancelled.
#include "serve/daemon.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/framework.hpp"
#include "io/config_io.hpp"
#include "io/json.hpp"
#include "net/http.hpp"
#include "obs/flight_recorder.hpp"

namespace fed = scshare::federation;
namespace io = scshare::io;
namespace net = scshare::net;
namespace serve = scshare::serve;

namespace {

fed::FederationConfig small() {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 3, .lambda = 2.0, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 3, .lambda = 1.5, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {1, 1};
  return cfg;
}

scshare::market::PriceConfig prices_for(const fed::FederationConfig& cfg) {
  scshare::market::PriceConfig prices;
  prices.public_price.assign(cfg.size(), 1.0);
  prices.federation_price = 0.5;
  return prices;
}

serve::DaemonOptions fast_options() {
  serve::DaemonOptions options;
  options.io_threads = 4;
  options.job_threads = 2;
  options.drain_timeout_ms = 10000;
  return options;
}

/// Daemon options whose jobs are genuinely slow: the detailed CTMC backend
/// with the cache disabled recomputes every evaluation, so a sweep job
/// occupies its worker for a long, reliable window.
serve::DaemonOptions slow_job_options() {
  serve::DaemonOptions options;
  options.io_threads = 4;
  options.job_threads = 1;
  options.drain_timeout_ms = 10000;
  options.framework.backend = scshare::BackendKind::kDetailed;
  options.framework.cache = false;
  return options;
}

net::HttpGetResult post(std::uint16_t port, const std::string& path,
                        const std::string& body) {
  return net::http_request(port, "POST", path, body);
}

constexpr const char* kSlowSweep =
    R"({"async": true, "sweep": {"ratios": [0.3, 0.5, 0.7], "optimum_stride": 1}})";

/// Polls until the daemon has no jobs in flight (bounded wait).
void wait_idle(const serve::Daemon& daemon) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (daemon.in_flight() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(daemon.in_flight(), 0u);
}

void expect_counter_contract(const serve::DaemonCounts& counts) {
  EXPECT_EQ(counts.submitted, counts.admitted + counts.shed + counts.invalid);
  EXPECT_EQ(counts.admitted, counts.completed + counts.failed +
                                 counts.deadline_exceeded + counts.cancelled);
}

}  // namespace

TEST(ServeDaemon, SyncEquilibriumMatchesTheOneShotFramework) {
  const auto cfg = small();
  serve::Daemon daemon(cfg, prices_for(cfg), {}, fast_options());
  const auto result = post(daemon.port(), "/v1/equilibrium", "{}");
  ASSERT_EQ(result.status, 200) << result.body;

  const io::Json envelope = io::Json::parse(result.body);
  EXPECT_EQ(envelope.at("state").as_string(), "succeeded");
  EXPECT_EQ(envelope.at("operation").as_string(), "equilibrium");
  ASSERT_TRUE(envelope.contains("result"));

  // Bit-identical to a one-shot Framework run of the same configuration:
  // the daemon result subtree must serialize to the same bytes.
  scshare::Framework framework(cfg, prices_for(cfg), {}, {});
  const std::string expected =
      io::to_json(framework.find_equilibrium()).dump();
  EXPECT_EQ(envelope.at("result").dump(), expected);

  const auto counts = daemon.counts();
  EXPECT_EQ(counts.completed, 1u);
  expect_counter_contract(counts);
}

TEST(ServeDaemon, EvaluateReturnsMetricsCostsAndUtilities) {
  const auto cfg = small();
  serve::Daemon daemon(cfg, prices_for(cfg), {}, fast_options());
  const auto result =
      post(daemon.port(), "/v1/evaluate", R"({"shares": [1, 2]})");
  ASSERT_EQ(result.status, 200) << result.body;
  const io::Json envelope = io::Json::parse(result.body);
  const io::Json& payload = envelope.at("result");
  EXPECT_TRUE(payload.contains("metrics"));
  EXPECT_EQ(payload.at("costs").size(), cfg.size());
  EXPECT_EQ(payload.at("utilities").size(), cfg.size());
}

TEST(ServeDaemon, SweepReturnsOnePointPerRatio) {
  const auto cfg = small();
  serve::Daemon daemon(cfg, prices_for(cfg), {}, fast_options());
  const auto result = post(
      daemon.port(), "/v1/sweep",
      R"({"sweep": {"ratios": [0.4, 0.8], "optimum_stride": 3}})");
  ASSERT_EQ(result.status, 200) << result.body;
  const io::Json envelope = io::Json::parse(result.body);
  EXPECT_EQ(envelope.at("result").at("points").size(), 2u);
}

TEST(ServeDaemon, InvalidRequestsAreTyped400s) {
  const auto cfg = small();
  serve::Daemon daemon(cfg, prices_for(cfg), {}, fast_options());

  // Malformed JSON never reaches a job: counted serve.invalid.
  const auto malformed = post(daemon.port(), "/v1/equilibrium", "{nope");
  EXPECT_EQ(malformed.status, 400);

  // A well-formed but invalid request fails its job with bad_request.
  const auto missing = post(daemon.port(), "/v1/sweep", "{}");
  EXPECT_EQ(missing.status, 400);
  const io::Json envelope = io::Json::parse(missing.body);
  EXPECT_EQ(envelope.at("state").as_string(), "failed");
  EXPECT_NE(envelope.at("error").as_string().find("sweep"),
            std::string::npos);

  const auto counts = daemon.counts();
  EXPECT_EQ(counts.invalid, 1u);
  EXPECT_EQ(counts.failed, 1u);
  expect_counter_contract(counts);
}

TEST(ServeDaemon, ApiEndpointsRequirePost) {
  const auto cfg = small();
  serve::Daemon daemon(cfg, prices_for(cfg), {}, fast_options());
  EXPECT_EQ(net::http_get(daemon.port(), "/v1/equilibrium").status, 405);
  EXPECT_EQ(net::http_get(daemon.port(), "/v1/jobs/job-999").status, 404);
  EXPECT_EQ(net::http_get(daemon.port(), "/").status, 200);
}

TEST(ServeDaemon, TelemetryPlaneIsServedFromTheSameProcess) {
  const auto cfg = small();
  serve::Daemon daemon(cfg, prices_for(cfg), {}, fast_options());
  (void)post(daemon.port(), "/v1/equilibrium", "{}");

  const auto metrics = net::http_get(daemon.port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("scshare_serve_submitted"), std::string::npos);
  EXPECT_NE(metrics.body.find("# EOF"), std::string::npos);

  const auto healthz = net::http_get(daemon.port(), "/healthz");
  EXPECT_EQ(healthz.status, 200);
  EXPECT_NE(healthz.body.find("serve_in_flight"), std::string::npos);
  EXPECT_NE(healthz.body.find("serve_draining"), std::string::npos);

  EXPECT_EQ(net::http_get(daemon.port(), "/statusz").status, 200);
}

TEST(ServeDaemon, AsyncJobsAreAcceptedAndPollable) {
  const auto cfg = small();
  serve::Daemon daemon(cfg, prices_for(cfg), {}, fast_options());
  const auto accepted =
      post(daemon.port(), "/v1/equilibrium", R"({"async": true})");
  ASSERT_EQ(accepted.status, 202) << accepted.body;
  const io::Json envelope = io::Json::parse(accepted.body);
  const std::string id = envelope.at("job_id").as_string();

  // Poll until terminal; queued/running polls return 200 with the state.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  std::string state;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto poll = net::http_get(daemon.port(), "/v1/jobs/" + id);
    ASSERT_EQ(poll.status / 100, 2) << poll.body;
    state = io::Json::parse(poll.body).at("state").as_string();
    if (state != "queued" && state != "running") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(state, "succeeded");

  const auto done = net::http_get(daemon.port(), "/v1/jobs/" + id);
  EXPECT_TRUE(io::Json::parse(done.body).contains("result"));
}

TEST(ServeDaemon, AdmissionControlShedsWith429) {
  const auto cfg = small();
  auto options = slow_job_options();
  options.max_queue_depth = 2;
  serve::Daemon daemon(cfg, prices_for(cfg), {}, options);

  // Two slow jobs fill the queue (one running on the single worker, one
  // queued); the third must be shed immediately with Retry-After.
  ASSERT_EQ(post(daemon.port(), "/v1/sweep", kSlowSweep).status, 202);
  ASSERT_EQ(post(daemon.port(), "/v1/sweep", kSlowSweep).status, 202);
  const auto shed = post(daemon.port(), "/v1/equilibrium", "{}");
  EXPECT_EQ(shed.status, 429) << shed.body;
  EXPECT_NE(shed.headers.find("Retry-After: 1"), std::string::npos)
      << shed.headers;

  // While the queue sits at its limit the daemon reports itself degraded.
  const auto healthz = net::http_get(daemon.port(), "/healthz");
  EXPECT_NE(healthz.body.find("\"serve_shedding\":true"), std::string::npos)
      << healthz.body;

  wait_idle(daemon);
  const auto counts = daemon.counts();
  EXPECT_EQ(counts.shed, 1u);
  EXPECT_EQ(counts.admitted, 2u);
  expect_counter_contract(counts);
}

TEST(ServeDaemon, DeadlinedRequestsReturn504) {
  const auto cfg = small();
  serve::Daemon daemon(cfg, prices_for(cfg), {}, slow_job_options());

  // Occupy the single job worker, then submit a request whose deadline
  // expires while it waits in the queue: it must come back 504, typed
  // deadline_exceeded, without ever touching the solvers.
  ASSERT_EQ(post(daemon.port(), "/v1/sweep", kSlowSweep).status, 202);
  const auto late =
      post(daemon.port(), "/v1/equilibrium", R"({"deadline_ms": 1})");
  EXPECT_EQ(late.status, 504) << late.body;
  EXPECT_EQ(io::Json::parse(late.body).at("state").as_string(),
            "deadline_exceeded");

  wait_idle(daemon);
  const auto counts = daemon.counts();
  EXPECT_EQ(counts.deadline_exceeded, 1u);
  expect_counter_contract(counts);
}

TEST(ServeDaemon, DrainCancelsInFlightJobsAndAccountsForEverything) {
  const auto cfg = small();
  auto options = slow_job_options();
  // Short natural-finish phase: the slow jobs outlive it, forcing the
  // cancellation phase to do the work.
  options.drain_timeout_ms = 2000;
  serve::Daemon daemon(cfg, prices_for(cfg), {}, options);
  ASSERT_EQ(post(daemon.port(), "/v1/sweep", kSlowSweep).status, 202);
  ASSERT_EQ(post(daemon.port(), "/v1/sweep", kSlowSweep).status, 202);

  // Cooperative cancellation surfaces within about one solver sweep, far
  // inside the drain budget, so the drain must report clean.
  EXPECT_TRUE(daemon.drain());
  EXPECT_TRUE(daemon.draining());
  EXPECT_EQ(daemon.in_flight(), 0u);

  const auto counts = daemon.counts();
  EXPECT_EQ(counts.admitted, 2u);
  expect_counter_contract(counts);

  // The listener is gone: new submissions cannot even connect.
  EXPECT_THROW((void)post(daemon.port(), "/v1/equilibrium", "{}"),
               std::exception);

  // Idempotent: a second drain reports the same outcome.
  EXPECT_TRUE(daemon.drain());
}

TEST(ServeDaemon, TraceIsRetrievableForCompletedJobs) {
  const auto cfg = small();
  serve::Daemon daemon(cfg, prices_for(cfg), {}, fast_options());
  const auto result = post(daemon.port(), "/v1/equilibrium", "{}");
  ASSERT_EQ(result.status, 200) << result.body;
  const io::Json envelope = io::Json::parse(result.body);
  const std::string id = envelope.at("job_id").as_string();

  const auto trace = net::http_get(daemon.port(), "/v1/jobs/" + id + "/trace");
  ASSERT_EQ(trace.status, 200) << trace.body;
  const io::Json doc = io::Json::parse(trace.body);
  EXPECT_EQ(doc.at("job_id").as_string(), id);
  EXPECT_EQ(doc.at("state").as_string(), "succeeded");
  EXPECT_EQ(doc.at("correlation_id").as_string(),
            envelope.at("correlation_id").as_string());

  // Every stage ran for a completed sync job, and the stage timings nest
  // inside the end-to-end total.
  const io::Json& stages = doc.at("stages");
  for (const char* stage : {"transport_ms", "parse_ms", "queue_wait_ms",
                            "solve_ms", "render_ms"}) {
    ASSERT_FALSE(stages.at(stage).is_null()) << stage << ": " << trace.body;
    EXPECT_GE(stages.at(stage).as_double(), 0.0) << stage;
  }
  ASSERT_FALSE(doc.at("total_ms").is_null());
  EXPECT_GE(doc.at("total_ms").as_double(),
            stages.at("solve_ms").as_double());

  EXPECT_EQ(
      net::http_get(daemon.port(), "/v1/jobs/job-424242/trace").status, 404);
  EXPECT_EQ(net::http_get(daemon.port(), "/v1/jobs/" + id + "/bogus").status,
            404);
}

TEST(ServeDaemon, DeadlineExceededJobLeavesTraceAndFlightDump) {
  const auto cfg = small();
  auto options = slow_job_options();
  options.flight_dir = testing::TempDir();
  serve::Daemon daemon(cfg, prices_for(cfg), {}, options);
  const std::uint64_t dumps_before = scshare::obs::FlightRecorder::global().dumps();

  // Occupy the worker, then let a queued job's deadline fire.
  ASSERT_EQ(post(daemon.port(), "/v1/sweep", kSlowSweep).status, 202);
  const auto late =
      post(daemon.port(), "/v1/equilibrium", R"({"deadline_ms": 1})");
  ASSERT_EQ(late.status, 504) << late.body;
  const std::string id = io::Json::parse(late.body).at("job_id").as_string();

  // The trace survives: the job died waiting, so solve/render never ran.
  const auto trace = net::http_get(daemon.port(), "/v1/jobs/" + id + "/trace");
  ASSERT_EQ(trace.status, 200) << trace.body;
  const io::Json doc = io::Json::parse(trace.body);
  EXPECT_EQ(doc.at("state").as_string(), "deadline_exceeded");
  EXPECT_DOUBLE_EQ(doc.at("deadline_ms").as_double(), 1.0);
  EXPECT_TRUE(doc.at("stages").at("solve_ms").is_null()) << trace.body;
  EXPECT_FALSE(doc.at("total_ms").is_null());

  // By the time the 504 was rendered the flight recorder had dumped, and
  // the artifact it reported exists on disk.
  scshare::obs::FlightRecorder& recorder = scshare::obs::FlightRecorder::global();
  EXPECT_GT(recorder.dumps(), dumps_before);
  const auto last = recorder.last_dump();
  EXPECT_EQ(last.reason, "deadline_exceeded");
  ASSERT_FALSE(last.path.empty());
  std::ifstream artifact(last.path);
  ASSERT_TRUE(artifact.good()) << last.path;
  std::ostringstream buffer;
  buffer << artifact.rdbuf();
  const io::Json dump = io::Json::parse(buffer.str());
  EXPECT_EQ(dump.at("reason").as_string(), "deadline_exceeded");
  EXPECT_FALSE(dump.at("records").as_array().empty());
  wait_idle(daemon);
}

TEST(ServeDaemon, ShedJobsKeepAPollableTrace) {
  const auto cfg = small();
  auto options = slow_job_options();
  options.max_queue_depth = 2;
  serve::Daemon daemon(cfg, prices_for(cfg), {}, options);

  ASSERT_EQ(post(daemon.port(), "/v1/sweep", kSlowSweep).status, 202);
  ASSERT_EQ(post(daemon.port(), "/v1/sweep", kSlowSweep).status, 202);
  const auto shed = post(daemon.port(), "/v1/equilibrium", "{}");
  ASSERT_EQ(shed.status, 429) << shed.body;
  const io::Json envelope = io::Json::parse(shed.body);
  EXPECT_EQ(envelope.at("state").as_string(), "shed");
  const std::string id = envelope.at("job_id").as_string();

  // Polling the shed job keeps answering 429 + Retry-After...
  const auto poll = net::http_get(daemon.port(), "/v1/jobs/" + id);
  EXPECT_EQ(poll.status, 429);
  EXPECT_NE(poll.headers.find("Retry-After: 1"), std::string::npos);

  // ...and its trace records that it was refused before any stage ran.
  const auto trace = net::http_get(daemon.port(), "/v1/jobs/" + id + "/trace");
  ASSERT_EQ(trace.status, 200) << trace.body;
  const io::Json doc = io::Json::parse(trace.body);
  EXPECT_EQ(doc.at("state").as_string(), "shed");
  EXPECT_TRUE(doc.at("stages").at("queue_wait_ms").is_null());
  EXPECT_TRUE(doc.at("stages").at("solve_ms").is_null());
  EXPECT_FALSE(doc.at("stages").at("parse_ms").is_null());

  wait_idle(daemon);
  const auto counts = daemon.counts();
  EXPECT_EQ(counts.shed, 1u);
  expect_counter_contract(counts);
}

TEST(ServeDaemon, SloszReportsTheDaemonsObjectivesAndOutcomes) {
  const auto cfg = small();
  auto options = fast_options();
  options.slo_latency_ms = 30000.0;  // far above any test latency
  options.slo_availability = 0.5;
  serve::Daemon daemon(cfg, prices_for(cfg), {}, options);
  ASSERT_EQ(post(daemon.port(), "/v1/equilibrium", "{}").status, 200);

  const auto slosz = net::http_get(daemon.port(), "/slosz");
  ASSERT_EQ(slosz.status, 200);
  const io::Json doc = io::Json::parse(slosz.body);
  EXPECT_DOUBLE_EQ(doc.at("objectives").at("latency_ms").as_double(), 30000.0);
  EXPECT_DOUBLE_EQ(doc.at("objectives").at("availability").as_double(), 0.5);
  ASSERT_EQ(doc.at("windows").size(), 3u);
  // The global plane accumulates across tests in this binary: assert lower
  // bounds, not exact counts.
  const io::Json& fast = doc.at("windows").as_array().front();
  EXPECT_GE(fast.at("outcomes").at("ok").as_int(), 1);
  ASSERT_FALSE(fast.at("latency_ms").is_null());
  EXPECT_GE(fast.at("latency_ms").at("samples").as_int(), 1);

  const auto flight = net::http_get(daemon.port(), "/debugz/flight");
  ASSERT_EQ(flight.status, 200);
  EXPECT_GE(io::Json::parse(flight.body).at("records_held").as_int(), 1);
}

TEST(ServeDaemon, JobHistoryIsBounded) {
  const auto cfg = small();
  auto options = fast_options();
  options.job_history = 2;
  serve::Daemon daemon(cfg, prices_for(cfg), {}, options);

  std::vector<std::string> ids;
  for (int i = 0; i < 4; ++i) {
    const auto result =
        post(daemon.port(), "/v1/evaluate", R"({"shares": [1, 1]})");
    ASSERT_EQ(result.status, 200);
    ids.push_back(io::Json::parse(result.body).at("job_id").as_string());
  }
  wait_idle(daemon);
  // Oldest jobs were evicted from the poll table; newest are retained.
  // finish_job pushes the history entry and evicts BEFORE releasing the
  // job's waiter, so by the time the 4th POST returned the eviction of the
  // 1st job had already happened — no retry loop needed.
  EXPECT_EQ(net::http_get(daemon.port(), "/v1/jobs/" + ids.front()).status,
            404);
  EXPECT_EQ(net::http_get(daemon.port(), "/v1/jobs/" + ids.back()).status,
            200);
}
