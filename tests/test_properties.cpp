// Property-based suites: invariants that must hold across parameter grids
// rather than at hand-picked points.
#include <gtest/gtest.h>

#include "federation/approx_model.hpp"
#include "federation/detailed_model.hpp"
#include "market/fairness.hpp"
#include "market/utility.hpp"
#include "queueing/forwarding.hpp"
#include "sim/simulator.hpp"

namespace fed = scshare::federation;
namespace mkt = scshare::market;

// ---------------------------------------------------------------------------
// Detailed model invariants over a grid of loads and shares.
// ---------------------------------------------------------------------------
struct DetailedCase {
  double l1, l2;
  int s1, s2;
};

class DetailedInvariants : public ::testing::TestWithParam<DetailedCase> {};

TEST_P(DetailedInvariants, ConservationAndBounds) {
  const auto c = GetParam();
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 4, .lambda = c.l1, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 4, .lambda = c.l2, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {c.s1, c.s2};
  const auto m = fed::solve_detailed(cfg);

  // Conservation: every lent VM is borrowed by somebody.
  EXPECT_NEAR(m[0].lent + m[1].lent, m[0].borrowed + m[1].borrowed, 1e-7);
  for (std::size_t i = 0; i < 2; ++i) {
    // Bounds.
    EXPECT_GE(m[i].lent, 0.0);
    EXPECT_LE(m[i].lent, cfg.shares[i] + 1e-9);
    EXPECT_GE(m[i].borrowed, 0.0);
    EXPECT_LE(m[i].borrowed, cfg.shared_pool_excluding(i) + 1e-9);
    EXPECT_GE(m[i].forward_prob, 0.0);
    EXPECT_LE(m[i].forward_prob, 1.0);
    EXPECT_GE(m[i].utilization, 0.0);
    EXPECT_LE(m[i].utilization, 1.0 + 1e-9);
    // Flow balance: accepted work equals served work.
    const double lambda = cfg.scs[i].lambda;
    const double accepted = lambda * (1.0 - m[i].forward_prob);
    const double served_here =
        static_cast<double>(cfg.scs[i].num_vms) * m[i].utilization;
    // served_here covers own-local + lent work; own remote work adds
    // borrowed. accepted = own-local + borrowed served elsewhere:
    // own_local = served_here - lent  =>  accepted = served_here - lent + borrowed.
    EXPECT_NEAR(accepted, served_here - m[i].lent + m[i].borrowed, 1e-6)
        << "sc=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DetailedInvariants,
    ::testing::Values(DetailedCase{1.0, 1.0, 0, 0}, DetailedCase{1.0, 1.0, 2, 2},
                      DetailedCase{3.0, 1.5, 1, 3}, DetailedCase{3.0, 3.0, 4, 4},
                      DetailedCase{3.8, 2.0, 2, 2}, DetailedCase{4.5, 4.5, 2, 2},
                      DetailedCase{5.5, 1.0, 0, 4}, DetailedCase{2.0, 3.9, 3, 1},
                      DetailedCase{3.5, 3.5, 1, 1}, DetailedCase{4.0, 2.5, 4, 0}));

// ---------------------------------------------------------------------------
// Approximate model: same invariants (conservation does not hold exactly by
// construction, but bounds and flow balance per SC must).
// ---------------------------------------------------------------------------
class ApproxInvariants : public ::testing::TestWithParam<DetailedCase> {};

TEST_P(ApproxInvariants, BoundsAndSanity) {
  const auto c = GetParam();
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 4, .lambda = c.l1, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 4, .lambda = c.l2, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {c.s1, c.s2};
  const auto m = fed::solve_approx(cfg);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_GE(m[i].lent, -1e-12);
    EXPECT_LE(m[i].lent, cfg.shares[i] + 1e-9);
    EXPECT_GE(m[i].borrowed, -1e-12);
    EXPECT_LE(m[i].borrowed, cfg.shared_pool_excluding(i) + 1e-9);
    EXPECT_GE(m[i].forward_prob, 0.0);
    EXPECT_LE(m[i].forward_prob, 1.0);
    EXPECT_LE(m[i].utilization, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ApproxInvariants,
    ::testing::Values(DetailedCase{1.0, 1.0, 0, 0}, DetailedCase{1.0, 1.0, 2, 2},
                      DetailedCase{3.0, 1.5, 1, 3}, DetailedCase{3.0, 3.0, 4, 4},
                      DetailedCase{3.8, 2.0, 2, 2}, DetailedCase{4.5, 4.5, 2, 2},
                      DetailedCase{5.5, 1.0, 0, 4}, DetailedCase{2.0, 3.9, 3, 1}));

// ---------------------------------------------------------------------------
// Simulator vs detailed model across a coarse grid (longer-run agreement).
// ---------------------------------------------------------------------------
class SimVsDetailed : public ::testing::TestWithParam<DetailedCase> {};

TEST_P(SimVsDetailed, ForwardProbAgrees) {
  const auto c = GetParam();
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 4, .lambda = c.l1, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 4, .lambda = c.l2, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {c.s1, c.s2};
  const auto exact = fed::solve_detailed(cfg);
  scshare::sim::SimOptions so;
  so.warmup_time = 1000.0;
  so.measure_time = 20000.0;
  so.seed = 11;
  const auto sim = scshare::sim::simulate_metrics(cfg, so);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(sim[i].forward_prob, exact[i].forward_prob, 0.02)
        << "sc=" << i;
    EXPECT_NEAR(sim[i].utilization, exact[i].utilization, 0.02) << "sc=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimVsDetailed,
    ::testing::Values(DetailedCase{3.0, 1.5, 1, 3}, DetailedCase{3.8, 2.0, 2, 2},
                      DetailedCase{4.5, 4.5, 2, 2}, DetailedCase{2.0, 3.9, 3, 1}));

// ---------------------------------------------------------------------------
// PNF structural properties over a parameter grid.
// ---------------------------------------------------------------------------
struct PnfCase {
  int servers;
  double mu;
  double q;
};

class PnfProperties : public ::testing::TestWithParam<PnfCase> {};

TEST_P(PnfProperties, MonotoneAndBounded) {
  const auto c = GetParam();
  double prev = 1.0;
  for (int in_system = 0; in_system < c.servers + 40; ++in_system) {
    const double p =
        scshare::queueing::prob_no_forward(in_system, c.servers, c.mu, c.q);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_LE(p, prev + 1e-12) << "PNF must be non-increasing in queue length";
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, PnfProperties,
                         ::testing::Values(PnfCase{1, 1.0, 0.2},
                                           PnfCase{10, 1.0, 0.2},
                                           PnfCase{10, 1.0, 0.5},
                                           PnfCase{10, 2.5, 0.1},
                                           PnfCase{100, 1.0, 0.2},
                                           PnfCase{100, 0.5, 1.0}));

// ---------------------------------------------------------------------------
// Utility function properties across gammas.
// ---------------------------------------------------------------------------
class UtilityProperties : public ::testing::TestWithParam<double> {};

TEST_P(UtilityProperties, MonotoneInCostReduction) {
  const mkt::UtilityParams params{.gamma = GetParam()};
  double prev = -1.0;
  for (double cost = 10.0; cost >= 0.0; cost -= 1.0) {
    const double u = mkt::sc_utility_raw(10.0, cost, 0.5, 0.7, 3, params);
    EXPECT_GE(u, prev) << "utility must grow with cost reduction";
    prev = u;
  }
}

TEST_P(UtilityProperties, NonNegative) {
  const mkt::UtilityParams params{.gamma = GetParam()};
  for (double cost : {0.0, 5.0, 10.0, 20.0}) {
    for (double rho : {0.50001, 0.6, 0.9}) {
      EXPECT_GE(mkt::sc_utility_raw(10.0, cost, 0.5, rho, 2, params), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Gammas, UtilityProperties,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

// ---------------------------------------------------------------------------
// Welfare properties.
// ---------------------------------------------------------------------------
TEST(WelfareProperties, ScalingUtilitiesScalesUtilitarianWelfare) {
  const std::vector<int> shares = {2, 3, 1};
  std::vector<double> u = {1.0, 2.0, 3.0};
  const double w1 = mkt::welfare(mkt::Fairness::kUtilitarian, shares, u);
  for (auto& x : u) x *= 7.0;
  const double w7 = mkt::welfare(mkt::Fairness::kUtilitarian, shares, u);
  EXPECT_NEAR(w7, 7.0 * w1, 1e-9);
}

TEST(WelfareProperties, MaxMinInsensitiveToNonMinimalGains) {
  const std::vector<int> shares = {2, 3};
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0, 100.0};
  EXPECT_DOUBLE_EQ(mkt::welfare(mkt::Fairness::kMaxMin, shares, a),
                   mkt::welfare(mkt::Fairness::kMaxMin, shares, b));
}
