#include "market/multi_federation.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "federation/backend.hpp"
#include "market/game.hpp"

namespace fed = scshare::federation;
namespace mkt = scshare::market;

namespace {

fed::FederationConfig four_scs() {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 4, .lambda = 3.2, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 4, .lambda = 2.0, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 4, .lambda = 3.0, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 4, .lambda = 2.4, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {0, 0, 0, 0};
  return cfg;
}

fed::FederationConfig two_scs() {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 4, .lambda = 3.2, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 4, .lambda = 2.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {0, 0};
  return cfg;
}

}  // namespace

TEST(MultiFederation, SingleFederationMatchesStandardGame) {
  fed::DetailedBackend backend;
  mkt::MultiFederationGame multi(two_scs(), {0.5}, {1.0, 1.0},
                                 {.gamma = 0.0}, backend);
  const auto multi_result = multi.run();
  ASSERT_TRUE(multi_result.converged);

  fed::CachingBackend cached(std::make_unique<fed::DetailedBackend>());
  mkt::GameOptions options;
  options.method = mkt::BestResponseMethod::kExhaustive;
  mkt::PriceConfig prices;
  prices.public_price = {1.0, 1.0};
  prices.federation_price = 0.5;
  mkt::Game single(two_scs(), prices, {.gamma = 0.0}, cached, options);
  const auto single_result = single.run();

  // Same equilibrium shares, with every SC inside the single federation.
  EXPECT_EQ(multi_result.shares, single_result.shares);
  for (std::size_t i = 0; i < 2; ++i) {
    if (multi_result.shares[i] > 0) {
      EXPECT_EQ(multi_result.membership[i], 0);
    }
  }
}

namespace {

/// Fast, deterministic-through-memoization cost oracle for the 4-SC tests
/// (the detailed backend explodes combinatorially at K = 4 and the
/// approximate hierarchy is too slow for a unit test).
scshare::sim::SimOptions fast_sim(double measure_time = 6000.0) {
  scshare::sim::SimOptions o;
  o.warmup_time = 300.0;
  o.measure_time = measure_time;
  o.seed = 97;
  return o;
}

}  // namespace

TEST(MultiFederation, ScsConsolidateWithEqualPrices) {
  // Two identical federations, membership initially split: positive network
  // effects (a bigger pool serves overflow better) drive the participants
  // into one of them.
  fed::SimulationBackend backend(fast_sim());
  mkt::MultiFederationOptions options;
  options.initial_membership = {0, 1, 0, 1};
  options.initial_shares = {2, 2, 2, 2};
  options.improvement_tolerance = 0.1;  // simulation noise
  mkt::MultiFederationGame game(four_scs(), {0.5, 0.5}, {1, 1, 1, 1},
                                {.gamma = 0.0}, backend, options);
  const auto result = game.run();
  ASSERT_TRUE(result.converged);
  int in_zero = 0, in_one = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (result.membership[i] == 0) ++in_zero;
    if (result.membership[i] == 1) ++in_one;
  }
  EXPECT_GE(in_zero + in_one, 3);  // most SCs participate somewhere
  EXPECT_TRUE(in_zero == 0 || in_one == 0)
      << "members split " << in_zero << "/" << in_one
      << " across equal federations instead of consolidating";
}

TEST(MultiFederation, HeterogeneousPricesReachNashEquilibrium) {
  // Federation 0 sells at 0.3, federation 1 at 0.9. A cheap pool attracts
  // borrowers while an expensive pool rewards lenders, so the split is a
  // genuine two-sided market; rather than assuming who goes where, verify
  // the equilibrium property directly: no SC gains (beyond the hysteresis
  // margin) from any unilateral (federation, share) deviation.
  fed::SimulationBackend backend(fast_sim(25000.0));
  mkt::MultiFederationOptions options;
  options.improvement_tolerance = 0.1;
  mkt::MultiFederationGame game(four_scs(), {0.3, 0.9}, {1, 1, 1, 1},
                                {.gamma = 0.0}, backend, options);
  const auto result = game.run();
  ASSERT_TRUE(result.converged);
  for (std::size_t i = 0; i < 4; ++i) {
    const double at_eq =
        game.utility_of(i, result.membership, result.shares);
    EXPECT_GE(at_eq, 0.0);
    for (int f = 0; f < 2; ++f) {
      for (int s = 0; s <= 4; ++s) {
        auto membership = result.membership;
        auto shares = result.shares;
        membership[i] = f;
        shares[i] = s;
        EXPECT_LE(game.utility_of(i, membership, shares),
                  at_eq * 1.1 + 1e-7)
            << "sc=" << i << " deviation f=" << f << " s=" << s;
      }
    }
  }
}

TEST(MultiFederation, IsolatedScHasZeroUtility) {
  fed::DetailedBackend backend;
  mkt::MultiFederationGame game(two_scs(), {0.5}, {1.0, 1.0}, {.gamma = 0.0},
                                backend);
  const std::vector<int> membership = {mkt::kNoFederation, 0};
  const std::vector<int> shares = {0, 2};
  EXPECT_DOUBLE_EQ(game.utility_of(0, membership, shares), 0.0);
  // A lone member cannot exchange VMs, so its utility is also zero.
  EXPECT_DOUBLE_EQ(game.utility_of(1, membership, shares), 0.0);
}

TEST(MultiFederation, MemoizationAvoidsReEvaluation) {
  fed::DetailedBackend backend;
  mkt::MultiFederationGame game(two_scs(), {0.5}, {1.0, 1.0}, {.gamma = 0.0},
                                backend);
  (void)game.run();
  const auto evals = game.evaluations();
  mkt::MultiFederationGame game2(two_scs(), {0.5}, {1.0, 1.0}, {.gamma = 0.0},
                                 backend);
  (void)game2.run();
  EXPECT_EQ(game2.evaluations(), evals);  // deterministic exploration
}

TEST(MultiFederation, SingleScFederationIsInert) {
  // Degenerate case: a federation of one. There is nobody to exchange VMs
  // with, so every strategy is worth zero and the dynamics stop immediately.
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 4, .lambda = 3.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {0};
  fed::DetailedBackend backend;
  mkt::MultiFederationGame game(cfg, {0.5}, {1.0}, {.gamma = 0.0}, backend);
  const auto result = game.run();
  ASSERT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.utilities[0], 0.0);
  for (int s = 0; s <= 4; ++s) {
    EXPECT_DOUBLE_EQ(game.utility_of(0, {0}, {s}), 0.0) << "share " << s;
  }
}

TEST(MultiFederation, ZeroSharesEverywhereYieldZeroUtility) {
  // Degenerate case: members that share nothing. S_i = 0 disables
  // participation (Eq. (2)), so the all-zero strategy is worth zero to
  // everyone regardless of membership pattern.
  fed::DetailedBackend backend;
  mkt::MultiFederationGame game(two_scs(), {0.5}, {1.0, 1.0}, {.gamma = 0.0},
                                backend);
  EXPECT_DOUBLE_EQ(game.utility_of(0, {0, 0}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(game.utility_of(1, {0, 0}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(game.utility_of(0, {0, mkt::kNoFederation}, {0, 0}), 0.0);
}

TEST(MultiFederation, IdenticalScsReachSymmetricEquilibrium) {
  // Degenerate case: indistinguishable players. The sharing game among
  // identical SCs must end in a symmetric equilibrium — identical shares and
  // identical utilities.
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 4, .lambda = 2.8, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 4, .lambda = 2.8, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {0, 0};
  fed::CachingBackend cached(std::make_unique<fed::DetailedBackend>());
  mkt::GameOptions options;
  options.method = mkt::BestResponseMethod::kExhaustive;
  mkt::PriceConfig prices;
  prices.public_price = {1.0, 1.0};
  prices.federation_price = 0.5;
  mkt::Game game(cfg, prices, {.gamma = 0.0}, cached, options);
  const auto result = game.run();
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.shares[0], result.shares[1]);
  EXPECT_NEAR(result.utilities[0], result.utilities[1], 1e-9);
}

TEST(MultiFederation, InvalidArgumentsThrow) {
  fed::DetailedBackend backend;
  EXPECT_THROW(mkt::MultiFederationGame(two_scs(), {}, {1.0, 1.0},
                                        {.gamma = 0.0}, backend),
               scshare::Error);
  EXPECT_THROW(mkt::MultiFederationGame(two_scs(), {0.5}, {1.0},
                                        {.gamma = 0.0}, backend),
               scshare::Error);
  EXPECT_THROW(mkt::MultiFederationGame(two_scs(), {1.5}, {1.0, 1.0},
                                        {.gamma = 0.0}, backend),
               scshare::Error);
  mkt::MultiFederationOptions options;
  options.initial_membership = {5, 0};
  options.initial_shares = {0, 0};
  EXPECT_THROW(mkt::MultiFederationGame(two_scs(), {0.5}, {1.0, 1.0},
                                        {.gamma = 0.0}, backend, options),
               scshare::Error);
}
