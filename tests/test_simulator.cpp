#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "queueing/no_share_model.hpp"

namespace fed = scshare::federation;
namespace sim = scshare::sim;

namespace {

fed::FederationConfig single_sc(double lambda, double max_wait = 0.2) {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 10, .lambda = lambda, .mu = 1.0, .max_wait = max_wait}};
  cfg.shares = {0};
  return cfg;
}

fed::FederationConfig two_sc(double l1, double l2, int s1, int s2) {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 10, .lambda = l1, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 10, .lambda = l2, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {s1, s2};
  return cfg;
}

sim::SimOptions fast_options(std::uint64_t seed = 1) {
  sim::SimOptions o;
  o.warmup_time = 500.0;
  o.measure_time = 8000.0;
  o.seed = seed;
  return o;
}

}  // namespace

TEST(Simulator, SingleScMatchesNoShareModel) {
  const auto cfg = single_sc(7.0);
  sim::Simulator s(cfg, fast_options());
  const auto stats = s.run();
  const auto model = scshare::queueing::solve_no_share(
      {.num_vms = 10, .lambda = 7.0, .mu = 1.0, .max_wait = 0.2});
  EXPECT_NEAR(stats[0].metrics.forward_prob, model.forward_prob, 0.01);
  EXPECT_NEAR(stats[0].metrics.utilization, model.utilization, 0.02);
  EXPECT_DOUBLE_EQ(stats[0].metrics.lent, 0.0);
  EXPECT_DOUBLE_EQ(stats[0].metrics.borrowed, 0.0);
}

TEST(Simulator, SingleScHighLoadMatchesNoShareModel) {
  const auto cfg = single_sc(9.5);
  sim::Simulator s(cfg, fast_options(7));
  const auto stats = s.run();
  const auto model = scshare::queueing::solve_no_share(
      {.num_vms = 10, .lambda = 9.5, .mu = 1.0, .max_wait = 0.2});
  EXPECT_NEAR(stats[0].metrics.forward_prob, model.forward_prob, 0.015);
  EXPECT_NEAR(stats[0].metrics.utilization, model.utilization, 0.02);
}

TEST(Simulator, ReproducibleForSameSeed) {
  const auto cfg = two_sc(7.0, 8.0, 3, 3);
  sim::Simulator a(cfg, fast_options(42));
  sim::Simulator b(cfg, fast_options(42));
  const auto ra = a.run();
  const auto rb = b.run();
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra[i].metrics.lent, rb[i].metrics.lent);
    EXPECT_DOUBLE_EQ(ra[i].metrics.forward_rate, rb[i].metrics.forward_rate);
    EXPECT_EQ(ra[i].arrivals, rb[i].arrivals);
  }
}

TEST(Simulator, LendingConservation) {
  // At all times total lent == total borrowed, so the time averages agree.
  const auto cfg = two_sc(8.0, 9.0, 4, 4);
  sim::Simulator s(cfg, fast_options(3));
  const auto stats = s.run();
  const double lent = stats[0].metrics.lent + stats[1].metrics.lent;
  const double borrowed =
      stats[0].metrics.borrowed + stats[1].metrics.borrowed;
  EXPECT_NEAR(lent, borrowed, 1e-9);
}

TEST(Simulator, SharingReducesForwarding) {
  const auto no_sharing = two_sc(8.0, 8.0, 0, 0);
  const auto sharing = two_sc(8.0, 8.0, 5, 5);
  const auto r0 = sim::simulate_metrics(no_sharing, fast_options(5));
  const auto r1 = sim::simulate_metrics(sharing, fast_options(5));
  EXPECT_LT(r1[0].forward_prob, r0[0].forward_prob);
  EXPECT_LT(r1[1].forward_prob, r0[1].forward_prob);
}

TEST(Simulator, ShareCapIsRespected) {
  // SC 1 idle (tiny load), SC 0 overloaded; SC 1 shares only 2 VMs, so its
  // mean lent count can never exceed 2.
  auto cfg = two_sc(15.0, 0.5, 0, 2);
  sim::Simulator s(cfg, fast_options(11));
  const auto stats = s.run();
  EXPECT_LE(stats[1].metrics.lent, 2.0 + 1e-9);
  EXPECT_GT(stats[1].metrics.lent, 0.5);  // the cap should be nearly saturated
}

TEST(Simulator, AsymmetricLoadsCreateNetFlow) {
  // The loaded SC borrows more than it lends.
  const auto cfg = two_sc(9.5, 4.0, 5, 5);
  const auto m = sim::simulate_metrics(cfg, fast_options(13));
  EXPECT_GT(m[0].borrowed, m[0].lent);
  EXPECT_GT(m[1].lent, m[1].borrowed);
}

TEST(Simulator, UtilizationWithinBounds) {
  const auto cfg = two_sc(9.0, 7.0, 5, 5);
  const auto m = sim::simulate_metrics(cfg, fast_options(17));
  for (const auto& sc : m) {
    EXPECT_GE(sc.utilization, 0.0);
    EXPECT_LE(sc.utilization, 1.0 + 1e-9);
  }
}

TEST(Simulator, DeadlinePolicyBoundsWaits) {
  auto cfg = single_sc(9.0);
  auto options = fast_options(19);
  options.policy = sim::ForwardingPolicy::kDeadline;
  sim::Simulator s(cfg, options);
  const auto stats = s.run();
  // Under the deadline policy no served request ever waits beyond Q.
  EXPECT_DOUBLE_EQ(stats[0].sla_violation_prob, 0.0);
  EXPECT_GT(stats[0].forwarded, 0u);
}

TEST(Simulator, ProbabilisticPolicyWaitsAreMostlyWithinSla) {
  auto cfg = single_sc(9.0);
  sim::Simulator s(cfg, fast_options(23));
  const auto stats = s.run();
  // The PNF admission rule is calibrated so that most queued requests start
  // within Q; a small violation tail remains.
  EXPECT_LT(stats[0].sla_violation_prob, 0.15);
}

TEST(Simulator, OutageForcesForwardingOrBorrowing) {
  auto cfg = two_sc(5.0, 5.0, 0, 5);
  sim::Simulator without(cfg, fast_options(29));
  const auto base = without.run();

  sim::Simulator with(cfg, fast_options(29));
  with.add_outage(0, 1000.0, 6000.0);
  const auto out = with.run();
  // During the outage SC 0 must borrow from SC 1 (or forward).
  EXPECT_GT(out[0].metrics.borrowed, base[0].metrics.borrowed + 0.1);
}

TEST(Simulator, CountersAddUp) {
  const auto cfg = two_sc(8.0, 6.0, 3, 3);
  sim::Simulator s(cfg, fast_options(31));
  const auto stats = s.run();
  for (const auto& sc : stats) {
    // Every measured arrival is eventually served or forwarded (within the
    // small slack of jobs still queued/in service at the horizon).
    const auto settled = sc.served_local + sc.served_remote + sc.forwarded;
    EXPECT_LE(settled, sc.arrivals + 50);
    EXPECT_GE(settled + 50, sc.arrivals);
  }
}

TEST(Simulator, InvalidOptionsThrow) {
  const auto cfg = single_sc(5.0);
  sim::SimOptions bad;
  bad.measure_time = 0.0;
  EXPECT_THROW(sim::Simulator(cfg, bad), scshare::Error);
  sim::Simulator ok(cfg, fast_options());
  EXPECT_THROW(ok.add_outage(5, 0.0, 1.0), scshare::Error);
  EXPECT_THROW(ok.add_outage(0, 2.0, 1.0), scshare::Error);
}

TEST(Simulator, WarmupBatchesMustLeaveMeasurementBatches) {
  const auto cfg = single_sc(5.0);
  auto options = fast_options();
  options.batches = 10;
  options.warmup_batches = 10;
  EXPECT_THROW(sim::Simulator(cfg, options), scshare::Error);
  options.warmup_batches = 12;
  EXPECT_THROW(sim::Simulator(cfg, options), scshare::Error);
}

TEST(Simulator, WarmupBatchDiscardStillYieldsSaneEstimates) {
  // With no time-based warm-up, the initial transient (empty system filling
  // up) leaks into the first batches. Discarding them moves the utilization
  // estimate toward the steady-state model value.
  const auto cfg = single_sc(9.0);
  auto options = fast_options(41);
  options.warmup_time = 1.0;  // nearly no time-based warm-up
  options.batches = 20;

  auto with_discard = options;
  with_discard.warmup_batches = 4;
  sim::Simulator s(cfg, with_discard);
  const auto stats = s.run();
  const auto model = scshare::queueing::solve_no_share(
      {.num_vms = 10, .lambda = 9.0, .mu = 1.0, .max_wait = 0.2});
  EXPECT_NEAR(stats[0].metrics.utilization, model.utilization, 0.03);
  EXPECT_GT(stats[0].lent_hw + stats[0].borrowed_hw + stats[0].forward_rate_hw,
            -1e-12);  // half-widths remain finite and non-negative

  sim::Simulator raw(cfg, options);
  const auto raw_stats = raw.run();
  // The discarded estimate must differ from the raw one (the transient
  // batches carry weight) while both stay finite.
  EXPECT_NE(stats[0].metrics.utilization, raw_stats[0].metrics.utilization);
}
