#include "markov/steady_state.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "markov/ctmc.hpp"

namespace mk = scshare::markov;

namespace {

/// Two-state chain with rates a (0->1) and b (1->0): pi = (b, a) / (a+b).
mk::Ctmc two_state(double a, double b) {
  mk::Ctmc chain(2);
  chain.add_rate(0, 1, a);
  chain.add_rate(1, 0, b);
  chain.finalize();
  return chain;
}

/// Birth-death chain: birth rate lambda in state q < n, death rate q * mu
/// (M/M/inf truncated): pi_q proportional to (lambda/mu)^q / q!.
mk::Ctmc mm_inf(double lambda, double mu, int n) {
  mk::Ctmc chain(static_cast<std::size_t>(n) + 1);
  for (int q = 0; q < n; ++q) {
    chain.add_rate(static_cast<std::size_t>(q), static_cast<std::size_t>(q) + 1,
                   lambda);
    chain.add_rate(static_cast<std::size_t>(q) + 1, static_cast<std::size_t>(q),
                   static_cast<double>(q + 1) * mu);
  }
  chain.finalize();
  return chain;
}

}  // namespace

TEST(Ctmc, GeneratorRowsSumToZero) {
  const auto chain = two_state(2.0, 3.0);
  EXPECT_NEAR(chain.generator().row_sum(0), 0.0, 1e-15);
  EXPECT_NEAR(chain.generator().row_sum(1), 0.0, 1e-15);
}

TEST(Ctmc, ExitRates) {
  const auto chain = two_state(2.0, 3.0);
  EXPECT_DOUBLE_EQ(chain.exit_rates()[0], 2.0);
  EXPECT_DOUBLE_EQ(chain.exit_rates()[1], 3.0);
}

TEST(Ctmc, UniformizedDtmcIsStochastic) {
  const auto chain = two_state(2.0, 3.0);
  const auto p = chain.uniformized_dtmc(chain.uniformization_rate());
  EXPECT_NEAR(p.row_sum(0), 1.0, 1e-14);
  EXPECT_NEAR(p.row_sum(1), 1.0, 1e-14);
}

TEST(Ctmc, AddRateAfterFinalizeThrows) {
  auto chain = two_state(1.0, 1.0);
  EXPECT_THROW(chain.add_rate(0, 1, 1.0), scshare::Error);
}

TEST(Ctmc, NegativeRateThrows) {
  mk::Ctmc chain(2);
  EXPECT_THROW(chain.add_rate(0, 1, -1.0), scshare::Error);
}

TEST(SteadyState, TwoStateClosedForm) {
  const auto chain = two_state(2.0, 3.0);
  const auto result = mk::solve_steady_state(chain);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.pi[0], 0.6, 1e-10);
  EXPECT_NEAR(result.pi[1], 0.4, 1e-10);
}

TEST(SteadyState, DistributionSumsToOne) {
  const auto chain = mm_inf(3.0, 1.0, 20);
  const auto result = mk::solve_steady_state(chain);
  ASSERT_TRUE(result.converged);
  double total = 0.0;
  for (double p : result.pi) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  for (double p : result.pi) EXPECT_GE(p, 0.0);
}

TEST(SteadyState, MmInfMatchesPoissonShape) {
  const double lambda = 2.0;
  const auto chain = mm_inf(lambda, 1.0, 30);
  const auto result = mk::solve_steady_state(chain);
  ASSERT_TRUE(result.converged);
  // pi_q ~ Poisson(lambda) truncated at 30 (tail mass ~ 0 here).
  double expected = std::exp(-lambda);
  for (int q = 0; q <= 10; ++q) {
    EXPECT_NEAR(result.pi[static_cast<std::size_t>(q)], expected, 1e-9)
        << "q=" << q;
    expected *= lambda / static_cast<double>(q + 1);
  }
}

TEST(SteadyState, PowerIterationAgreesWithGaussSeidel) {
  const auto chain = mm_inf(5.0, 1.3, 25);
  const auto gs = mk::solve_steady_state(chain);
  const auto pw = mk::solve_steady_state_power(chain);
  ASSERT_TRUE(gs.converged);
  ASSERT_TRUE(pw.converged);
  for (std::size_t i = 0; i < gs.pi.size(); ++i) {
    EXPECT_NEAR(gs.pi[i], pw.pi[i], 1e-8);
  }
}

TEST(SteadyState, ResidualIsSmall) {
  const auto chain = mm_inf(4.0, 1.0, 15);
  const auto result = mk::solve_steady_state(chain);
  EXPECT_LT(result.residual, 1e-12);
}

TEST(SteadyState, ConvergedResultPopulatesIterationsAndResidual) {
  const auto chain = mm_inf(3.0, 1.0, 20);
  const mk::SteadyStateOptions opts;
  const auto gs = mk::solve_steady_state(chain, opts);
  ASSERT_TRUE(gs.converged);
  EXPECT_GT(gs.iterations, 0u);
  EXPECT_LE(gs.iterations, opts.max_iterations);
  EXPECT_LT(gs.residual, opts.tolerance);

  const auto pw = mk::solve_steady_state_power(chain, opts);
  ASSERT_TRUE(pw.converged);
  EXPECT_GT(pw.iterations, 0u);
  EXPECT_LE(pw.iterations, opts.max_iterations);
  EXPECT_LT(pw.residual, opts.tolerance);
}

TEST(SteadyState, GaussSeidelExhaustedBudgetReportsNonConvergence) {
  const auto chain = mm_inf(3.0, 1.0, 20);
  mk::SteadyStateOptions opts;
  opts.tolerance = 0.0;  // unattainable: residual < 0 never holds
  opts.max_iterations = 3;
  opts.check_interval = 1;
  // solve_steady_state internally falls back to the power iteration, which
  // exhausts the same budget; either path must report honest diagnostics.
  const auto result = mk::solve_steady_state(chain, opts);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 3u);
  EXPECT_GT(result.residual, 0.0);
  EXPECT_EQ(result.pi.size(), chain.num_states());
}

TEST(SteadyState, PowerExhaustedBudgetReportsNonConvergence) {
  const auto chain = mm_inf(3.0, 1.0, 20);
  mk::SteadyStateOptions opts;
  opts.tolerance = 0.0;
  opts.max_iterations = 3;
  opts.check_interval = 1;
  const auto result = mk::solve_steady_state_power(chain, opts);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 3u);
  EXPECT_GT(result.residual, 0.0);
}

TEST(SteadyState, PeriodicChainHandledByUniformizationSlack) {
  // A 2-cycle with equal rates is periodic as an embedded DTMC; the slack in
  // the uniformization rate keeps the power iteration convergent.
  const auto chain = two_state(1.0, 1.0);
  const auto result = mk::solve_steady_state_power(chain);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.pi[0], 0.5, 1e-10);
}
