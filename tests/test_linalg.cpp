#include <gtest/gtest.h>

#include "common/error.hpp"
#include "linalg/csr_matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace la = scshare::linalg;

namespace {

la::CsrMatrix make_example() {
  // [ 1 0 2 ]
  // [ 0 3 0 ]
  la::TripletList t(2, 3);
  t.add(0, 0, 1.0);
  t.add(0, 2, 2.0);
  t.add(1, 1, 3.0);
  return la::CsrMatrix::from_triplets(t);
}

}  // namespace

TEST(CsrMatrix, BuildsFromTriplets) {
  const auto m = make_example();
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 3.0);
}

TEST(CsrMatrix, DuplicateEntriesAreSummed) {
  la::TripletList t(1, 1);
  t.add(0, 0, 1.5);
  t.add(0, 0, 2.5);
  const auto m = la::CsrMatrix::from_triplets(t);
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 4.0);
}

TEST(CsrMatrix, CancellingDuplicatesAreDropped) {
  la::TripletList t(1, 2);
  t.add(0, 0, 1.0);
  t.add(0, 0, -1.0);
  t.add(0, 1, 2.0);
  const auto m = la::CsrMatrix::from_triplets(t);
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(CsrMatrix, ZeroEntriesIgnoredByBuilder) {
  la::TripletList t(2, 2);
  t.add(0, 0, 0.0);
  EXPECT_EQ(t.nnz(), 0u);
}

TEST(CsrMatrix, Multiply) {
  const auto m = make_example();
  const std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y(2);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);  // 1*1 + 2*3
  EXPECT_DOUBLE_EQ(y[1], 6.0);  // 3*2
}

TEST(CsrMatrix, MultiplyTransposed) {
  const auto m = make_example();
  const std::vector<double> x = {1.0, 2.0};
  std::vector<double> y(3);
  m.multiply_transposed(x, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
}

TEST(CsrMatrix, MultiplySizeMismatchThrows) {
  const auto m = make_example();
  std::vector<double> bad(2), y(2);
  EXPECT_THROW(m.multiply(bad, y), scshare::Error);
}

TEST(CsrMatrix, RowSum) {
  const auto m = make_example();
  EXPECT_DOUBLE_EQ(m.row_sum(0), 3.0);
  EXPECT_DOUBLE_EQ(m.row_sum(1), 3.0);
}

TEST(CsrMatrix, EmptyMatrixIsUsable) {
  la::TripletList t(3, 3);
  const auto m = la::CsrMatrix::from_triplets(t);
  EXPECT_EQ(m.nnz(), 0u);
  std::vector<double> x(3, 1.0), y(3, 9.0);
  m.multiply(x, y);
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(VectorOps, SumAndNorms) {
  const std::vector<double> v = {1.0, -2.0, 3.0};
  EXPECT_DOUBLE_EQ(la::sum(v), 2.0);
  EXPECT_DOUBLE_EQ(la::l1_norm(v), 6.0);
}

TEST(VectorOps, MaxAbsDiff) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.5, 1.0};
  EXPECT_DOUBLE_EQ(la::max_abs_diff(a, b), 1.0);
}

TEST(VectorOps, NormalizeProbability) {
  std::vector<double> v = {1.0, 3.0};
  la::normalize_probability(v);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
}

TEST(VectorOps, NormalizeZeroMassThrows) {
  std::vector<double> v = {0.0, 0.0};
  EXPECT_THROW(la::normalize_probability(v), scshare::Error);
}

TEST(VectorOps, Axpy) {
  const std::vector<double> x = {1.0, 2.0};
  std::vector<double> y = {10.0, 20.0};
  la::axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(VectorOps, ClampNonnegative) {
  std::vector<double> v = {1.0, -1e-14, 0.5};
  la::clamp_nonnegative(v);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
  std::vector<double> bad = {-1.0};
  EXPECT_THROW(la::clamp_nonnegative(bad), scshare::Error);
}
