// The tentpole guarantee of the parallel evaluation engine: running the
// market machinery with a thread pool changes the wall-clock, never the
// numbers. An equilibrium computed at --threads 8 must be bit-identical to
// the serial one — including the fault-injection and retry event sequences —
// and the concurrent cache's counters must stay consistent under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/framework.hpp"
#include "exec/thread_pool.hpp"
#include "federation/backend.hpp"
#include "io/config_io.hpp"
#include "obs/trace.hpp"

namespace fed = scshare::federation;
namespace io = scshare::io;

namespace {

std::string read_file(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << "config not found: " << path;
  std::string text;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  return text;
}

struct RunOutcome {
  scshare::market::GameResult result;
  scshare::obs::RunReport report;
};

/// One full equilibrium run of examples/configs/two_sc_tiny.json on a
/// fault-injected retry/fallback chain with `threads` workers.
RunOutcome run_equilibrium(std::size_t threads) {
  const std::string path = std::string(SCSHARE_SOURCE_DIR) +
                           "/examples/configs/two_sc_tiny.json";
  const auto doc = io::Json::parse(read_file(path));
  const auto cfg = io::parse_federation(doc.at("federation"));
  const auto prices = io::parse_prices(doc.at("prices"), cfg.size());
  const auto utility = io::parse_utility(doc.at("utility"));
  const auto game = io::parse_game_options(doc.at("game"));

  scshare::FrameworkOptions options;
  options.exec.threads = threads;
  options.exec.chain = {scshare::BackendKind::kApprox,
                        scshare::BackendKind::kApprox};
  options.exec.retry.max_retries = 2;
  options.exec.faults.fail_probability = 0.25;
  options.exec.faults.perturb_probability = 0.1;
  options.exec.faults.seed = 7;

  scshare::Framework framework(cfg, prices, utility, options);
  RunOutcome outcome;
  outcome.result = framework.find_equilibrium(game);
  outcome.report = framework.report();
  return outcome;
}

/// Trace events whose content and order must be identical at any thread
/// count: everything except exec_batch (which encodes the fan-out width)
/// and the wall-clock-carrying backend_eval events.
std::vector<std::string> deterministic_event_lines(
    const std::vector<scshare::obs::TraceEvent>& events) {
  std::vector<std::string> lines;
  for (const auto& event : events) {
    const std::string type = scshare::obs::event_type_name(event);
    if (type == "exec_batch" || type == "backend_eval") continue;
    // Solver iterations are deterministic in content but interleave across
    // worker threads; everything else is emitted on the game's thread.
    if (type == "solver_iteration") continue;
    lines.push_back(scshare::obs::to_json_line(event));
  }
  return lines;
}

/// Counters that must match exactly: everything except the exec.* family
/// (pool instrumentation legitimately differs with the thread count).
std::map<std::string, std::uint64_t> comparable_counters(
    const std::map<std::string, std::uint64_t>& counters) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, value] : counters) {
    if (name.rfind("exec.", 0) == 0) continue;
    // The ring's self-metrics aggregate every trace event, including the
    // exec_batch events whose count varies with the pool size; the
    // deterministic event *content* is compared separately below.
    if (name.rfind("obs.trace.", 0) == 0) continue;
    out[name] = value;
  }
  return out;
}

}  // namespace

TEST(ParallelDeterminism, EquilibriumBitIdenticalAcrossThreadCounts) {
  const RunOutcome serial = run_equilibrium(1);
  for (const std::size_t threads : {2ul, 4ul, 8ul}) {
    const RunOutcome parallel = run_equilibrium(threads);
    // Bit-identical game outcome (EXPECT_EQ on doubles is exact equality).
    EXPECT_EQ(parallel.result.shares, serial.result.shares)
        << "threads=" << threads;
    EXPECT_EQ(parallel.result.utilities, serial.result.utilities)
        << "threads=" << threads;
    EXPECT_EQ(parallel.result.costs, serial.result.costs)
        << "threads=" << threads;
    EXPECT_EQ(parallel.result.rounds, serial.result.rounds);
    EXPECT_EQ(parallel.result.converged, serial.result.converged);
    EXPECT_EQ(parallel.result.degraded, serial.result.degraded);
    EXPECT_EQ(parallel.result.failed_evaluations,
              serial.result.failed_evaluations);
    EXPECT_EQ(parallel.result.trajectory, serial.result.trajectory);
    // Identical work: every non-exec counter (cache hits/misses, retries,
    // faults injected, solver iterations, game rounds) agrees exactly.
    EXPECT_EQ(comparable_counters(parallel.report.metrics.counters),
              comparable_counters(serial.report.metrics.counters))
        << "threads=" << threads;
    // Identical fault/retry/fallback/best-response event sequences.
    EXPECT_EQ(deterministic_event_lines(parallel.report.events),
              deterministic_event_lines(serial.report.events))
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminism, FaultInjectionFiresRegardlessOfThreads) {
  // Guard against vacuous determinism: the run above must actually exercise
  // the fault/retry machinery.
  const RunOutcome outcome = run_equilibrium(4);
  EXPECT_GT(outcome.report.metrics.counters.at("backend.faults_injected"), 0u);
  EXPECT_GT(outcome.report.metrics.counters.at("backend.retries"), 0u);
}

namespace {

/// Minimal compute backend for cache stress: metrics derived from shares.
class EchoBackend final : public fed::ComputeBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "echo"; }
  std::atomic<int> calls{0};

 protected:
  fed::FederationMetrics compute(const fed::FederationConfig& config) override {
    calls.fetch_add(1, std::memory_order_relaxed);
    fed::FederationMetrics m(config.size());
    for (std::size_t i = 0; i < config.size(); ++i) {
      m[i].lent = static_cast<double>(config.shares[i]);
    }
    return m;
  }
};

}  // namespace

TEST(ConcurrentCache, CountersAddUpUnderContention) {
  // 8 writer threads hammer a bounded cache with overlapping keys; the
  // sharded design must neither lose counts nor corrupt the size bound.
  auto inner = std::make_unique<EchoBackend>();
  EchoBackend* echo = inner.get();
  constexpr std::size_t kCapacity = 16;
  fed::CachingBackend cache(std::move(inner), kCapacity);

  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 500;
  constexpr int kKeySpace = 64;  // > capacity, so evictions happen
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&cache, t] {
      fed::FederationConfig cfg;
      cfg.scs = {{.num_vms = 64, .lambda = 1.0, .mu = 1.0, .max_wait = 0.2},
                 {.num_vms = 64, .lambda = 1.0, .mu = 1.0, .max_wait = 0.2}};
      for (int r = 0; r < kRequestsPerThread; ++r) {
        const int key = (t * 131 + r * 7) % kKeySpace;
        fed::EvalRequest request;
        request.config = cfg;
        request.config.shares = {key, key / 2};
        const auto results = cache.evaluate_batch({&request, 1});
        ASSERT_EQ(results.size(), 1u);
        ASSERT_TRUE(results[0].ok);
        // The cache must never serve a result for a different key.
        ASSERT_EQ(results[0].metrics[0].lent, static_cast<double>(key));
      }
    });
  }
  for (auto& w : writers) w.join();

  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kRequestsPerThread;
  // Every request was either a hit or a miss — nothing lost, nothing double
  // counted.
  EXPECT_EQ(cache.hits() + cache.misses(), total);
  // Every miss reached the inner backend exactly once.
  EXPECT_EQ(echo->calls.load(), static_cast<int>(cache.misses()));
  EXPECT_EQ(cache.evaluations(), cache.misses());
  // Size accounting: at most one insert per miss (two threads that miss on
  // the same key concurrently both count a miss but insert once), minus the
  // evictions; after join() everything has settled within the bound.
  EXPECT_LE(cache.cache_size(), cache.misses() - cache.evictions());
  EXPECT_LE(cache.cache_size(), kCapacity);
  EXPECT_GT(cache.evictions(), 0u);
}
