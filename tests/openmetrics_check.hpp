// Shared OpenMetrics well-formedness checker for tests.
//
// Factored out of test_export.cpp so the live-scrape tests (test_telemetry)
// apply exactly the same rules to documents served by the telemetry endpoint
// as the exporter tests apply to offline renders:
//  * document ends with "# EOF";
//  * at most one "# TYPE" line per family;
//  * every sample line belongs to a declared family (bare name, or the
//    _total / _bucket / _sum / _count derived series).
//
// check_openmetrics() returns the list of violations (empty = well-formed)
// so a test can EXPECT_TRUE(problems.empty()) << joined-problems.
// parse_openmetrics_samples() extracts sample values keyed by the full
// sample line prefix (name + label set), for monotonicity assertions across
// scrapes.
#pragma once

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace scshare::test {

inline std::vector<std::string> openmetrics_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

inline std::vector<std::string> check_openmetrics(const std::string& text) {
  std::vector<std::string> problems;
  const auto lines = openmetrics_lines(text);
  if (lines.empty()) {
    problems.push_back("document is empty");
    return problems;
  }
  if (lines.back() != "# EOF") {
    problems.push_back("document does not end with # EOF");
  }

  std::set<std::string> families;
  for (const auto& line : lines) {
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string family = line.substr(7, line.find(' ', 7) - 7);
      if (!families.insert(family).second) {
        problems.push_back("duplicate # TYPE for " + family);
      }
    }
  }

  for (const auto& line : lines) {
    if (line.empty() || line[0] == '#') continue;
    const std::string name = line.substr(0, line.find_first_of(" {"));
    bool declared = false;
    for (const auto& family : families) {
      if (name == family || name == family + "_total" ||
          name == family + "_bucket" || name == family + "_sum" ||
          name == family + "_count") {
        declared = true;
        break;
      }
    }
    if (!declared) problems.push_back("undeclared sample: " + line);
  }
  return problems;
}

/// Sample values keyed by "name{labels}" (labels included verbatim so the
/// histogram le buckets stay distinct).
inline std::map<std::string, double> parse_openmetrics_samples(
    const std::string& text) {
  std::map<std::string, double> samples;
  for (const auto& line : openmetrics_lines(text)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.find_last_of(' ');
    if (space == std::string::npos) continue;
    try {
      samples[line.substr(0, space)] = std::stod(line.substr(space + 1));
    } catch (...) {
      // Non-numeric trailing token; the declaration check reports it.
    }
  }
  return samples;
}

inline std::string join_problems(const std::vector<std::string>& problems) {
  std::string out;
  for (const auto& p : problems) {
    out += p;
    out += '\n';
  }
  return out;
}

}  // namespace scshare::test
