// Resilient evaluation pipeline: error taxonomy, retry/fallback/fault
// decorators, solver degradation guards, and the game's behaviour on a
// flaky backend.
#include "federation/resilience.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "core/framework.hpp"
#include "federation/detailed_model.hpp"
#include "markov/ctmc.hpp"
#include "markov/steady_state.hpp"
#include "obs/trace.hpp"

namespace fed = scshare::federation;
using scshare::Error;
using scshare::ErrorCode;

namespace {

fed::FederationConfig small() {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 3, .lambda = 2.0, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 3, .lambda = 1.5, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {1, 1};
  return cfg;
}

/// One-element-batch helper: unwraps the EvalResult, throwing on failure.
fed::FederationMetrics eval_one(fed::PerformanceBackend& backend,
                                const fed::FederationConfig& config) {
  fed::EvalRequest request;
  request.config = config;
  auto results = backend.evaluate_batch({&request, 1});
  if (!results.front().ok) throw results.front().to_error();
  return std::move(results.front().metrics);
}

/// Constant metrics tagged with `tag` so tests can tell tiers apart.
class ConstBackend final : public fed::ComputeBackend {
 public:
  explicit ConstBackend(double tag, std::string name = "const")
      : tag_(tag), name_(std::move(name)) {}

  [[nodiscard]] std::string_view name() const override { return name_; }

  int calls = 0;

 protected:
  fed::FederationMetrics compute(const fed::FederationConfig& config) override {
    ++calls;
    fed::FederationMetrics m(config.size());
    for (auto& e : m) e.lent = tag_;
    return m;
  }

 private:
  double tag_;
  std::string name_;
};

/// Fails the first `failures` evaluations with `code`, then succeeds.
class FlakyBackend final : public fed::ComputeBackend {
 public:
  FlakyBackend(int failures, ErrorCode code)
      : failures_(failures), code_(code) {}

  [[nodiscard]] std::string_view name() const override { return "flaky"; }

  int calls = 0;

 protected:
  fed::FederationMetrics compute(const fed::FederationConfig& config) override {
    ++calls;
    if (calls <= failures_) throw Error("flaky failure", code_, "flaky");
    fed::FederationMetrics m(config.size());
    for (auto& e : m) e.lent = 42.0;
    return m;
  }

 private:
  int failures_;
  ErrorCode code_;
};

}  // namespace

// ---- Error taxonomy -------------------------------------------------------

TEST(ErrorTaxonomy, CarriesCodeAndContext) {
  const Error e("iteration budget exhausted",
                ErrorCode::kSolverNonConvergence, "DetailedModel");
  EXPECT_EQ(e.code(), ErrorCode::kSolverNonConvergence);
  EXPECT_EQ(e.context(), "DetailedModel");
  EXPECT_STREQ(e.what(), "DetailedModel: iteration budget exhausted");
}

TEST(ErrorTaxonomy, RetryabilityPartition) {
  EXPECT_FALSE(scshare::is_retryable(ErrorCode::kGeneric));
  EXPECT_FALSE(scshare::is_retryable(ErrorCode::kInvalidConfig));
  EXPECT_TRUE(scshare::is_retryable(ErrorCode::kSolverNonConvergence));
  EXPECT_TRUE(scshare::is_retryable(ErrorCode::kNumericalFailure));
  EXPECT_TRUE(scshare::is_retryable(ErrorCode::kBackendUnavailable));
  EXPECT_TRUE(scshare::is_retryable(ErrorCode::kTimeout));
}

TEST(ErrorTaxonomy, StableWireNames) {
  EXPECT_STREQ(scshare::error_code_name(ErrorCode::kInvalidConfig),
               "invalid_config");
  EXPECT_STREQ(scshare::error_code_name(ErrorCode::kTimeout), "timeout");
}

TEST(ErrorTaxonomy, ConfigValidationNamesTheOffender) {
  fed::FederationConfig cfg = small();
  cfg.shares[1] = 7;  // exceeds num_vms = 3
  try {
    cfg.validate();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidConfig);
    EXPECT_NE(std::string(e.what()).find("scs[1]"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("num_vms"), std::string::npos);
  }

  cfg = small();
  cfg.scs[0].lambda = -1.0;
  try {
    cfg.validate();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidConfig);
    EXPECT_NE(std::string(e.what()).find("scs[0].lambda"), std::string::npos);
  }

  cfg = small();
  cfg.scs[0].mu = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(cfg.validate(), Error);
}

// ---- RetryingBackend ------------------------------------------------------

TEST(RetryingBackend, RetriesUntilSuccess) {
  auto flaky = std::make_unique<FlakyBackend>(2, ErrorCode::kBackendUnavailable);
  FlakyBackend* inner = flaky.get();
  fed::RetryPolicy policy;
  policy.max_retries = 3;
  fed::RetryingBackend backend(std::move(flaky), policy);

  const auto metrics = eval_one(backend, small());
  EXPECT_DOUBLE_EQ(metrics[0].lent, 42.0);
  EXPECT_EQ(inner->calls, 3);  // two failures + one success
  EXPECT_EQ(backend.retries(), 2u);
  EXPECT_EQ(backend.exhausted(), 0u);
}

TEST(RetryingBackend, NonRetryableErrorsPropagateImmediately) {
  auto flaky = std::make_unique<FlakyBackend>(5, ErrorCode::kInvalidConfig);
  FlakyBackend* inner = flaky.get();
  fed::RetryPolicy policy;
  policy.max_retries = 3;
  fed::RetryingBackend backend(std::move(flaky), policy);

  try {
    (void)eval_one(backend, small());
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidConfig);
  }
  EXPECT_EQ(inner->calls, 1);  // no retry of a permanent failure
  EXPECT_EQ(backend.retries(), 0u);
}

TEST(RetryingBackend, ExhaustsBoundedBudget) {
  auto flaky = std::make_unique<FlakyBackend>(100, ErrorCode::kTimeout);
  FlakyBackend* inner = flaky.get();
  fed::RetryPolicy policy;
  policy.max_retries = 2;
  fed::RetryingBackend backend(std::move(flaky), policy);

  EXPECT_THROW((void)eval_one(backend, small()), Error);
  EXPECT_EQ(inner->calls, 3);  // initial attempt + 2 retries
  EXPECT_EQ(backend.retries(), 2u);
  EXPECT_EQ(backend.exhausted(), 1u);
}

TEST(RetryingBackend, DeterministicBackoffSchedule) {
  auto flaky = std::make_unique<FlakyBackend>(3, ErrorCode::kTimeout);
  fed::RetryPolicy policy;
  policy.max_retries = 3;
  policy.base_backoff_seconds = 0.01;
  policy.backoff_multiplier = 2.0;
  fed::RetryingBackend backend(std::move(flaky), policy);

  scshare::obs::RingBufferSink sink(64);
  auto* previous = scshare::obs::set_trace_sink(&sink);
  (void)eval_one(backend, small());
  scshare::obs::set_trace_sink(previous);

  std::vector<double> backoffs;
  for (const auto& event : sink.events()) {
    if (const auto* retry =
            std::get_if<scshare::obs::BackendRetryEvent>(&event)) {
      backoffs.push_back(retry->backoff_seconds);
    }
  }
  ASSERT_EQ(backoffs.size(), 3u);
  EXPECT_DOUBLE_EQ(backoffs[0], 0.01);
  EXPECT_DOUBLE_EQ(backoffs[1], 0.02);
  EXPECT_DOUBLE_EQ(backoffs[2], 0.04);
}

// ---- FallbackBackend ------------------------------------------------------

TEST(FallbackBackend, DescendsTiersInOrder) {
  std::vector<std::unique_ptr<fed::PerformanceBackend>> tiers;
  tiers.push_back(
      std::make_unique<FlakyBackend>(100, ErrorCode::kBackendUnavailable));
  tiers.push_back(std::make_unique<ConstBackend>(2.0, "secondary"));
  tiers.push_back(std::make_unique<ConstBackend>(3.0, "tertiary"));
  fed::FallbackBackend backend(std::move(tiers));
  EXPECT_EQ(backend.name(), "fallback(flaky>secondary>tertiary)");

  const auto metrics = eval_one(backend, small());
  EXPECT_DOUBLE_EQ(metrics[0].lent, 2.0);  // served by the second tier
  EXPECT_TRUE(metrics.degraded());
  EXPECT_EQ(backend.serve_counts()[0], 0u);
  EXPECT_EQ(backend.serve_counts()[1], 1u);
  EXPECT_EQ(backend.serve_counts()[2], 0u);
  EXPECT_EQ(backend.fallbacks(), 1u);
}

TEST(FallbackBackend, PrimaryTierServesUndegraded) {
  std::vector<std::unique_ptr<fed::PerformanceBackend>> tiers;
  tiers.push_back(std::make_unique<ConstBackend>(1.0, "primary"));
  tiers.push_back(std::make_unique<ConstBackend>(2.0, "secondary"));
  fed::FallbackBackend backend(std::move(tiers));

  const auto metrics = eval_one(backend, small());
  EXPECT_DOUBLE_EQ(metrics[0].lent, 1.0);
  EXPECT_FALSE(metrics.degraded());
  EXPECT_EQ(backend.fallbacks(), 0u);
}

TEST(FallbackBackend, AllTiersFailingRaisesBackendUnavailable) {
  std::vector<std::unique_ptr<fed::PerformanceBackend>> tiers;
  tiers.push_back(std::make_unique<FlakyBackend>(100, ErrorCode::kTimeout));
  tiers.push_back(
      std::make_unique<FlakyBackend>(100, ErrorCode::kSolverNonConvergence));
  fed::FallbackBackend backend(std::move(tiers));

  try {
    (void)eval_one(backend, small());
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBackendUnavailable);
    EXPECT_NE(std::string(e.what()).find("all 2 tiers failed"),
              std::string::npos);
  }
}

// ---- Fault specification --------------------------------------------------

TEST(FaultSpec, ParsesTheMiniLanguage) {
  const auto spec = fed::parse_fault_spec(
      "fail=0.3:timeout,timeout=0.05,latency=0.1:0.25,perturb=0.2:0.05,"
      "seed=9");
  EXPECT_DOUBLE_EQ(spec.fail_probability, 0.3);
  EXPECT_EQ(spec.fail_code, ErrorCode::kTimeout);
  EXPECT_DOUBLE_EQ(spec.timeout_probability, 0.05);
  EXPECT_DOUBLE_EQ(spec.latency_probability, 0.1);
  EXPECT_DOUBLE_EQ(spec.latency_seconds, 0.25);
  EXPECT_DOUBLE_EQ(spec.perturb_probability, 0.2);
  EXPECT_DOUBLE_EQ(spec.perturb_magnitude, 0.05);
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_TRUE(spec.enabled());
  EXPECT_FALSE(fed::FaultSpec{}.enabled());
}

TEST(FaultSpec, RejectsBadInput) {
  try {
    (void)fed::parse_fault_spec("flail=0.3");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidConfig);
  }
  EXPECT_THROW((void)fed::parse_fault_spec("fail=1.5"), Error);
  EXPECT_THROW((void)fed::parse_fault_spec("fail=abc"), Error);
  EXPECT_THROW((void)fed::parse_fault_spec("fail=0.1:bogus"), Error);
}

// ---- Deterministic fault injection ---------------------------------------

namespace {

/// Runs `evaluations` evaluations of a freshly-built injector with `spec`,
/// returning the JSONL encoding of every resilience event emitted.
std::vector<std::string> fault_trace(const fed::FaultSpec& spec,
                                     int evaluations, double& tag_sum) {
  auto injector = std::make_unique<fed::FaultInjectingBackend>(
      std::make_unique<ConstBackend>(1.0), spec);
  scshare::obs::RingBufferSink sink(4096);
  auto* previous = scshare::obs::set_trace_sink(&sink);
  const auto cfg = small();
  tag_sum = 0.0;
  for (int i = 0; i < evaluations; ++i) {
    try {
      tag_sum += eval_one(*injector, cfg)[0].lent;
    } catch (const Error&) {
      // Injected failure: part of the sequence under test.
    }
  }
  scshare::obs::set_trace_sink(previous);

  std::vector<std::string> lines;
  for (const auto& event : sink.events()) {
    const std::string type = scshare::obs::event_type_name(event);
    if (type == "backend_fault" || type == "backend_retry" ||
        type == "backend_fallback") {
      lines.push_back(scshare::obs::to_json_line(event));
    }
  }
  return lines;
}

}  // namespace

TEST(FaultInjectingBackend, ByteIdenticalTracesUnderFixedSeed) {
  fed::FaultSpec spec;
  spec.fail_probability = 0.3;
  spec.timeout_probability = 0.1;
  spec.latency_probability = 0.2;
  spec.latency_seconds = 0.5;
  spec.perturb_probability = 0.25;
  spec.seed = 1234;

  double sum_a = 0.0, sum_b = 0.0;
  const auto trace_a = fault_trace(spec, 200, sum_a);
  const auto trace_b = fault_trace(spec, 200, sum_b);
  ASSERT_FALSE(trace_a.empty());
  EXPECT_EQ(trace_a, trace_b);  // byte-identical event sequences
  EXPECT_DOUBLE_EQ(sum_a, sum_b);

  // A different seed produces a different fault pattern.
  spec.seed = 4321;
  double sum_c = 0.0;
  const auto trace_c = fault_trace(spec, 200, sum_c);
  EXPECT_NE(trace_a, trace_c);
}

TEST(FaultInjectingBackend, PerturbationMarksMetricsDegraded) {
  fed::FaultSpec spec;
  spec.perturb_probability = 1.0;
  spec.perturb_magnitude = 0.1;
  fed::FaultInjectingBackend injector(std::make_unique<ConstBackend>(1.0),
                                      spec);
  const auto metrics = eval_one(injector, small());
  EXPECT_TRUE(metrics.degraded());
  EXPECT_GT(injector.faults_injected(), 0u);
  // Perturbation is bounded: within +-10% of the true value.
  EXPECT_GT(metrics[0].lent, 0.9);
  EXPECT_LT(metrics[0].lent, 1.1);
}

// ---- Solver degradation guards -------------------------------------------

TEST(SolverGuards, NumericalFailureIsTypedAndAborted) {
  // An infinite rate poisons the Gauss-Seidel iterate with NaN/Inf on the
  // first sweep; the guard must abort with a typed error instead of
  // laundering the iterate through clamping + renormalization.
  scshare::markov::Ctmc chain(3);
  chain.add_rate(0, 1, std::numeric_limits<double>::infinity());
  chain.add_rate(1, 2, 1.0);
  chain.add_rate(2, 0, 1.0);
  chain.finalize();
  try {
    (void)scshare::markov::solve_steady_state(chain);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNumericalFailure);
  }
}

TEST(SolverGuards, GuardedSolveRelaxesTolerance) {
  // Birth-death chain; an unreachably tight tolerance with a tiny iteration
  // budget cannot converge, but the achieved residual passes at a relaxed
  // tolerance and is flagged as such.
  scshare::markov::Ctmc chain(40);
  for (std::size_t s = 0; s + 1 < 40; ++s) {
    chain.add_rate(s, s + 1, 1.0);
    chain.add_rate(s + 1, s, 0.8);
  }
  chain.finalize();

  scshare::markov::SolverOptions options;
  options.steady_state.tolerance = 1e-300;
  options.steady_state.max_iterations = 64;
  options.relax_attempts = 0;
  const auto strict =
      scshare::markov::solve_steady_state(chain, options.steady_state);
  ASSERT_FALSE(strict.converged);
  ASSERT_TRUE(std::isfinite(strict.residual));

  options.relax_attempts = 2;
  // Two relaxation steps must bridge from 1e-300 to above the residual.
  options.relax_multiplier = 1e155;
  const auto relaxed =
      scshare::markov::solve_steady_state_guarded(chain, options);
  EXPECT_TRUE(relaxed.converged);
  EXPECT_FALSE(relaxed.fully_converged());
  EXPECT_GE(relaxed.relaxations, 1u);
  EXPECT_GT(relaxed.tolerance_used, options.steady_state.tolerance);
}

TEST(SolverGuards, NonConvergenceSurfacesAsTypedError) {
  fed::DetailedModelOptions options;
  options.steady_state_tolerance = 1e-300;  // unreachable
  options.max_iterations = 4;
  options.relax_attempts = 0;
  options.throw_on_nonconvergence = true;
  fed::DetailedModel model(small(), options);
  try {
    (void)model.solve();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kSolverNonConvergence);
  }
}

TEST(SolverGuards, NonConvergenceMarksMetricsDegraded) {
  fed::DetailedModelOptions options;
  options.steady_state_tolerance = 1e-300;
  options.max_iterations = 4;
  options.relax_attempts = 0;
  options.throw_on_nonconvergence = false;  // degrade instead of throwing
  fed::DetailedModel model(small(), options);
  const auto metrics = model.solve();
  EXPECT_TRUE(metrics.degraded());
  for (const auto& m : metrics) EXPECT_TRUE(m.degraded);
}

// ---- Cooperative cancellation through the decorator chain -----------------

TEST(Cancellation, SolverAbortsWithTypedError) {
  scshare::markov::Ctmc chain(3);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 2, 1.0);
  chain.add_rate(2, 0, 1.0);
  chain.finalize();

  const scshare::CancelToken token = scshare::CancelToken::make();
  token.cancel();
  const scshare::ScopedCancelToken ambient(token);
  try {
    (void)scshare::markov::solve_steady_state(chain);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled);
  }
}

TEST(Cancellation, CancelledSolveIsNeverRelaxedIntoConvergence) {
  // solve_steady_state_guarded relaxes tolerances on non-convergence; a
  // cancelled solve must propagate untouched instead of burning relaxation
  // attempts on work the caller abandoned.
  scshare::markov::Ctmc chain(3);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 0, 1.0);
  chain.finalize();

  const scshare::CancelToken token = scshare::CancelToken::make();
  token.cancel();
  const scshare::ScopedCancelToken ambient(token);
  scshare::markov::SolverOptions options;
  options.relax_attempts = 3;
  try {
    (void)scshare::markov::solve_steady_state_guarded(chain, options);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled);
  }
}

TEST(Cancellation, ComputeBackendReturnsTypedResultWithoutComputing) {
  ConstBackend backend(1.0);
  const scshare::CancelToken token = scshare::CancelToken::make();
  token.cancel();
  const scshare::ScopedCancelToken ambient(token);

  fed::EvalRequest request;
  request.config = small();
  const auto results = backend.evaluate_batch({&request, 1});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].code, ErrorCode::kCancelled);
  EXPECT_EQ(backend.calls, 0);  // cancelled before any work started
}

TEST(Cancellation, RetryChainDoesNotRetryCancelledEvaluations) {
  auto inner = std::make_unique<ConstBackend>(1.0);
  ConstBackend* leaf = inner.get();
  fed::RetryPolicy policy;
  policy.max_retries = 3;
  fed::RetryingBackend backend(std::move(inner), policy);

  const scshare::CancelToken token = scshare::CancelToken::make();
  token.cancel();
  const scshare::ScopedCancelToken ambient(token);
  fed::EvalRequest request;
  request.config = small();
  const auto results = backend.evaluate_batch({&request, 1});
  EXPECT_EQ(results[0].code, ErrorCode::kCancelled);
  // Retrying a cancelled evaluation would leak work past the deadline or
  // the shutdown that cancelled it.
  EXPECT_EQ(backend.retries(), 0u);
  EXPECT_EQ(leaf->calls, 0);
}

TEST(Cancellation, FallbackKeepsTypedCancellationWithoutDescendingTiers) {
  std::vector<std::unique_ptr<fed::PerformanceBackend>> tiers;
  tiers.push_back(std::make_unique<ConstBackend>(1.0, "primary"));
  tiers.push_back(std::make_unique<ConstBackend>(2.0, "secondary"));
  auto* secondary = static_cast<ConstBackend*>(tiers[1].get());
  fed::FallbackBackend backend(std::move(tiers));

  const scshare::CancelToken token = scshare::CancelToken::make();
  token.cancel();
  const scshare::ScopedCancelToken ambient(token);
  fed::EvalRequest request;
  request.config = small();
  const auto results = backend.evaluate_batch({&request, 1});
  EXPECT_EQ(results[0].code, ErrorCode::kCancelled);
  EXPECT_EQ(backend.fallbacks(), 0u);
  EXPECT_EQ(secondary->calls, 0);  // no tier descent on cancellation
}

TEST(Cancellation, DecoratorChainStopsCleanlyUnderConcurrentCancellation) {
  // Fault → Retry chain evaluated from several threads, each under its own
  // token that another thread cancels mid-run: after the flag latches, no
  // further leaf work or retries may happen on that thread, and every
  // result is either ok, an injected (possibly retried) fault, or typed
  // kCancelled — never anything else.
  fed::FaultSpec spec;
  spec.fail_probability = 0.2;
  spec.seed = 11;
  auto faulty = std::make_unique<fed::FaultInjectingBackend>(
      std::make_unique<ConstBackend>(1.0), spec);
  fed::RetryPolicy policy;
  policy.max_retries = 2;
  fed::RetryingBackend backend(std::move(faulty), policy);

  constexpr int kThreads = 4;
  std::vector<scshare::CancelToken> tokens;
  tokens.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    tokens.push_back(scshare::CancelToken::make());
  }
  std::vector<std::thread> workers;
  std::atomic<int> unexpected{0};
  std::atomic<int> cancelled_seen{0};
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      const scshare::ScopedCancelToken ambient(tokens[t]);
      const auto cfg = small();
      // Evaluate until the cancel lands (a regression that never latches is
      // caught by the safety deadline, not a hang).
      const auto safety =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (std::chrono::steady_clock::now() < safety) {
        fed::EvalRequest request;
        request.config = cfg;
        const auto results = backend.evaluate_batch({&request, 1});
        if (results[0].ok) continue;
        if (results[0].code == ErrorCode::kCancelled) {
          cancelled_seen.fetch_add(1);
          // Latching: once cancelled, every further evaluation on this
          // thread must also come back cancelled.
          fed::EvalRequest again;
          again.config = cfg;
          const auto after = backend.evaluate_batch({&again, 1});
          if (after[0].code != ErrorCode::kCancelled) unexpected.fetch_add(1);
          return;
        }
        if (results[0].code != spec.fail_code) unexpected.fetch_add(1);
      }
    });
  }
  // Cancel every token while the workers are mid-loop.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  for (const auto& token : tokens) token.cancel();
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_EQ(cancelled_seen.load(), kThreads);
}

TEST(Cancellation, GameReturnsPartialDegradedResultWhenCancelledMidRun) {
  // A backend that cancels the ambient token after a few evaluations models
  // a deadline firing mid-game: the next round boundary must stop the run
  // and return the shares reached so far, marked cancelled + degraded.
  class CancellingBackend final : public fed::ComputeBackend {
   public:
    [[nodiscard]] std::string_view name() const override {
      return "cancelling";
    }
    int calls = 0;

   protected:
    fed::FederationMetrics compute(
        const fed::FederationConfig& config) override {
      if (++calls == 3) scshare::current_cancel_token().cancel();
      fed::FederationMetrics m(config.size());
      for (std::size_t i = 0; i < config.size(); ++i) {
        m[i].lent = static_cast<double>(config.shares[i]);
      }
      return m;
    }
  };

  const auto cfg = small();
  scshare::market::PriceConfig prices;
  prices.public_price.assign(cfg.size(), 1.0);
  prices.federation_price = 0.5;
  CancellingBackend backend;
  scshare::market::GameOptions options;
  options.method = scshare::market::BestResponseMethod::kExhaustive;
  options.max_rounds = 50;

  const scshare::ScopedCancelToken ambient(scshare::CancelToken::make());
  scshare::market::Game game(cfg, prices, {}, backend, options);
  const auto result = game.run();

  EXPECT_TRUE(result.cancelled);
  EXPECT_TRUE(result.degraded);
  EXPECT_LT(result.rounds, options.max_rounds);  // stopped early
  ASSERT_EQ(result.shares.size(), cfg.size());   // partial result intact
  ASSERT_EQ(result.utilities.size(), cfg.size());
}

// ---- Game on a flaky backend ---------------------------------------------

TEST(ResilientGame, EquilibriumSurvivesFaultInjection) {
  const auto cfg = small();
  scshare::market::PriceConfig prices;
  prices.public_price.assign(cfg.size(), 1.0);
  prices.federation_price = 0.5;
  scshare::market::GameOptions game;
  game.method = scshare::market::BestResponseMethod::kExhaustive;

  scshare::FrameworkOptions clean_options;
  scshare::Framework clean(cfg, prices, {}, clean_options);
  const auto clean_result = clean.find_equilibrium(game);

  scshare::FrameworkOptions faulty_options;
  faulty_options.exec.chain = {scshare::BackendKind::kApprox,
                               scshare::BackendKind::kApprox};
  faulty_options.exec.retry.max_retries = 2;
  faulty_options.exec.faults.fail_probability = 0.3;
  faulty_options.exec.faults.seed = 7;
  scshare::Framework faulty(cfg, prices, {}, faulty_options);
  const auto faulty_result = faulty.find_equilibrium(game);

  // Retries and fallbacks absorb the injected failures: the game reaches the
  // same equilibrium as the fault-free run.
  EXPECT_EQ(faulty_result.shares, clean_result.shares);
  EXPECT_EQ(faulty_result.converged, clean_result.converged);

  const auto report = faulty.report();
  EXPECT_GT(report.metrics.counters.at("backend.faults_injected"), 0u);
  EXPECT_GT(report.metrics.counters.at("backend.retries"), 0u);
}

TEST(ResilientGame, UnavailablePipelineKeepsLastKnownGood) {
  // Backend succeeds for a while and then goes permanently dark: the game
  // must finish on last-known-good metrics and mark the run degraded.
  class DyingBackend final : public fed::ComputeBackend {
   public:
    [[nodiscard]] std::string_view name() const override { return "dying"; }
    int calls = 0;

   protected:
    fed::FederationMetrics compute(
        const fed::FederationConfig& config) override {
      ++calls;
      if (calls > 5) {
        throw Error("backend went dark", ErrorCode::kBackendUnavailable,
                    "dying");
      }
      fed::FederationMetrics m(config.size());
      for (std::size_t i = 0; i < config.size(); ++i) {
        m[i].lent = static_cast<double>(config.shares[i]);
      }
      return m;
    }
  };

  const auto cfg = small();
  scshare::market::PriceConfig prices;
  prices.public_price.assign(cfg.size(), 1.0);
  prices.federation_price = 0.5;
  DyingBackend backend;
  scshare::market::GameOptions options;
  options.method = scshare::market::BestResponseMethod::kExhaustive;
  options.max_rounds = 4;
  scshare::market::Game game(cfg, prices, {}, backend, options);

  const auto result = game.run();
  EXPECT_TRUE(result.degraded);
  EXPECT_GT(result.failed_evaluations, 0);
  ASSERT_EQ(result.shares.size(), cfg.size());
  ASSERT_EQ(result.utilities.size(), cfg.size());
}
