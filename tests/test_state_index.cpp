#include "markov/state_index.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

using scshare::markov::StateIndex;

TEST(StateIndex, InternAssignsSequentialIndices) {
  StateIndex idx;
  EXPECT_EQ(idx.intern({0, 0}), 0u);
  EXPECT_EQ(idx.intern({1, 0}), 1u);
  EXPECT_EQ(idx.intern({0, 1}), 2u);
  EXPECT_EQ(idx.size(), 3u);
}

TEST(StateIndex, InternIsIdempotent) {
  StateIndex idx;
  const auto a = idx.intern({3, 1, 4});
  const auto b = idx.intern({3, 1, 4});
  EXPECT_EQ(a, b);
  EXPECT_EQ(idx.size(), 1u);
}

TEST(StateIndex, RoundTrip) {
  StateIndex idx;
  const StateIndex::State s = {5, -2, 7, 0};
  const auto i = idx.intern(s);
  EXPECT_EQ(idx.state(i), s);
  EXPECT_EQ(idx.at(s), i);
}

TEST(StateIndex, AtThrowsForUnknownState) {
  StateIndex idx;
  idx.intern({1});
  EXPECT_THROW((void)idx.at({2}), scshare::Error);
}

TEST(StateIndex, ContainsDistinguishesSimilarStates) {
  StateIndex idx;
  idx.intern({1, 0});
  EXPECT_TRUE(idx.contains({1, 0}));
  EXPECT_FALSE(idx.contains({0, 1}));
  // States of different length must not collide.
  EXPECT_FALSE(idx.contains({1, 0, 0}));
}

TEST(StateIndex, ManyStatesNoCollision) {
  StateIndex idx;
  for (int a = 0; a < 30; ++a) {
    for (int b = 0; b < 30; ++b) {
      idx.intern({a, b});
    }
  }
  EXPECT_EQ(idx.size(), 900u);
  for (int a = 0; a < 30; ++a) {
    for (int b = 0; b < 30; ++b) {
      const auto i = idx.at({a, b});
      EXPECT_EQ(idx.state(i)[0], a);
      EXPECT_EQ(idx.state(i)[1], b);
    }
  }
}
