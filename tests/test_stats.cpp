#include "sim/stats.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace s = scshare::sim;

TEST(Welford, MeanAndVariance) {
  s::WelfordAccumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // unbiased
}

TEST(Welford, SingleSampleHasZeroVariance) {
  s::WelfordAccumulator acc;
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stderr_mean(), 0.0);
}

TEST(Welford, StderrShrinksWithSamples) {
  s::WelfordAccumulator small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2 == 0 ? 1.0 : -1.0);
  for (int i = 0; i < 1000; ++i) large.add(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_GT(small.stderr_mean(), large.stderr_mean());
}

TEST(TimeWeighted, PiecewiseConstantAverage) {
  s::TimeWeightedAverage avg;
  avg.update(2.0, 1.0);  // value 1 over [0, 2)
  avg.update(3.0, 5.0);  // value 5 over [2, 3)
  EXPECT_DOUBLE_EQ(avg.average(), (2.0 * 1.0 + 1.0 * 5.0) / 3.0);
}

TEST(TimeWeighted, ResetDiscardsHistory) {
  s::TimeWeightedAverage avg;
  avg.update(10.0, 100.0);
  avg.reset(10.0);
  avg.update(12.0, 1.0);
  EXPECT_DOUBLE_EQ(avg.average(), 1.0);
  EXPECT_DOUBLE_EQ(avg.elapsed(), 2.0);
}

TEST(TimeWeighted, NoElapsedTimeGivesZero) {
  const s::TimeWeightedAverage avg;
  EXPECT_DOUBLE_EQ(avg.average(), 0.0);
}

TEST(TimeWeighted, BackwardsTimeThrows) {
  s::TimeWeightedAverage avg;
  avg.update(5.0, 1.0);
  EXPECT_THROW(avg.update(4.0, 1.0), scshare::Error);
}

TEST(BatchMeans, PointEstimateAndWidth) {
  const auto r = s::batch_means({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(r.mean, 3.0);
  EXPECT_EQ(r.batches, 5u);
  // stderr = sqrt(2.5 / 5); half width = 1.96 * stderr.
  EXPECT_NEAR(r.half_width, 1.96 * std::sqrt(2.5 / 5.0), 1e-12);
}

TEST(BatchMeans, EmptyInput) {
  const auto r = s::batch_means({});
  EXPECT_DOUBLE_EQ(r.mean, 0.0);
  EXPECT_EQ(r.batches, 0u);
}

TEST(BatchMeans, IdenticalBatchesHaveZeroWidth) {
  const auto r = s::batch_means({2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(r.half_width, 0.0);
}

TEST(BatchMeans, WarmupDiscardRemovesTransientBias) {
  // A decaying transient riding on a flat steady state: the first two
  // batches are inflated. Without discarding, the point estimate is biased
  // high and the interval is wide; after discarding the warm-up window the
  // estimate is exact and the interval collapses.
  const std::vector<double> batches = {9.0, 4.0, 2.0, 2.0, 2.0, 2.0};
  const auto biased = s::batch_means(batches);
  const auto clean = s::batch_means(batches, 2);
  EXPECT_GT(biased.mean, 2.5);
  EXPECT_GT(biased.half_width, 1.0);
  EXPECT_DOUBLE_EQ(clean.mean, 2.0);
  EXPECT_DOUBLE_EQ(clean.half_width, 0.0);
  EXPECT_EQ(clean.batches, 4u);
}

TEST(BatchMeans, DiscardingEverythingYieldsEmptyEstimate) {
  const auto all = s::batch_means({1.0, 2.0}, 2);
  EXPECT_EQ(all.batches, 0u);
  EXPECT_DOUBLE_EQ(all.mean, 0.0);
  const auto more = s::batch_means({1.0, 2.0}, 5);
  EXPECT_EQ(more.batches, 0u);
}
