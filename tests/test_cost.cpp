#include "market/cost.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "queueing/no_share_model.hpp"

namespace mkt = scshare::market;
namespace fed = scshare::federation;

TEST(OperatingCost, MatchesEquationOne) {
  fed::ScMetrics m;
  m.forward_rate = 2.0;
  m.borrowed = 1.5;
  m.lent = 0.5;
  // C = 2.0 * 10 + (1.5 - 0.5) * 4 = 24.
  EXPECT_DOUBLE_EQ(mkt::operating_cost(m, 10.0, 4.0), 24.0);
}

TEST(OperatingCost, NetLenderCanProfit) {
  fed::ScMetrics m;
  m.forward_rate = 0.0;
  m.borrowed = 0.2;
  m.lent = 2.0;
  EXPECT_LT(mkt::operating_cost(m, 10.0, 4.0), 0.0);
}

TEST(Baseline, MatchesNoShareModel) {
  const fed::ScConfig sc{.num_vms = 10, .lambda = 8.0, .mu = 1.0,
                         .max_wait = 0.2};
  const auto b = mkt::compute_baseline(sc, 5.0);
  const auto ref = scshare::queueing::solve_no_share(
      {.num_vms = 10, .lambda = 8.0, .mu = 1.0, .max_wait = 0.2});
  EXPECT_NEAR(b.forward_rate, ref.forward_rate, 1e-10);
  EXPECT_NEAR(b.cost, ref.forward_rate * 5.0, 1e-10);
  EXPECT_NEAR(b.utilization, ref.utilization, 1e-10);
}

TEST(Baseline, CostScalesWithPublicPrice) {
  const fed::ScConfig sc{.num_vms = 10, .lambda = 8.0, .mu = 1.0,
                         .max_wait = 0.2};
  const auto cheap = mkt::compute_baseline(sc, 1.0);
  const auto expensive = mkt::compute_baseline(sc, 3.0);
  EXPECT_NEAR(expensive.cost, 3.0 * cheap.cost, 1e-10);
}

TEST(PriceConfig, Validation) {
  mkt::PriceConfig prices;
  prices.public_price = {1.0, 1.0};
  prices.federation_price = 0.5;
  EXPECT_NO_THROW(prices.validate(2));
  EXPECT_THROW(prices.validate(3), scshare::Error);

  prices.federation_price = 1.5;  // exceeds public price
  EXPECT_THROW(prices.validate(2), scshare::Error);

  prices.federation_price = -0.1;
  EXPECT_THROW(prices.validate(2), scshare::Error);

  prices.public_price = {1.0, 0.0};
  prices.federation_price = 0.0;
  EXPECT_THROW(prices.validate(2), scshare::Error);
}

TEST(Baselines, OnePerSc) {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 5, .lambda = 3.0, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 10, .lambda = 9.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {1, 1};
  mkt::PriceConfig prices;
  prices.public_price = {2.0, 2.0};
  prices.federation_price = 1.0;
  const auto baselines = mkt::compute_baselines(cfg, prices);
  ASSERT_EQ(baselines.size(), 2u);
  // The more loaded SC has higher baseline cost.
  EXPECT_GT(baselines[1].cost, baselines[0].cost);
}
