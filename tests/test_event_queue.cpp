#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace s = scshare::sim;

TEST(EventQueue, OrdersByTime) {
  s::EventQueue q;
  q.push({3.0, 0, s::EventKind::kArrival, 0, 0});
  q.push({1.0, 0, s::EventKind::kArrival, 1, 0});
  q.push({2.0, 0, s::EventKind::kArrival, 2, 0});
  EXPECT_EQ(q.pop().sc, 1u);
  EXPECT_EQ(q.pop().sc, 2u);
  EXPECT_EQ(q.pop().sc, 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  s::EventQueue q;
  for (std::size_t i = 0; i < 10; ++i) {
    q.push({1.0, 0, s::EventKind::kArrival, i, 0});
  }
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(q.pop().sc, i) << "tie order must be FIFO";
  }
}

TEST(EventQueue, SequenceNumbersAreAssigned) {
  s::EventQueue q;
  q.push({1.0, 999, s::EventKind::kArrival, 0, 0});  // seq is overwritten
  q.push({1.0, 0, s::EventKind::kArrival, 1, 0});
  const auto first = q.pop();
  const auto second = q.pop();
  EXPECT_LT(first.seq, second.seq);
}

TEST(EventQueue, InterleavedPushPop) {
  s::EventQueue q;
  q.push({5.0, 0, s::EventKind::kDeparture, 0, 42});
  q.push({1.0, 0, s::EventKind::kArrival, 1, 0});
  EXPECT_EQ(q.pop().kind, s::EventKind::kArrival);
  q.push({2.0, 0, s::EventKind::kDeadline, 2, 7});
  EXPECT_EQ(q.pop().kind, s::EventKind::kDeadline);
  const auto last = q.pop();
  EXPECT_EQ(last.kind, s::EventKind::kDeparture);
  EXPECT_EQ(last.job, 42u);
}
