#include "market/tabu.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mkt = scshare::market;

TEST(Tabu, FindsUnimodalMaximum) {
  const auto objective = [](int x) {
    return -std::pow(static_cast<double>(x) - 7.0, 2.0);
  };
  const auto r = mkt::tabu_search(0, 0, 20, objective);
  EXPECT_EQ(r.best, 7);
  EXPECT_DOUBLE_EQ(r.best_value, 0.0);
}

TEST(Tabu, FindsMaximumFromFarStart) {
  const auto objective = [](int x) {
    return -std::abs(static_cast<double>(x) - 3.0);
  };
  const auto r = mkt::tabu_search(50, 0, 50, objective);
  EXPECT_EQ(r.best, 3);
}

TEST(Tabu, EscapesLocalMaximumWithinDistance) {
  // Two peaks: local at 2 (value 5), global at 6 (value 9); valley between.
  const auto objective = [](int x) {
    switch (x) {
      case 2: return 5.0;
      case 6: return 9.0;
      case 3:
      case 5: return 1.0;
      case 4: return 0.5;
      default: return 0.0;
    }
  };
  mkt::TabuOptions opts;
  opts.distance = 2;
  opts.max_iterations = 40;
  const auto r = mkt::tabu_search(2, 0, 10, objective, opts);
  EXPECT_EQ(r.best, 6);
}

TEST(Tabu, RespectsDomainBounds) {
  const auto objective = [](int x) { return static_cast<double>(x); };
  const auto r = mkt::tabu_search(0, 0, 5, objective);
  EXPECT_EQ(r.best, 5);
  const auto r2 = mkt::tabu_search(10, 2, 5, objective);
  EXPECT_EQ(r2.best, 5);
}

TEST(Tabu, SingletonDomain) {
  const auto objective = [](int) { return 1.0; };
  const auto r = mkt::tabu_search(0, 3, 3, objective);
  EXPECT_EQ(r.best, 3);
  EXPECT_DOUBLE_EQ(r.best_value, 1.0);
}

TEST(Tabu, PlateauTerminates) {
  const auto objective = [](int) { return 0.0; };
  mkt::TabuOptions opts;
  opts.max_iterations = 100;
  const auto r = mkt::tabu_search(5, 0, 10, objective, opts);
  EXPECT_LE(r.iterations, opts.max_iterations);
}

TEST(Tabu, EvaluationCountIsBounded) {
  int calls = 0;
  const auto objective = [&calls](int x) {
    ++calls;
    return -std::pow(static_cast<double>(x) - 4.0, 2.0);
  };
  mkt::TabuOptions opts;
  opts.distance = 2;
  opts.max_iterations = 10;
  (void)mkt::tabu_search(0, 0, 30, objective, opts);
  EXPECT_LE(calls, 1 + opts.max_iterations * 2 * opts.distance);
}

TEST(Tabu, InvalidOptionsThrow) {
  const auto objective = [](int) { return 0.0; };
  EXPECT_THROW((void)mkt::tabu_search(0, 5, 4, objective), scshare::Error);
  mkt::TabuOptions bad;
  bad.distance = 0;
  EXPECT_THROW((void)mkt::tabu_search(0, 0, 5, objective, bad),
               scshare::Error);
}
