// Accuracy-band regression guards for the approximate model at the paper's
// own Fig. 6 configuration (2 SCs, 10 VMs, the other SC at lambda = 7
// sharing 5). The bands encode the accuracy documented in EXPERIMENTS.md —
// any future change to the approximation that degrades them fails here.
// Ground truth is the detailed CTMC (deterministic, no simulation noise).
#include <gtest/gtest.h>

#include "common/math.hpp"
#include "federation/approx_model.hpp"
#include "federation/detailed_model.hpp"

namespace fed = scshare::federation;

namespace {

struct AccuracyCase {
  double target_lambda;
  int target_share;
  double lent_band;      // allowed relative error on Ī
  double borrowed_band;  // allowed relative error on Ō
  double util_band;      // allowed absolute error on rho
};

class ApproxAccuracy : public ::testing::TestWithParam<AccuracyCase> {};

}  // namespace

TEST_P(ApproxAccuracy, WithinDocumentedBands) {
  const auto c = GetParam();
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 10, .lambda = 7.0, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 10, .lambda = c.target_lambda, .mu = 1.0,
              .max_wait = 0.2}};
  cfg.shares = {5, c.target_share};

  const auto exact = fed::solve_detailed(cfg)[1];
  const auto approx = fed::solve_approx_target(cfg, 1);

  EXPECT_LE(scshare::math::relative_error(approx.lent, exact.lent, 0.05),
            c.lent_band)
      << "lent " << approx.lent << " vs " << exact.lent;
  EXPECT_LE(
      scshare::math::relative_error(approx.borrowed, exact.borrowed, 0.05),
      c.borrowed_band)
      << "borrowed " << approx.borrowed << " vs " << exact.borrowed;
  EXPECT_NEAR(approx.utilization, exact.utilization, c.util_band);
  // The approximation must never flip who is the net borrower.
  const double exact_net = exact.borrowed - exact.lent;
  const double approx_net = approx.borrowed - approx.lent;
  if (std::abs(exact_net) > 0.1) {
    EXPECT_GT(exact_net * approx_net, 0.0)
        << "net flow direction flipped: " << approx_net << " vs "
        << exact_net;
  }
}

// Bands from EXPERIMENTS.md: tight at low load / small shares, looser where
// the hierarchy's documented Ī under-estimation kicks in.
INSTANTIATE_TEST_SUITE_P(
    Fig6Grid, ApproxAccuracy,
    ::testing::Values(AccuracyCase{5.0, 1, 0.10, 0.10, 0.01},
                      AccuracyCase{5.0, 9, 0.25, 0.15, 0.01},
                      AccuracyCase{7.0, 1, 0.30, 0.10, 0.01},
                      AccuracyCase{7.0, 9, 0.45, 0.15, 0.02},
                      AccuracyCase{9.0, 1, 0.50, 0.10, 0.01},
                      AccuracyCase{9.0, 9, 0.60, 0.12, 0.02}));
