#include "queueing/no_share_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "queueing/mmc.hpp"

namespace q = scshare::queueing;

TEST(NoShare, DistributionIsProper) {
  const auto r = q::solve_no_share(
      {.num_vms = 10, .lambda = 7.0, .mu = 1.0, .max_wait = 0.2});
  double total = 0.0;
  for (double p : r.pi) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(NoShare, ZeroSlaReducesToErlangLoss) {
  // Q = 0 turns the model into M/M/N/N; the forwarding probability equals
  // Erlang-B blocking.
  const q::MmcParams mmc{.lambda = 7.0, .mu = 1.0, .servers = 10};
  const auto r = q::solve_no_share(
      {.num_vms = 10, .lambda = 7.0, .mu = 1.0, .max_wait = 0.0});
  EXPECT_NEAR(r.forward_prob, q::erlang_b(mmc), 1e-10);
}

TEST(NoShare, HugeSlaReducesToMmc) {
  // Q -> infinity: nothing is ever forwarded; the chain is plain M/M/N and
  // utilization equals rho.
  const auto r = q::solve_no_share(
      {.num_vms = 10, .lambda = 7.0, .mu = 1.0, .max_wait = 50.0});
  EXPECT_LT(r.forward_prob, 1e-8);
  EXPECT_NEAR(r.utilization, 0.7, 1e-6);
  const q::MmcParams mmc{.lambda = 7.0, .mu = 1.0, .servers = 10};
  EXPECT_NEAR(r.mean_queue_length,
              q::mean_customers(mmc) - q::offered_load(mmc), 1e-5);
}

TEST(NoShare, ForwardProbGrowsWithLoad) {
  double prev = 0.0;
  for (double lambda : {4.0, 6.0, 8.0, 9.5, 11.0}) {
    const auto r = q::solve_no_share(
        {.num_vms = 10, .lambda = lambda, .mu = 1.0, .max_wait = 0.2});
    EXPECT_GT(r.forward_prob, prev) << "lambda=" << lambda;
    prev = r.forward_prob;
  }
}

TEST(NoShare, ForwardProbShrinksWithSla) {
  const auto tight = q::solve_no_share(
      {.num_vms = 10, .lambda = 8.0, .mu = 1.0, .max_wait = 0.2});
  const auto loose = q::solve_no_share(
      {.num_vms = 10, .lambda = 8.0, .mu = 1.0, .max_wait = 0.5});
  EXPECT_GT(tight.forward_prob, loose.forward_prob);
}

TEST(NoShare, LargerCloudForwardsLessAtSameUtilization) {
  // Paper Fig. 5 claim: at equal utilization, the 100-VM cloud forwards less
  // than the 10-VM cloud.
  const auto small = q::solve_no_share(
      {.num_vms = 10, .lambda = 8.0, .mu = 1.0, .max_wait = 0.2});
  const auto large = q::solve_no_share(
      {.num_vms = 100, .lambda = 80.0, .mu = 1.0, .max_wait = 0.2});
  EXPECT_GT(small.forward_prob, large.forward_prob);
}

TEST(NoShare, OverloadIsStable) {
  // lambda > N mu: forwarding regulates the queue; the solver must not blow
  // up, and the effective accepted load must not exceed capacity.
  const auto r = q::solve_no_share(
      {.num_vms = 10, .lambda = 25.0, .mu = 1.0, .max_wait = 0.2});
  EXPECT_GT(r.forward_prob, 0.5);
  const double accepted = 25.0 * (1.0 - r.forward_prob);
  EXPECT_LE(accepted, 10.0 + 1e-6);
  EXPECT_LE(r.utilization, 1.0 + 1e-12);
}

TEST(NoShare, StatsAreConsistent) {
  const auto r = q::solve_no_share(
      {.num_vms = 10, .lambda = 9.0, .mu = 1.0, .max_wait = 0.3});
  // Flow balance: accepted rate == served rate == N mu rho.
  const double accepted = 9.0 * (1.0 - r.forward_prob);
  EXPECT_NEAR(accepted, 10.0 * r.utilization, 1e-8);
  EXPECT_NEAR(r.forward_rate, 9.0 * r.forward_prob, 1e-12);
}

TEST(NoShare, InvalidParamsThrow) {
  EXPECT_THROW(
      (void)q::solve_no_share({.num_vms = 0, .lambda = 1.0, .mu = 1.0}),
      scshare::Error);
  EXPECT_THROW(
      (void)q::solve_no_share({.num_vms = 1, .lambda = 0.0, .mu = 1.0}),
      scshare::Error);
}

// Property sweep: flow balance must hold across loads, sizes and SLAs.
struct NoShareCase {
  int n;
  double lambda;
  double max_wait;
};

class NoShareProperty : public ::testing::TestWithParam<NoShareCase> {};

TEST_P(NoShareProperty, FlowBalanceAndBounds) {
  const auto c = GetParam();
  const auto r = q::solve_no_share(
      {.num_vms = c.n, .lambda = c.lambda, .mu = 1.0, .max_wait = c.max_wait});
  EXPECT_GE(r.forward_prob, 0.0);
  EXPECT_LE(r.forward_prob, 1.0);
  const double accepted = c.lambda * (1.0 - r.forward_prob);
  EXPECT_NEAR(accepted, static_cast<double>(c.n) * r.utilization, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NoShareProperty,
    ::testing::Values(NoShareCase{5, 2.0, 0.1}, NoShareCase{5, 4.5, 0.1},
                      NoShareCase{10, 7.0, 0.2}, NoShareCase{10, 9.9, 0.2},
                      NoShareCase{10, 12.0, 0.5}, NoShareCase{20, 18.0, 0.05},
                      NoShareCase{50, 45.0, 0.2}, NoShareCase{100, 90.0, 0.5},
                      NoShareCase{100, 99.0, 0.2}, NoShareCase{3, 2.9, 1.0}));
