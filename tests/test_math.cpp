#include "common/math.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace m = scshare::math;

TEST(LogFactorial, SmallValuesExact) {
  EXPECT_DOUBLE_EQ(m::log_factorial(0), 0.0);
  EXPECT_DOUBLE_EQ(m::log_factorial(1), 0.0);
  EXPECT_NEAR(m::log_factorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(m::log_factorial(10), std::log(3628800.0), 1e-10);
}

TEST(PoissonPmf, MatchesDirectEvaluation) {
  // P[X = 3] for mean 2: e^-2 * 2^3 / 6
  EXPECT_NEAR(m::poisson_pmf(3, 2.0), std::exp(-2.0) * 8.0 / 6.0, 1e-14);
}

TEST(PoissonPmf, ZeroMeanIsPointMass) {
  EXPECT_DOUBLE_EQ(m::poisson_pmf(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(m::poisson_pmf(1, 0.0), 0.0);
}

TEST(PoissonPmf, NegativeKIsZero) {
  EXPECT_DOUBLE_EQ(m::poisson_pmf(-1, 2.0), 0.0);
}

TEST(PoissonPmf, RejectsNegativeMean) {
  EXPECT_THROW((void)m::poisson_pmf(0, -1.0), scshare::Error);
}

TEST(PoissonPmf, StableForLargeMean) {
  // Around the mode the pmf is ~ 1/sqrt(2 pi mean).
  const double mean = 1e6;
  const double p = m::poisson_pmf(1000000, mean);
  EXPECT_NEAR(p, 1.0 / std::sqrt(2 * M_PI * mean), 1e-7);
}

TEST(PoissonCdf, SumsToOneInTheLimit) {
  EXPECT_NEAR(m::poisson_cdf(100, 5.0), 1.0, 1e-12);
}

TEST(PoissonCdf, MatchesPartialSums) {
  double sum = 0.0;
  for (int k = 0; k <= 7; ++k) sum += m::poisson_pmf(k, 3.5);
  EXPECT_NEAR(m::poisson_cdf(7, 3.5), sum, 1e-12);
}

TEST(PoissonSf, ComplementOfCdf) {
  for (int k = 1; k <= 20; ++k) {
    EXPECT_NEAR(m::poisson_sf(k, 4.0), 1.0 - m::poisson_cdf(k - 1, 4.0), 1e-10)
        << "k=" << k;
  }
}

TEST(PoissonSf, DeepTailIsAccurate) {
  // P[X >= 40] for mean 5 is astronomically small but must stay positive and
  // finite (used by the PNF truncation logic).
  // The tail is dominated by the first term: pmf(40; 5) ~ 8.5e-23.
  const double tail = m::poisson_sf(40, 5.0);
  EXPECT_NEAR(tail, m::poisson_pmf(40, 5.0), 0.15 * tail);
  EXPECT_LT(tail, 1e-21);
}

TEST(PoissonSf, EdgeCases) {
  EXPECT_DOUBLE_EQ(m::poisson_sf(0, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(m::poisson_sf(-2, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(m::poisson_sf(1, 0.0), 0.0);
}

TEST(PoissonWindow, WeightsSumToOne) {
  for (double mean : {0.1, 1.0, 7.3, 50.0, 400.0}) {
    const auto w = m::poisson_window(mean, 1e-12);
    double total = 0.0;
    for (double v : w.weights) total += v;
    EXPECT_NEAR(total, 1.0, 1e-12) << "mean=" << mean;
  }
}

TEST(PoissonWindow, CoversRequestedMass) {
  const double mean = 20.0;
  const auto w = m::poisson_window(mean, 1e-10);
  // Mass outside the window (from exact cdf/sf) must be below epsilon.
  const double outside =
      m::poisson_cdf(w.left - 1, mean) + m::poisson_sf(w.right + 1, mean);
  EXPECT_LT(outside, 1e-10);
}

TEST(PoissonWindow, ContainsTheMode) {
  const auto w = m::poisson_window(33.3, 1e-9);
  EXPECT_LE(w.left, 33);
  EXPECT_GE(w.right, 33);
}

TEST(PoissonWindow, ZeroMeanDegenerate) {
  const auto w = m::poisson_window(0.0, 1e-9);
  EXPECT_EQ(w.left, 0);
  EXPECT_EQ(w.right, 0);
  ASSERT_EQ(w.weights.size(), 1u);
  EXPECT_DOUBLE_EQ(w.weights[0], 1.0);
}

TEST(ApproxEqual, RespectsTolerances) {
  EXPECT_TRUE(m::approx_equal(1.0, 1.0 + 1e-10));
  EXPECT_FALSE(m::approx_equal(1.0, 1.001));
  EXPECT_TRUE(m::approx_equal(0.0, 1e-13));
}

TEST(RelativeError, GuardsAgainstTinyReference) {
  EXPECT_DOUBLE_EQ(m::relative_error(2.0, 1.0), 1.0);
  EXPECT_LE(m::relative_error(1e-13, 0.0, 1e-12), 0.1 + 1e-9);
}
