// Tests for the arrival-process extensions: MMPP, batch, and sinusoidal
// (diurnal) arrivals. All families keep the long-run request rate lambda, so
// utilization must match the Poisson case; burstiness must degrade waiting
// behaviour in the expected order.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/simulator.hpp"

namespace fed = scshare::federation;
namespace sim = scshare::sim;

namespace {

fed::FederationConfig single_sc(double lambda) {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 10, .lambda = lambda, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {0};
  return cfg;
}

sim::ScSimStats run_single(sim::ArrivalProcess arrivals, double lambda,
                           std::uint64_t seed = 41) {
  sim::SimOptions o;
  o.warmup_time = 1000.0;
  o.measure_time = 40000.0;
  o.seed = seed;
  o.arrivals = arrivals;
  sim::Simulator s(single_sc(lambda), o);
  return s.run()[0];
}

}  // namespace

TEST(Arrivals, AllFamiliesKeepTheLongRunRate) {
  for (auto family :
       {sim::ArrivalProcess::kPoisson, sim::ArrivalProcess::kMmpp,
        sim::ArrivalProcess::kBatch, sim::ArrivalProcess::kSinusoidal}) {
    const auto stats = run_single(family, 6.0);
    const double rate = static_cast<double>(stats.arrivals) / 40000.0;
    EXPECT_NEAR(rate, 6.0, 0.25) << "family=" << static_cast<int>(family);
    // Flow balance: utilization equals the accepted load over capacity
    // (burstier families forward more, so they carry less, but the balance
    // identity must hold for every family).
    const double accepted = rate * (1.0 - stats.metrics.forward_prob);
    EXPECT_NEAR(stats.metrics.utilization, accepted / 10.0, 0.02)
        << "family=" << static_cast<int>(family);
  }
}

TEST(Arrivals, BurstinessIncreasesForwarding) {
  const auto poisson = run_single(sim::ArrivalProcess::kPoisson, 8.0);
  const auto mmpp = run_single(sim::ArrivalProcess::kMmpp, 8.0);
  const auto batch = run_single(sim::ArrivalProcess::kBatch, 8.0);
  EXPECT_GT(mmpp.metrics.forward_prob, poisson.metrics.forward_prob);
  EXPECT_GT(batch.metrics.forward_prob, poisson.metrics.forward_prob);
}

TEST(Arrivals, DiurnalPeaksForwardMoreThanFlatLoad) {
  // Same average load, but the sinusoidal peak exceeds capacity part of the
  // day -> more forwarding than the flat profile.
  const auto flat = run_single(sim::ArrivalProcess::kPoisson, 7.0);
  const auto diurnal = run_single(sim::ArrivalProcess::kSinusoidal, 7.0);
  EXPECT_GT(diurnal.metrics.forward_prob, flat.metrics.forward_prob);
}

TEST(Arrivals, OffsetPeaksMakeFederationEffective) {
  // Two SCs with anti-phase diurnal peaks: sharing absorbs each other's
  // peaks, so forwarding drops much more than it would for flat loads.
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 10, .lambda = 7.0, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 10, .lambda = 7.0, .mu = 1.0, .max_wait = 0.2}};

  sim::SimOptions o;
  o.warmup_time = 1000.0;
  o.measure_time = 40000.0;
  o.seed = 43;
  o.arrivals = sim::ArrivalProcess::kSinusoidal;  // phases offset by pi

  cfg.shares = {0, 0};
  const auto isolated = scshare::sim::simulate_metrics(cfg, o);
  cfg.shares = {5, 5};
  const auto federated = scshare::sim::simulate_metrics(cfg, o);

  EXPECT_LT(federated[0].forward_prob, 0.5 * isolated[0].forward_prob);
  EXPECT_LT(federated[1].forward_prob, 0.5 * isolated[1].forward_prob);
}

TEST(Arrivals, InvalidParametersThrow) {
  sim::SimOptions o;
  o.arrivals = sim::ArrivalProcess::kBatch;
  o.batch_mean_size = 0.5;
  EXPECT_THROW(sim::Simulator(single_sc(5.0), o), scshare::Error);

  o = {};
  o.arrivals = sim::ArrivalProcess::kMmpp;
  o.mmpp_burst_factor = 0.5;
  EXPECT_THROW(sim::Simulator(single_sc(5.0), o), scshare::Error);

  o = {};
  o.arrivals = sim::ArrivalProcess::kSinusoidal;
  o.sin_amplitude = 1.5;
  EXPECT_THROW(sim::Simulator(single_sc(5.0), o), scshare::Error);
}

TEST(Arrivals, BatchSizesAverageOut) {
  // Indirect check of the geometric batch generator: the number of arrival
  // events is ~ arrivals / mean_size.
  sim::SimOptions o;
  o.warmup_time = 500.0;
  o.measure_time = 30000.0;
  o.seed = 47;
  o.arrivals = sim::ArrivalProcess::kBatch;
  o.batch_mean_size = 4.0;
  sim::Simulator s(single_sc(4.0), o);
  const auto stats = s.run()[0];
  EXPECT_NEAR(static_cast<double>(stats.arrivals) / 30000.0, 4.0, 0.3);
}
