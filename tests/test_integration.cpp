// Cross-module integration tests: the three performance backends must agree
// qualitatively, and the full pipeline (performance model -> cost -> utility
// -> game -> welfare) must reproduce the paper's headline behaviours on a
// small federation.
#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "federation/approx_model.hpp"
#include "federation/detailed_model.hpp"
#include "sim/simulator.hpp"

namespace fed = scshare::federation;
namespace mkt = scshare::market;

namespace {

fed::FederationConfig federation(double l1, double l2, int s1, int s2) {
  fed::FederationConfig cfg;
  cfg.scs = {{.num_vms = 5, .lambda = l1, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 5, .lambda = l2, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {s1, s2};
  return cfg;
}

}  // namespace

TEST(Integration, ThreeBackendsAgreeOnForwardProbability) {
  const auto cfg = federation(3.5, 2.5, 2, 2);

  const auto detailed = fed::solve_detailed(cfg);
  const auto approx = fed::solve_approx(cfg);
  scshare::sim::SimOptions so;
  so.warmup_time = 1000.0;
  so.measure_time = 30000.0;
  so.seed = 123;
  const auto simulated = scshare::sim::simulate_metrics(cfg, so);

  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(simulated[i].forward_prob, detailed[i].forward_prob, 0.01)
        << "sim vs detailed, sc=" << i;
    EXPECT_NEAR(approx[i].forward_prob, detailed[i].forward_prob, 0.02)
        << "approx vs detailed, sc=" << i;
    EXPECT_NEAR(approx[i].utilization, detailed[i].utilization, 0.05)
        << "approx vs detailed, sc=" << i;
  }
}

TEST(Integration, FederationBeatsIsolationOnCost) {
  // The paper's core premise: sharing lowers every SC's operating cost when
  // the federation price is below the public price.
  const auto cfg = federation(4.0, 2.0, 3, 3);
  mkt::PriceConfig prices;
  prices.public_price = {1.0, 1.0};
  prices.federation_price = 0.4;

  scshare::FrameworkOptions opts;
  opts.backend = scshare::BackendKind::kDetailed;
  scshare::Framework fw(cfg, prices, {.gamma = 0.0}, opts);

  const auto costs = fw.costs({3, 3});
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_LT(costs[i], fw.baselines()[i].cost) << "sc=" << i;
  }
}

TEST(Integration, EquilibriumWelfareTracksPriceRegions) {
  // Utilitarian welfare at equilibrium should be (weakly) larger at a higher
  // C^G/C^P than at a tiny one: lenders earn more per shared VM, which is
  // the driver behind the paper's Fig. 7a shape.
  const auto cfg = federation(4.2, 2.2, 0, 0);

  fed::CachingBackend backend(std::make_unique<fed::DetailedBackend>());
  mkt::SweepOptions options;
  options.ratios = {0.1, 0.7};
  options.game.method = mkt::BestResponseMethod::kExhaustive;
  const auto points = mkt::run_price_sweep(cfg, backend, options);

  const double w_low =
      points[0].outcomes[0].welfare_ne;  // utilitarian at ratio 0.1
  const double w_high = points[1].outcomes[0].welfare_ne;
  EXPECT_GE(w_high, w_low * 0.9);  // allow small non-monotonicity
}

TEST(Integration, GameOnSimulationBackendIsStable) {
  // The game must converge even with a noisy (simulated) cost oracle,
  // because the caching backend freezes each vector's estimate.
  const auto cfg = federation(4.0, 2.5, 0, 0);
  scshare::sim::SimOptions so;
  so.warmup_time = 300.0;
  so.measure_time = 4000.0;
  so.seed = 77;
  fed::CachingBackend backend(
      std::make_unique<fed::SimulationBackend>(so));
  mkt::PriceConfig prices;
  prices.public_price = {1.0, 1.0};
  prices.federation_price = 0.5;
  mkt::GameOptions options;
  options.method = mkt::BestResponseMethod::kExhaustive;
  mkt::Game game(cfg, prices, {.gamma = 0.0}, backend, options);
  const auto result = game.run();
  EXPECT_TRUE(result.converged || result.rounds >= 2);
}

TEST(Integration, OutageMotivatesFederation) {
  // The paper's AWS-outage motivation: with a federation, an SC hit by an
  // outage keeps serving most requests through borrowed VMs.
  auto cfg = federation(2.0, 2.0, 0, 4);
  scshare::sim::SimOptions so;
  so.warmup_time = 500.0;
  so.measure_time = 10000.0;
  so.seed = 5;

  scshare::sim::Simulator with_fed(cfg, so);
  with_fed.add_outage(0, 2000.0, 8000.0);
  const auto fed_stats = with_fed.run();

  auto isolated = cfg;
  isolated.shares = {0, 0};
  scshare::sim::Simulator alone(isolated, so);
  alone.add_outage(0, 2000.0, 8000.0);
  const auto alone_stats = alone.run();

  EXPECT_LT(fed_stats[0].metrics.forward_prob,
            alone_stats[0].metrics.forward_prob);
}
