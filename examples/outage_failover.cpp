// Outage failover: the paper motivates federations with the Feb 28, 2017 AWS
// outage — when one provider goes down, federated peers absorb its load.
//
// We simulate a 3-SC federation in which SC 0 loses all of its VMs for a
// window of the run, and compare its forwarding (lost-to-public-cloud) rate
// and SLA behaviour with and without the federation.
//
// The second half demonstrates the evaluation pipeline's own failover: a
// fallback chain whose primary backend is hit by injected faults keeps
// serving evaluations from its healthy tiers (federation/resilience.hpp).
//
// Build & run:  ./examples/outage_failover
#include <cstdio>
#include <memory>

#include "federation/backend.hpp"
#include "federation/resilience.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace scshare;

  federation::FederationConfig config;
  config.scs = {
      {.num_vms = 10, .lambda = 6.0, .mu = 1.0, .max_wait = 0.2},
      {.num_vms = 10, .lambda = 5.0, .mu = 1.0, .max_wait = 0.2},
      {.num_vms = 10, .lambda = 4.0, .mu = 1.0, .max_wait = 0.2},
  };

  sim::SimOptions options;
  options.warmup_time = 1000.0;
  options.measure_time = 20000.0;
  options.seed = 42;

  const double outage_start = 5000.0;
  const double outage_end = 15000.0;

  auto run_with_shares = [&](std::vector<int> shares) {
    config.shares = std::move(shares);
    sim::Simulator simulator(config, options);
    simulator.add_outage(0, outage_start, outage_end);
    return simulator.run();
  };

  std::printf("SC 0 suffers a full outage for t in [%.0f, %.0f) "
              "(half the measured window).\n\n",
              outage_start, outage_end);

  const auto isolated = run_with_shares({0, 0, 0});
  const auto federated = run_with_shares({5, 5, 5});

  std::printf("%-22s %14s %14s\n", "metric (SC 0)", "isolated", "federated");
  std::printf("%-22s %14.4f %14.4f\n", "forward probability",
              isolated[0].metrics.forward_prob,
              federated[0].metrics.forward_prob);
  std::printf("%-22s %14.4f %14.4f\n", "forward rate [req/s]",
              isolated[0].metrics.forward_rate,
              federated[0].metrics.forward_rate);
  std::printf("%-22s %14.4f %14.4f\n", "mean borrowed VMs",
              isolated[0].metrics.borrowed, federated[0].metrics.borrowed);
  std::printf("%-22s %14.4f %14.4f\n", "mean wait [s]",
              isolated[0].mean_wait, federated[0].mean_wait);
  std::printf("%-22s %14lu %14lu\n", "requests served",
              static_cast<unsigned long>(isolated[0].served_local +
                                         isolated[0].served_remote),
              static_cast<unsigned long>(federated[0].served_local +
                                         federated[0].served_remote));

  const double saved = (isolated[0].metrics.forward_rate -
                        federated[0].metrics.forward_rate) *
                       options.measure_time;
  std::printf("\nThe federation kept ~%.0f requests off the public cloud "
              "during the run.\n", saved);

  // ---- Backend failover: the evaluation pipeline under injected faults ----
  //
  // The primary (approx) tier is wrapped with a deterministic fault injector
  // that fails 40% of evaluations and with bounded retries; a clean approx
  // tier backs it up. The chain absorbs every injected outage.
  std::printf("\nEvaluation-pipeline failover (fault injection demo):\n");
  config.shares = {5, 5, 5};

  federation::FaultSpec faults;
  faults.fail_probability = 0.4;
  faults.seed = 7;
  federation::RetryPolicy retry;
  retry.max_retries = 1;

  std::vector<std::unique_ptr<federation::PerformanceBackend>> tiers;
  tiers.push_back(std::make_unique<federation::RetryingBackend>(
      std::make_unique<federation::FaultInjectingBackend>(
          std::make_unique<federation::ApproxBackend>(), faults),
      retry));
  tiers.push_back(std::make_unique<federation::ApproxBackend>());
  federation::FallbackBackend chain(std::move(tiers));

  const int evaluations = 20;
  std::vector<federation::EvalRequest> requests(evaluations);
  for (int i = 0; i < evaluations; ++i) {
    requests[i].config = config;
    requests[i].tag = static_cast<std::uint64_t>(i);
  }
  int degraded = 0;
  for (const auto& result : chain.evaluate_batch(requests)) {
    if (result.ok && result.metrics.degraded()) ++degraded;
  }

  std::printf("  %d evaluations through %s\n", evaluations,
              std::string(chain.name()).c_str());
  for (std::size_t t = 0; t < chain.num_tiers(); ++t) {
    std::printf("  tier %zu (%-12s) served %llu\n", t,
                std::string(chain.tier_name(t)).c_str(),
                static_cast<unsigned long long>(chain.serve_counts()[t]));
  }
  std::printf("  fallback descents: %llu, degraded results: %d, "
              "failures seen by callers: 0\n",
              static_cast<unsigned long long>(chain.fallbacks()), degraded);
  return 0;
}
