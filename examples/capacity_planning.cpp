// Capacity planning: how many VMs should my SC share?
//
// An operator fixes the rest of the federation (two peers with known sharing
// behaviour) and sweeps its own share count S from 0 to N, printing the
// resulting operating cost (Eq. (1)) and utility (Eq. (2)) so that the knee
// of the curve is visible. This is exactly the per-SC decision problem the
// market game automates.
//
// Build & run:  ./examples/capacity_planning
#include <cstdio>

#include "core/framework.hpp"

int main() {
  using namespace scshare;

  federation::FederationConfig config;
  config.scs = {
      {.num_vms = 10, .lambda = 7.0, .mu = 1.0, .max_wait = 0.2},  // peer A
      {.num_vms = 10, .lambda = 8.5, .mu = 1.0, .max_wait = 0.2},  // peer B
      {.num_vms = 10, .lambda = 6.0, .mu = 1.0, .max_wait = 0.2},  // our SC
  };
  config.shares = {3, 2, 0};  // peers' committed shares; ours swept below
  const std::size_t me = 2;

  market::PriceConfig prices;
  prices.public_price = {1.0, 1.0, 1.0};
  prices.federation_price = 0.4;

  FrameworkOptions options;
  options.backend = BackendKind::kSimulation;  // robust at any federation size
  options.sim.warmup_time = 2000.0;
  options.sim.measure_time = 40000.0;
  options.sim.seed = 2024;

  Framework framework(config, prices, {.gamma = 0.0}, options);

  std::printf("Capacity planning for SC %zu (lambda=%.1f, baseline cost "
              "%.4f/s)\n",
              me, config.scs[me].lambda, framework.baselines()[me].cost);
  std::printf("%-6s %10s %10s %10s %12s %12s\n", "share", "lent", "borrowed",
              "fwd/s", "cost", "utility");

  double best_utility = -1.0;
  int best_share = 0;
  for (int share = 0; share <= config.scs[me].num_vms; ++share) {
    auto shares = config.shares;
    shares[me] = share;
    const auto metrics = framework.metrics_for(shares);
    const auto costs = framework.costs(shares);
    const auto utilities = framework.utilities(shares);
    std::printf("%-6d %10.3f %10.3f %10.4f %12.4f %12.4f\n", share,
                metrics[me].lent, metrics[me].borrowed,
                metrics[me].forward_rate, costs[me], utilities[me]);
    if (utilities[me] > best_utility) {
      best_utility = utilities[me];
      best_share = share;
    }
  }
  std::printf("\nBest response for SC %zu: share %d VMs (utility %.4f)\n", me,
              best_share, best_utility);
  return 0;
}
