// Diurnal peaks: the paper motivates federation with SCs that "do not
// experience peak workloads at the same time". This example simulates three
// SCs with identical average load but offset daily peaks and shows how much
// public-cloud traffic the federation absorbs compared to isolation — and
// compares against the same federation under flat (Poisson) load, where
// sharing helps far less.
//
// Build & run:  ./examples/diurnal_peaks
#include <cstdio>

#include "sim/simulator.hpp"

int main() {
  using namespace scshare;

  federation::FederationConfig config;
  for (int i = 0; i < 3; ++i) {
    config.scs.push_back(
        {.num_vms = 10, .lambda = 7.0, .mu = 1.0, .max_wait = 0.2});
  }

  sim::SimOptions options;
  options.warmup_time = 2000.0;
  options.measure_time = 60000.0;
  options.seed = 2026;

  const auto run = [&](bool diurnal, std::vector<int> shares) {
    options.arrivals = diurnal ? sim::ArrivalProcess::kSinusoidal
                               : sim::ArrivalProcess::kPoisson;
    options.sin_amplitude = 0.6;   // peaks at 11.2 req/s, off-peak 2.8
    options.sin_period = 2000.0;   // one "day"; SC peaks offset by 1/3 day
    config.shares = std::move(shares);
    return sim::simulate_metrics(config, options);
  };

  std::printf("3 SCs, 10 VMs each, average lambda = 7.0 (rho = 0.7)\n\n");
  std::printf("%-26s %14s %14s %14s\n", "scenario", "fwd_prob(SC0)",
              "fwd_prob(SC1)", "fwd_prob(SC2)");

  const auto report = [](const char* name,
                         const federation::FederationMetrics& m) {
    std::printf("%-26s %14.4f %14.4f %14.4f\n", name, m[0].forward_prob,
                m[1].forward_prob, m[2].forward_prob);
  };

  const auto flat_isolated = run(false, {0, 0, 0});
  const auto flat_federated = run(false, {5, 5, 5});
  const auto peak_isolated = run(true, {0, 0, 0});
  const auto peak_federated = run(true, {5, 5, 5});

  report("flat / isolated", flat_isolated);
  report("flat / federated", flat_federated);
  report("diurnal / isolated", peak_isolated);
  report("diurnal / federated", peak_federated);

  const auto total_fwd = [](const federation::FederationMetrics& m) {
    return m[0].forward_rate + m[1].forward_rate + m[2].forward_rate;
  };
  std::printf("\nFederation cuts forwarded traffic by %.0f%% under flat load\n"
              "and by %.0f%% under offset diurnal peaks — exactly the\n"
              "complementary-peaks effect the paper's introduction builds on.\n",
              100.0 * (1.0 - total_fwd(flat_federated) /
                                 total_fwd(flat_isolated)),
              100.0 * (1.0 - total_fwd(peak_federated) /
                                 total_fwd(peak_isolated)));
  return 0;
}
