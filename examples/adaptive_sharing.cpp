// Adaptive sharing: the deployment loop from the paper's Sect. VII ("each SC
// would collect sufficient historical traces ... and update its sharing
// decisions after observing a long-term change in system parameters").
//
// Two SCs run the market game at their initial loads. Midway, SC 0's traffic
// doubles; the controller's workload monitor confirms the regime change,
// re-estimates the arrival rates, and re-runs the game. We compare SC 0's
// operating cost under the stale sharing vector against the re-negotiated
// one.
//
// Build & run:  ./examples/adaptive_sharing
#include <cstdio>

#include "common/rng.hpp"
#include "control/sharing_controller.hpp"
#include "core/framework.hpp"

int main() {
  using namespace scshare;

  federation::FederationConfig config;
  config.scs = {
      {.num_vms = 10, .lambda = 2.5, .mu = 1.0, .max_wait = 0.2},
      {.num_vms = 10, .lambda = 6.0, .mu = 1.0, .max_wait = 0.2},
  };
  config.shares = {0, 0};

  market::PriceConfig prices;
  prices.public_price = {1.0, 1.0};
  prices.federation_price = 0.4;

  federation::CachingBackend backend(
      std::make_unique<federation::DetailedBackend>(
          federation::DetailedModelOptions{}));

  control::ControllerOptions options;
  options.game.method = market::BestResponseMethod::kExhaustive;
  control::SharingController controller(config, prices, backend, options);

  // Initial negotiation at the configured loads.
  auto initial = controller.renegotiate(0.0);
  std::printf("initial agreement: shares (%d, %d)\n\n",
              initial.new_shares[0], initial.new_shares[1]);

  // Feed the arrival stream: phase 1 at the configured rates, phase 2 with
  // SC 0 doubled.
  Rng rng(2027);
  const auto feed = [&](double from, double until, double l0, double l1) {
    double next0 = from + rng.exponential(l0);
    double next1 = from + rng.exponential(l1);
    while (std::min(next0, next1) < until) {
      if (next0 <= next1) {
        controller.observe_arrival(0, next0);
        next0 += rng.exponential(l0);
      } else {
        controller.observe_arrival(1, next1);
        next1 += rng.exponential(l1);
      }
    }
  };

  feed(0.0, 6000.0, 2.5, 6.0);
  std::printf("after stable phase:   renegotiation due? %s\n",
              controller.renegotiation_due() ? "yes" : "no");

  feed(6000.0, 9000.0, 9.0, 6.0);  // SC 0's load more than triples
  std::printf("after SC0 load x3.6:  renegotiation due? %s\n",
              controller.renegotiation_due() ? "yes" : "no");
  std::printf("estimated rates: SC0 %.2f (true 9.0), SC1 %.2f (true 6.0)\n\n",
              controller.monitor(0).fast_rate(),
              controller.monitor(1).fast_rate());

  const auto stale_shares = controller.shares();
  const auto decision = controller.renegotiate(9000.0);

  // Cost comparison at the *new* true loads.
  federation::FederationConfig now = config;
  now.scs[0].lambda = 9.0;
  Framework fw(now, prices, {.gamma = 0.0},
               {.backend = BackendKind::kDetailed});
  const auto stale_costs = fw.costs(stale_shares);
  const auto adapted_costs = fw.costs(decision.new_shares);

  std::printf("re-negotiated shares: (%d, %d) -> (%d, %d)\n",
              decision.old_shares[0], decision.old_shares[1],
              decision.new_shares[0], decision.new_shares[1]);
  const auto stale_utilities = fw.utilities(stale_shares);
  std::printf("\n%-18s %12s %12s\n", "SC0 cost/s", "stale", "adapted");
  std::printf("%-18s %12.4f %12.4f\n", "", stale_costs[0], adapted_costs[0]);

  if (adapted_costs[0] < stale_costs[0]) {
    std::printf("\nKeeping the stale agreement would overpay by %.1f%%.\n",
                100.0 * (stale_costs[0] - adapted_costs[0]) /
                    std::max(adapted_costs[0], 1e-9));
  } else {
    // The stale vector can look cheaper for SC 0, but it is no longer an
    // equilibrium at the new loads: selfish best responses move away from
    // it (here the partner withdraws), so it would not survive.
    std::printf(
        "\nThe stale deal looks cheaper for SC 0, but it is no longer an\n"
        "equilibrium at the new loads (partner utility %.4f under the\n"
        "stale vector, and its best response is to change strategy).\n"
        "Among selfish SCs only the re-negotiated agreement survives —\n"
        "which is why the paper's framework couples monitoring with the\n"
        "market game instead of freezing a one-off contract.\n",
        stale_utilities[1]);
  }
  return 0;
}
