// Market equilibrium: run the repeated sharing game (Algorithm 1) for a
// 3-SC federation and report the equilibrium sharing vector, per-SC costs
// and utilities, and the welfare under the three fairness criteria.
//
// Build & run:  ./examples/market_equilibrium
#include <cstdio>

#include "core/framework.hpp"

int main() {
  using namespace scshare;

  federation::FederationConfig config;
  config.scs = {
      {.num_vms = 10, .lambda = 5.8, .mu = 1.0, .max_wait = 0.2},
      {.num_vms = 10, .lambda = 7.3, .mu = 1.0, .max_wait = 0.2},
      {.num_vms = 10, .lambda = 8.4, .mu = 1.0, .max_wait = 0.2},
  };
  config.shares = {0, 0, 0};

  market::PriceConfig prices;
  prices.public_price = {1.0, 1.0, 1.0};
  prices.federation_price = 0.6;

  FrameworkOptions options;
  options.backend = BackendKind::kSimulation;
  options.sim.warmup_time = 1000.0;
  options.sim.measure_time = 60000.0;
  options.sim.seed = 7;

  Framework framework(config, prices, {.gamma = 0.0}, options);

  market::GameOptions game;
  game.method = market::BestResponseMethod::kTabu;
  game.tabu.distance = 3;
  // The cost oracle is a simulation: require a material utility gain before
  // an SC moves, so noise cannot keep the dynamics wandering.
  game.improvement_tolerance = 0.1;

  std::printf("Running the repeated sharing game (C^G/C^P = %.2f)...\n",
              prices.federation_price / prices.public_price[0]);
  const auto eq = framework.find_equilibrium(game);

  std::printf("%s after %d rounds.\n",
              eq.converged ? "Converged to a pure-strategy equilibrium"
                           : "Stopped without full convergence",
              eq.rounds);
  std::printf("\n%-4s %8s %8s %12s %12s %10s\n", "SC", "lambda", "share",
              "cost(isol.)", "cost(eq.)", "utility");
  for (std::size_t i = 0; i < config.size(); ++i) {
    std::printf("%-4zu %8.2f %8d %12.4f %12.4f %10.4f\n", i,
                config.scs[i].lambda, eq.shares[i],
                framework.baselines()[i].cost, eq.costs[i], eq.utilities[i]);
  }

  std::printf("\nWelfare at equilibrium:\n");
  for (auto fairness : market::kAllFairness) {
    std::printf("  %-13s %.4f\n", market::fairness_name(fairness),
                market::welfare(fairness, eq.shares, eq.utilities));
  }

  std::printf("\nShare trajectory:\n");
  for (std::size_t r = 0; r < eq.trajectory.size(); ++r) {
    std::printf("  round %zu: (", r + 1);
    for (std::size_t i = 0; i < eq.trajectory[r].size(); ++i) {
      std::printf("%s%d", i ? ", " : "", eq.trajectory[r][i]);
    }
    std::printf(")\n");
  }
  return 0;
}
