// Quickstart: estimate what joining a federation is worth to a small cloud.
//
// Two SCs with 10 VMs each: one busy (lambda = 8), one quiet (lambda = 4).
// We compare each SC's operating cost in isolation (all overflow goes to a
// public cloud at price C^P = 1.0 per VM-hour) against the cost inside a
// federation where each SC shares 5 VMs at price C^G = 0.5.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/framework.hpp"

int main() {
  using namespace scshare;

  federation::FederationConfig config;
  config.scs = {
      {.num_vms = 10, .lambda = 8.0, .mu = 1.0, .max_wait = 0.2},  // busy SC
      {.num_vms = 10, .lambda = 4.0, .mu = 1.0, .max_wait = 0.2},  // quiet SC
  };
  config.shares = {5, 5};

  market::PriceConfig prices;
  prices.public_price = {1.0, 1.0};  // C^P
  prices.federation_price = 0.5;     // C^G

  Framework framework(config, prices, {.gamma = 0.0});

  const auto metrics = framework.metrics();
  const auto costs = framework.costs(config.shares);

  std::printf("SC-Share quickstart: 2 SCs, 10 VMs each, sharing 5 VMs\n");
  std::printf("%-4s %8s %8s %10s %10s %10s %12s %12s\n", "SC", "lambda",
              "rho", "lent", "borrowed", "fwd/s", "cost(isol.)",
              "cost(fed.)");
  for (std::size_t i = 0; i < config.size(); ++i) {
    std::printf("%-4zu %8.2f %8.3f %10.3f %10.3f %10.4f %12.4f %12.4f\n", i,
                config.scs[i].lambda, metrics[i].utilization, metrics[i].lent,
                metrics[i].borrowed, metrics[i].forward_rate,
                framework.baselines()[i].cost, costs[i]);
  }

  std::printf("\nInterpretation: the busy SC forwards less to the public\n"
              "cloud by borrowing federation VMs at half the price; the\n"
              "quiet SC earns revenue for VMs that would otherwise idle.\n");
  return 0;
}
