// Surge analysis: how much public-cloud spend does a demand surge cause
// before the system settles?
//
// Steady-state models answer "how much do I forward on average"; here we use
// the transient machinery directly (uniformization + accumulated rewards) to
// price a finite surge: an SC running at comfortable load is hit by a surge
// arrival rate for T seconds, and we compute the expected number of requests
// forwarded to the public cloud during the surge — starting from the
// pre-surge steady state, not from the post-surge equilibrium.
//
// Build & run:  ./examples/surge_analysis
#include <cstdio>
#include <vector>

#include "markov/ctmc.hpp"
#include "markov/steady_state.hpp"
#include "markov/transient.hpp"
#include "queueing/forwarding.hpp"
#include "queueing/no_share_model.hpp"

int main() {
  using namespace scshare;

  const int n = 10;          // VMs
  const double mu = 1.0;
  const double q_sla = 0.2;  // SLA wait bound
  const double base_lambda = 6.0;
  const double surge_lambda = 12.0;
  const double public_price = 1.0;  // $ per forwarded request

  // Birth-death chain of the SC under the *surge* arrival rate.
  const int q_max =
      queueing::truncation_queue_length(n, mu, q_sla) + 1;
  markov::Ctmc chain(static_cast<std::size_t>(q_max) + 1);
  std::vector<double> forward_rate(static_cast<std::size_t>(q_max) + 1, 0.0);
  for (int q = 0; q <= q_max; ++q) {
    const double admit = queueing::prob_no_forward(q, n, mu, q_sla);
    if (q < q_max) {
      chain.add_rate(static_cast<std::size_t>(q),
                     static_cast<std::size_t>(q) + 1, surge_lambda * admit);
    }
    if (q > 0) {
      chain.add_rate(static_cast<std::size_t>(q),
                     static_cast<std::size_t>(q) - 1,
                     std::min(q, n) * mu);
    }
    // Reward = instantaneous forwarding rate in state q.
    forward_rate[static_cast<std::size_t>(q)] = surge_lambda * (1.0 - admit);
  }
  chain.finalize();

  // Initial condition: steady state under the pre-surge load.
  const auto before = queueing::solve_no_share(
      {.num_vms = n, .lambda = base_lambda, .mu = mu, .max_wait = q_sla});
  std::vector<double> p0(static_cast<std::size_t>(q_max) + 1, 0.0);
  for (std::size_t q = 0; q < before.pi.size() && q < p0.size(); ++q) {
    p0[q] = before.pi[q];
  }

  // Steady state under the surge (the long-run regime).
  const auto during = queueing::solve_no_share(
      {.num_vms = n, .lambda = surge_lambda, .mu = mu, .max_wait = q_sla});

  const markov::TransientSolver solver(chain);
  std::printf("SC with %d VMs at lambda=%.0f hit by a surge to lambda=%.0f\n",
              n, base_lambda, surge_lambda);
  std::printf("steady-state forwarding: before %.4f/s, during surge %.4f/s\n\n",
              before.forward_rate, during.forward_rate);

  std::printf("%-10s %18s %18s %14s\n", "horizon", "E[forwarded]",
              "steady-state est.", "transient/SS");
  for (double horizon : {1.0, 2.0, 5.0, 10.0, 30.0, 120.0}) {
    const double forwarded =
        solver.accumulated_reward(p0, forward_rate, horizon);
    const double naive = during.forward_rate * horizon;
    std::printf("%-10.0f %18.3f %18.3f %14.2f\n", horizon, forwarded, naive,
                forwarded / naive);
  }

  std::printf("\nShort surges cost much less than the steady-state rate\n"
              "suggests (the queue takes seconds to build), so an SC sizing\n"
              "its federation share against brief spikes can commit more VMs\n"
              "than a steady-state analysis would allow. Expected spend for\n"
              "a 30 s surge: $%.2f at C^P = %.2f per request.\n",
              public_price *
                  solver.accumulated_reward(p0, forward_rate, 30.0),
              public_price);
  return 0;
}
