#include "serve/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "io/config_io.hpp"
#include "io/json.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/slo.hpp"
#include "obs/status.hpp"
#include "obs/timer.hpp"
#include "obs/window.hpp"

namespace scshare::serve {
namespace {

/// Shared serve-plane instruments (stable handles; see obs/metrics.hpp).
struct ServeObs {
  obs::Counter& submitted;
  obs::Counter& admitted;
  obs::Counter& shed;
  obs::Counter& invalid;
  obs::Counter& completed;
  obs::Counter& failed;
  obs::Counter& deadline_exceeded;
  obs::Counter& cancelled;
  obs::Gauge& in_flight;
  obs::Histogram& request_seconds;

  ServeObs()
      : submitted(obs::MetricsRegistry::global().counter("serve.submitted")),
        admitted(obs::MetricsRegistry::global().counter("serve.admitted")),
        shed(obs::MetricsRegistry::global().counter("serve.shed")),
        invalid(obs::MetricsRegistry::global().counter("serve.invalid")),
        completed(obs::MetricsRegistry::global().counter("serve.completed")),
        failed(obs::MetricsRegistry::global().counter("serve.failed")),
        deadline_exceeded(obs::MetricsRegistry::global().counter(
            "serve.deadline_exceeded")),
        cancelled(obs::MetricsRegistry::global().counter("serve.cancelled")),
        in_flight(obs::MetricsRegistry::global().gauge("serve.in_flight")),
        request_seconds(obs::MetricsRegistry::global().histogram(
            "serve.request_seconds")) {}
};

ServeObs& serve_obs() {
  static ServeObs instruments;
  return instruments;
}

net::HttpResponse json_response(int status, const io::Json& body) {
  net::HttpResponse response;
  response.status = status;
  response.content_type = "application/json; charset=utf-8";
  response.body = body.dump(2) + "\n";
  return response;
}

net::HttpResponse error_response(int status, const std::string& message,
                                 bool retry_after = false) {
  io::JsonObject out;
  out["error"] = message;
  net::HttpResponse response = json_response(status, io::Json(std::move(out)));
  if (retry_after) response.headers.emplace_back("Retry-After", "1");
  return response;
}

double ms_between(std::int64_t from_ns, std::int64_t to_ns) {
  return static_cast<double>(to_ns - from_ns) * 1e-6;
}

/// Outcome fed to the SLO plane for a terminal job state.
obs::RequestOutcome outcome_for(JobState state) {
  switch (state) {
    case JobState::kSucceeded: return obs::RequestOutcome::kOk;
    case JobState::kFailed: return obs::RequestOutcome::kError;
    case JobState::kDeadlineExceeded:
      return obs::RequestOutcome::kDeadlineExceeded;
    case JobState::kCancelled: return obs::RequestOutcome::kCancelled;
    case JobState::kShed: return obs::RequestOutcome::kShed;
    case JobState::kQueued:
    case JobState::kRunning: break;  // not terminal
  }
  return obs::RequestOutcome::kError;
}

}  // namespace

const char* job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kSucceeded: return "succeeded";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kDeadlineExceeded: return "deadline_exceeded";
    case JobState::kShed: return "shed";
  }
  return "unknown";
}

struct Daemon::Job {
  std::string id;
  std::string operation;
  io::Json request;  ///< parsed POST body
  CancelToken token;
  obs::CorrelationId correlation = 0;

  // Request-lifecycle trace (all guarded by `mutex` once the job is shared;
  // -1 = the stage never ran). Stamped by handle_submit (transport, parse)
  // and run_job (queue_wait, solve, render); rendered by /v1/jobs/<id>/trace.
  std::int64_t deadline_ms = 0;      ///< effective deadline; 0 = none
  std::int64_t accepted_at_ns = 0;   ///< transport accept() (steady clock)
  std::int64_t admitted_at_ns = 0;   ///< admission granted, handed to pool
  double transport_ms = -1.0;  ///< accept → request fully read (net layer)
  double parse_ms = -1.0;      ///< JSON parse + field validation
  double queue_wait_ms = -1.0; ///< admission → a job worker picked it up
  double solve_ms = -1.0;      ///< solver work
  double render_ms = -1.0;     ///< result JSON rendering
  double total_ms = -1.0;      ///< accept (or admission) → terminal state

  std::mutex mutex;
  std::condition_variable cv;
  JobState state = JobState::kQueued;
  bool done = false;
  bool has_result = false;
  bool bad_request = false;  ///< failed because the request was invalid
  io::Json result;
  std::string error;
};

Daemon::Daemon(federation::FederationConfig config, market::PriceConfig prices,
               market::UtilityParams utility, DaemonOptions options)
    : options_(std::move(options)) {
  require(options_.drain_timeout_ms > 0,
          "DaemonOptions: drain_timeout_ms must be positive");
  require(options_.max_queue_depth >= 1,
          "DaemonOptions: max_queue_depth must be >= 1");
  framework_ = std::make_unique<Framework>(std::move(config), std::move(prices),
                                           utility, options_.framework);
  pool_ = std::make_unique<exec::ThreadPool>(
      std::max<std::size_t>(1, options_.job_threads));

  // SLO plane: objectives are process-wide (the daemon owns the process).
  {
    obs::SloObjectives objectives;
    objectives.latency_ms = options_.slo_latency_ms;
    objectives.availability = options_.slo_availability;
    obs::SloPlane::global().set_objectives(objectives);
  }
  if (!options_.flight_dir.empty()) {
    obs::FlightRecorderOptions fopts = obs::FlightRecorder::global().options();
    fopts.artifact_dir = options_.flight_dir;
    obs::FlightRecorder::global().configure(fopts);
  }

  obs::TelemetryServer::Options topts;
  topts.bind = false;  // embedded: served from the daemon's own listener
  topts.backend_label = options_.backend_label;
  topts.requests_served_fn = [this]() -> std::uint64_t {
    return server_ ? server_->requests_served() : 0;
  };
  topts.healthz_hook = [this](std::string& out, bool& degraded) {
    const std::size_t inflight = in_flight();
    const bool shedding = inflight >= options_.max_queue_depth;
    if (shedding || draining()) degraded = true;
    const DaemonCounts c = counts();
    out += ",\"serve_in_flight\":" + std::to_string(inflight);
    out += ",\"serve_admitted\":" + std::to_string(c.admitted);
    out += ",\"serve_shed\":" + std::to_string(c.shed);
    out += ",\"serve_deadline_exceeded\":" +
           std::to_string(c.deadline_exceeded);
    out += ",\"serve_shedding\":";
    out += shedding ? "true" : "false";
    out += ",\"serve_draining\":";
    out += draining() ? "true" : "false";
  };
  telemetry_ = std::make_unique<obs::TelemetryServer>(std::move(topts));

  net::HttpServerOptions hopts;
  hopts.port = options_.port;
  hopts.io_threads = std::max<std::size_t>(1, options_.io_threads);
  hopts.max_body_bytes = options_.max_body_bytes;
  hopts.read_timeout_ms = options_.read_timeout_ms;
  hopts.observer = obs::make_http_observer();
  server_ = std::make_unique<net::HttpServer>(
      hopts, [this](const net::HttpRequest& request) { return handle(request); });

  obs::StatusBoard::global().set("serve.port", static_cast<int>(port()));
  obs::StatusBoard::global().set("serve.backend", options_.backend_label);
  obs::log_info("serve", "daemon listening",
                {obs::field("port", static_cast<std::uint64_t>(port())),
                 obs::field("job_threads",
                            static_cast<std::uint64_t>(options_.job_threads)),
                 obs::field("max_queue_depth", static_cast<std::uint64_t>(
                                                   options_.max_queue_depth))});
}

Daemon::~Daemon() {
  try {
    drain();
  } catch (...) {
    // Destruction must not throw; the drain result is advisory here.
  }
  server_.reset();  // joins io threads (all waiters answered by now)
  pool_.reset();    // runs any still-queued (cancelled) jobs, joins workers
}

std::uint16_t Daemon::port() const noexcept {
  return server_ ? server_->port() : 0;
}

DaemonCounts Daemon::counts() const {
  const std::lock_guard<std::mutex> lock(counts_mutex_);
  return counts_;
}

std::size_t Daemon::in_flight() const {
  const std::lock_guard<std::mutex> lock(jobs_mutex_);
  return in_flight_;
}

bool Daemon::drain() {
  using Clock = std::chrono::steady_clock;
  if (draining_.exchange(true, std::memory_order_acq_rel)) {
    // Someone else is draining: wait for them and report their outcome.
    std::unique_lock<std::mutex> lock(jobs_mutex_);
    jobs_cv_.wait(lock, [this] {
      return drained_.load(std::memory_order_acquire);
    });
    return drain_clean_;
  }

  server_->stop_accepting();
  obs::log_info("serve", "drain started",
                {obs::field("in_flight",
                            static_cast<std::uint64_t>(in_flight()))});

  const auto start = Clock::now();
  const auto natural_deadline =
      start + std::chrono::milliseconds(options_.drain_timeout_ms * 3 / 5);
  const auto hard_deadline =
      start + std::chrono::milliseconds(options_.drain_timeout_ms);
  {
    std::unique_lock<std::mutex> lock(jobs_mutex_);
    // Phase 1: let in-flight jobs finish naturally.
    jobs_cv_.wait_until(lock, natural_deadline,
                        [this] { return in_flight_ == 0; });
    if (in_flight_ > 0) {
      // Phase 2: cancel whatever is left; the cooperative checks surface
      // within about one solver sweep.
      obs::log_warn("serve", "drain cancelling in-flight jobs",
                    {obs::field("in_flight",
                                static_cast<std::uint64_t>(in_flight_))});
      for (auto& [id, job] : jobs_) job->token.cancel();
      jobs_cv_.wait_until(lock, hard_deadline,
                          [this] { return in_flight_ == 0; });
    }
    drain_clean_ = in_flight_ == 0;
  }

  // Answer everything already accepted (io threads drain their queue, and
  // every admitted job has reached — or is about to reach — a terminal
  // state), then join.
  server_->stop();
  drained_.store(true, std::memory_order_release);
  jobs_cv_.notify_all();
  obs::log_info("serve", "drain finished",
                {obs::field("clean", drain_clean_),
                 obs::field("requests_served", server_->requests_served())});
  return drain_clean_;
}

net::HttpResponse Daemon::handle(const net::HttpRequest& request) {
  const bool is_api = request.path == "/v1/equilibrium" ||
                      request.path == "/v1/sweep" ||
                      request.path == "/v1/evaluate";
  if (is_api) {
    if (request.method != "POST") {
      return error_response(405, "submit jobs with POST");
    }
    return handle_submit(request.path.substr(4), request);
  }
  if (request.path.rfind("/v1/jobs/", 0) == 0) {
    const std::string rest = request.path.substr(9);
    const std::size_t slash = rest.find('/');
    if (slash == std::string::npos) return handle_job_poll(rest);
    if (rest.substr(slash) == "/trace") {
      return handle_job_trace(rest.substr(0, slash));
    }
    return error_response(404, "unknown job sub-resource: " + rest);
  }
  if (request.path == "/") {
    net::HttpResponse response;
    response.body =
        "scshare_serve\n"
        "  POST /v1/equilibrium       - run the sharing game to equilibrium\n"
        "  POST /v1/sweep             - price-ratio sweep\n"
        "  POST /v1/evaluate          - metrics/costs/utilities of a sharing "
        "vector\n"
        "  GET  /v1/jobs/<id>         - poll an async job\n"
        "  GET  /v1/jobs/<id>/trace   - per-job stage timings\n"
        "  GET  /metrics /healthz /statusz /profilez /slosz /debugz/flight - "
        "telemetry plane\n";
    return response;
  }
  return telemetry_->handle(request);
}

net::HttpResponse Daemon::handle_submit(const std::string& operation,
                                        const net::HttpRequest& request) {
  ServeObs& instruments = serve_obs();
  instruments.submitted.add();
  {
    const std::lock_guard<std::mutex> lock(counts_mutex_);
    ++counts_.submitted;
  }

  if (draining()) {
    instruments.shed.add();
    {
      const std::lock_guard<std::mutex> lock(counts_mutex_);
      ++counts_.shed;
    }
    obs::SloPlane::global().record(obs::RequestOutcome::kShed, -1.0);
    return error_response(503, "daemon is draining", /*retry_after=*/true);
  }

  const std::int64_t parse_started_ns = obs::window_now_ns();
  io::Json body;
  try {
    body = io::Json::parse(request.body.empty() ? "{}" : request.body);
    require(body.type() == io::Json::Type::kObject,
            "request body must be a JSON object");
  } catch (const std::exception& e) {
    instruments.invalid.add();
    {
      const std::lock_guard<std::mutex> lock(counts_mutex_);
      ++counts_.invalid;
    }
    obs::SloPlane::global().record(obs::RequestOutcome::kError, -1.0);
    return error_response(400, std::string("malformed request body: ") +
                                   e.what());
  }
  std::int64_t deadline_ms = options_.default_deadline_ms;
  bool async = false;
  try {
    deadline_ms = body.get_or("deadline_ms",
                              static_cast<int>(options_.default_deadline_ms));
    async = body.get_or("async", false);
  } catch (const std::exception& e) {
    instruments.invalid.add();
    {
      const std::lock_guard<std::mutex> lock(counts_mutex_);
      ++counts_.invalid;
    }
    obs::SloPlane::global().record(obs::RequestOutcome::kError, -1.0);
    return error_response(400, std::string("invalid request field: ") +
                                   e.what());
  }

  auto job = std::make_shared<Job>();
  job->operation = operation;
  job->request = std::move(body);
  job->correlation = obs::next_correlation_id();
  job->deadline_ms = deadline_ms;
  job->accepted_at_ns = request.accepted_at_ns;
  if (request.accepted_at_ns > 0 && request.parsed_at_ns > 0) {
    job->transport_ms = ms_between(request.accepted_at_ns,
                                   request.parsed_at_ns);
  }
  job->parse_ms = ms_between(parse_started_ns, obs::window_now_ns());
  // Always a live token (even without a deadline) so drain can cancel it.
  job->token = deadline_ms > 0 ? CancelToken::with_deadline_ms(deadline_ms)
                               : CancelToken::make();

  // Admission: bound on jobs in flight (queued + running). A shed request
  // still gets an id and a terminal "shed" job record so its trace can be
  // fetched afterwards — it just never counts as admitted or in flight.
  bool shed = false;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    job->id = "job-" + std::to_string(
                           next_job_.fetch_add(1, std::memory_order_relaxed));
    if (in_flight_ >= options_.max_queue_depth) {
      shed = true;
      job->state = JobState::kShed;
      job->done = true;
      job->error = "admission queue full";
      job->total_ms =
          job->accepted_at_ns > 0
              ? ms_between(job->accepted_at_ns, obs::window_now_ns())
              : -1.0;
      jobs_[job->id] = job;
      job_order_.push_back(job->id);
      while (job_order_.size() > options_.job_history) {
        jobs_.erase(job_order_.front());
        job_order_.pop_front();
      }
    } else {
      job->admitted_at_ns = obs::window_now_ns();
      jobs_[job->id] = job;
      ++in_flight_;
      instruments.in_flight.set(static_cast<double>(in_flight_));
    }
  }
  if (shed) {
    instruments.shed.add();
    {
      const std::lock_guard<std::mutex> lock(counts_mutex_);
      ++counts_.shed;
    }
    obs::FlightRecorder::global().note_event("job.shed", job->id);
    const bool burn_edge =
        obs::SloPlane::global().record(obs::RequestOutcome::kShed, -1.0);
    obs::FlightRecorder::global().trigger("shed", job->id);
    if (burn_edge) {
      obs::FlightRecorder::global().trigger("slo_burn", job->id);
    }
    return render_job(job, /*accepted=*/false);  // kShed → 429 + Retry-After
  }
  instruments.admitted.add();
  {
    const std::lock_guard<std::mutex> lock(counts_mutex_);
    ++counts_.admitted;
  }
  {
    const obs::ScopedCorrelation ctx(job->correlation);
    obs::log_debug("serve", "job admitted",
                   {obs::field("job", job->id),
                    obs::field("operation", operation),
                    obs::field("deadline_ms", deadline_ms),
                    obs::field("async", async)});
    obs::FlightRecorder::global().note_event("job.admitted", job->id);
  }

  {
    auto pending = pool_->submit([this, job] { run_job(job); });
    (void)pending;  // packaged-task future: destruction does not block
  }

  if (async) return render_job(job, /*accepted=*/true);

  // Synchronous: this io thread blocks until the job reaches a terminal
  // state. Jobs always terminate — deadline tokens fire on their own, and
  // drain cancels the rest — so no extra timeout is layered here.
  {
    std::unique_lock<std::mutex> lock(job->mutex);
    job->cv.wait(lock, [&job] { return job->done; });
  }
  return render_job(job, /*accepted=*/false);
}

net::HttpResponse Daemon::handle_job_poll(const std::string& id) {
  std::shared_ptr<Job> job;
  {
    const std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(id);
    if (it != jobs_.end()) job = it->second;
  }
  if (!job) return error_response(404, "unknown job id: " + id);
  return render_job(job, /*accepted=*/false);
}

net::HttpResponse Daemon::handle_job_trace(const std::string& id) {
  std::shared_ptr<Job> job;
  {
    const std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(id);
    if (it != jobs_.end()) job = it->second;
  }
  if (!job) return error_response(404, "unknown job id: " + id);

  io::JsonObject out;
  const std::lock_guard<std::mutex> lock(job->mutex);
  out["job_id"] = job->id;
  out["operation"] = job->operation;
  out["state"] = std::string(job_state_name(job->state));
  out["correlation_id"] = std::to_string(job->correlation);
  out["deadline_ms"] = static_cast<double>(job->deadline_ms);
  io::JsonObject stages;
  auto stage = [&stages](const char* name, double ms) {
    stages[name] = ms >= 0.0 ? io::Json(ms) : io::Json();
  };
  stage("transport_ms", job->transport_ms);
  stage("parse_ms", job->parse_ms);
  stage("queue_wait_ms", job->queue_wait_ms);
  stage("solve_ms", job->solve_ms);
  stage("render_ms", job->render_ms);
  out["stages"] = io::Json(std::move(stages));
  out["total_ms"] = job->total_ms >= 0.0 ? io::Json(job->total_ms) : io::Json();
  return json_response(200, io::Json(std::move(out)));
}

net::HttpResponse Daemon::render_job(const std::shared_ptr<Job>& job,
                                     bool accepted) const {
  io::JsonObject out;
  JobState state;
  {
    const std::lock_guard<std::mutex> lock(job->mutex);
    state = job->state;
    out["job_id"] = job->id;
    out["operation"] = job->operation;
    out["state"] = std::string(job_state_name(state));
    out["correlation_id"] = std::to_string(job->correlation);
    if (job->has_result) out["result"] = job->result;
    if (!job->error.empty()) out["error"] = job->error;
    if (state == JobState::kFailed && job->bad_request) {
      return json_response(400, io::Json(std::move(out)));
    }
  }
  int status = 200;
  if (accepted) {
    status = 202;
  } else if (state == JobState::kFailed) {
    status = 500;
  } else if (state == JobState::kDeadlineExceeded) {
    status = 504;
  } else if (state == JobState::kCancelled) {
    status = 503;
  } else if (state == JobState::kShed) {
    status = 429;
  }
  net::HttpResponse response = json_response(status, io::Json(std::move(out)));
  if (state == JobState::kShed) {
    response.headers.emplace_back("Retry-After", "1");
  }
  return response;
}

void Daemon::run_job(const std::shared_ptr<Job>& job) {
  const obs::ScopedCorrelation ctx(job->correlation);
  const ScopedCancelToken cancel(job->token);
  std::int64_t stage_start = obs::window_now_ns();
  {
    const std::lock_guard<std::mutex> lock(job->mutex);
    job->state = JobState::kRunning;
    if (job->admitted_at_ns > 0) {
      job->queue_wait_ms = ms_between(job->admitted_at_ns, stage_start);
    }
  }
  // Stage clock: solve runs from here until mark_solved (the solver /
  // evaluation call of the operation branch), render from then until
  // mark_rendered (result JSON construction + dump).
  auto mark_solved = [&job, &stage_start] {
    const std::int64_t now = obs::window_now_ns();
    const std::lock_guard<std::mutex> lock(job->mutex);
    job->solve_ms = ms_between(stage_start, now);
    stage_start = now;
  };
  auto mark_rendered = [&job, &stage_start] {
    const std::int64_t now = obs::window_now_ns();
    const std::lock_guard<std::mutex> lock(job->mutex);
    job->render_ms = ms_between(stage_start, now);
  };
  ServeObs& instruments = serve_obs();
  const obs::ScopedTimer timer(&instruments.request_seconds);
  const obs::Span span("serve.job");

  try {
    // A job cancelled while still queued (drain, or a deadline shorter than
    // its queueing delay) never touches the solvers.
    throw_if_cancelled("serve.job");

    if (job->operation == "equilibrium") {
      market::GameOptions game;
      if (job->request.contains("game")) {
        game = io::parse_game_options(job->request.at("game"));
      }
      market::GameResult result = framework_->find_equilibrium(game);
      mark_solved();
      if (result.cancelled) {
        // Partial result: the shares reached so far ride along with the 504.
        std::string rendered = io::to_json(result).dump();
        mark_rendered();
        finish_job(job,
                   job->token.deadline_exceeded() ? JobState::kDeadlineExceeded
                                                  : JobState::kCancelled,
                   std::move(rendered),
                   "game cancelled before equilibrium; partial result");
        return;
      }
      std::string rendered = io::to_json(result).dump();
      mark_rendered();
      finish_job(job, JobState::kSucceeded, std::move(rendered), {});
    } else if (job->operation == "sweep") {
      require(job->request.contains("sweep"),
              "sweep request requires a \"sweep\" section");
      const io::Json& sweep_json = job->request.at("sweep");
      market::SweepOptions sweep;
      for (const auto& r : sweep_json.at("ratios").as_array()) {
        sweep.ratios.push_back(r.as_double());
      }
      sweep.public_price = sweep_json.get_or("public_price", 1.0);
      sweep.optimum_stride = sweep_json.get_or("optimum_stride", 1);
      if (job->request.contains("game")) {
        sweep.game = io::parse_game_options(job->request.at("game"));
      }
      const auto sweep_points = framework_->sweep_prices(sweep);
      mark_solved();
      io::JsonArray points;
      for (const auto& point : sweep_points) {
        points.push_back(io::to_json(point));
      }
      io::JsonObject result;
      result["points"] = io::Json(std::move(points));
      std::string rendered = io::Json(std::move(result)).dump();
      mark_rendered();
      finish_job(job, JobState::kSucceeded, std::move(rendered), {});
    } else if (job->operation == "evaluate") {
      require(job->request.contains("shares"),
              "evaluate request requires a \"shares\" array");
      std::vector<int> shares;
      for (const auto& s : job->request.at("shares").as_array()) {
        shares.push_back(s.as_int());
      }
      const auto metrics = framework_->metrics_for(shares);
      const auto costs = framework_->costs(shares);
      const auto utilities = framework_->utilities(shares);
      mark_solved();
      io::JsonObject result;
      result["metrics"] = io::to_json(metrics);
      io::JsonArray cost_array, utility_array;
      for (double c : costs) cost_array.emplace_back(c);
      for (double u : utilities) utility_array.emplace_back(u);
      result["costs"] = io::Json(std::move(cost_array));
      result["utilities"] = io::Json(std::move(utility_array));
      std::string rendered = io::Json(std::move(result)).dump();
      mark_rendered();
      finish_job(job, JobState::kSucceeded, std::move(rendered), {});
    } else {
      throw Error("unknown operation: " + job->operation,
                  ErrorCode::kInvalidConfig, "serve");
    }
  } catch (const Error& e) {
    if (e.code() == ErrorCode::kCancelled) {
      finish_job(job,
                 job->token.deadline_exceeded() ? JobState::kDeadlineExceeded
                                                : JobState::kCancelled,
                 {}, e.what());
    } else {
      {
        const std::lock_guard<std::mutex> lock(job->mutex);
        job->bad_request = e.code() == ErrorCode::kInvalidConfig;
      }
      finish_job(job, JobState::kFailed, {}, e.what());
    }
  } catch (const std::exception& e) {
    finish_job(job, JobState::kFailed, {}, e.what());
  }
}

void Daemon::finish_job(const std::shared_ptr<Job>& job, JobState state,
                        std::string result_json, std::string error) {
  ServeObs& instruments = serve_obs();
  const std::int64_t end_ns = obs::window_now_ns();
  double seconds = -1.0;  ///< end-to-end latency fed to the SLO plane
  {
    const std::lock_guard<std::mutex> lock(job->mutex);
    job->state = state;
    if (!result_json.empty()) {
      job->result = io::Json::parse(result_json);
      job->has_result = true;
    }
    job->error = std::move(error);
    job->done = true;
    const std::int64_t origin =
        job->accepted_at_ns > 0 ? job->accepted_at_ns : job->admitted_at_ns;
    if (origin > 0) {
      job->total_ms = ms_between(origin, end_ns);
      seconds = job->total_ms * 1e-3;
    }
  }

  // SLO accounting and flight-recorder triggers run BEFORE the waiter is
  // woken: by the time a synchronous client sees its 504, the flight dump
  // that 504 promises already exists on disk.
  obs::FlightRecorder::global().note_event(
      std::string("job.") + job_state_name(state), job->id);
  const bool burn_edge =
      obs::SloPlane::global().record(outcome_for(state), seconds);
  if (state == JobState::kDeadlineExceeded) {
    obs::FlightRecorder::global().trigger("deadline_exceeded", job->id);
  }
  if (burn_edge) {
    obs::FlightRecorder::global().trigger("slo_burn", job->id);
  }

  // Terminal counters are settled BEFORE in_flight_ drops: drain() returns
  // the moment in_flight_ reaches zero, and the counter contract
  // (admitted == completed + failed + deadline_exceeded + cancelled) must
  // already hold at that point.
  {
    const std::lock_guard<std::mutex> lock(counts_mutex_);
    switch (state) {
      case JobState::kSucceeded:
        ++counts_.completed;
        instruments.completed.add();
        break;
      case JobState::kFailed:
        ++counts_.failed;
        instruments.failed.add();
        break;
      case JobState::kDeadlineExceeded:
        ++counts_.deadline_exceeded;
        instruments.deadline_exceeded.add();
        break;
      case JobState::kCancelled:
        ++counts_.cancelled;
        instruments.cancelled.add();
        break;
      case JobState::kQueued:
      case JobState::kRunning:
      case JobState::kShed:  // shed jobs are terminal at birth, never here
        break;               // unreachable from finish_job
    }
  }

  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    --in_flight_;
    instruments.in_flight.set(static_cast<double>(in_flight_));
    // History bound: completed jobs are evicted oldest-first once the table
    // outgrows job_history. Waiters hold their own shared_ptr, so eviction
    // never invalidates an in-progress response. This runs BEFORE the
    // waiter is woken below: a client that sequences requests therefore
    // observes history pushes in completion order — otherwise this job's
    // push could land after jobs finished later, and a stale entry would
    // dodge eviction for as long as the daemon lives.
    job_order_.push_back(job->id);
    while (job_order_.size() > options_.job_history) {
      jobs_.erase(job_order_.front());
      job_order_.pop_front();
    }
  }
  job->cv.notify_all();
  jobs_cv_.notify_all();
  obs::log_debug("serve", "job finished",
                 {obs::field("job", job->id),
                  obs::field("state", job_state_name(state))});
}

}  // namespace scshare::serve
