// scshare_serve — equilibrium-as-a-service daemon.
//
// Promotes the one-shot CLI into a long-lived process (ROADMAP item 1): the
// federation/price/utility configuration is fixed at startup (exactly like a
// CLI invocation), and clients then POST JSON requests that are solved
// against one shared Framework — same backend decorator chain, same sharded
// cache, same thread pool — so repeated equilibrium queries amortize every
// warm cache entry and the results stay bit-identical to the one-shot CLI.
//
// HTTP API (all bodies JSON; Content-Type ignored):
//   POST /v1/equilibrium  {"game": {...}, "deadline_ms": N, "async": false}
//   POST /v1/sweep        {"sweep": {"ratios": [...], ...}, "game": {...},
//                          "deadline_ms": N, "async": false}
//   POST /v1/evaluate     {"shares": [...], "deadline_ms": N, "async": false}
//   GET  /v1/jobs/<id>        poll an async job
//   GET  /v1/jobs/<id>/trace  per-job stage timings (transport, parse,
//                             queue wait, solve, render) + correlation id
//   GET  /metrics /healthz /statusz /profilez /slosz /debugz/flight
//        (telemetry + SLO plane, embedded)
//
// Response envelope:
//   {"job_id": "job-7", "state": "succeeded", "operation": "equilibrium",
//    "correlation_id": 123, "result": {...}}          → 200
// plus the error states:
//   "failed"            → 500 (400 when the request itself was invalid)
//   "deadline_exceeded" → 504, with a partial "result" when the game's
//                          last-known-good machinery produced one
//   "cancelled"         → 503 (daemon drain interrupted the job)
// Async submissions return 202 with state "queued"; poll /v1/jobs/<id>.
//
// Robustness model, in order of the request lifecycle:
//  * transport guards (net::HttpServer): slow clients 408, oversized bodies
//    413, io overload 503 — all before any JSON is parsed;
//  * admission control: at most `max_queue_depth` jobs may be in flight
//    (queued + running); beyond that the request is shed with 429 +
//    Retry-After and counted in serve.shed. Shed requests still get a job
//    id (terminal state "shed") so their trace stays retrievable. /healthz
//    reports degraded while the queue sits at its limit;
//  * deadlines: `deadline_ms` (request) or `default_deadline_ms` (daemon)
//    arms a CancelToken installed as the ambient token for the job; game
//    rounds, solver sweeps, and batch evaluations poll it cooperatively, so
//    the job returns within roughly one solver sweep of the deadline;
//  * graceful drain: drain() stops the listener, lets in-flight jobs finish
//    naturally for part of `drain_timeout_ms`, then cancels their tokens and
//    waits out the remainder. Every admitted job still reaches a terminal
//    state and every waiting client still gets a response.
//
// Counter contract (scraped as scshare_serve_* on /metrics):
//   serve.submitted == serve.admitted + serve.shed + serve.invalid
//   serve.admitted  == serve.completed + serve.failed +
//                      serve.deadline_exceeded + serve.cancelled   (at drain)
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/framework.hpp"
#include "net/http.hpp"
#include "obs/telemetry_server.hpp"

namespace scshare::serve {

struct DaemonOptions {
  std::uint16_t port = 0;       ///< 0 = ephemeral (read back with port())
  std::size_t io_threads = 8;   ///< HTTP workers; sync requests block one each
  std::size_t job_threads = 2;  ///< solver workers executing admitted jobs
  /// Admission bound on jobs in flight (queued + running); beyond it
  /// requests are shed with 429.
  std::size_t max_queue_depth = 16;
  /// Deadline applied to requests that do not carry deadline_ms; 0 = none.
  std::int64_t default_deadline_ms = 0;
  /// Budget for drain(): in-flight jobs get ~60% of it to finish naturally,
  /// then are cancelled and given the remainder.
  std::int64_t drain_timeout_ms = 5000;
  /// Completed jobs retained for /v1/jobs polling (oldest evicted first).
  std::size_t job_history = 256;
  std::size_t max_body_bytes = 1 << 20;
  int read_timeout_ms = 10000;
  std::string backend_label = "serve";
  /// Latency objective in milliseconds for the SLO plane (/slosz): an ok
  /// request slower than this burns error budget. 0 = no latency SLO.
  double slo_latency_ms = 0.0;
  /// Availability objective in (0, 1) (e.g. 0.99). 0 = no availability SLO
  /// (no burn-rate accounting, no burn-triggered flight dumps).
  double slo_availability = 0.0;
  /// Directory for flight-recorder dump artifacts (flight-<seq>.json);
  /// empty = dumps stay in memory (still visible at /debugz/flight).
  std::string flight_dir;
  /// Backend / cache / resilience configuration of the shared Framework.
  FrameworkOptions framework;
};

enum class JobState {
  kQueued,
  kRunning,
  kSucceeded,
  kFailed,
  kCancelled,          ///< drain cancelled it before/while running
  kDeadlineExceeded,   ///< its deadline fired
  kShed,               ///< admission control refused it (429); terminal at
                       ///< birth, but it still gets an id and a trace
};

[[nodiscard]] const char* job_state_name(JobState state) noexcept;

/// Monotone counters for tests and the drain report (mirrors the serve.*
/// metrics families).
struct DaemonCounts {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t invalid = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t cancelled = 0;
};

class Daemon {
 public:
  /// Validates the configuration, builds the shared Framework (computing
  /// baselines), binds the port, and starts serving. Throws scshare::Error
  /// on bad configuration and std::runtime_error when the port is taken.
  Daemon(federation::FederationConfig config, market::PriceConfig prices,
         market::UtilityParams utility, DaemonOptions options);

  /// Drains (cancelling whatever is still running) and stops.
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Graceful drain: stop accepting, finish or cancel in-flight jobs within
  /// drain_timeout_ms, leave telemetry state flushed. Returns true when
  /// every admitted job reached a terminal state in time. Idempotent; the
  /// first call wins.
  bool drain();

  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  [[nodiscard]] DaemonCounts counts() const;

  /// Jobs admitted but not yet terminal.
  [[nodiscard]] std::size_t in_flight() const;

 private:
  struct Job;

  [[nodiscard]] net::HttpResponse handle(const net::HttpRequest& request);
  [[nodiscard]] net::HttpResponse handle_submit(const std::string& operation,
                                                const net::HttpRequest& request);
  [[nodiscard]] net::HttpResponse handle_job_poll(const std::string& id);
  [[nodiscard]] net::HttpResponse handle_job_trace(const std::string& id);
  void run_job(const std::shared_ptr<Job>& job);
  void finish_job(const std::shared_ptr<Job>& job, JobState state,
                  std::string result_json, std::string error);
  [[nodiscard]] net::HttpResponse render_job(const std::shared_ptr<Job>& job,
                                             bool accepted) const;

  DaemonOptions options_;
  /// Construction order is destruction-critical: jobs reference framework_,
  /// pool_ runs jobs, server_ feeds pool_ — so server_ dies first, then the
  /// pool (joining job workers), then the Framework.
  std::unique_ptr<Framework> framework_;
  std::unique_ptr<exec::ThreadPool> pool_;
  std::unique_ptr<obs::TelemetryServer> telemetry_;
  std::unique_ptr<net::HttpServer> server_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};
  bool drain_clean_ = false;

  mutable std::mutex jobs_mutex_;
  std::condition_variable jobs_cv_;  ///< notified on every job completion
  std::map<std::string, std::shared_ptr<Job>> jobs_;
  std::deque<std::string> job_order_;  ///< completion-eviction FIFO
  std::size_t in_flight_ = 0;
  std::atomic<std::uint64_t> next_job_{1};

  DaemonCounts counts_{};
  mutable std::mutex counts_mutex_;
};

}  // namespace scshare::serve
