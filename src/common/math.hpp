// Numerically stable special functions used throughout the Markov-chain and
// queueing components: Poisson pmf/cdf evaluated in log space, a Fox–Glynn
// style truncation window for uniformization, and small helpers.
#pragma once

#include <cstddef>
#include <vector>

namespace scshare::math {

/// Natural log of n! computed via lgamma. Exact for n <= 20.
[[nodiscard]] double log_factorial(int n);

/// Poisson pmf P[X = k] for X ~ Poisson(mean). Stable for large means.
/// Returns 0 for k < 0; requires mean >= 0.
[[nodiscard]] double poisson_pmf(int k, double mean);

/// Poisson cdf P[X <= k]. Returns 0 for k < 0, 1 for mean == 0 and k >= 0.
[[nodiscard]] double poisson_cdf(int k, double mean);

/// Complementary Poisson cdf P[X >= k] computed without cancellation.
[[nodiscard]] double poisson_sf(int k, double mean);

/// Truncation window [left, right] and weights for the Poisson(mean)
/// distribution such that the omitted mass is below `epsilon`
/// (Fox & Glynn, "Computing Poisson Probabilities", CACM 1988 — implemented
/// here directly from stable pmf evaluations, which is adequate for the
/// means encountered in this library).
struct PoissonWindow {
  int left = 0;
  int right = 0;
  std::vector<double> weights;  ///< weights[k - left] = P[X = k], renormalized.
};

/// Computes the truncated Poisson window. `mean >= 0`, `epsilon in (0, 1)`.
[[nodiscard]] PoissonWindow poisson_window(double mean, double epsilon);

/// True if |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
[[nodiscard]] bool approx_equal(double a, double b, double rel_tol = 1e-9,
                                double abs_tol = 1e-12);

/// Relative error |estimate - reference| / max(|reference|, floor).
/// `floor` guards against division by ~0 when the reference is tiny.
[[nodiscard]] double relative_error(double estimate, double reference,
                                    double floor = 1e-12);

}  // namespace scshare::math
