#include "common/cancel.hpp"

#include "common/error.hpp"

namespace scshare {
namespace {

thread_local CancelToken t_current_token;

}  // namespace

CancelToken CancelToken::make() {
  CancelToken token;
  token.state_ = std::make_shared<State>();
  return token;
}

CancelToken CancelToken::with_deadline_ms(std::int64_t deadline_ms) {
  CancelToken token = make();
  if (deadline_ms > 0) {
    token.state_->has_deadline = true;
    token.state_->deadline =
        Clock::now() + std::chrono::milliseconds(deadline_ms);
  }
  return token;
}

void CancelToken::cancel() const noexcept {
  if (state_) state_->cancelled.store(true, std::memory_order_release);
}

bool CancelToken::cancelled() const noexcept {
  if (!state_) return false;
  if (state_->cancelled.load(std::memory_order_acquire)) return true;
  if (state_->has_deadline && Clock::now() >= state_->deadline) {
    // Latch so subsequent polls skip the clock read.
    state_->cancelled.store(true, std::memory_order_release);
    return true;
  }
  return false;
}

bool CancelToken::deadline_exceeded() const noexcept {
  return state_ != nullptr && state_->has_deadline &&
         Clock::now() >= state_->deadline;
}

bool CancelToken::has_deadline() const noexcept {
  return state_ != nullptr && state_->has_deadline;
}

std::int64_t CancelToken::remaining_ms() const noexcept {
  if (!has_deadline()) return 0;
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             state_->deadline - Clock::now())
      .count();
}

const CancelToken& current_cancel_token() noexcept { return t_current_token; }

ScopedCancelToken::ScopedCancelToken(CancelToken token) noexcept
    : saved_(t_current_token) {
  t_current_token = std::move(token);
}

ScopedCancelToken::~ScopedCancelToken() { t_current_token = saved_; }

void throw_if_cancelled(const char* where) {
  if (!t_current_token.cancelled()) return;
  throw Error(t_current_token.deadline_exceeded()
                  ? "deadline exceeded (cooperative cancellation)"
                  : "cancelled (cooperative cancellation)",
              ErrorCode::kCancelled, where);
}

}  // namespace scshare
