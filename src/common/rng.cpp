#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace scshare {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  require(n > 0, "Rng::next_below: n must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t v = next_u64();
    if (v >= threshold) return v % n;
  }
}

double Rng::exponential(double rate) {
  require(rate > 0.0, "Rng::exponential: rate must be positive");
  // -log(1 - U) with U in [0, 1); 1 - U in (0, 1] so log is finite.
  return -std::log(1.0 - next_double()) / rate;
}

double Rng::erlang(int k, double rate) {
  require(k >= 1, "Rng::erlang: k must be >= 1");
  double total = 0.0;
  for (int i = 0; i < k; ++i) total += exponential(rate);
  return total;
}

double Rng::hyperexponential(double rate, double scv) {
  require(scv > 1.0, "Rng::hyperexponential: scv must exceed 1");
  // Balanced-means H2: both branches contribute half the mean.
  // p1 = (1 + sqrt((scv - 1) / (scv + 1))) / 2, mu_i = 2 p_i rate.
  const double p1 = 0.5 * (1.0 + std::sqrt((scv - 1.0) / (scv + 1.0)));
  if (bernoulli(p1)) return exponential(2.0 * p1 * rate);
  return exponential(2.0 * (1.0 - p1) * rate);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

}  // namespace scshare
