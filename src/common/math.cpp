#include "common/math.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace scshare::math {

double log_factorial(int n) {
  SCSHARE_ASSERT(n >= 0, "log_factorial: n must be non-negative");
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double poisson_pmf(int k, double mean) {
  require(mean >= 0.0, "poisson_pmf: mean must be non-negative");
  if (k < 0) return 0.0;
  if (mean == 0.0) return k == 0 ? 1.0 : 0.0;
  const double log_p =
      -mean + static_cast<double>(k) * std::log(mean) - log_factorial(k);
  return std::exp(log_p);
}

double poisson_cdf(int k, double mean) {
  require(mean >= 0.0, "poisson_cdf: mean must be non-negative");
  if (k < 0) return 0.0;
  if (mean == 0.0) return 1.0;
  // Sum ascending from the smallest term to limit round-off; the pmf is
  // unimodal so summing from 0 upward is stable enough for k near the mean,
  // and for k far above the mean the result saturates at 1.
  double sum = 0.0;
  double term = std::exp(-mean);  // P[X = 0]
  if (term == 0.0) {
    // Large mean: accumulate in log space via the stable pmf.
    for (int j = 0; j <= k; ++j) sum += poisson_pmf(j, mean);
    return std::min(sum, 1.0);
  }
  for (int j = 0; j <= k; ++j) {
    sum += term;
    term *= mean / static_cast<double>(j + 1);
  }
  return std::min(sum, 1.0);
}

double poisson_sf(int k, double mean) {
  require(mean >= 0.0, "poisson_sf: mean must be non-negative");
  if (k <= 0) return 1.0;
  if (mean == 0.0) return 0.0;
  // P[X >= k] = 1 - P[X <= k-1]; when the cdf is close to 1, recompute the
  // tail directly to avoid cancellation.
  const double cdf = poisson_cdf(k - 1, mean);
  if (cdf < 0.999999) return 1.0 - cdf;
  double sum = 0.0;
  double term = poisson_pmf(k, mean);
  int j = k;
  while (term > 0.0 && (sum == 0.0 || term > sum * 1e-18)) {
    sum += term;
    ++j;
    term *= mean / static_cast<double>(j);
  }
  return sum;
}

PoissonWindow poisson_window(double mean, double epsilon) {
  require(mean >= 0.0, "poisson_window: mean must be non-negative");
  require(epsilon > 0.0 && epsilon < 1.0,
          "poisson_window: epsilon must lie in (0, 1)");
  PoissonWindow w;
  if (mean == 0.0) {
    w.left = 0;
    w.right = 0;
    w.weights = {1.0};
    return w;
  }
  const int mode = static_cast<int>(mean);
  // Expand symmetrically (in probability) around the mode until the captured
  // mass reaches 1 - epsilon. The window size is O(sqrt(mean)) + O(log 1/eps).
  int left = mode;
  int right = mode;
  double mass = poisson_pmf(mode, mean);
  double left_term = mass;
  double right_term = mass;
  while (mass < 1.0 - epsilon) {
    const double next_left =
        left > 0 ? left_term * static_cast<double>(left) / mean : 0.0;
    const double next_right = right_term * mean / static_cast<double>(right + 1);
    if (next_left >= next_right && left > 0) {
      --left;
      left_term = next_left;
      mass += left_term;
    } else {
      ++right;
      right_term = next_right;
      mass += right_term;
    }
  }
  w.left = left;
  w.right = right;
  w.weights.resize(static_cast<std::size_t>(right - left + 1));
  for (int k = left; k <= right; ++k) {
    w.weights[static_cast<std::size_t>(k - left)] = poisson_pmf(k, mean);
  }
  // Renormalize so that downstream mixtures stay stochastic.
  double total = 0.0;
  for (double v : w.weights) total += v;
  for (double& v : w.weights) v /= total;
  return w;
}

bool approx_equal(double a, double b, double rel_tol, double abs_tol) {
  const double diff = std::abs(a - b);
  return diff <= abs_tol + rel_tol * std::max(std::abs(a), std::abs(b));
}

double relative_error(double estimate, double reference, double floor) {
  return std::abs(estimate - reference) /
         std::max(std::abs(reference), floor);
}

}  // namespace scshare::math
