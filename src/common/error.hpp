// Error handling for the scshare library.
//
// The library throws `scshare::Error` (derived from std::runtime_error) for
// violated preconditions and unrecoverable numerical failures. Every error
// carries an ErrorCode so that callers — in particular the resilience
// decorators in src/federation/resilience.hpp — can distinguish retryable
// failures (a flaky backend, an exhausted solver) from programming or
// configuration mistakes that no amount of retrying will fix. Hot paths use
// SCSHARE_ASSERT, which is compiled out in release builds.
#pragma once

#include <stdexcept>
#include <string>

namespace scshare {

/// Failure taxonomy. Codes are ordered roughly by "how permanent": the first
/// two never go away on retry, the last three may.
enum class ErrorCode {
  kGeneric,              ///< unclassified failure (internal invariants)
  kInvalidConfig,        ///< bad user input; retrying cannot help
  kSolverNonConvergence, ///< iteration budget exhausted without convergence
  kNumericalFailure,     ///< NaN/Inf or divergence detected mid-computation
  kBackendUnavailable,   ///< backend refused or cannot serve the evaluation
  kTimeout,              ///< evaluation exceeded its deadline
  kCancelled,            ///< cooperative cancellation (deadline or shutdown)
};

/// Stable wire name of a code ("invalid_config", ...).
[[nodiscard]] constexpr const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kGeneric: return "generic";
    case ErrorCode::kInvalidConfig: return "invalid_config";
    case ErrorCode::kSolverNonConvergence: return "solver_non_convergence";
    case ErrorCode::kNumericalFailure: return "numerical_failure";
    case ErrorCode::kBackendUnavailable: return "backend_unavailable";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kCancelled: return "cancelled";
  }
  return "generic";
}

/// True when a failure of this kind may succeed on a retry (transient
/// backend trouble, solver budget, numerical bad luck under perturbation).
[[nodiscard]] constexpr bool is_retryable(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kSolverNonConvergence:
    case ErrorCode::kNumericalFailure:
    case ErrorCode::kBackendUnavailable:
    case ErrorCode::kTimeout:
      return true;
    case ErrorCode::kGeneric:
    case ErrorCode::kInvalidConfig:
    // Cancellation is deliberate — retrying a cancelled evaluation would
    // leak work past the deadline or the shutdown that cancelled it.
    case ErrorCode::kCancelled:
      return false;
  }
  return false;
}

/// Exception type thrown by all scshare components. `context` names the
/// component / object that failed ("ApproxModel level 2", "scs[1].lambda");
/// it is folded into what() but also kept separate for structured reporting.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what,
                 ErrorCode code = ErrorCode::kGeneric,
                 std::string context = {})
      : std::runtime_error(context.empty() ? what : context + ": " + what),
        code_(code),
        context_(std::move(context)) {}

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& context() const noexcept {
    return context_;
  }

 private:
  ErrorCode code_;
  std::string context_;
};

/// Throws scshare::Error with `message` if `condition` is false.
/// Use for validating user-supplied configuration (always enabled).
inline void require(bool condition, const std::string& message,
                    ErrorCode code = ErrorCode::kInvalidConfig) {
  if (!condition) throw Error(message, code);
}

}  // namespace scshare

#ifndef NDEBUG
#define SCSHARE_ASSERT(cond, msg) \
  ::scshare::require((cond), (msg), ::scshare::ErrorCode::kGeneric)
#else
#define SCSHARE_ASSERT(cond, msg) ((void)0)
#endif
