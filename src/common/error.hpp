// Error handling for the scshare library.
//
// The library throws `scshare::Error` (derived from std::runtime_error) for
// violated preconditions and unrecoverable numerical failures. Hot paths use
// SCSHARE_ASSERT, which is compiled out in release builds.
#pragma once

#include <stdexcept>
#include <string>

namespace scshare {

/// Exception type thrown by all scshare components.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws scshare::Error with `message` if `condition` is false.
/// Use for validating user-supplied configuration (always enabled).
inline void require(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

}  // namespace scshare

#ifndef NDEBUG
#define SCSHARE_ASSERT(cond, msg) ::scshare::require((cond), (msg))
#else
#define SCSHARE_ASSERT(cond, msg) ((void)0)
#endif
