// Deterministic random-number generation for the discrete-event simulator
// and the market game's randomized tie-breaking.
//
// A thin wrapper around SplitMix64-seeded xoshiro256++ so that simulations are
// reproducible across platforms (std::mt19937_64 streams are standardized, but
// std::*_distribution results are not; we implement the few distributions we
// need ourselves).
#pragma once

#include <array>
#include <cstdint>

namespace scshare {

/// Reproducible 64-bit PRNG (xoshiro256++) with explicit distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit draw.
  [[nodiscard]] std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double();

  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t n);

  /// Exponential variate with the given rate (> 0).
  [[nodiscard]] double exponential(double rate);

  /// Erlang-k variate (sum of k exponentials) with overall mean k / rate,
  /// i.e., mean 1/r when called as erlang(k, k * r). Requires k >= 1.
  [[nodiscard]] double erlang(int k, double rate);

  /// Balanced two-phase hyperexponential with mean 1/rate and squared
  /// coefficient of variation scv (> 1).
  [[nodiscard]] double hyperexponential(double rate, double scv);

  /// Bernoulli trial returning true with probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p);

  // UniformRandomBitGenerator interface (for std::shuffle etc.).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }
  result_type operator()() { return next_u64(); }

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace scshare
