// Cooperative cancellation for long-running solves.
//
// A CancelToken is a copyable handle onto shared cancellation state: a
// latching flag plus an optional wall-clock deadline. Work that may run for
// a long time (steady-state solver sweeps, game rounds, sweep grids) polls
// the *ambient* token — a thread-local installed with ScopedCancelToken —
// so no signature between the request entry point and the innermost loop
// needs a token parameter. exec::ThreadPool::parallel_for propagates the
// dispatching thread's ambient token to its workers, exactly like span
// parents and correlation ids, so a deadline armed at the serve layer is
// visible inside every leaf evaluation of the request's fan-out.
//
// Cost contract: when no token is installed (every non-daemon run),
// cancelled() is one shared_ptr null check — solver hot loops may poll it
// every sweep. With a deadline armed it adds one steady_clock read until the
// deadline passes (the flag latches, after which it is one relaxed load).
//
// Cancellation is *cooperative*: cancel() never interrupts anything; it only
// makes the next poll observe true. Polling sites that want to abort raise
// scshare::Error with ErrorCode::kCancelled (see throw_if_cancelled), which
// the batch evaluation layer captures per-request like any other typed
// failure — a cancelled solve is therefore distinguishable from divergence
// or non-convergence all the way up the stack.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace scshare {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Null token: never cancelled, cancel() is a no-op. The default ambient
  /// state, so unpolled runs pay only a null check.
  CancelToken() = default;

  /// Fresh cancellable state without a deadline.
  [[nodiscard]] static CancelToken make();

  /// Fresh state that auto-cancels once `deadline_ms` milliseconds elapse
  /// (measured from now). `deadline_ms` <= 0 arms no deadline.
  [[nodiscard]] static CancelToken with_deadline_ms(std::int64_t deadline_ms);

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// Latches the cancelled flag. Safe from any thread, idempotent.
  void cancel() const noexcept;

  /// True once cancel() was called or the deadline passed. Latching: never
  /// returns false after returning true.
  [[nodiscard]] bool cancelled() const noexcept;

  /// True when the token has a deadline and it has passed — distinguishes a
  /// deadline expiry (HTTP 504) from an explicit cancel (drain, HTTP 503).
  [[nodiscard]] bool deadline_exceeded() const noexcept;

  [[nodiscard]] bool has_deadline() const noexcept;

  /// Milliseconds until the deadline (<= 0 once passed). 0 for tokens
  /// without a deadline.
  [[nodiscard]] std::int64_t remaining_ms() const noexcept;

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    bool has_deadline = false;
    Clock::time_point deadline{};
  };

  std::shared_ptr<State> state_;
};

/// The calling thread's ambient token (null when none installed).
[[nodiscard]] const CancelToken& current_cancel_token() noexcept;

/// Installs `token` as the ambient token for the scope's lifetime and
/// restores the previous one on destruction (LIFO, like ScopedCorrelation).
class ScopedCancelToken {
 public:
  explicit ScopedCancelToken(CancelToken token) noexcept;
  ~ScopedCancelToken();
  ScopedCancelToken(const ScopedCancelToken&) = delete;
  ScopedCancelToken& operator=(const ScopedCancelToken&) = delete;

 private:
  CancelToken saved_;
};

/// Throws scshare::Error with ErrorCode::kCancelled when the ambient token
/// is cancelled; `where` becomes the error context ("gauss_seidel", ...).
void throw_if_cancelled(const char* where);

}  // namespace scshare
