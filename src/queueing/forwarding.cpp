#include "queueing/forwarding.hpp"

#include "common/error.hpp"
#include "common/math.hpp"

namespace scshare::queueing {

double prob_no_forward(int q, int servers, double mu, double max_wait) {
  require(q >= 0, "prob_no_forward: q must be non-negative");
  require(servers >= 0, "prob_no_forward: servers must be non-negative");
  require(mu > 0.0, "prob_no_forward: mu must be positive");
  require(max_wait >= 0.0, "prob_no_forward: max_wait must be non-negative");
  if (servers == 0) return 0.0;  // no capacity at all: always forward
  if (q < servers) return 1.0;   // immediate service
  // Need q - servers + 1 departures within max_wait; departures form a
  // Poisson(servers * mu * max_wait) count while all servers stay busy.
  const double mean = static_cast<double>(servers) * mu * max_wait;
  return math::poisson_sf(q - servers + 1, mean);
}

int truncation_queue_length(int servers, double mu, double max_wait,
                            double epsilon, int cap_extra) {
  require(servers > 0, "truncation_queue_length: servers must be positive");
  require(epsilon > 0.0 && epsilon < 1.0,
          "truncation_queue_length: epsilon in (0, 1)");
  for (int q = servers; q <= servers + cap_extra; ++q) {
    if (prob_no_forward(q, servers, mu, max_wait) < epsilon) return q;
  }
  return servers + cap_extra;
}

}  // namespace scshare::queueing
