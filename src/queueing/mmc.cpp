#include "queueing/mmc.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace scshare::queueing {
namespace {

void validate(const MmcParams& p) {
  require(p.lambda > 0.0 && p.mu > 0.0 && p.servers > 0,
          "MmcParams: lambda, mu, servers must be positive");
}

/// log of a^n / n!
double log_term(double a, int n) {
  return static_cast<double>(n) * std::log(a) - math::log_factorial(n);
}

/// P0 of the M/M/c queue (probability of an empty system).
double p0(const MmcParams& p) {
  const double a = offered_load(p);
  const double rho = utilization(p);
  require(rho < 1.0, "M/M/c closed forms require rho < 1");
  // Sum in log space relative to the largest term for stability at large c.
  double log_max = 0.0;
  for (int n = 0; n <= p.servers; ++n) {
    log_max = std::max(log_max, log_term(a, n));
  }
  double sum = 0.0;
  for (int n = 0; n < p.servers; ++n) {
    sum += std::exp(log_term(a, n) - log_max);
  }
  sum += std::exp(log_term(a, p.servers) - log_max) / (1.0 - rho);
  return std::exp(-log_max) / sum;
}

}  // namespace

double offered_load(const MmcParams& p) {
  validate(p);
  return p.lambda / p.mu;
}

double utilization(const MmcParams& p) {
  validate(p);
  return p.lambda / (static_cast<double>(p.servers) * p.mu);
}

double erlang_c(const MmcParams& p) {
  const double a = offered_load(p);
  const double rho = utilization(p);
  return std::exp(log_term(a, p.servers) + std::log(p0(p))) / (1.0 - rho);
}

double erlang_b(const MmcParams& p) {
  validate(p);
  const double a = offered_load(p);
  // Stable recurrence B(0) = 1, B(c) = a B(c-1) / (c + a B(c-1)).
  double b = 1.0;
  for (int c = 1; c <= p.servers; ++c) {
    b = a * b / (static_cast<double>(c) + a * b);
  }
  return b;
}

double mean_customers(const MmcParams& p) {
  const double a = offered_load(p);
  const double rho = utilization(p);
  return a + erlang_c(p) * rho / (1.0 - rho);
}

double mean_wait(const MmcParams& p) {
  const double rho = utilization(p);
  return erlang_c(p) /
         (static_cast<double>(p.servers) * p.mu * (1.0 - rho));
}

double wait_exceeds(const MmcParams& p, double t) {
  require(t >= 0.0, "wait_exceeds: t must be non-negative");
  const double rho = utilization(p);
  return erlang_c(p) *
         std::exp(-static_cast<double>(p.servers) * p.mu * (1.0 - rho) * t);
}

double state_probability(const MmcParams& p, int n) {
  require(n >= 0, "state_probability: n must be non-negative");
  const double a = offered_load(p);
  const double rho = utilization(p);
  const double log_p0 = std::log(p0(p));
  if (n <= p.servers) {
    return std::exp(log_p0 + log_term(a, n));
  }
  return std::exp(log_p0 + log_term(a, p.servers) +
                  static_cast<double>(n - p.servers) * std::log(rho));
}

}  // namespace scshare::queueing
