#include "queueing/no_share_model.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "linalg/vector_ops.hpp"
#include "queueing/forwarding.hpp"

namespace scshare::queueing {

NoShareResult solve_no_share(const NoShareParams& params) {
  require(params.num_vms > 0, "NoShareParams: num_vms must be positive");
  require(params.lambda > 0.0, "NoShareParams: lambda must be positive");
  require(params.mu > 0.0, "NoShareParams: mu must be positive");
  require(params.max_wait >= 0.0, "NoShareParams: max_wait non-negative");

  const int n = params.num_vms;
  const int q_max = truncation_queue_length(n, params.mu, params.max_wait,
                                            params.truncation_epsilon);

  // Birth–death chain: birth rate lambda * PNF(q), death rate min(q, N) mu.
  // Solve the detailed-balance recurrence directly (exact for birth–death):
  //   pi_{q+1} = pi_q * birth(q) / death(q+1).
  std::vector<double> pi(static_cast<std::size_t>(q_max) + 1, 0.0);
  pi[0] = 1.0;
  for (int q = 0; q < q_max; ++q) {
    const double birth =
        params.lambda *
        prob_no_forward(q, n, params.mu, params.max_wait);
    const double death =
        static_cast<double>(std::min(q + 1, n)) * params.mu;
    pi[static_cast<std::size_t>(q) + 1] =
        pi[static_cast<std::size_t>(q)] * birth / death;
  }
  linalg::normalize_probability(pi);

  NoShareResult result;
  result.pi = pi;
  for (int q = 0; q <= q_max; ++q) {
    const double p = pi[static_cast<std::size_t>(q)];
    const double pnf = prob_no_forward(q, n, params.mu, params.max_wait);
    result.forward_prob += (1.0 - pnf) * p;
    result.utilization +=
        static_cast<double>(std::min(q, n)) / static_cast<double>(n) * p;
    result.mean_queue_length += static_cast<double>(std::max(q - n, 0)) * p;
  }
  result.forward_rate = params.lambda * result.forward_prob;
  return result;
}

}  // namespace scshare::queueing
