// SLA-driven forwarding probability (paper Sect. III-A).
//
// A request arriving at an SC whose V available VMs are all busy, with q
// customers already in the system, starts service only after (q - V + 1)
// departures. Departures occur at rate V * mu while the queue is non-empty,
// so the wait is Erlang(q - V + 1, V mu) distributed and
//
//   PNF(q, V, Q) = P[wait <= Q] = P[Poisson(V mu Q) >= q - V + 1].
//
// The request is queued with probability PNF and forwarded to the public
// cloud otherwise.
#pragma once

namespace scshare::queueing {

/// Probability of NOT forwarding (i.e., of queueing) a new arrival when `q`
/// requests are in the system, `servers` VMs are usable, service rate is
/// `mu`, and the SLA waiting bound is `max_wait`.
/// Returns 1 when q < servers (immediate service) or servers == 0 handled as
/// always-forward (returns 0) for q >= 0.
[[nodiscard]] double prob_no_forward(int q, int servers, double mu,
                                     double max_wait);

/// Smallest queue length q* >= servers such that PNF(q*, servers, mu, Q)
/// drops below `epsilon`; arrivals beyond q* are forwarded almost surely, so
/// Markov models can truncate queues at q* + 1 with negligible error.
/// The returned value is capped at servers + `cap_extra`.
[[nodiscard]] int truncation_queue_length(int servers, double mu,
                                          double max_wait,
                                          double epsilon = 1e-9,
                                          int cap_extra = 4096);

}  // namespace scshare::queueing
