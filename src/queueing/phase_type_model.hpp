// Standalone-SC performance model with Erlang-k (phase-type) service times
// via the method of stages (paper Sect. VII proposes phase-type fits to relax
// the exponential service assumption; this module provides the analytic
// counterpart of the simulator's Erlang service option).
//
// State: occupancy of each of the k service stages (every job in service
// holds one stage; stage transitions at rate k*mu give mean 1/mu) plus the
// queue length. Admission uses the same SLA estimator as the exponential
// model (prob_no_forward with the mean service rate): that is the
// *controller's* rule, identical across service distributions, so the chain
// matches the simulator exactly rather than approximately.
#pragma once

#include "queueing/no_share_model.hpp"

namespace scshare::queueing {

struct PhaseTypeParams {
  int num_vms = 0;        ///< N: VMs owned by the SC (> 0)
  double lambda = 0.0;    ///< Poisson arrival rate (> 0)
  double mu = 1.0;        ///< overall service rate: mean service 1/mu (> 0)
  double max_wait = 0.0;  ///< Q: SLA bound on waiting time (>= 0)
  int stages = 2;         ///< k: Erlang stages (>= 1; 1 = exponential)
  double truncation_epsilon = 1e-9;
};

/// Outputs (pi omitted: the state space is multidimensional).
struct PhaseTypeResult {
  double forward_rate = 0.0;
  double forward_prob = 0.0;
  double utilization = 0.0;
  double mean_queue_length = 0.0;
  std::size_t num_states = 0;
};

/// Solves the M/E_k/N model with SLA-driven forwarding. For stages == 1 the
/// result coincides with solve_no_share().
[[nodiscard]] PhaseTypeResult solve_no_share_phase_type(
    const PhaseTypeParams& params);

}  // namespace scshare::queueing
