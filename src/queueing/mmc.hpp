// Closed-form M/M/c results used as analytical cross-checks for the Markov
// solvers and the simulator.
#pragma once

namespace scshare::queueing {

/// Parameters of an M/M/c queue with unbounded waiting room.
struct MmcParams {
  double lambda = 0.0;  ///< arrival rate (> 0)
  double mu = 0.0;      ///< per-server service rate (> 0)
  int servers = 0;      ///< number of servers c (> 0)
};

/// Offered load a = lambda / mu.
[[nodiscard]] double offered_load(const MmcParams& p);

/// Server utilization rho = lambda / (c mu). Requires rho < 1 for the
/// stationary formulas below.
[[nodiscard]] double utilization(const MmcParams& p);

/// Erlang-C: probability an arriving customer must wait (all servers busy).
[[nodiscard]] double erlang_c(const MmcParams& p);

/// Erlang-B: blocking probability of the M/M/c/c loss system.
[[nodiscard]] double erlang_b(const MmcParams& p);

/// Mean number of customers in the system (waiting + in service).
[[nodiscard]] double mean_customers(const MmcParams& p);

/// Mean waiting time in queue (before service starts).
[[nodiscard]] double mean_wait(const MmcParams& p);

/// P[wait > t] for the FCFS M/M/c queue.
[[nodiscard]] double wait_exceeds(const MmcParams& p, double t);

/// Stationary probability of n customers in the M/M/c system.
[[nodiscard]] double state_probability(const MmcParams& p, int n);

}  // namespace scshare::queueing
