// Performance model of a standalone SC (paper Sect. III-A).
//
// Birth–death CTMC on the number of requests q at the SC: arrivals are
// admitted with probability PNF(q, N, Q) (otherwise forwarded to the public
// cloud), services complete at rate min(q, N) mu. The queue is truncated
// where PNF becomes negligible (see queueing/forwarding.hpp).
#pragma once

#include <vector>

namespace scshare::queueing {

/// Inputs of the standalone-SC model.
struct NoShareParams {
  int num_vms = 0;        ///< N: VMs owned by the SC (> 0)
  double lambda = 0.0;    ///< Poisson arrival rate (> 0)
  double mu = 1.0;        ///< exponential service rate (> 0)
  double max_wait = 0.0;  ///< Q: SLA bound on waiting time (>= 0)
  double truncation_epsilon = 1e-9;  ///< queue-truncation threshold on PNF
};

/// Outputs of the standalone-SC model.
struct NoShareResult {
  double forward_rate = 0.0;   ///< P̄_i^0: requests/second sent to the public cloud
  double forward_prob = 0.0;   ///< P^F: fraction of arrivals forwarded
  double utilization = 0.0;    ///< rho_i^0: mean busy VMs / N
  double mean_queue_length = 0.0;  ///< mean number waiting (not in service)
  std::vector<double> pi;      ///< stationary distribution over q = 0..q_max
};

/// Solves the standalone model. Stable for any load because forwarding
/// regulates the queue (the chain is always positive recurrent after
/// truncation).
[[nodiscard]] NoShareResult solve_no_share(const NoShareParams& params);

}  // namespace scshare::queueing
