#include "queueing/phase_type_model.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "markov/ctmc.hpp"
#include "markov/state_index.hpp"
#include "markov/steady_state.hpp"
#include "queueing/forwarding.hpp"

namespace scshare::queueing {

PhaseTypeResult solve_no_share_phase_type(const PhaseTypeParams& params) {
  require(params.num_vms > 0, "PhaseTypeParams: num_vms must be positive");
  require(params.lambda > 0.0, "PhaseTypeParams: lambda must be positive");
  require(params.mu > 0.0, "PhaseTypeParams: mu must be positive");
  require(params.max_wait >= 0.0, "PhaseTypeParams: max_wait non-negative");
  require(params.stages >= 1, "PhaseTypeParams: stages must be >= 1");

  const int n = params.num_vms;
  const int k = params.stages;
  const double stage_rate = static_cast<double>(k) * params.mu;
  const int q_max = truncation_queue_length(n, params.mu, params.max_wait,
                                            params.truncation_epsilon) -
                    n;  // queued (not in service) bound

  // State vector: {s_1, ..., s_k, queued}; sum(s_j) <= N and queued > 0
  // only when every server is busy.
  markov::StateIndex index;
  using State = markov::StateIndex::State;
  State initial(static_cast<std::size_t>(k) + 1, 0);
  index.intern(initial);

  struct Edge {
    std::size_t from;
    std::size_t to;
    double rate;
  };
  std::vector<Edge> edges;
  std::vector<double> forward_frac;

  for (std::size_t current = 0; current < index.size(); ++current) {
    const State state = index.state(current);  // copy (interning reallocs)
    int in_service = 0;
    for (int j = 0; j < k; ++j) in_service += state[static_cast<std::size_t>(j)];
    const int queued = state[static_cast<std::size_t>(k)];

    auto emit = [&](State next, double rate) {
      if (rate <= 0.0) return;
      edges.push_back({current, index.intern(next), rate});
    };

    // Arrival: enter stage 1 if a server is free, else queue w.p. PNF.
    if (in_service < n) {
      State next = state;
      ++next[0];
      emit(std::move(next), params.lambda);
      forward_frac.push_back(0.0);
    } else {
      // The controller's SLA estimator sees `in_system` requests on N
      // mean-rate-mu servers — identical to the exponential model's rule.
      const double admit = prob_no_forward(n + queued, n, params.mu,
                                           params.max_wait);
      if (queued < q_max) {
        State next = state;
        ++next[static_cast<std::size_t>(k)];
        emit(std::move(next), params.lambda * admit);
        forward_frac.push_back(1.0 - admit);
      } else {
        forward_frac.push_back(1.0);  // truncated tail
      }
    }

    // Stage transitions: stage j -> j+1; completion from stage k pulls the
    // next queued job into stage 1.
    for (int j = 0; j < k; ++j) {
      const int occupancy = state[static_cast<std::size_t>(j)];
      if (occupancy == 0) continue;
      const double rate = static_cast<double>(occupancy) * stage_rate;
      State next = state;
      --next[static_cast<std::size_t>(j)];
      if (j + 1 < k) {
        ++next[static_cast<std::size_t>(j) + 1];
      } else if (queued > 0) {
        ++next[0];
        --next[static_cast<std::size_t>(k)];
      }
      emit(std::move(next), rate);
    }
  }

  markov::Ctmc chain(index.size());
  for (const auto& e : edges) chain.add_rate(e.from, e.to, e.rate);
  chain.finalize();
  const auto solution = markov::solve_steady_state_guarded(chain);
  if (!solution.converged) {
    throw Error("steady-state solver exhausted its iteration budget "
                "(residual " + std::to_string(solution.residual) + ")",
                ErrorCode::kSolverNonConvergence, "PhaseTypeModel");
  }

  PhaseTypeResult result;
  result.num_states = index.size();
  for (std::size_t s = 0; s < index.size(); ++s) {
    const double p = solution.pi[s];
    const State& state = index.state(s);
    int in_service = 0;
    for (int j = 0; j < k; ++j) in_service += state[static_cast<std::size_t>(j)];
    const int queued = state[static_cast<std::size_t>(k)];
    result.utilization += static_cast<double>(in_service) /
                          static_cast<double>(n) * p;
    result.mean_queue_length += static_cast<double>(queued) * p;
    result.forward_prob += forward_frac[s] * p;
  }
  result.forward_rate = params.lambda * result.forward_prob;
  return result;
}

}  // namespace scshare::queueing
