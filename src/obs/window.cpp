#include "obs/window.hpp"

#include <stdexcept>

namespace scshare::obs {
namespace {

constexpr std::int64_t kNsPerSecond = 1'000'000'000;

void validate(const WindowOptions& options) {
  if (options.slot_seconds <= 0 || options.slots < 2) {
    throw std::invalid_argument(
        "WindowOptions: requires slot_seconds > 0 and slots >= 2");
  }
}

/// Slots needed to cover `horizon_seconds` plus the current partial slot,
/// clamped to the ring length.
std::size_t slots_for(const WindowOptions& options,
                      std::int64_t horizon_seconds) {
  if (horizon_seconds <= 0) return 1;
  const std::int64_t whole =
      (horizon_seconds + options.slot_seconds - 1) / options.slot_seconds;
  const auto needed = static_cast<std::size_t>(whole) + 1;
  return needed < options.slots ? needed : options.slots;
}

}  // namespace

std::int64_t window_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

WindowedHistogram::WindowedHistogram(WindowOptions options)
    : options_(options) {
  validate(options_);
  ring_.resize(options_.slots);
  for (auto& slot : ring_) slot.digest = LogBucketDigest(options_.digest);
}

std::int64_t WindowedHistogram::slot_index(std::int64_t now_ns) const noexcept {
  return now_ns / (options_.slot_seconds * kNsPerSecond);
}

void WindowedHistogram::record_at(double v, std::int64_t now_ns) {
  const std::int64_t index = slot_index(now_ns);
  const std::size_t pos =
      static_cast<std::size_t>(index % static_cast<std::int64_t>(ring_.size()));
  const std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = ring_[pos];
  if (slot.index != index) {
    slot.digest.reset();
    slot.index = index;
  }
  slot.digest.add(v);
}

LogBucketDigest WindowedHistogram::snapshot_at(std::int64_t horizon_seconds,
                                               std::int64_t now_ns) const {
  const std::int64_t current = slot_index(now_ns);
  const auto span = static_cast<std::int64_t>(slots_for(options_, horizon_seconds));
  LogBucketDigest merged(options_.digest);
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Slot& slot : ring_) {
    if (slot.index < 0) continue;
    if (slot.index > current || slot.index <= current - span) continue;
    merged.merge(slot.digest);
  }
  return merged;
}

void WindowedHistogram::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& slot : ring_) {
    slot.index = -1;
    slot.digest.reset();
  }
}

WindowedCounter::WindowedCounter(WindowOptions options) : options_(options) {
  validate(options_);
  ring_.resize(options_.slots);
}

std::int64_t WindowedCounter::slot_index(std::int64_t now_ns) const noexcept {
  return now_ns / (options_.slot_seconds * kNsPerSecond);
}

void WindowedCounter::add_at(std::uint64_t n, std::int64_t now_ns) {
  const std::int64_t index = slot_index(now_ns);
  const std::size_t pos =
      static_cast<std::size_t>(index % static_cast<std::int64_t>(ring_.size()));
  const std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = ring_[pos];
  if (slot.index != index) {
    slot.value = 0;
    slot.index = index;
  }
  slot.value += n;
}

std::uint64_t WindowedCounter::sum_at(std::int64_t horizon_seconds,
                                      std::int64_t now_ns) const {
  const std::int64_t current = slot_index(now_ns);
  const auto span = static_cast<std::int64_t>(slots_for(options_, horizon_seconds));
  std::uint64_t total = 0;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Slot& slot : ring_) {
    if (slot.index < 0) continue;
    if (slot.index > current || slot.index <= current - span) continue;
    total += slot.value;
  }
  return total;
}

void WindowedCounter::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& slot : ring_) {
    slot.index = -1;
    slot.value = 0;
  }
}

}  // namespace scshare::obs
