// RAII wall-clock timing feeding latency histograms.
//
// ScopedTimer is monotonic-clock based (steady_clock — immune to NTP steps)
// and zero-overhead when constructed with a null histogram: no clock is read
// and the destructor is a branch on a dead pointer. Hot paths therefore
// gate on the sink/consumer being present and pass nullptr otherwise.
#pragma once

#include <chrono>

#include "obs/metrics.hpp"

namespace scshare::obs {

class ScopedTimer {
 public:
  using Clock = std::chrono::steady_clock;

  /// Starts timing iff `histogram` is non-null.
  explicit ScopedTimer(Histogram* histogram) noexcept
      : histogram_(histogram),
        start_(histogram != nullptr ? Clock::now() : Clock::time_point{}) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->observe(seconds());
  }

  /// Elapsed seconds so far (0 when timing is disabled).
  [[nodiscard]] double seconds() const noexcept {
    if (histogram_ == nullptr) return 0.0;
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// True when a histogram is attached (timing active).
  [[nodiscard]] bool active() const noexcept { return histogram_ != nullptr; }

 private:
  Histogram* histogram_;
  Clock::time_point start_;
};

/// Plain monotonic stopwatch for call sites that need the elapsed time as a
/// value (e.g., to stamp a trace event) rather than routed to a histogram.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(ScopedTimer::Clock::now()) {}
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(ScopedTimer::Clock::now() - start_)
        .count();
  }

 private:
  ScopedTimer::Clock::time_point start_;
};

}  // namespace scshare::obs
