#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace scshare::obs {
namespace {

constexpr std::int64_t kWindowsSeconds[] = {10, 60, 300};
constexpr std::int64_t kFastWindowSeconds = 10;

std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

const char* request_outcome_name(RequestOutcome o) noexcept {
  switch (o) {
    case RequestOutcome::kOk:
      return "ok";
    case RequestOutcome::kError:
      return "error";
    case RequestOutcome::kShed:
      return "shed";
    case RequestOutcome::kDeadlineExceeded:
      return "deadline_exceeded";
    case RequestOutcome::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

SloPlane::SloPlane(WindowOptions windows)
    : window_options_(windows),
      latency_(windows),
      ok_(windows),
      error_(windows),
      shed_(windows),
      deadline_(windows),
      cancelled_(windows),
      latency_violations_(windows) {}

void SloPlane::set_objectives(const SloObjectives& objectives) {
  const std::lock_guard<std::mutex> lock(mutex_);
  objectives_ = objectives;
}

SloObjectives SloPlane::objectives() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return objectives_;
}

bool SloPlane::record_at(RequestOutcome outcome, double seconds,
                         std::int64_t now_ns) {
  SloObjectives objectives;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    objectives = objectives_;
  }
  switch (outcome) {
    case RequestOutcome::kOk:
      ok_.add_at(1, now_ns);
      break;
    case RequestOutcome::kError:
      error_.add_at(1, now_ns);
      break;
    case RequestOutcome::kShed:
      shed_.add_at(1, now_ns);
      break;
    case RequestOutcome::kDeadlineExceeded:
      deadline_.add_at(1, now_ns);
      break;
    case RequestOutcome::kCancelled:
      cancelled_.add_at(1, now_ns);
      break;
  }
  if (seconds >= 0.0) {
    latency_.record_at(seconds, now_ns);
    // Latency-objective violations are tallied at record time so burn-rate
    // queries never have to scan digests.
    if (outcome == RequestOutcome::kOk && objectives.latency_ms > 0.0 &&
        seconds * 1e3 > objectives.latency_ms) {
      latency_violations_.add_at(1, now_ns);
    }
  }

  if (objectives.availability <= 0.0) return false;
  const double burn = burn_rate_impl(kFastWindowSeconds, now_ns);
  const bool now_burning = burn >= objectives.burn_threshold;
  const std::lock_guard<std::mutex> lock(mutex_);
  const bool edge = now_burning && !burning_;
  burning_ = now_burning;
  return edge;
}

bool SloPlane::burning() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return burning_;
}

double SloPlane::burn_rate(std::int64_t horizon_seconds,
                           std::int64_t now_ns) const {
  return burn_rate_impl(horizon_seconds, now_ns);
}

double SloPlane::burn_rate_impl(std::int64_t horizon_seconds,
                                  std::int64_t now_ns) const {
  SloObjectives objectives;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    objectives = objectives_;
  }
  if (objectives.availability <= 0.0 || objectives.availability >= 1.0) {
    return -1.0;
  }
  const std::uint64_t ok = ok_.sum_at(horizon_seconds, now_ns);
  const std::uint64_t bad = error_.sum_at(horizon_seconds, now_ns) +
                            shed_.sum_at(horizon_seconds, now_ns) +
                            deadline_.sum_at(horizon_seconds, now_ns) +
                            cancelled_.sum_at(horizon_seconds, now_ns);
  const std::uint64_t violations =
      std::min(latency_violations_.sum_at(horizon_seconds, now_ns), ok);
  const std::uint64_t total = ok + bad;
  if (total == 0) return -1.0;
  const std::uint64_t good = ok - violations;
  const double availability =
      static_cast<double>(good) / static_cast<double>(total);
  return (1.0 - availability) / (1.0 - objectives.availability);
}

std::string SloPlane::render_slosz_at(std::int64_t now_ns) const {
  SloObjectives objectives;
  bool burning = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    objectives = objectives_;
    burning = burning_;
  }

  std::ostringstream out;
  out << "{\n  \"objectives\": {";
  if (objectives.latency_ms > 0.0) {
    out << "\"latency_ms\": " << format_double(objectives.latency_ms);
  } else {
    out << "\"latency_ms\": null";
  }
  if (objectives.availability > 0.0) {
    out << ", \"availability\": " << format_double(objectives.availability);
  } else {
    out << ", \"availability\": null";
  }
  out << ", \"burn_threshold\": " << format_double(objectives.burn_threshold)
      << "},\n";
  out << "  \"burning\": " << (burning ? "true" : "false") << ",\n";
  out << "  \"windows\": [\n";

  bool first_window = true;
  for (const std::int64_t horizon : kWindowsSeconds) {
    const std::uint64_t ok = ok_.sum_at(horizon, now_ns);
    const std::uint64_t error = error_.sum_at(horizon, now_ns);
    const std::uint64_t shed = shed_.sum_at(horizon, now_ns);
    const std::uint64_t deadline = deadline_.sum_at(horizon, now_ns);
    const std::uint64_t cancelled = cancelled_.sum_at(horizon, now_ns);
    const std::uint64_t total = ok + error + shed + deadline + cancelled;
    const std::uint64_t violations =
        std::min(latency_violations_.sum_at(horizon, now_ns), ok);
    const LogBucketDigest digest = latency_.snapshot_at(horizon, now_ns);

    if (!first_window) out << ",\n";
    first_window = false;
    out << "    {\"window_seconds\": " << horizon;
    out << ", \"requests\": " << total;
    out << ", \"rate_per_second\": "
        << format_double(static_cast<double>(total) /
                         static_cast<double>(horizon));
    out << ", \"outcomes\": {\"ok\": " << ok << ", \"error\": " << error
        << ", \"shed\": " << shed << ", \"deadline_exceeded\": " << deadline
        << ", \"cancelled\": " << cancelled << "}";
    out << ", \"slo_latency_violations\": " << violations;

    out << ", \"latency_ms\": ";
    if (digest.empty()) {
      out << "null";
    } else {
      out << "{\"p50\": " << format_double(digest.quantile(0.50) * 1e3)
          << ", \"p95\": " << format_double(digest.quantile(0.95) * 1e3)
          << ", \"p99\": " << format_double(digest.quantile(0.99) * 1e3)
          << ", \"p999\": " << format_double(digest.quantile(0.999) * 1e3)
          << ", \"mean\": " << format_double(digest.mean() * 1e3)
          << ", \"max\": " << format_double(digest.max() * 1e3)
          << ", \"samples\": " << digest.count() << "}";
    }

    if (objectives.availability > 0.0 && total > 0) {
      const std::uint64_t good = ok - violations;
      const double availability =
          static_cast<double>(good) / static_cast<double>(total);
      out << ", \"availability\": " << format_double(availability);
      out << ", \"error_budget_burn\": "
          << format_double((1.0 - availability) /
                           (1.0 - objectives.availability));
    } else {
      out << ", \"availability\": null, \"error_budget_burn\": null";
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

void SloPlane::reset() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    objectives_ = SloObjectives{};
    burning_ = false;
  }
  latency_.reset();
  ok_.reset();
  error_.reset();
  shed_.reset();
  deadline_.reset();
  cancelled_.reset();
  latency_violations_.reset();
}

SloPlane& SloPlane::global() {
  static SloPlane* plane = new SloPlane();  // leaked: outlives all threads
  return *plane;
}

}  // namespace scshare::obs
