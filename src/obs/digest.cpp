#include "obs/digest.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace scshare::obs {

LogBucketDigest::LogBucketDigest(DigestOptions options) : options_(options) {
  if (!(options_.gamma > 1.0) || !(options_.min_value > 0.0) ||
      !(options_.max_value > options_.min_value)) {
    throw std::invalid_argument(
        "LogBucketDigest: requires gamma > 1 and 0 < min_value < max_value");
  }
  inv_log_gamma_ = 1.0 / std::log(options_.gamma);
  buckets_ = static_cast<std::size_t>(
      std::ceil(std::log(options_.max_value / options_.min_value) *
                inv_log_gamma_));
}

std::size_t LogBucketDigest::index_for(double v) const noexcept {
  if (v <= options_.min_value) return 0;
  if (v > options_.max_value) return buckets_ + 1;
  // Bucket k (1-based) covers (min * gamma^(k-1), min * gamma^k].
  const double ratio = std::log(v / options_.min_value) * inv_log_gamma_;
  auto k = static_cast<std::size_t>(std::ceil(ratio));
  if (k < 1) k = 1;
  if (k > buckets_) k = buckets_;
  return k;
}

double LogBucketDigest::lower_edge(std::size_t i) const noexcept {
  if (i == 0) return 0.0;
  if (i > buckets_) return options_.max_value;
  return options_.min_value *
         std::pow(options_.gamma, static_cast<double>(i) - 1.0);
}

double LogBucketDigest::upper_edge(std::size_t i) const noexcept {
  if (i == 0) return options_.min_value;
  if (i > buckets_) return options_.max_value;  // overflow clamps to the edge
  return options_.min_value * std::pow(options_.gamma, static_cast<double>(i));
}

void LogBucketDigest::add(double v, std::uint64_t n) {
  if (n == 0 || !std::isfinite(v)) return;
  if (counts_.empty()) counts_.assign(buckets_ + 2, 0);
  counts_[index_for(v)] += n;
  count_ += n;
  sum_ += v * static_cast<double>(n);
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

void LogBucketDigest::merge(const LogBucketDigest& other) {
  if (other.options_.min_value != options_.min_value ||
      other.options_.max_value != options_.max_value ||
      other.options_.gamma != options_.gamma) {
    throw std::invalid_argument(
        "LogBucketDigest::merge: geometry mismatch");
  }
  if (other.count_ == 0) return;
  if (counts_.empty()) counts_.assign(buckets_ + 2, 0);
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double LogBucketDigest::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile (1-based, nearest-rank definition).
  const auto rank = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (cumulative + counts_[i] >= rank) {
      // Linear interpolation inside the bucket by rank position: the first
      // observation of a bucket reports near its lower edge, the last near
      // its upper edge. Clamping to the observed extrema makes single-value
      // and tail queries exact.
      const double lo = lower_edge(i);
      const double hi = upper_edge(i);
      const double into =
          static_cast<double>(rank - cumulative) /
          static_cast<double>(counts_[i]);
      const double v = lo + (hi - lo) * into;
      return std::clamp(v, min_, max_);
    }
    cumulative += counts_[i];
  }
  return max_;  // q == 1 with rounding slack
}

std::uint64_t LogBucketDigest::count_at_or_below(double v) const {
  if (count_ == 0) return 0;
  if (v >= max_) return count_;
  if (v < min_) return 0;
  const std::size_t limit = index_for(v);
  std::uint64_t below = 0;
  for (std::size_t i = 0; i <= limit && i < counts_.size(); ++i) {
    below += counts_[i];
  }
  return below;
}

void LogBucketDigest::reset() {
  counts_.clear();
  counts_.shrink_to_fit();
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

}  // namespace scshare::obs
