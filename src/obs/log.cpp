#include "obs/log.hpp"

#include <algorithm>
#include <cinttypes>
#include <ctime>
#include <map>
#include <sys/time.h>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/window.hpp"

namespace scshare::obs {
namespace {

std::atomic<CorrelationId> g_next_correlation{1};
thread_local CorrelationId t_correlation = 0;

/// Millisecond ISO-8601 UTC timestamp, e.g. "2026-08-07T12:00:00.123Z".
void append_timestamp(std::string& out) {
  timeval tv{};
  gettimeofday(&tv, nullptr);
  std::tm tm{};
  const std::time_t secs = tv.tv_sec;
  gmtime_r(&secs, &tm);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(tv.tv_usec / 1000));
  out += buf;
}

/// JSON string escape (shared by both formats: logfmt values reuse the JSON
/// escapes inside their double quotes, so a parser for either is trivial).
void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// True when a logfmt value needs quoting (spaces, quotes, '=' or controls).
bool needs_quotes(std::string_view s) {
  if (s.empty()) return true;
  for (char c : s) {
    if (c == ' ' || c == '"' || c == '=' ||
        static_cast<unsigned char>(c) < 0x21) {
      return true;
    }
  }
  return false;
}

void append_logfmt_value(std::string& out, const LogField& f) {
  if (f.is_number || !needs_quotes(f.value)) {
    out += f.value;
    return;
  }
  out += '"';
  append_escaped(out, f.value);
  out += '"';
}

void append_json_value(std::string& out, const LogField& f) {
  if (f.is_number) {
    out += f.value;
    return;
  }
  out += '"';
  append_escaped(out, f.value);
  out += '"';
}

obs::Counter& lines_counter() {
  static obs::Counter& counter =
      MetricsRegistry::global().counter("obs.log.lines_total");
  return counter;
}

}  // namespace

CorrelationId current_correlation() noexcept { return t_correlation; }

CorrelationId next_correlation_id() noexcept {
  return g_next_correlation.fetch_add(1, std::memory_order_relaxed);
}

ScopedCorrelation::ScopedCorrelation(CorrelationId id) noexcept
    : saved_(t_correlation) {
  t_correlation = id;
}

ScopedCorrelation::~ScopedCorrelation() { t_correlation = saved_; }

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

bool parse_log_level(std::string_view name, LogLevel& out) noexcept {
  if (name == "debug") {
    out = LogLevel::kDebug;
  } else if (name == "info") {
    out = LogLevel::kInfo;
  } else if (name == "warn") {
    out = LogLevel::kWarn;
  } else if (name == "error") {
    out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

LogField field(std::string_view key, std::string_view value) {
  return {std::string(key), std::string(value), false};
}

LogField field(std::string_view key, const char* value) {
  return {std::string(key), std::string(value != nullptr ? value : ""), false};
}

LogField field(std::string_view key, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return {std::string(key), buf, true};
}

LogField field(std::string_view key, std::int64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  return {std::string(key), buf, true};
}

LogField field(std::string_view key, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return {std::string(key), buf, true};
}

LogField field(std::string_view key, int value) {
  return field(key, static_cast<std::int64_t>(value));
}

LogField field(std::string_view key, bool value) {
  return {std::string(key), value ? "true" : "false", true};
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view message,
                 std::initializer_list<LogField> fields) {
  log_impl(level, component, message, fields.begin(), fields.size());
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view message,
                 const std::vector<LogField>& fields) {
  log_impl(level, component, message, fields.data(), fields.size());
}

void Logger::log_impl(LogLevel level, std::string_view component,
                      std::string_view message, const LogField* fields,
                      std::size_t n_fields) {
  if (!enabled(level)) return;

  const CorrelationId ctx = t_correlation;
  std::string line;
  line.reserve(128);
  if (format() == LogFormat::kJson) {
    line += "{\"ts\":\"";
    append_timestamp(line);
    line += "\",\"level\":\"";
    line += log_level_name(level);
    line += "\",\"comp\":\"";
    append_escaped(line, component);
    line += "\",\"msg\":\"";
    append_escaped(line, message);
    line += '"';
    if (ctx != 0) {
      line += ",\"ctx\":";
      line += std::to_string(ctx);
    }
    for (std::size_t i = 0; i < n_fields; ++i) {
      const LogField& f = fields[i];
      line += ",\"";
      append_escaped(line, f.key);
      line += "\":";
      append_json_value(line, f);
    }
    line += "}\n";
  } else {
    line += "ts=";
    append_timestamp(line);
    line += " level=";
    line += log_level_name(level);
    line += " comp=";
    append_logfmt_value(line, LogField{"", std::string(component), false});
    line += " msg=\"";
    append_escaped(line, message);
    line += '"';
    if (ctx != 0) {
      line += " ctx=";
      line += std::to_string(ctx);
    }
    for (std::size_t i = 0; i < n_fields; ++i) {
      const LogField& f = fields[i];
      line += ' ';
      line += f.key;
      line += '=';
      append_logfmt_value(line, f);
    }
    line += '\n';
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    FILE* out = stream_ != nullptr ? stream_ : stderr;
    std::fwrite(line.data(), 1, line.size(), out);
    std::fflush(out);
  }
  lines_counter().add();
  // Feed the flight ring after releasing the sink lock; the recorder has
  // its own mutex and never calls back into the logger.
  FlightRecorder::global().note_log(
      level, std::string_view(line.data(), line.size() - 1));
}

FILE* Logger::set_stream(FILE* stream) noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  FILE* previous = stream_;
  stream_ = stream;
  return previous;
}

std::uint64_t Logger::lines_written() const noexcept {
  return lines_counter().value();
}

Logger& Logger::global() {
  static Logger logger;
  return logger;
}

void log_debug(std::string_view component, std::string_view message,
               std::initializer_list<LogField> fields) {
  Logger::global().log(LogLevel::kDebug, component, message, fields);
}

void log_info(std::string_view component, std::string_view message,
              std::initializer_list<LogField> fields) {
  Logger::global().log(LogLevel::kInfo, component, message, fields);
}

void log_warn(std::string_view component, std::string_view message,
              std::initializer_list<LogField> fields) {
  Logger::global().log(LogLevel::kWarn, component, message, fields);
}

void log_error(std::string_view component, std::string_view message,
               std::initializer_list<LogField> fields) {
  Logger::global().log(LogLevel::kError, component, message, fields);
}

// ---- rate-limited warnings -------------------------------------------------

namespace {

struct TokenBucket {
  double tokens = kLogRateLimitBurst;
  std::int64_t refilled_ns = 0;
  std::uint64_t suppressed = 0;  ///< since the last emitted line for this key
};

struct RateLimitState {
  std::mutex mutex;
  std::map<std::string, TokenBucket> buckets;
};

RateLimitState& rate_limit_state() {
  static RateLimitState* state = new RateLimitState();  // leaked
  return *state;
}

Counter& suppressed_counter() {
  static Counter& counter =
      MetricsRegistry::global().counter("obs.log.suppressed_total");
  return counter;
}

}  // namespace

bool log_warn_limited_at(std::string_view component, std::string_view message,
                         std::initializer_list<LogField> fields,
                         std::int64_t now_ns) {
  std::uint64_t suppressed = 0;
  {
    RateLimitState& state = rate_limit_state();
    std::string key;
    key.reserve(component.size() + 1 + message.size());
    key.append(component);
    key += '\0';
    key.append(message);
    const std::lock_guard<std::mutex> lock(state.mutex);
    TokenBucket& bucket = state.buckets[key];
    if (bucket.refilled_ns == 0) {
      bucket.refilled_ns = now_ns;  // first sighting: full burst available
    } else if (now_ns > bucket.refilled_ns) {
      const double elapsed_s =
          static_cast<double>(now_ns - bucket.refilled_ns) * 1e-9;
      bucket.tokens = std::min(kLogRateLimitBurst,
                               bucket.tokens + elapsed_s * kLogRateLimitPerSecond);
      bucket.refilled_ns = now_ns;
    }
    if (bucket.tokens < 1.0) {
      ++bucket.suppressed;
      suppressed_counter().add();
      return false;
    }
    bucket.tokens -= 1.0;
    suppressed = bucket.suppressed;
    bucket.suppressed = 0;
  }
  if (suppressed > 0) {
    std::vector<LogField> with_count(fields);
    with_count.push_back(field("suppressed", suppressed));
    Logger::global().log(LogLevel::kWarn, component, message, with_count);
  } else {
    Logger::global().log(LogLevel::kWarn, component, message, fields);
  }
  return true;
}

bool log_warn_limited(std::string_view component, std::string_view message,
                      std::initializer_list<LogField> fields) {
  return log_warn_limited_at(component, message, fields, window_now_ns());
}

std::uint64_t log_suppressed_total() noexcept {
  return suppressed_counter().value();
}

void reset_log_rate_limits() {
  RateLimitState& state = rate_limit_state();
  const std::lock_guard<std::mutex> lock(state.mutex);
  state.buckets.clear();
}

}  // namespace scshare::obs
