// Structured tracing for the SC-Share pipeline.
//
// Components emit typed events through a process-wide TraceSink pointer;
// when no sink is installed the cost at every call site is one relaxed
// atomic load (the events themselves are only constructed behind the
// nullness check). Three sinks are provided:
//  * NullTraceSink    — explicit no-op (useful to silence a Tee branch),
//  * RingBufferSink   — bounded in-memory buffer, Framework::report() reads
//                       it back for the RunReport,
//  * JsonLinesSink    — one JSON object per line appended to a file
//                       (the CLI's --trace=FILE).
// TeeSink fans an event out to two sinks so a Framework-owned ring buffer
// can coexist with a user-installed file sink.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

namespace scshare::obs {

/// One residual check of a steady-state / transient solver.
struct SolverIterationEvent {
  std::string solver;        ///< "gauss_seidel", "power", "transient", ...
  std::uint64_t iteration = 0;  ///< sweep count at this check
  double residual = 0.0;        ///< max |pi Q| (or epsilon for transient)
  bool converged = false;
};

/// One performance-model evaluation as seen by the caching layer.
struct BackendEvalEvent {
  std::string backend;      ///< inner backend name
  std::vector<int> shares;  ///< sharing vector evaluated
  bool cache_hit = false;
  double wall_seconds = 0.0;  ///< 0 for cache hits
};

/// One best-response decision of an SC inside the market game.
struct BestResponseEvent {
  int sc = 0;
  int old_share = 0;
  int new_share = 0;
  double utility_before = 0.0;
  double utility_after = 0.0;
};

/// One round of the repeated game (Algorithm 1).
struct EquilibriumRoundEvent {
  int round = 0;
  std::vector<int> shares;  ///< sharing vector after the round
  bool changed = false;     ///< any SC moved this round
};

/// One lumpability partition refinement.
struct LumpingStatsEvent {
  std::uint64_t states_before = 0;
  std::uint64_t states_after = 0;
};

// Resilience events (src/federation/resilience.hpp). Deliberately free of
// wall-clock fields: under a fixed fault seed, two identical runs emit
// byte-identical sequences of these events.

/// One fault injected by a FaultInjectingBackend.
struct BackendFaultEvent {
  std::string backend;  ///< inner backend name
  std::string kind;     ///< "fail" | "timeout" | "latency" | "perturb"
  std::string code;     ///< error_code_name() for thrown faults, else ""
};

/// One retry decision of a RetryingBackend (attempt `attempt` failed).
struct BackendRetryEvent {
  std::string backend;  ///< inner backend name
  int attempt = 0;      ///< 0-based index of the failed attempt
  double backoff_seconds = 0.0;  ///< deterministic backoff assigned
  std::string code;     ///< error_code_name() of the failure
};

/// One tier descent of a FallbackBackend (tier `tier` failed; chain moves
/// to the next tier).
struct BackendFallbackEvent {
  int tier = 0;
  std::string tier_name;
  std::string code;  ///< error_code_name() of the tier's failure
};

/// One parallel batch dispatched through exec::Executor (src/exec/). The
/// `threads` field reflects the executor's concurrency, so this event type
/// is excluded from cross-thread-count trace comparisons (everything else
/// must be bit-identical at any --threads value).
struct ExecBatchEvent {
  std::string where;           ///< dispatching component (backend name)
  std::uint64_t tasks = 0;     ///< batch size fanned out
  std::uint64_t threads = 0;   ///< executor concurrency (1 = serial)
};

using TraceEvent =
    std::variant<SolverIterationEvent, BackendEvalEvent, BestResponseEvent,
                 EquilibriumRoundEvent, LumpingStatsEvent, BackendFaultEvent,
                 BackendRetryEvent, BackendFallbackEvent, ExecBatchEvent>;

/// Stable wire name of an event's type ("solver_iteration", ...).
[[nodiscard]] const char* event_type_name(const TraceEvent& event);

/// Compact single-line JSON encoding of an event (the JSONL wire format).
[[nodiscard]] std::string to_json_line(const TraceEvent& event);

/// Same, with a correlation id stamped as a trailing `"ctx":N` member when
/// `ctx != 0`. JsonLinesSink uses this with the emitting thread's
/// current_correlation() (see obs/log.hpp), so live JSONL streams can be
/// grepped by ctx to reconstruct one game round across components.
[[nodiscard]] std::string to_json_line(const TraceEvent& event,
                                       std::uint64_t ctx);

/// Sink interface. Implementations must be safe to call from any thread.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceEvent& event) = 0;
};

class NullTraceSink final : public TraceSink {
 public:
  void emit(const TraceEvent&) override {}
};

/// Bounded in-memory buffer keeping the most recent `capacity` events.
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 4096);

  void emit(const TraceEvent& event) override;

  /// Buffered events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  /// Total events emitted (including ones overwritten by wrap-around).
  [[nodiscard]] std::uint64_t total_emitted() const;
  /// Events lost to wrap-around.
  [[nodiscard]] std::uint64_t dropped() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> buffer_;
  std::size_t capacity_;
  std::size_t next_ = 0;  ///< insertion cursor once the buffer is full
  std::uint64_t emitted_ = 0;
};

/// Appends one JSON object per event to `path`. Throws scshare-style
/// std::runtime_error when the file cannot be opened.
class JsonLinesSink final : public TraceSink {
 public:
  explicit JsonLinesSink(const std::string& path);

  void emit(const TraceEvent& event) override;
  void flush();

 private:
  std::mutex mutex_;
  std::ofstream out_;
};

/// Forwards to two sinks (either may be null).
class TeeSink final : public TraceSink {
 public:
  TeeSink(TraceSink* first, TraceSink* second)
      : first_(first), second_(second) {}
  void emit(const TraceEvent& event) override {
    if (first_ != nullptr) first_->emit(event);
    if (second_ != nullptr) second_->emit(event);
  }

 private:
  TraceSink* first_;
  TraceSink* second_;
};

/// Currently installed sink (nullptr = tracing disabled). One relaxed
/// atomic load; call sites construct events only behind the null check:
///   if (auto* sink = obs::trace_sink()) sink->emit(SolverIterationEvent{...});
[[nodiscard]] TraceSink* trace_sink() noexcept;

/// Installs `sink` (nullptr disables tracing); returns the previous sink.
/// The caller keeps ownership and must keep the sink alive while installed.
TraceSink* set_trace_sink(TraceSink* sink) noexcept;

}  // namespace scshare::obs
