// SLO plane: windowed request-latency percentiles and error-budget burn
// rates against configurable objectives, rendered at /slosz.
//
// The serve layer records one sample per finished (or shed) request:
// an outcome plus the end-to-end latency. The plane keeps
//  * one WindowedHistogram of latency seconds,
//  * one WindowedCounter per outcome (ok/error/shed/deadline/cancelled),
//  * one WindowedCounter of latency-objective violations (ok requests whose
//    latency exceeded the target),
// and answers, for each reporting window (10s / 1m / 5m): p50/p95/p99/p999,
// request rate, the outcome decomposition, availability (good / total where
// good = ok AND within the latency target), and the error-budget burn rate
// burn = (1 - availability) / (1 - availability_objective).
//
// record() is edge-triggered for the flight recorder: it returns true
// exactly when the fast (10s) window's burn rate crosses the configured
// threshold from below, so the caller can dump the flight ring once per
// burn episode instead of once per bad request.
//
// The global() instance is process-wide, exactly like MetricsRegistry: the
// daemon configures objectives at startup and the telemetry server renders
// /slosz from whatever has been recorded. With no objectives set the plane
// still reports windowed percentiles and rates; availability/burn fields are
// null.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "obs/window.hpp"

namespace scshare::obs {

struct SloObjectives {
  /// Latency objective in milliseconds; 0 = unset (no latency SLO).
  double latency_ms = 0.0;
  /// Availability objective in (0, 1), e.g. 0.99; 0 = unset.
  double availability = 0.0;
  /// Burn-rate multiple at which the plane reports "burning" and record()
  /// edge-triggers a flight-recorder dump.
  double burn_threshold = 2.0;
};

enum class RequestOutcome { kOk, kError, kShed, kDeadlineExceeded, kCancelled };

[[nodiscard]] const char* request_outcome_name(RequestOutcome o) noexcept;

class SloPlane {
 public:
  explicit SloPlane(WindowOptions windows = {});

  void set_objectives(const SloObjectives& objectives);
  [[nodiscard]] SloObjectives objectives() const;

  /// Records one finished request. `seconds` < 0 means no latency sample
  /// (a shed request never ran). Returns true when this record pushed the
  /// 10s burn rate over the threshold from at-or-under it (edge trigger).
  bool record(RequestOutcome outcome, double seconds) {
    return record_at(outcome, seconds, window_now_ns());
  }
  bool record_at(RequestOutcome outcome, double seconds, std::int64_t now_ns);

  /// True while the most recent record left the 10s window burning. Cleared
  /// by the next record that observes a healthy window.
  [[nodiscard]] bool burning() const;

  /// JSON document for /slosz (see header comment for the schema).
  [[nodiscard]] std::string render_slosz() const {
    return render_slosz_at(window_now_ns());
  }
  [[nodiscard]] std::string render_slosz_at(std::int64_t now_ns) const;

  /// Burn rate over the trailing `horizon_seconds`; negative when no
  /// availability objective is set or the window is empty.
  [[nodiscard]] double burn_rate(std::int64_t horizon_seconds,
                                 std::int64_t now_ns) const;

  void reset();

  /// Process-wide plane shared by the daemon and the telemetry server.
  static SloPlane& global();

 private:
  [[nodiscard]] double burn_rate_impl(std::int64_t horizon_seconds,
                                      std::int64_t now_ns) const;

  WindowOptions window_options_;
  mutable std::mutex mutex_;  ///< guards objectives_ and burning_
  SloObjectives objectives_;
  bool burning_ = false;

  WindowedHistogram latency_;
  WindowedCounter ok_;
  WindowedCounter error_;
  WindowedCounter shed_;
  WindowedCounter deadline_;
  WindowedCounter cancelled_;
  WindowedCounter latency_violations_;
};

}  // namespace scshare::obs
