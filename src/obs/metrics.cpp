#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace scshare::obs {
namespace {

/// fetch_add for atomic<double> (no native RMW before C++20 on all libs).
void atomic_add(std::atomic<double>& target, double v) noexcept {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + v,
                                       std::memory_order_relaxed)) {
  }
}

/// Monotone CAS fold: keep exchanging until either the stored value already
/// beats `v` or our exchange lands. compare_exchange_weak refreshes
/// `expected` on failure and the improvement test is re-evaluated against
/// that fresh value every iteration, so a concurrent extreme can never be
/// lost (a spurious weak failure just retries). NaN never satisfies
/// `better` and is ignored.
template <typename Better>
void atomic_fold_extreme(std::atomic<double>& target, double v,
                         Better better) noexcept {
  double expected = target.load(std::memory_order_relaxed);
  while (better(v, expected)) {
    if (target.compare_exchange_weak(expected, v,
                                     std::memory_order_relaxed)) {
      return;
    }
  }
}

void atomic_min(std::atomic<double>& target, double v) noexcept {
  atomic_fold_extreme(target, v, [](double a, double b) { return a < b; });
}

void atomic_max(std::atomic<double>& target, double v) noexcept {
  atomic_fold_extreme(target, v, [](double a, double b) { return a > b; });
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(bounds.empty() ? latency_bounds() : std::move(bounds)),
      counts_(bounds_.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument(
          "Histogram: bucket bounds must be strictly increasing");
    }
  }
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.counts.reserve(counts_.size());
  std::uint64_t bucket_total = 0;
  for (const auto& c : counts_) {
    const std::uint64_t n = c.load(std::memory_order_relaxed);
    bucket_total += n;
    s.counts.push_back(n);
  }
  // Derive count from the bucket loads rather than count_: under concurrent
  // observe() the separately-loaded count_ can disagree with the buckets
  // read a moment earlier, which would make the OpenMetrics cumulative
  // le="+Inf" bucket differ from _count within one scrape. Each bucket load
  // is monotone, so this keeps count consistent AND monotone across scrapes.
  s.count = bucket_total;
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> Histogram::latency_bounds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0};
}

std::vector<double> Histogram::size_bounds() {
  return {1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6};
}

MetricsSnapshot MetricsSnapshot::delta_from(
    const MetricsSnapshot& baseline) const {
  MetricsSnapshot d = *this;
  for (auto& [name, value] : d.counters) {
    const auto it = baseline.counters.find(name);
    if (it != baseline.counters.end() && it->second <= value) {
      value -= it->second;
    }
  }
  for (auto& [name, hist] : d.histograms) {
    const auto it = baseline.histograms.find(name);
    if (it == baseline.histograms.end()) continue;
    const HistogramSnapshot& base = it->second;
    if (base.bounds != hist.bounds || base.count > hist.count) continue;
    for (std::size_t i = 0;
         i < hist.counts.size() && i < base.counts.size(); ++i) {
      if (base.counts[i] <= hist.counts[i]) hist.counts[i] -= base.counts[i];
    }
    hist.count -= base.count;
    hist.sum -= base.sum;
    // min/max cannot be subtracted; keep the lifetime extrema.
  }
  return d;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    s.histograms[name] = h->snapshot();
  }
  return s;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace scshare::obs
