#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <stdexcept>

#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace scshare::obs {
namespace {

std::atomic<TraceSink*> g_sink{nullptr};

void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_int_array(std::string& out, const std::vector<int>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(values[i]);
  }
  out += ']';
}

/// The solver/backend names emitted here are short identifiers without
/// characters needing JSON escapes, but escape defensively anyway.
void append_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

const char* event_type_name(const TraceEvent& event) {
  struct Visitor {
    const char* operator()(const SolverIterationEvent&) const {
      return "solver_iteration";
    }
    const char* operator()(const BackendEvalEvent&) const {
      return "backend_eval";
    }
    const char* operator()(const BestResponseEvent&) const {
      return "best_response";
    }
    const char* operator()(const EquilibriumRoundEvent&) const {
      return "equilibrium_round";
    }
    const char* operator()(const LumpingStatsEvent&) const {
      return "lumping_stats";
    }
    const char* operator()(const BackendFaultEvent&) const {
      return "backend_fault";
    }
    const char* operator()(const BackendRetryEvent&) const {
      return "backend_retry";
    }
    const char* operator()(const BackendFallbackEvent&) const {
      return "backend_fallback";
    }
    const char* operator()(const ExecBatchEvent&) const {
      return "exec_batch";
    }
  };
  return std::visit(Visitor{}, event);
}

std::string to_json_line(const TraceEvent& event) {
  std::string out;
  out += "{\"type\":\"";
  out += event_type_name(event);
  out += '"';

  struct Visitor {
    std::string& out;
    void operator()(const SolverIterationEvent& e) const {
      out += ",\"solver\":";
      append_string(out, e.solver);
      out += ",\"iteration\":" + std::to_string(e.iteration);
      out += ",\"residual\":";
      append_number(out, e.residual);
      out += ",\"converged\":";
      out += e.converged ? "true" : "false";
    }
    void operator()(const BackendEvalEvent& e) const {
      out += ",\"backend\":";
      append_string(out, e.backend);
      out += ",\"shares\":";
      append_int_array(out, e.shares);
      out += ",\"cache_hit\":";
      out += e.cache_hit ? "true" : "false";
      out += ",\"wall_seconds\":";
      append_number(out, e.wall_seconds);
    }
    void operator()(const BestResponseEvent& e) const {
      out += ",\"sc\":" + std::to_string(e.sc);
      out += ",\"old_share\":" + std::to_string(e.old_share);
      out += ",\"new_share\":" + std::to_string(e.new_share);
      out += ",\"utility_before\":";
      append_number(out, e.utility_before);
      out += ",\"utility_after\":";
      append_number(out, e.utility_after);
    }
    void operator()(const EquilibriumRoundEvent& e) const {
      out += ",\"round\":" + std::to_string(e.round);
      out += ",\"shares\":";
      append_int_array(out, e.shares);
      out += ",\"changed\":";
      out += e.changed ? "true" : "false";
    }
    void operator()(const LumpingStatsEvent& e) const {
      out += ",\"states_before\":" + std::to_string(e.states_before);
      out += ",\"states_after\":" + std::to_string(e.states_after);
    }
    void operator()(const BackendFaultEvent& e) const {
      out += ",\"backend\":";
      append_string(out, e.backend);
      out += ",\"kind\":";
      append_string(out, e.kind);
      out += ",\"code\":";
      append_string(out, e.code);
    }
    void operator()(const BackendRetryEvent& e) const {
      out += ",\"backend\":";
      append_string(out, e.backend);
      out += ",\"attempt\":" + std::to_string(e.attempt);
      out += ",\"backoff_seconds\":";
      append_number(out, e.backoff_seconds);
      out += ",\"code\":";
      append_string(out, e.code);
    }
    void operator()(const BackendFallbackEvent& e) const {
      out += ",\"tier\":" + std::to_string(e.tier);
      out += ",\"tier_name\":";
      append_string(out, e.tier_name);
      out += ",\"code\":";
      append_string(out, e.code);
    }
    void operator()(const ExecBatchEvent& e) const {
      out += ",\"where\":";
      append_string(out, e.where);
      out += ",\"tasks\":" + std::to_string(e.tasks);
      out += ",\"threads\":" + std::to_string(e.threads);
    }
  };
  std::visit(Visitor{out}, event);
  out += '}';
  return out;
}

std::string to_json_line(const TraceEvent& event, std::uint64_t ctx) {
  std::string out = to_json_line(event);
  if (ctx != 0) {
    out.pop_back();  // reopen the object to append the ctx member
    out += ",\"ctx\":" + std::to_string(ctx) + "}";
  }
  return out;
}

RingBufferSink::RingBufferSink(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {
  buffer_.reserve(capacity_);
}

void RingBufferSink::emit(const TraceEvent& event) {
  // Ring-health self-metrics: totals/drops across every RingBufferSink in
  // the process. The CLI warns on stderr when a run's delta shows drops.
  static Counter& events_total =
      MetricsRegistry::global().counter("obs.trace.events_total");
  static Counter& events_dropped =
      MetricsRegistry::global().counter("obs.trace.events_dropped");
  events_total.add();
  bool dropped = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (buffer_.size() < capacity_) {
      buffer_.push_back(event);
    } else {
      buffer_[next_] = event;
      next_ = (next_ + 1) % capacity_;
      dropped = true;
    }
    ++emitted_;
  }
  if (dropped) events_dropped.add();
}

std::vector<TraceEvent> RingBufferSink::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(buffer_.size());
  // Oldest first: [next_, end) then [0, next_) once wrapped.
  for (std::size_t i = next_; i < buffer_.size(); ++i) {
    out.push_back(buffer_[i]);
  }
  for (std::size_t i = 0; i < next_; ++i) out.push_back(buffer_[i]);
  return out;
}

std::uint64_t RingBufferSink::total_emitted() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return emitted_;
}

std::uint64_t RingBufferSink::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return emitted_ - buffer_.size();
}

void RingBufferSink::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  buffer_.clear();
  next_ = 0;
  emitted_ = 0;
}

JsonLinesSink::JsonLinesSink(const std::string& path) : out_(path) {
  if (!out_.good()) {
    throw std::runtime_error("JsonLinesSink: cannot open trace file: " + path);
  }
}

void JsonLinesSink::emit(const TraceEvent& event) {
  // Stamp the emitting thread's correlation id here, not at report-time
  // serialization: RingBufferSink events are rendered later on a different
  // thread, where the thread-local ctx would be wrong.
  const std::string line = to_json_line(event, current_correlation());
  const std::lock_guard<std::mutex> lock(mutex_);
  out_ << line << '\n';
}

void JsonLinesSink::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  out_.flush();
}

TraceSink* trace_sink() noexcept {
  return g_sink.load(std::memory_order_acquire);
}

TraceSink* set_trace_sink(TraceSink* sink) noexcept {
  return g_sink.exchange(sink, std::memory_order_acq_rel);
}

}  // namespace scshare::obs
