// Build and runtime identity: which binary is answering, and for how long.
//
// The version / compiler / build-type strings are baked in at CMake
// configure time (see src/CMakeLists.txt and obs/build_info.cpp.in) so
// /healthz, the RunReport "build" block, and the scshare_build_info metric
// can all answer "which commit produced this number" without shelling out
// to git at runtime.
#pragma once

#include <string>

namespace scshare::obs {

struct BuildIdentity {
  std::string version;     ///< `git describe --always --dirty --tags`
  std::string compiler;    ///< e.g. "GNU 13.2.0"
  std::string build_type;  ///< CMAKE_BUILD_TYPE, "unspecified" when unset
};

/// The identity compiled into this binary.
[[nodiscard]] const BuildIdentity& build_identity() noexcept;

/// Seconds since this process loaded the obs library (steady clock).
[[nodiscard]] double process_uptime_seconds() noexcept;

}  // namespace scshare::obs
