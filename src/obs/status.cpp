#include "obs/status.hpp"

#include <cstdio>

namespace scshare::obs {
namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void StatusBoard::set_rendered(std::string_view key, std::string rendered) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    entries_.emplace(std::string(key), std::move(rendered));
  } else {
    it->second = std::move(rendered);
  }
}

void StatusBoard::set(std::string_view key, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  set_rendered(key, buf);
}

void StatusBoard::set(std::string_view key, std::int64_t value) {
  set_rendered(key, std::to_string(value));
}

void StatusBoard::set(std::string_view key, int value) {
  set_rendered(key, std::to_string(value));
}

void StatusBoard::set(std::string_view key, std::uint64_t value) {
  set_rendered(key, std::to_string(value));
}

void StatusBoard::set(std::string_view key, bool value) {
  set_rendered(key, value ? "true" : "false");
}

void StatusBoard::set(std::string_view key, std::string_view value) {
  std::string rendered;
  rendered.reserve(value.size() + 2);
  append_json_string(rendered, value);
  set_rendered(key, std::move(rendered));
}

void StatusBoard::set(std::string_view key, const char* value) {
  set(key, std::string_view(value != nullptr ? value : ""));
}

void StatusBoard::set(std::string_view key, const std::vector<int>& value) {
  std::string rendered = "[";
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (i > 0) rendered += ',';
    rendered += std::to_string(value[i]);
  }
  rendered += ']';
  set_rendered(key, std::move(rendered));
}

void StatusBoard::erase(std::string_view key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) entries_.erase(it);
}

void StatusBoard::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

std::string StatusBoard::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : entries_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, key);
    out += ':';
    out += value;
  }
  out += '}';
  return out;
}

std::map<std::string, std::string> StatusBoard::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {entries_.begin(), entries_.end()};
}

StatusBoard& StatusBoard::global() {
  static StatusBoard board;
  return board;
}

}  // namespace scshare::obs
