// Standard exporters for RunReport.
//
// One interface, multiple wire formats: OpenMetricsExporter (here, because
// the text exposition needs nothing but the report) renders the Prometheus /
// OpenMetrics text format; the JSON exporter lives in io (it reuses
// io::to_json(RunReport)) and both are constructed through
// io::make_exporter("json"|"prom"). The CLI selects one with
// --metrics-format.
#pragma once

#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>

#include "obs/report.hpp"

namespace scshare::obs {

/// Renders a RunReport into one machine-readable document.
class Exporter {
 public:
  virtual ~Exporter() = default;
  /// Wire name of the format ("json", "prom").
  [[nodiscard]] virtual const char* format_name() const noexcept = 0;
  [[nodiscard]] virtual std::string render(const RunReport& report) const = 0;
};

/// Prometheus / OpenMetrics text exposition:
///  * every metric name is sanitized to [a-zA-Z0-9_:] and prefixed
///    "scshare_" (dots become underscores: federation.cache.hits ->
///    scshare_federation_cache_hits);
///  * counters get the "_total" suffix, histograms emit cumulative
///    "_bucket{le=...}" series plus "_sum"/"_count";
///  * each family is preceded by exactly one "# TYPE" line, names are unique,
///    label values are escaped per the spec, and the document ends with
///    "# EOF".
/// A "scshare_run_info{backend="..."}" gauge carries the run's backend label.
class OpenMetricsExporter final : public Exporter {
 public:
  [[nodiscard]] const char* format_name() const noexcept override {
    return "prom";
  }
  [[nodiscard]] std::string render(const RunReport& report) const override;
};

/// "market.game.rounds" -> "scshare_market_game_rounds"; any character
/// outside [a-zA-Z0-9_:] becomes '_', and a leading digit gains a '_' guard.
[[nodiscard]] std::string sanitize_metric_name(std::string_view name);

/// Escapes '\', '"' and newline for use inside a label value.
[[nodiscard]] std::string escape_label_value(std::string_view value);

/// Builds a labeled registry name, `base{k="v",...}` with escaped values.
/// Instruments registered under such names render as one family with one
/// series per label set (e.g. `serve.http.requests{path="/metrics"}` becomes
/// `scshare_serve_http_requests_total{path="/metrics"}`).
[[nodiscard]] std::string labeled_metric_name(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);

}  // namespace scshare::obs
