#include "obs/export.hpp"

#include <cctype>
#include <cstdio>

namespace scshare::obs {
namespace {

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_bound(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%g", v);
  out += buf;
}

void type_line(std::string& out, const std::string& family,
               const char* type) {
  out += "# TYPE ";
  out += family;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string sanitize_metric_name(std::string_view name) {
  std::string out = "scshare_";
  if (!name.empty() && std::isdigit(static_cast<unsigned char>(name[0]))) {
    out += '_';
  }
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string OpenMetricsExporter::render(const RunReport& report) const {
  std::string out;
  out.reserve(4096);

  // Run-identity pseudo-metric: carries the backend label (and exercises the
  // label-escaping path for arbitrary backend names).
  type_line(out, "scshare_run_info", "gauge");
  out += "scshare_run_info{backend=\"";
  out += escape_label_value(report.backend);
  out += "\"} 1\n";

  for (const auto& [name, value] : report.metrics.counters) {
    const std::string family = sanitize_metric_name(name);
    type_line(out, family, "counter");
    out += family;
    out += "_total ";
    out += std::to_string(value);
    out += '\n';
  }

  for (const auto& [name, value] : report.metrics.gauges) {
    const std::string family = sanitize_metric_name(name);
    type_line(out, family, "gauge");
    out += family;
    out += ' ';
    append_double(out, value);
    out += '\n';
  }

  for (const auto& [name, hist] : report.metrics.histograms) {
    const std::string family = sanitize_metric_name(name);
    type_line(out, family, "histogram");
    // Cumulative buckets; the implicit overflow bucket becomes le="+Inf".
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      cumulative += hist.counts[i];
      out += family;
      out += "_bucket{le=\"";
      if (i < hist.bounds.size()) {
        append_bound(out, hist.bounds[i]);
      } else {
        out += "+Inf";
      }
      out += "\"} ";
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += family;
    out += "_sum ";
    append_double(out, hist.sum);
    out += '\n';
    out += family;
    out += "_count ";
    out += std::to_string(hist.count);
    out += '\n';
  }

  out += "# EOF\n";
  return out;
}

}  // namespace scshare::obs
