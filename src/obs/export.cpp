#include "obs/export.hpp"

#include <cctype>
#include <cstdio>
#include <map>
#include <utility>

#include "obs/build_info.hpp"

namespace scshare::obs {
namespace {

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_bound(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%g", v);
  out += buf;
}

void type_line(std::string& out, const std::string& family,
               const char* type) {
  out += "# TYPE ";
  out += family;
  out += ' ';
  out += type;
  out += '\n';
}

/// Splits a registry name of the form `base{label="v",...}` into the base
/// and the verbatim label block (empty when unlabeled).
void split_labels(std::string_view name, std::string_view& base,
                  std::string_view& labels) {
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos) {
    base = name;
    labels = {};
  } else {
    base = name.substr(0, brace);
    labels = name.substr(brace);
  }
}

}  // namespace

std::string sanitize_metric_name(std::string_view name) {
  std::string out = "scshare_";
  if (!name.empty() && std::isdigit(static_cast<unsigned char>(name[0]))) {
    out += '_';
  }
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string labeled_metric_name(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string out(base);
  if (labels.size() == 0) return out;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += escape_label_value(value);
    out += '"';
  }
  out += '}';
  return out;
}

std::string OpenMetricsExporter::render(const RunReport& report) const {
  std::string out;
  out.reserve(4096);

  // Run-identity pseudo-metric: carries the backend label (and exercises the
  // label-escaping path for arbitrary backend names).
  type_line(out, "scshare_run_info", "gauge");
  out += "scshare_run_info{backend=\"";
  out += escape_label_value(report.backend);
  out += "\"} 1\n";

  // Build-identity pseudo-metric: which binary produced this document.
  const BuildIdentity& build = build_identity();
  type_line(out, "scshare_build_info", "gauge");
  out += "scshare_build_info{version=\"";
  out += escape_label_value(build.version);
  out += "\",compiler=\"";
  out += escape_label_value(build.compiler);
  out += "\",build_type=\"";
  out += escape_label_value(build.build_type);
  out += "\"} 1\n";

  // Labeled registry names (`base{label="v"}`) share one family, so samples
  // are grouped by family first and each family gets exactly one TYPE line.
  // (Relying on raw map order would break: '_' sorts before '{', so
  // `base_other` can interleave between `base` and `base{...}`.)
  std::map<std::string, std::string> counter_blocks;
  for (const auto& [name, value] : report.metrics.counters) {
    std::string_view base;
    std::string_view labels;
    split_labels(name, base, labels);
    const std::string family = sanitize_metric_name(base);
    std::string& block = counter_blocks[family];
    block += family;
    block += "_total";
    block += labels;
    block += ' ';
    block += std::to_string(value);
    block += '\n';
  }
  for (const auto& [family, block] : counter_blocks) {
    type_line(out, family, "counter");
    out += block;
  }

  std::map<std::string, std::string> gauge_blocks;
  for (const auto& [name, value] : report.metrics.gauges) {
    std::string_view base;
    std::string_view labels;
    split_labels(name, base, labels);
    const std::string family = sanitize_metric_name(base);
    std::string& block = gauge_blocks[family];
    block += family;
    block += labels;
    block += ' ';
    append_double(block, value);
    block += '\n';
  }
  for (const auto& [family, block] : gauge_blocks) {
    type_line(out, family, "gauge");
    out += block;
  }

  for (const auto& [name, hist] : report.metrics.histograms) {
    const std::string family = sanitize_metric_name(name);
    type_line(out, family, "histogram");
    // Cumulative buckets; the implicit overflow bucket becomes le="+Inf".
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      cumulative += hist.counts[i];
      out += family;
      out += "_bucket{le=\"";
      if (i < hist.bounds.size()) {
        append_bound(out, hist.bounds[i]);
      } else {
        out += "+Inf";
      }
      out += "\"} ";
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += family;
    out += "_sum ";
    append_double(out, hist.sum);
    out += '\n';
    out += family;
    out += "_count ";
    out += std::to_string(hist.count);
    out += '\n';
  }

  out += "# EOF\n";
  return out;
}

}  // namespace scshare::obs
