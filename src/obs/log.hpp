// Structured, leveled logging plus request-scoped correlation.
//
// Every diagnostic the process emits while running goes through one
// process-wide Logger so that (a) stdout stays reserved for primary results
// and piped documents (--metrics-out=- / --profile-out=- discipline, see
// tools/cli_stream_smoke.sh) and (b) concurrent writers can never interleave
// partial lines: the sink writes each fully formatted line under one mutex.
//
// Two wire formats, selectable at runtime:
//  * kText — logfmt-style, one line per record:
//      ts=2026-08-07T12:00:00.123Z level=warn comp=solver msg="relaxed
//      tolerance" ctx=17 attempts=2
//  * kJson — one JSON object per line with the same fields:
//      {"ts":"...","level":"warn","comp":"solver","msg":"...","ctx":17,
//       "attempts":2}
//
// Schema (both formats): `ts` (UTC wall clock, millisecond ISO-8601),
// `level` (debug|info|warn|error), `comp` (emitting component), `msg`,
// `ctx` (correlation id, present only when a RequestContext is active), then
// any record-specific fields in emission order. Keys are expected to be
// plain identifiers; values are escaped.
//
// Correlation. A RequestContext is a thread-local correlation id scoped by
// ScopedCorrelation; exec::ThreadPool::parallel_for captures the dispatching
// thread's id and installs it in every worker (exactly like span parenting),
// so one logical request — a game round, a telemetry scrape, a validation
// scenario — carries the same id across the pool. The id is stamped onto log
// lines (here), streamed trace events (obs::JsonLinesSink) and span records
// (obs::SpanRecord::ctx), so `grep ctx=17 soak.log` reconstructs the round
// end-to-end.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace scshare::obs {

// ---- request-scoped correlation -------------------------------------------

/// Correlation id tying one logical request's logs, trace events, and spans
/// together. 0 means "no context".
using CorrelationId = std::uint64_t;

/// The calling thread's active correlation id (0 = none).
[[nodiscard]] CorrelationId current_correlation() noexcept;

/// Draws a fresh process-unique correlation id (> 0).
[[nodiscard]] CorrelationId next_correlation_id() noexcept;

/// Installs `id` as the thread's correlation id for the scope's lifetime and
/// restores the previous id on destruction. Nestable.
class ScopedCorrelation {
 public:
  explicit ScopedCorrelation(CorrelationId id) noexcept;
  ~ScopedCorrelation();
  ScopedCorrelation(const ScopedCorrelation&) = delete;
  ScopedCorrelation& operator=(const ScopedCorrelation&) = delete;

 private:
  CorrelationId saved_;
};

// ---- structured logger -----------------------------------------------------

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Stable wire name: "debug", "info", "warn", "error".
[[nodiscard]] const char* log_level_name(LogLevel level) noexcept;
/// Parses a wire name back ("debug"|"info"|"warn"|"error"); returns false
/// and leaves `out` untouched on an unknown name.
[[nodiscard]] bool parse_log_level(std::string_view name,
                                   LogLevel& out) noexcept;

enum class LogFormat { kText, kJson };

/// One structured field of a log record. Built through the field() helpers
/// so numeric values render unquoted in both formats.
struct LogField {
  std::string key;
  std::string value;   ///< pre-rendered; escaped at emission
  bool is_number = false;
};

[[nodiscard]] LogField field(std::string_view key, std::string_view value);
[[nodiscard]] LogField field(std::string_view key, const char* value);
[[nodiscard]] LogField field(std::string_view key, double value);
[[nodiscard]] LogField field(std::string_view key, std::int64_t value);
[[nodiscard]] LogField field(std::string_view key, std::uint64_t value);
[[nodiscard]] LogField field(std::string_view key, int value);
[[nodiscard]] LogField field(std::string_view key, bool value);

/// Thread-safe leveled logger writing one line per record to a FILE*
/// (stderr by default — stdout belongs to primary results).
class Logger {
 public:
  Logger() = default;
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Emits one record when `level` passes the threshold. The line is
  /// formatted outside the sink lock and written with one fwrite, so
  /// concurrent records never interleave. Every emitted line is also fed to
  /// the global FlightRecorder ring (outside the sink lock).
  void log(LogLevel level, std::string_view component,
           std::string_view message,
           std::initializer_list<LogField> fields = {});
  /// Same, for call sites that assemble fields dynamically (e.g. the
  /// rate-limited warning path appending `suppressed=N`).
  void log(LogLevel level, std::string_view component,
           std::string_view message, const std::vector<LogField>& fields);

  void set_level(LogLevel level) noexcept {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const noexcept {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  /// True when a record at `level` would be emitted — gate expensive field
  /// construction behind this.
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >=
           level_.load(std::memory_order_relaxed);
  }

  void set_format(LogFormat format) noexcept {
    json_.store(format == LogFormat::kJson, std::memory_order_relaxed);
  }
  [[nodiscard]] LogFormat format() const noexcept {
    return json_.load(std::memory_order_relaxed) ? LogFormat::kJson
                                                 : LogFormat::kText;
  }

  /// Redirects the sink (tests point this at a memstream). The previous
  /// stream is returned and never closed by the logger.
  FILE* set_stream(FILE* stream) noexcept;

  /// Records emitted (post-filter); exported as `obs.log.lines_total`.
  [[nodiscard]] std::uint64_t lines_written() const noexcept;

  /// The process-wide logger used by every component.
  static Logger& global();

 private:
  void log_impl(LogLevel level, std::string_view component,
                std::string_view message, const LogField* fields,
                std::size_t n_fields);

  std::atomic<int> level_{static_cast<int>(LogLevel::kInfo)};
  std::atomic<bool> json_{false};
  std::mutex mutex_;            ///< guards stream_ and the write itself
  FILE* stream_ = nullptr;      ///< nullptr = stderr
};

/// Convenience wrappers over Logger::global().
void log_debug(std::string_view component, std::string_view message,
               std::initializer_list<LogField> fields = {});
void log_info(std::string_view component, std::string_view message,
              std::initializer_list<LogField> fields = {});
void log_warn(std::string_view component, std::string_view message,
              std::initializer_list<LogField> fields = {});
void log_error(std::string_view component, std::string_view message,
               std::initializer_list<LogField> fields = {});

// ---- rate-limited warnings -------------------------------------------------

/// Token-bucket rate limit for a repeated warning, keyed by
/// (component, message): a burst of `kLogRateLimitBurst` lines passes, then
/// the key is refilled at `kLogRateLimitPerSecond` lines/s. Suppressed
/// repeats are counted and the next line that does pass carries a
/// `suppressed=N` field, so a solver emitting the same "residual diverged"
/// warning 10k times in a tight sweep costs ~burst lines of log volume
/// without losing the fact that it happened 10k times.
inline constexpr double kLogRateLimitBurst = 5.0;
inline constexpr double kLogRateLimitPerSecond = 1.0;

/// Emits when the key's bucket has a token; otherwise counts a suppression.
/// Returns true when the line was emitted.
bool log_warn_limited(std::string_view component, std::string_view message,
                      std::initializer_list<LogField> fields = {});
/// Deterministic variant for tests: `now_ns` drives the refill clock.
bool log_warn_limited_at(std::string_view component, std::string_view message,
                         std::initializer_list<LogField> fields,
                         std::int64_t now_ns);
/// Total lines suppressed across all keys (exported as
/// `obs.log.suppressed_total`).
[[nodiscard]] std::uint64_t log_suppressed_total() noexcept;
/// Clears all token buckets and the suppression counter state (tests only;
/// the cumulative metric is not reset).
void reset_log_rate_limits();

}  // namespace scshare::obs
