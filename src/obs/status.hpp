// StatusBoard — a process-wide key/value board behind the /statusz endpoint.
//
// Long-running components publish their current progress here (the market
// game publishes the round number, sharing vector, and welfare estimate each
// round; tools publish identity fields) and the telemetry server renders the
// whole board as one JSON object on demand. Unlike the metrics registry,
// values are overwritten in place and carry structure (strings, arrays), so
// the board answers "where is the run right now", not "how much happened".
//
// Values are rendered to JSON at set() time and stored as strings; reads
// copy the map under the same mutex, so a /statusz scrape mid-update sees a
// consistent snapshot of whole values (never a torn string).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace scshare::obs {

/// Thread-safe map of status keys to pre-rendered JSON values.
class StatusBoard {
 public:
  StatusBoard() = default;
  StatusBoard(const StatusBoard&) = delete;
  StatusBoard& operator=(const StatusBoard&) = delete;

  void set(std::string_view key, double value);
  void set(std::string_view key, std::int64_t value);
  void set(std::string_view key, int value);
  void set(std::string_view key, std::uint64_t value);
  void set(std::string_view key, bool value);
  void set(std::string_view key, std::string_view value);
  void set(std::string_view key, const char* value);
  void set(std::string_view key, const std::vector<int>& value);

  void erase(std::string_view key);
  void clear();

  /// `{"key": value, ...}` with keys sorted; `{}` when empty.
  [[nodiscard]] std::string to_json() const;

  /// Point-in-time copy: key -> rendered JSON value.
  [[nodiscard]] std::map<std::string, std::string> snapshot() const;

  /// The process-wide board served at /statusz.
  static StatusBoard& global();

 private:
  void set_rendered(std::string_view key, std::string rendered);

  mutable std::mutex mutex_;
  std::map<std::string, std::string, std::less<>> entries_;
};

}  // namespace scshare::obs
