// Time-windowed aggregation: a ring of rotating slots per instrument.
//
// The cumulative instruments in obs/metrics.hpp answer "how many since
// process start"; a soak run also needs "what was p99 over the last minute".
// A WindowedHistogram keeps `slots` rotating time slots of `slot_seconds`
// each (default 31 x 10s — enough to serve 10s/1m/5m queries), one
// LogBucketDigest per slot. Recording lands in the slot the current time
// maps to; a snapshot over a horizon merges the trailing ceil(h/slot)+1
// slots (including the current partial one) into a single digest.
//
// Rotation is lazy: there is no background thread. Every record/snapshot
// computes the current slot index from the steady clock and resets any ring
// position whose stored index is stale. Both operations take the instrument
// mutex, which makes the pair (rotation, observation) atomic: within one
// fixed slot the merged count is monotone non-decreasing across snapshots no
// matter how many writers and scrapers race (asserted under TSan by
// tests/test_slo.cpp).
//
// All time parameters are nanoseconds on an arbitrary epoch; the `now_ns`
// overloads let tests drive a fake clock deterministically.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/digest.hpp"

namespace scshare::obs {

struct WindowOptions {
  std::int64_t slot_seconds = 10;
  /// Ring length. 31 x 10s serves a 5-minute horizon with one slot of
  /// slack for the current partial slot.
  std::size_t slots = 31;
  DigestOptions digest;
};

/// Nanoseconds on the steady clock (the default `now` for every windowed
/// instrument).
[[nodiscard]] std::int64_t window_now_ns() noexcept;

/// Ring of per-slot quantile digests.
class WindowedHistogram {
 public:
  explicit WindowedHistogram(WindowOptions options = {});

  void record(double v) { record_at(v, window_now_ns()); }
  void record_at(double v, std::int64_t now_ns);

  /// Merged digest over the trailing `horizon_seconds` (current partial slot
  /// included).
  [[nodiscard]] LogBucketDigest snapshot(std::int64_t horizon_seconds) const {
    return snapshot_at(horizon_seconds, window_now_ns());
  }
  [[nodiscard]] LogBucketDigest snapshot_at(std::int64_t horizon_seconds,
                                            std::int64_t now_ns) const;

  [[nodiscard]] const WindowOptions& options() const noexcept {
    return options_;
  }

  void reset();

 private:
  struct Slot {
    std::int64_t index = -1;  ///< global slot number; -1 = never used
    LogBucketDigest digest;
  };

  [[nodiscard]] std::int64_t slot_index(std::int64_t now_ns) const noexcept;

  WindowOptions options_;
  mutable std::mutex mutex_;
  mutable std::vector<Slot> ring_;
};

/// Ring of per-slot event counts (windowed companion of obs::Counter).
class WindowedCounter {
 public:
  explicit WindowedCounter(WindowOptions options = {});

  void add(std::uint64_t n = 1) { add_at(n, window_now_ns()); }
  void add_at(std::uint64_t n, std::int64_t now_ns);

  /// Events in the trailing `horizon_seconds` (current partial slot
  /// included).
  [[nodiscard]] std::uint64_t sum(std::int64_t horizon_seconds) const {
    return sum_at(horizon_seconds, window_now_ns());
  }
  [[nodiscard]] std::uint64_t sum_at(std::int64_t horizon_seconds,
                                     std::int64_t now_ns) const;

  void reset();

 private:
  struct Slot {
    std::int64_t index = -1;
    std::uint64_t value = 0;
  };

  [[nodiscard]] std::int64_t slot_index(std::int64_t now_ns) const noexcept;

  WindowOptions options_;
  mutable std::mutex mutex_;
  mutable std::vector<Slot> ring_;
};

}  // namespace scshare::obs
