// Mergeable quantile digest over fixed-ratio logarithmic buckets (HDR /
// DDSketch style).
//
// Bucket k covers (min_value * gamma^(k-1), min_value * gamma^k]; with the
// default gamma = 1.005 any reported quantile is within 0.25% of the true
// value in *relative value* terms, and on workloads that spread across
// buckets the rank error stays well under the 1% contract asserted by
// tests/test_slo.cpp. Two digests with the same geometry merge by summing
// their bucket arrays, which is what lets the windowed aggregation layer
// (obs/window.hpp) keep one digest per rotating time slot and merge the
// trailing slots on demand to answer "p99 over the last minute".
//
// Memory: the bucket array (~4.6k uint64 slots for the default 1us..10ks
// span) is allocated lazily on the first add(), so the empty slots of a
// window ring cost one pointer each.
//
// Not thread-safe: callers (WindowedHistogram) serialize access themselves.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace scshare::obs {

struct DigestOptions {
  /// Lower edge of the first regular bucket; smaller observations clamp
  /// into it. Seconds-flavored default: 1 microsecond.
  double min_value = 1e-6;
  /// Upper edge of the last regular bucket; larger observations clamp into
  /// the overflow bucket. Default: 10,000 seconds.
  double max_value = 1e4;
  /// Bucket width ratio (> 1). Relative value error of a reported quantile
  /// is at most (gamma - 1) / 2.
  double gamma = 1.005;
};

class LogBucketDigest {
 public:
  explicit LogBucketDigest(DigestOptions options = {});

  /// Records `n` observations of value `v`. Non-finite values are dropped;
  /// negative values clamp to the underflow bucket.
  void add(double v, std::uint64_t n = 1);

  /// Adds every observation of `other` into this digest. Both digests must
  /// share the same geometry (min/max/gamma); mismatches throw.
  void merge(const LogBucketDigest& other);

  /// Value at quantile `q` in [0, 1]: the within-bucket linearly
  /// interpolated value whose rank is ceil(q * count), clamped to the
  /// observed [min, max]. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  /// Observations with value <= v (bucket-resolution upper bound; exact at
  /// bucket edges). Drives the latency-violation accounting in the SLO
  /// plane.
  [[nodiscard]] std::uint64_t count_at_or_below(double v) const;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Regular buckets between min_value and max_value (excludes the
  /// underflow/overflow slots).
  [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_; }

  [[nodiscard]] const DigestOptions& options() const noexcept {
    return options_;
  }

  /// Returns to the empty state, releasing the bucket array.
  void reset();

 private:
  /// Index into counts_: 0 = underflow, 1..buckets_ = regular, buckets_+1 =
  /// overflow.
  [[nodiscard]] std::size_t index_for(double v) const noexcept;
  /// Lower/upper value edges of slot `i` (clamped to [min_value, max_value]
  /// for the underflow/overflow slots).
  [[nodiscard]] double lower_edge(std::size_t i) const noexcept;
  [[nodiscard]] double upper_edge(std::size_t i) const noexcept;

  DigestOptions options_;
  double inv_log_gamma_ = 0.0;
  std::size_t buckets_ = 0;
  std::vector<std::uint64_t> counts_;  ///< lazily sized buckets_ + 2
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace scshare::obs
