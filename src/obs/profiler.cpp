#include "obs/profiler.hpp"

#include <algorithm>
#include <cstddef>
#include <chrono>
#include <cstdio>
#include <map>
#include <string_view>
#include <unordered_map>

#include "obs/log.hpp"

namespace scshare::obs {

namespace detail {
std::atomic<bool> g_profiler_enabled{false};
}  // namespace detail

namespace {

constexpr std::uint32_t kNoThreadIndex = 0xffffffffu;

std::atomic<std::uint64_t> g_next_span_id{1};
std::atomic<std::uint32_t> g_next_thread_index{0};
thread_local std::uint64_t t_current_span = 0;
thread_local std::uint32_t t_thread_index = kNoThreadIndex;

/// Dense per-thread index in first-record order; stable across enable epochs
/// (only used as a trace "tid", so monotonic growth is fine).
std::uint32_t thread_index() noexcept {
  if (t_thread_index == kNoThreadIndex) {
    t_thread_index = g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
  }
  return t_thread_index;
}

[[nodiscard]] std::int64_t steady_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_micros(std::string& out, std::int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns < 0 ? 0 : ns % 1000));
  out += buf;
}

}  // namespace

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

void Profiler::enable() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    records_.clear();
  }
  epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  detail::g_profiler_enabled.store(true, std::memory_order_relaxed);
}

void Profiler::disable() {
  detail::g_profiler_enabled.store(false, std::memory_order_relaxed);
}

std::vector<SpanRecord> Profiler::records() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::vector<SpanRecord> Profiler::records_since(std::size_t from) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (from >= records_.size()) return {};
  return {records_.begin() + static_cast<std::ptrdiff_t>(from),
          records_.end()};
}

std::size_t Profiler::record_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

void Profiler::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
}

std::int64_t Profiler::now_since_epoch_ns() const noexcept {
  return steady_now_ns() - epoch_ns_.load(std::memory_order_relaxed);
}

void Profiler::record(const SpanRecord& r) {
  const std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(r);
}

void Span::begin(const char* name) noexcept {
  name_ = name;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = t_current_span;
  t_current_span = id_;
  start_ns_ = Profiler::instance().now_since_epoch_ns();
}

void Span::end() noexcept {
  t_current_span = parent_;
  Profiler& profiler = Profiler::instance();
  const std::int64_t end_ns = profiler.now_since_epoch_ns();
  profiler.record(SpanRecord{name_, id_, parent_, thread_index(), start_ns_,
                             end_ns - start_ns_, current_correlation()});
}

std::uint64_t current_span() noexcept { return t_current_span; }

ScopedSpanParent::ScopedSpanParent(std::uint64_t parent) noexcept
    : saved_(t_current_span) {
  t_current_span = parent;
}

ScopedSpanParent::~ScopedSpanParent() { t_current_span = saved_; }

std::string to_chrome_trace(const std::vector<SpanRecord>& records) {
  std::vector<SpanRecord> ordered = records;
  std::sort(ordered.begin(), ordered.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.id < b.id;
            });
  std::string out;
  out.reserve(128 + ordered.size() * 128);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& r : ordered) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_escaped(out, r.name != nullptr ? r.name : "?");
    out += ",\"cat\":\"scshare\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(r.thread);
    out += ",\"ts\":";
    append_micros(out, r.start_ns);
    out += ",\"dur\":";
    append_micros(out, r.duration_ns);
    out += ",\"args\":{\"span\":\"";
    out += std::to_string(r.id);
    out += "\",\"parent\":\"";
    out += std::to_string(r.parent);
    out += "\"";
    if (r.ctx != 0) {
      out += ",\"ctx\":\"";
      out += std::to_string(r.ctx);
      out += "\"";
    }
    out += "}}";
  }
  out += "]}\n";
  return out;
}

namespace {

/// Aggregates the spans whose ids are `ids`' children (grouped by name) into
/// child nodes of `node`, recursing down the forest.
void fill_children(
    ProfileNode& node, const std::vector<std::uint64_t>& ids,
    const std::unordered_map<std::uint64_t, std::vector<const SpanRecord*>>&
        by_parent) {
  // Ordered by name for determinism; re-sorted by weight below.
  std::map<std::string_view, std::vector<const SpanRecord*>> groups;
  for (std::uint64_t id : ids) {
    const auto it = by_parent.find(id);
    if (it == by_parent.end()) continue;
    for (const SpanRecord* child : it->second) {
      groups[child->name != nullptr ? child->name : "?"].push_back(child);
    }
  }
  for (const auto& [name, spans] : groups) {
    ProfileNode child;
    child.name = std::string(name);
    child.count = spans.size();
    std::vector<std::uint64_t> child_ids;
    child_ids.reserve(spans.size());
    for (const SpanRecord* s : spans) {
      child.total_seconds += static_cast<double>(s->duration_ns) * 1e-9;
      child_ids.push_back(s->id);
    }
    fill_children(child, child_ids, by_parent);
    double child_total = 0.0;
    for (const ProfileNode& grandchild : child.children) {
      child_total += grandchild.total_seconds;
    }
    child.self_seconds = std::max(0.0, child.total_seconds - child_total);
    node.children.push_back(std::move(child));
  }
  std::stable_sort(node.children.begin(), node.children.end(),
                   [](const ProfileNode& a, const ProfileNode& b) {
                     return a.total_seconds > b.total_seconds;
                   });
}

}  // namespace

ProfileNode build_profile_tree(const std::vector<SpanRecord>& records) {
  std::unordered_map<std::uint64_t, std::vector<const SpanRecord*>> by_parent;
  std::unordered_map<std::uint64_t, bool> known_ids;
  by_parent.reserve(records.size());
  known_ids.reserve(records.size());
  for (const SpanRecord& r : records) known_ids.emplace(r.id, true);
  // A span whose parent never completed (still open at export, e.g. the CLI
  // root when report() runs mid-command) is grafted onto the virtual root so
  // its subtree is not silently dropped.
  for (const SpanRecord& r : records) {
    const std::uint64_t parent =
        known_ids.count(r.parent) != 0 ? r.parent : 0;
    by_parent[parent].push_back(&r);
  }

  ProfileNode root;
  root.name = "all";
  root.count = records.size();
  fill_children(root, {0}, by_parent);
  for (const ProfileNode& child : root.children) {
    root.total_seconds += child.total_seconds;
  }
  root.self_seconds = 0.0;
  return root;
}

}  // namespace scshare::obs
