// Always-on flight recorder: a bounded ring of the most recent log lines,
// span completions, and lifecycle events, dumped as one JSON artifact when
// something goes wrong.
//
// The recorder is cheap enough to leave on in production (append one record
// under a short mutex), so when a job blows its deadline, gets shed, or the
// SLO plane starts burning its error budget the daemon can call trigger()
// and capture *what the process was doing just before* — the part of an
// incident that cumulative counters cannot reconstruct after the fact.
//
// Feeds:
//  * Logger::log taps note_log() with every emitted line (post level
//    filter), outside the sink mutex so the two locks never nest.
//  * The serve layer calls note_event() at job lifecycle edges and
//    note_span() for stage timings.
//
// trigger(reason, detail) snapshots the ring into a JSON document, writes it
// to `<artifact_dir>/flight-<seq>.json` when an artifact directory is
// configured, bumps `obs.flight.dumps_total`, and returns the document.
// Repeated triggers inside `min_interval_ms` are suppressed (return "");
// the default interval of 0 keeps tests deterministic — every trigger
// dumps. The most recent dump stays available at /debugz/flight.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/log.hpp"
#include "obs/window.hpp"

namespace scshare::obs {

struct FlightRecorderOptions {
  /// Ring capacity in records (logs + spans + events combined).
  std::size_t capacity = 256;
  /// Minimum spacing between dumps; 0 = every trigger dumps.
  std::int64_t min_interval_ms = 0;
  /// Directory for flight-<seq>.json artifacts; empty = in-memory only.
  std::string artifact_dir;
};

/// One entry of the flight ring.
struct FlightRecord {
  std::int64_t ts_ns = 0;       ///< steady clock, window_now_ns() epoch
  CorrelationId ctx = 0;        ///< correlation id active when recorded
  std::string kind;             ///< "log" | "span" | "event"
  std::string name;             ///< log level / span name / event name
  std::string detail;           ///< log line / event detail
  double duration_ms = -1.0;    ///< spans only; < 0 = not applicable
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});

  /// Replaces capacity / dump directory / rate limit. Existing ring
  /// contents are kept (truncated to the new capacity).
  void configure(const FlightRecorderOptions& options);
  [[nodiscard]] FlightRecorderOptions options() const;

  void note_log(LogLevel level, std::string_view line);
  void note_span(std::string_view name, double duration_ms);
  void note_event(std::string_view name, std::string_view detail);

  struct DumpInfo {
    std::uint64_t seq = 0;       ///< 0 = never dumped
    std::string reason;
    std::string path;            ///< empty when no artifact_dir configured
    std::int64_t ts_ns = 0;
  };

  /// Snapshots the ring into a JSON document (and a file artifact when an
  /// artifact directory is configured). Returns "" when suppressed by the
  /// rate limit.
  std::string trigger(std::string_view reason, std::string_view detail = {}) {
    return trigger_at(reason, detail, window_now_ns());
  }
  std::string trigger_at(std::string_view reason, std::string_view detail,
                         std::int64_t now_ns);

  /// Total dumps actually written (suppressed triggers excluded).
  [[nodiscard]] std::uint64_t dumps() const;
  [[nodiscard]] DumpInfo last_dump() const;

  /// JSON for /debugz/flight: recorder state, last dump, current ring.
  [[nodiscard]] std::string render_debugz() const;

  /// Clears the ring and dump history (options are kept).
  void reset();

  /// Process-wide recorder fed by the global Logger.
  static FlightRecorder& global();

 private:
  void append(FlightRecord record);
  [[nodiscard]] std::string render_dump(std::string_view reason,
                                        std::string_view detail,
                                        std::uint64_t seq,
                                        std::int64_t now_ns) const;

  mutable std::mutex mutex_;
  FlightRecorderOptions options_;
  std::vector<FlightRecord> ring_;  ///< circular; next_ is the write cursor
  std::size_t next_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dump_seq_ = 0;
  std::int64_t last_dump_ns_ = std::numeric_limits<std::int64_t>::min();
  DumpInfo last_dump_;
};

}  // namespace scshare::obs
