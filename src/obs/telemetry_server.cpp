#include "obs/telemetry_server.hpp"

#include <cinttypes>
#include <cstdio>

#include "obs/build_info.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "obs/slo.hpp"
#include "obs/status.hpp"

namespace scshare::obs {
namespace {

std::uint64_t counter_value(const MetricsSnapshot& snap,
                            const std::string& name) {
  const auto it = snap.counters.find(name);
  return it != snap.counters.end() ? it->second : 0;
}

void append_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_profile_node(std::string& out, const ProfileNode& node) {
  out += "{\"name\":\"";
  for (char c : node.name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\",\"count\":";
  out += std::to_string(node.count);
  out += ",\"total_seconds\":";
  append_number(out, node.total_seconds);
  out += ",\"self_seconds\":";
  append_number(out, node.self_seconds);
  out += ",\"children\":[";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out += ',';
    append_profile_node(out, node.children[i]);
  }
  out += "]}";
}

}  // namespace

TelemetryServer::TelemetryServer(Options options)
    : options_(std::move(options)), started_(std::chrono::steady_clock::now()) {
  if (!options_.bind) return;  // pure renderer embedded in another server
  net::HttpServerOptions http_options;
  http_options.port = options_.port;
  http_options.observer = make_http_observer();
  server_ = std::make_unique<net::HttpServer>(
      http_options,
      [this](const net::HttpRequest& request) { return handle(request); });
  log_info("telemetry", "telemetry server listening",
           {field("port", static_cast<std::uint64_t>(server_->port())),
            field("addr", "127.0.0.1")});
}

TelemetryServer::~TelemetryServer() { stop(); }

std::uint16_t TelemetryServer::port() const noexcept {
  return server_ ? server_->port() : 0;
}

void TelemetryServer::stop() {
  if (server_ && server_->running()) {
    const std::uint64_t served = server_->requests_served();
    server_->stop();
    log_info("telemetry", "telemetry server stopped",
             {field("requests_served", served)});
  } else if (server_) {
    server_->stop();
  }
}

std::string TelemetryServer::render_metrics() const {
  static Counter& scrapes =
      MetricsRegistry::global().counter("obs.telemetry.scrapes");
  scrapes.add();
  RunReport report;
  report.backend = options_.backend_label;
  report.metrics = MetricsRegistry::global().snapshot();
  return OpenMetricsExporter{}.render(report);
}

std::string TelemetryServer::render_healthz() const {
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  const std::uint64_t degraded_runs =
      counter_value(snap, "market.game.degraded_runs");
  const std::uint64_t eval_failures =
      counter_value(snap, "market.game.eval_failures");
  const std::uint64_t fallbacks = counter_value(snap, "backend.fallbacks");
  const std::uint64_t retries = counter_value(snap, "backend.retries");
  const std::uint64_t divergence_aborts =
      counter_value(snap, "solver.divergence_aborts");
  const std::uint64_t relaxations =
      counter_value(snap, "solver.tolerance_relaxations");
  bool degraded = degraded_runs > 0 || eval_failures > 0 || fallbacks > 0 ||
                  divergence_aborts > 0;

  const auto uptime = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - started_);
  const BuildIdentity& build = build_identity();

  std::string fields;
  fields += "\"uptime_seconds\":";
  append_number(fields, static_cast<double>(uptime.count()) / 1000.0);
  fields += ",\"build\":{\"version\":\"";
  fields += escape_label_value(build.version);
  fields += "\",\"compiler\":\"";
  fields += escape_label_value(build.compiler);
  fields += "\",\"build_type\":\"";
  fields += escape_label_value(build.build_type);
  fields += "\"}";
  fields += ",\"slo_burning\":";
  fields += SloPlane::global().burning() ? "true" : "false";
  fields += ",\"degraded_runs\":";
  fields += std::to_string(degraded_runs);
  fields += ",\"eval_failures\":";
  fields += std::to_string(eval_failures);
  fields += ",\"backend_fallbacks\":";
  fields += std::to_string(fallbacks);
  fields += ",\"backend_retries\":";
  fields += std::to_string(retries);
  fields += ",\"solver_divergence_aborts\":";
  fields += std::to_string(divergence_aborts);
  fields += ",\"solver_tolerance_relaxations\":";
  fields += std::to_string(relaxations);
  if (options_.healthz_hook) options_.healthz_hook(fields, degraded);

  std::string out = "{\"status\":\"ok\",\"degraded\":";
  out += degraded ? "true" : "false";
  out += ',';
  out += fields;
  out += "}\n";
  return out;
}

std::string TelemetryServer::render_statusz() const {
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  const std::uint64_t hits = counter_value(snap, "federation.cache.hits");
  const std::uint64_t misses = counter_value(snap, "federation.cache.misses");
  const std::uint64_t lookups = hits + misses;
  double queue_depth = 0.0;
  if (const auto it = snap.gauges.find("exec.pool.queue_depth");
      it != snap.gauges.end()) {
    queue_depth = it->second;
  }
  const auto uptime = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - started_);

  // Board entries are already rendered JSON values; splice them verbatim,
  // then append derived fields under reserved "derived."/"telemetry."
  // prefixes so they cannot collide with publisher keys.
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : StatusBoard::global().snapshot()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += key;  // keys are programmer-chosen identifiers, no escaping needed
    out += "\":";
    out += value;
  }
  auto emit = [&](const char* key, const std::string& rendered) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += key;
    out += "\":";
    out += rendered;
  };
  {
    std::string rate = "null";
    if (lookups > 0) {
      rate.clear();
      append_number(rate,
                    static_cast<double>(hits) / static_cast<double>(lookups));
    }
    emit("derived.cache_hit_rate", rate);
  }
  {
    std::string depth;
    append_number(depth, queue_depth);
    emit("derived.queue_depth", depth);
  }
  {
    std::string up;
    append_number(up, static_cast<double>(uptime.count()) / 1000.0);
    emit("telemetry.uptime_seconds", up);
  }
  emit("telemetry.spans_recorded",
       std::to_string(Profiler::instance().record_count()));
  std::uint64_t served = server_ ? server_->requests_served() : 0;
  if (!server_ && options_.requests_served_fn) {
    served = options_.requests_served_fn();
  }
  emit("telemetry.requests_served", std::to_string(served));
  out += "}\n";
  return out;
}

std::string TelemetryServer::render_profilez() const {
  Profiler& profiler = Profiler::instance();
  if (!profiler.is_enabled() && profiler.record_count() == 0) {
    return "{\"enabled\":false,\"profile\":null}\n";
  }
  const ProfileNode tree = build_profile_tree(profiler.records());
  std::string out = "{\"enabled\":";
  out += profiler.is_enabled() ? "true" : "false";
  out += ",\"profile\":";
  append_profile_node(out, tree);
  out += "}\n";
  return out;
}

std::string TelemetryServer::render_slosz() const {
  return SloPlane::global().render_slosz();
}

std::string TelemetryServer::render_flight() const {
  return FlightRecorder::global().render_debugz();
}

net::HttpResponse TelemetryServer::handle(const net::HttpRequest& request) {
  net::HttpResponse response;
  if (request.method != "GET" && request.method != "HEAD") {
    // The transport now admits POST for the serve API; the telemetry plane
    // itself stays read-only.
    response.status = 405;
    response.body = "telemetry endpoints are GET only\n";
    return response;
  }
  if (request.path == "/metrics") {
    response.content_type =
        "application/openmetrics-text; version=1.0.0; charset=utf-8";
    response.body = render_metrics();
  } else if (request.path == "/healthz") {
    response.content_type = "application/json; charset=utf-8";
    response.body = render_healthz();
  } else if (request.path == "/statusz") {
    response.content_type = "application/json; charset=utf-8";
    response.body = render_statusz();
  } else if (request.path == "/profilez") {
    response.content_type = "application/json; charset=utf-8";
    response.body = render_profilez();
  } else if (request.path == "/slosz") {
    response.content_type = "application/json; charset=utf-8";
    response.body = render_slosz();
  } else if (request.path == "/debugz/flight") {
    response.content_type = "application/json; charset=utf-8";
    response.body = render_flight();
  } else if (request.path == "/") {
    response.body =
        "scshare telemetry\n"
        "  /metrics       - OpenMetrics text exposition\n"
        "  /healthz       - liveness + degraded-evaluation status\n"
        "  /statusz       - run progress (JSON)\n"
        "  /profilez      - span profile tree (JSON)\n"
        "  /slosz         - windowed latency percentiles + SLO burn (JSON)\n"
        "  /debugz/flight - flight-recorder ring and last dump (JSON)\n";
  } else {
    response.status = 404;
    response.body = "unknown path; try /metrics, /healthz, /statusz\n";
  }
  return response;
}

std::string normalize_http_path(std::string_view path) {
  static constexpr std::string_view kKnown[] = {
      "/",        "/metrics",       "/healthz", "/statusz",
      "/profilez", "/slosz",        "/debugz/flight",
      "/v1/solve", "/v1/jobs",      "/v1/drain",
  };
  for (const std::string_view known : kKnown) {
    if (path == known) return std::string(known);
  }
  constexpr std::string_view kJobsPrefix = "/v1/jobs/";
  if (path.rfind(kJobsPrefix, 0) == 0) {
    const std::string_view rest = path.substr(kJobsPrefix.size());
    const std::size_t slash = rest.find('/');
    if (slash == std::string_view::npos) return "/v1/jobs/:id";
    if (rest.substr(slash) == "/trace") return "/v1/jobs/:id/trace";
    if (rest.substr(slash) == "/cancel") return "/v1/jobs/:id/cancel";
    return "other";
  }
  return "other";
}

std::function<void(const net::HttpRequest&, int, double)> make_http_observer() {
  return [](const net::HttpRequest& request, int status, double seconds) {
    MetricsRegistry& registry = MetricsRegistry::global();
    const std::string path =
        request.path.empty() ? "unparsed" : normalize_http_path(request.path);
    registry
        .counter(labeled_metric_name(
            "http.requests",
            {{"path", path}, {"code", std::to_string(status)}}))
        .add();
    static Histogram& latency = registry.histogram("http.request_seconds");
    latency.observe(seconds);
  };
}

}  // namespace scshare::obs
