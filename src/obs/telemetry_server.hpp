// Embedded telemetry plane: live /metrics, /healthz, /statusz (+ /profilez)
// over the minimal net::HttpServer.
//
// Everything src/obs produces was historically exported only after a run
// finished; this server makes the same data scrapeable mid-flight from one
// dedicated thread:
//  * GET /metrics  — OpenMetrics text exposition of a live
//                    MetricsRegistry::global() snapshot (same renderer as
//                    --metrics-format=prom, so the test_export checker and
//                    any Prometheus scraper accept it). Counters are
//                    monotone across scrapes by construction.
//  * GET /healthz  — liveness + degraded-evaluation status as JSON:
//                    `{"status":"ok","degraded":...}` with the resilience
//                    counters (retries, fallbacks, solver relaxations /
//                    divergence aborts, degraded game runs) that explain a
//                    `true`. Always 200 while the process serves — degraded
//                    is a quality flag, not a liveness failure.
//  * GET /statusz  — run progress as JSON: every StatusBoard entry (game
//                    round, sharing vector, welfare estimate, ...) plus
//                    derived fields (cache hit rate, executor queue depth,
//                    uptime, spans recorded).
//  * GET /profilez — incremental span-profile tree (see
//                    Profiler::records_since) as JSON; `{"enabled":false}`
//                    when the profiler is off.
//
// The server only reads shared state (registry snapshots, board copies), so
// enabling it cannot perturb results: a run with --telemetry-port is
// bit-identical to one without.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/http.hpp"

namespace scshare::obs {

class TelemetryServer {
 public:
  struct Options {
    /// TCP port to bind on 127.0.0.1; 0 selects a kernel-chosen ephemeral
    /// port (read it back with port()).
    std::uint16_t port = 0;
    /// Value of the scshare_run_info{backend="..."} identity label on
    /// /metrics scrapes.
    std::string backend_label = "live";
    /// When false, no socket is bound and no thread started: the instance
    /// is a pure renderer whose handle()/render_*() the embedding process
    /// (scshare_serve) wires into its own HTTP server, so the daemon serves
    /// telemetry from the same port and process as the job API.
    bool bind = true;
    /// Optional embedder hook run while rendering /healthz: append extra
    /// JSON fields (`out` ends just before the closing brace — emit
    /// `,\"k\":v` pairs) and/or force `degraded` true (e.g. while the serve
    /// layer is shedding load).
    std::function<void(std::string& out, bool& degraded)> healthz_hook;
    /// Overrides the telemetry.requests_served field on /statusz when the
    /// instance has no server of its own (bind == false).
    std::function<std::uint64_t()> requests_served_fn;
  };

  /// Binds and starts serving; throws std::runtime_error when the port
  /// cannot be bound.
  explicit TelemetryServer(Options options);
  TelemetryServer() : TelemetryServer(Options{}) {}
  ~TelemetryServer();
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Stops the listener (idempotent; also run by the destructor).
  void stop();

  // Renderers, exposed for tests and reuse without a socket round-trip.
  [[nodiscard]] std::string render_metrics() const;
  [[nodiscard]] std::string render_healthz() const;
  [[nodiscard]] std::string render_statusz() const;
  [[nodiscard]] std::string render_profilez() const;
  [[nodiscard]] std::string render_slosz() const;
  [[nodiscard]] std::string render_flight() const;

  /// Routes one request across the telemetry endpoints (GET/HEAD only —
  /// anything else is 405). Public so an embedding server (scshare_serve)
  /// can delegate non-API paths here.
  [[nodiscard]] net::HttpResponse handle(const net::HttpRequest& request);

 private:

  Options options_;
  std::chrono::steady_clock::time_point started_;
  std::unique_ptr<net::HttpServer> server_;
};

/// Collapses a request path to a bounded label set for HTTP self-metrics:
/// known endpoints pass through, `/v1/jobs/<id>` becomes `/v1/jobs/:id`
/// (`.../trace` kept), anything else is "other" so a scanner cannot mint
/// unbounded metric families.
[[nodiscard]] std::string normalize_http_path(std::string_view path);

/// HTTP-plane self-metrics observer for net::HttpServerOptions::observer:
/// bumps `http.requests{path=...,code=...}` and records the accept-to-
/// response latency into the `http.request_seconds` histogram.
[[nodiscard]] std::function<void(const net::HttpRequest&, int, double)>
make_http_observer();

}  // namespace scshare::obs
