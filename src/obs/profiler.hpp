// Span-based hierarchical profiler.
//
// A Span marks one timed region (a game round, a best response, one backend
// evaluation, a steady-state solve, a residual mat-vec). Spans nest through a
// thread-local "current span" pointer, so the completed records form a forest
// whose parent edges reproduce the dynamic call tree — including across the
// exec thread pool, which adopts the dispatching thread's current span in its
// workers via ScopedSpanParent (see exec/thread_pool.cpp).
//
// The profiler is globally off by default. When off, a span site costs one
// relaxed atomic load and nothing else: no clock read, no allocation, no
// lock. When enabled (Profiler::instance().enable(), or the CLI's
// --profile-out flag), each span end appends a fixed-size SpanRecord under a
// mutex; a full fig7-style run records a few thousand spans, so contention is
// negligible next to the model solves being measured (bench/fig8_overhead
// panel (c) keeps this under 3%).
//
// Completed records export two ways:
//  * to_chrome_trace() — Chrome trace-event JSON ("traceEvents" array of
//    "ph":"X" complete events) loadable in Perfetto / chrome://tracing;
//  * build_profile_tree() — per-run aggregation by span-name path (count,
//    total and self seconds), embedded in RunReport.
//
// Span names must be string literals (or otherwise outlive the profiler):
// records store the pointer, not a copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace scshare::obs {

namespace detail {
extern std::atomic<bool> g_profiler_enabled;
}  // namespace detail

/// True when span sites should record. The only cost a disabled span pays.
[[nodiscard]] inline bool profiler_enabled() noexcept {
  return detail::g_profiler_enabled.load(std::memory_order_relaxed);
}

/// One completed span.
struct SpanRecord {
  const char* name;        ///< span-site label (static storage)
  std::uint64_t id;        ///< unique, > 0
  std::uint64_t parent;    ///< id of the enclosing span; 0 = root
  std::uint32_t thread;    ///< dense thread index in first-record order
  std::int64_t start_ns;   ///< nanoseconds since Profiler::enable()
  std::int64_t duration_ns;
  std::uint64_t ctx;       ///< correlation id active at span end (see
                           ///< obs/log.hpp); 0 = none
};

/// Aggregated profile: one node per distinct span-name path.
struct ProfileNode {
  std::string name;
  std::uint64_t count = 0;      ///< spans aggregated into this node
  double total_seconds = 0.0;   ///< summed wall time of those spans
  double self_seconds = 0.0;    ///< total minus child totals (>= 0)
  std::vector<ProfileNode> children;  ///< heaviest (by total) first
};

/// Process-wide collector of completed spans.
///
/// enable()/disable() are not synchronized against in-flight spans: flip the
/// flag while no instrumented work is running (the CLI enables before
/// constructing the Framework). Spans still open when records() is taken are
/// simply absent from the output.
class Profiler {
 public:
  static Profiler& instance();

  /// Clears prior records, restarts the epoch clock, and turns span sites on.
  void enable();
  /// Turns span sites off; completed records stay available for export.
  void disable();
  [[nodiscard]] bool is_enabled() const noexcept { return profiler_enabled(); }

  /// Copies the completed records (arbitrary order; sort by start_ns if
  /// presentation order matters).
  [[nodiscard]] std::vector<SpanRecord> records() const;
  /// Incremental snapshot for mid-flight exporters: copies the records
  /// appended at index `from` onward (completion order). Records already
  /// consumed are never mutated, so a poller can resume from its previous
  /// `from + returned.size()` without missing or duplicating spans; a
  /// concurrent enable()/clear() restarts the sequence (detect it by the
  /// returned count shrinking below `from`, which yields an empty result).
  [[nodiscard]] std::vector<SpanRecord> records_since(std::size_t from) const;
  [[nodiscard]] std::size_t record_count() const;
  void clear();

  /// Nanoseconds since the last enable() on the steady clock.
  [[nodiscard]] std::int64_t now_since_epoch_ns() const noexcept;

  /// Appends a completed record (called by Span::end; dropped when disabled).
  void record(const SpanRecord& r);

 private:
  Profiler() = default;

  mutable std::mutex mutex_;
  std::vector<SpanRecord> records_;
  std::atomic<std::int64_t> epoch_ns_{0};  ///< steady-clock origin
};

/// RAII timed region. Inactive (and nearly free) when the profiler is off at
/// construction; a span that began before disable() still records at end so
/// the forest stays parent-consistent.
class Span {
 public:
  explicit Span(const char* name) noexcept {
    if (profiler_enabled()) begin(name);
  }
  ~Span() {
    if (id_ != 0) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(const char* name) noexcept;
  void end() noexcept;

  const char* name_ = nullptr;
  std::uint64_t id_ = 0;  ///< 0 = inactive
  std::uint64_t parent_ = 0;
  std::int64_t start_ns_ = 0;
};

/// Id of the calling thread's innermost open span (0 = none). Capture this
/// on the dispatching thread, then adopt it on workers with ScopedSpanParent
/// so worker-side spans parent under the dispatch site.
[[nodiscard]] std::uint64_t current_span() noexcept;

/// Installs `parent` as the thread's current span for the scope's lifetime.
class ScopedSpanParent {
 public:
  explicit ScopedSpanParent(std::uint64_t parent) noexcept;
  ~ScopedSpanParent();
  ScopedSpanParent(const ScopedSpanParent&) = delete;
  ScopedSpanParent& operator=(const ScopedSpanParent&) = delete;

 private:
  std::uint64_t saved_;
};

/// Chrome trace-event JSON for the records: {"traceEvents":[...]} with
/// "ph":"X" complete events, microsecond ts/dur, pid 1, tid = dense thread
/// index, and args carrying the span/parent ids for tree reconstruction.
[[nodiscard]] std::string to_chrome_trace(
    const std::vector<SpanRecord>& records);

/// Aggregates records into a tree by span-name path. The returned root is
/// synthetic (name "all", total = sum of root-span durations, count = total
/// records); its children are the aggregated root spans.
[[nodiscard]] ProfileNode build_profile_tree(
    const std::vector<SpanRecord>& records);

}  // namespace scshare::obs
