#include "obs/flight_recorder.hpp"

#include <cstdio>
#include <sstream>

#include "obs/metrics.hpp"

namespace scshare::obs {
namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_record(std::string& out, const FlightRecord& r) {
  out += "{\"ts_ns\": ";
  out += std::to_string(r.ts_ns);
  out += ", \"kind\": \"";
  append_json_escaped(out, r.kind);
  out += "\", \"name\": \"";
  append_json_escaped(out, r.name);
  out += '"';
  if (r.ctx != 0) {
    out += ", \"ctx\": ";
    out += std::to_string(r.ctx);
  }
  if (r.duration_ms >= 0.0) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", r.duration_ms);
    out += ", \"duration_ms\": ";
    out += buf;
  }
  if (!r.detail.empty()) {
    out += ", \"detail\": \"";
    append_json_escaped(out, r.detail);
    out += '"';
  }
  out += '}';
}

Counter& dumps_counter() {
  static Counter& counter =
      MetricsRegistry::global().counter("obs.flight.dumps_total");
  return counter;
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
}

void FlightRecorder::configure(const FlightRecorderOptions& options) {
  const std::lock_guard<std::mutex> lock(mutex_);
  options_ = options;
  if (options_.capacity == 0) options_.capacity = 1;
  if (size_ > 0) {
    // Rebuild the ring in chronological order, keeping the newest records
    // that still fit.
    std::vector<FlightRecord> ordered;
    ordered.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) {
      ordered.push_back(
          ring_[(next_ + ring_.size() - size_ + i) % ring_.size()]);
    }
    if (ordered.size() > options_.capacity) {
      ordered.erase(
          ordered.begin(),
          ordered.end() - static_cast<std::ptrdiff_t>(options_.capacity));
    }
    ring_ = std::move(ordered);
    size_ = ring_.size();
    // With a full ring append() overwrites next_, the oldest slot; with a
    // partial ring it push_backs and recomputes next_ itself.
    next_ = size_ % options_.capacity;
  } else {
    ring_.clear();
    next_ = 0;
  }
}

FlightRecorderOptions FlightRecorder::options() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return options_;
}

void FlightRecorder::append(FlightRecord record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < options_.capacity) {
    ring_.push_back(std::move(record));
    next_ = ring_.size() % options_.capacity;
    size_ = ring_.size();
    return;
  }
  ring_[next_] = std::move(record);
  next_ = (next_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
}

void FlightRecorder::note_log(LogLevel level, std::string_view line) {
  FlightRecord r;
  r.ts_ns = window_now_ns();
  r.ctx = current_correlation();
  r.kind = "log";
  r.name = log_level_name(level);
  r.detail = std::string(line);
  append(std::move(r));
}

void FlightRecorder::note_span(std::string_view name, double duration_ms) {
  FlightRecord r;
  r.ts_ns = window_now_ns();
  r.ctx = current_correlation();
  r.kind = "span";
  r.name = std::string(name);
  r.duration_ms = duration_ms;
  append(std::move(r));
}

void FlightRecorder::note_event(std::string_view name,
                                std::string_view detail) {
  FlightRecord r;
  r.ts_ns = window_now_ns();
  r.ctx = current_correlation();
  r.kind = "event";
  r.name = std::string(name);
  r.detail = std::string(detail);
  append(std::move(r));
}

std::string FlightRecorder::render_dump(std::string_view reason,
                                        std::string_view detail,
                                        std::uint64_t seq,
                                        std::int64_t now_ns) const {
  // Caller holds mutex_.
  std::string out;
  out.reserve(4096);
  out += "{\n  \"reason\": \"";
  append_json_escaped(out, reason);
  out += "\",\n  \"detail\": \"";
  append_json_escaped(out, detail);
  out += "\",\n  \"seq\": ";
  out += std::to_string(seq);
  out += ",\n  \"ts_ns\": ";
  out += std::to_string(now_ns);
  out += ",\n  \"records\": [\n";
  for (std::size_t i = 0; i < size_; ++i) {
    const FlightRecord& r =
        ring_[(next_ + ring_.size() - size_ + i) % ring_.size()];
    out += "    ";
    append_record(out, r);
    if (i + 1 < size_) out += ',';
    out += '\n';
  }
  out += "  ]\n}\n";
  return out;
}

std::string FlightRecorder::trigger_at(std::string_view reason,
                                       std::string_view detail,
                                       std::int64_t now_ns) {
  std::string document;
  std::string path;
  std::uint64_t seq = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (options_.min_interval_ms > 0 &&
        last_dump_ns_ != std::numeric_limits<std::int64_t>::min() &&
        now_ns - last_dump_ns_ < options_.min_interval_ms * 1'000'000) {
      return "";
    }
    seq = ++dump_seq_;
    last_dump_ns_ = now_ns;
    document = render_dump(reason, detail, seq, now_ns);
    if (!options_.artifact_dir.empty()) {
      path = options_.artifact_dir + "/flight-" + std::to_string(seq) + ".json";
    }
    last_dump_ = DumpInfo{seq, std::string(reason), path, now_ns};
  }
  // File + log I/O happens outside the ring mutex: the log call feeds back
  // into note_log(), which needs the same mutex.
  if (!path.empty()) {
    FILE* f = std::fopen(path.c_str(), "w");
    if (f != nullptr) {
      std::fwrite(document.data(), 1, document.size(), f);
      std::fclose(f);
    } else {
      path.clear();
      const std::lock_guard<std::mutex> lock(mutex_);
      last_dump_.path.clear();
    }
  }
  dumps_counter().add();
  log_warn("flight", "flight recorder dumped",
           {field("reason", reason), field("seq", seq),
            field("path", path.empty() ? std::string("<memory>") : path)});
  return document;
}

std::uint64_t FlightRecorder::dumps() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dump_seq_;
}

FlightRecorder::DumpInfo FlightRecorder::last_dump() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return last_dump_;
}

std::string FlightRecorder::render_debugz() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(4096);
  out += "{\n  \"capacity\": ";
  out += std::to_string(options_.capacity);
  out += ",\n  \"records_held\": ";
  out += std::to_string(size_);
  out += ",\n  \"dumps\": ";
  out += std::to_string(dump_seq_);
  out += ",\n  \"last_dump\": ";
  if (last_dump_.seq == 0) {
    out += "null";
  } else {
    out += "{\"seq\": ";
    out += std::to_string(last_dump_.seq);
    out += ", \"reason\": \"";
    append_json_escaped(out, last_dump_.reason);
    out += "\", \"path\": \"";
    append_json_escaped(out, last_dump_.path);
    out += "\", \"ts_ns\": ";
    out += std::to_string(last_dump_.ts_ns);
    out += '}';
  }
  out += ",\n  \"records\": [\n";
  for (std::size_t i = 0; i < size_; ++i) {
    const FlightRecord& r =
        ring_[(next_ + ring_.size() - size_ + i) % ring_.size()];
    out += "    ";
    append_record(out, r);
    if (i + 1 < size_) out += ',';
    out += '\n';
  }
  out += "  ]\n}\n";
  return out;
}

void FlightRecorder::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  size_ = 0;
  dump_seq_ = 0;
  last_dump_ns_ = std::numeric_limits<std::int64_t>::min();
  last_dump_ = DumpInfo{};
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* recorder =
      new FlightRecorder();  // leaked: outlives all threads
  return *recorder;
}

}  // namespace scshare::obs
