// RunReport — the per-run observability summary assembled by
// core::Framework::report() and serialized by io (see io/config_io.hpp).
// Lives in obs so that it stays dependency-free: it is a metrics snapshot
// (counter values are deltas over the report scope) plus the trace events
// captured in the Framework's ring buffer and, when the profiler is on, the
// aggregated span tree.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace scshare::obs {

struct RunReport {
  std::string backend;        ///< backend kind serving the run
  BuildIdentity build;        ///< which binary produced this report
  MetricsSnapshot metrics;    ///< counters are deltas since scope start
  std::vector<TraceEvent> events;  ///< captured trace, oldest first
  std::uint64_t events_total = 0;  ///< emitted count (>= events.size())
  std::uint64_t events_dropped = 0;  ///< lost to ring wrap-around
  bool profiled = false;      ///< true when the span profiler was enabled
  ProfileNode profile;        ///< aggregated span tree (meaningful when
                              ///< profiled; spans still open are absent)
};

}  // namespace scshare::obs
