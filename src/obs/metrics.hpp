// Dependency-free observability: named counters, gauges, and fixed-bucket
// histograms behind a thread-safe registry.
//
// Design rules (every other layer relies on them):
//  * Instrument handles returned by MetricsRegistry are stable for the
//    registry's lifetime — reset() zeroes values but never invalidates a
//    handle, so hot paths may cache `Counter&` in function-local statics.
//  * All mutating operations are lock-free atomics; the registry mutex is
//    taken only on first lookup of a name and when snapshotting.
//  * The global() registry is a process-wide singleton shared by the Markov
//    solvers, backends, the market game, and the simulator. Consumers that
//    need per-run numbers (Framework::report(), bench::MetricsScope) take a
//    snapshot at scope entry and report the delta.
//
// Thread-safety contract (relied on by the exec thread pool — backend
// evaluations instrument these from worker threads):
//  * Counter::add, Gauge::set, and Histogram::observe are safe to call
//    concurrently from any number of threads without external locking; no
//    increment is ever lost (each field is updated with an atomic RMW).
//  * A Histogram's fields (bucket counts, count, sum, min, max) are
//    individually atomic but not updated as one transaction: a snapshot()
//    taken while observes are in flight can see, e.g., the bucket increment
//    of an observation whose sum is not folded in yet. snapshot() derives
//    `count` from the summed bucket loads, so count == sum(counts) holds in
//    every snapshot and both are monotone across snapshots — this is what
//    lets the live /metrics endpoint scrape mid-run and still emit
//    well-formed OpenMetrics (cumulative le="+Inf" must equal _count).
//    `sum`/`min`/`max` can still lag the buckets by in-flight observations;
//    quiesce the workload (as Framework::report() does — it runs on the
//    caller's thread after the batch returns) when exact cross-field
//    consistency matters.
//  * reset() concurrent with mutation has the same torn-view caveat; handles
//    stay valid throughout.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace scshare::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time copy of a histogram, safe to manipulate without locks.
struct HistogramSnapshot {
  std::vector<double> bounds;  ///< upper bounds; an implicit +inf bucket ends
  std::vector<std::uint64_t> counts;  ///< size bounds.size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  [[nodiscard]] double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

/// Fixed-bucket histogram. Buckets are cumulative-free: counts[i] holds
/// observations v <= bounds[i] (and > bounds[i-1]); the trailing bucket
/// collects the overflow. All updates are atomic.
class Histogram {
 public:
  /// `bounds` must be strictly increasing; empty selects latency_bounds().
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  [[nodiscard]] HistogramSnapshot snapshot() const;
  void reset() noexcept;

  /// Default geometric latency grid in seconds: 1us .. ~100s, x10 steps —
  /// wide enough for a CSR mat-vec and a full price sweep alike.
  [[nodiscard]] static std::vector<double> latency_bounds();
  /// Geometric size grid: 1 .. 1e6, x10 steps (state counts, window widths).
  [[nodiscard]] static std::vector<double> size_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Point-in-time copy of a whole registry.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Delta of this snapshot against an earlier `baseline`: counters and
  /// histogram counts/sums subtract (names absent from the baseline pass
  /// through); gauges and histogram min/max keep the current value.
  [[nodiscard]] MetricsSnapshot delta_from(
      const MetricsSnapshot& baseline) const;
};

/// Thread-safe name -> instrument registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Lookup-or-create; the returned reference is stable for the registry's
  /// lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` applies only on first creation (empty = latency_bounds()).
  Histogram& histogram(std::string_view name,
                       std::vector<double> bounds = {});

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every instrument; handles remain valid.
  void reset();

  /// The process-wide default registry used by all instrumented components.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace scshare::obs
