// Pending-event set for the discrete-event simulator: a binary min-heap on
// (time, sequence number) so that simultaneous events are processed in
// insertion order, keeping runs reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

namespace scshare::sim {

enum class EventKind : std::uint8_t {
  kArrival,       ///< new customer request at `sc`
  kDeparture,     ///< service completion of `job` hosted at `host`
  kDeadline,      ///< SLA deadline of queued `job` (deadline policy only)
  kOutageStart,   ///< SC `sc` loses its VMs
  kOutageEnd,     ///< SC `sc` recovers
};

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  ///< insertion order, breaks time ties
  EventKind kind = EventKind::kArrival;
  std::size_t sc = 0;     ///< subject SC (arrival/outage) or host SC (departure)
  std::uint64_t job = 0;  ///< job id for departures/deadlines
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// FIFO-stable min-heap of events.
class EventQueue {
 public:
  void push(Event e) {
    e.seq = next_seq_++;
    heap_.push(e);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] const Event& top() const { return heap_.top(); }

  Event pop() {
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

 private:
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> heap_;
};

}  // namespace scshare::sim
