// Statistics accumulators for the discrete-event simulator: streaming mean /
// variance (Welford), time-weighted averages for piecewise-constant signals,
// and batch-means confidence intervals for steady-state estimates.
#pragma once

#include <cstddef>
#include <vector>

namespace scshare::sim {

/// Streaming sample mean and variance (Welford's algorithm).
class WelfordAccumulator {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Unbiased sample variance; 0 with fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean; 0 with fewer than two samples.
  [[nodiscard]] double stderr_mean() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Time-weighted average of a piecewise-constant signal, with support for
/// discarding an initial warm-up window.
class TimeWeightedAverage {
 public:
  /// Records that the signal had `value` from the previous update time until
  /// `now`. Times must be non-decreasing.
  void update(double now, double value);

  /// Discards everything accumulated so far and restarts at `now`.
  void reset(double now);

  [[nodiscard]] double average() const;
  [[nodiscard]] double elapsed() const { return total_time_; }

 private:
  double last_time_ = 0.0;
  double weighted_sum_ = 0.0;
  double total_time_ = 0.0;
};

/// Batch-means estimate: divides a stream of per-batch means into a point
/// estimate and a half-width of a ~95% confidence interval.
struct BatchMeansResult {
  double mean = 0.0;
  double half_width = 0.0;  ///< ~95% CI half width (normal approximation)
  std::size_t batches = 0;  ///< batches used (after any warm-up discard)
};

/// Point estimate + CI over `batch_values`, ignoring the first
/// `discard_batches` entries. The simulator's time-based warm-up removes most
/// of the transient, but the earliest measurement batches can still carry
/// residual start-up bias that narrows into a wrong (too-confident) interval;
/// discarding them makes the remaining batches exchangeable. Discarding
/// everything (discard_batches >= size) returns an empty estimate.
[[nodiscard]] BatchMeansResult batch_means(
    const std::vector<double>& batch_values, std::size_t discard_batches = 0);

/// Fixed-bin histogram with quantile queries, for waiting-time tail
/// analysis (e.g., P95 wait vs the SLA bound). Values are clamped into
/// [0, upper_bound]; the relative quantile error is one bin width.
class Histogram {
 public:
  /// `upper_bound` > 0 caps the recorded range; `bins` >= 1.
  Histogram(double upper_bound, std::size_t bins = 512);

  void add(double value);

  [[nodiscard]] std::size_t count() const { return count_; }

  /// Value at quantile q in [0, 1] (linear interpolation within the bin);
  /// 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  /// Fraction of recorded values strictly greater than `threshold`.
  [[nodiscard]] double fraction_above(double threshold) const;

 private:
  double upper_bound_;
  double bin_width_;
  std::vector<std::size_t> bins_;
  std::size_t count_ = 0;
};

}  // namespace scshare::sim
