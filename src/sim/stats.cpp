#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace scshare::sim {

void WelfordAccumulator::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double WelfordAccumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double WelfordAccumulator::stddev() const { return std::sqrt(variance()); }

double WelfordAccumulator::stderr_mean() const {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

void TimeWeightedAverage::update(double now, double value) {
  require(now >= last_time_, "TimeWeightedAverage: time went backwards");
  const double dt = now - last_time_;
  weighted_sum_ += dt * value;
  total_time_ += dt;
  last_time_ = now;
}

void TimeWeightedAverage::reset(double now) {
  last_time_ = now;
  weighted_sum_ = 0.0;
  total_time_ = 0.0;
}

double TimeWeightedAverage::average() const {
  return total_time_ > 0.0 ? weighted_sum_ / total_time_ : 0.0;
}

Histogram::Histogram(double upper_bound, std::size_t bins)
    : upper_bound_(upper_bound),
      bin_width_(upper_bound / static_cast<double>(bins)),
      bins_(bins, 0) {
  require(upper_bound > 0.0 && bins >= 1,
          "Histogram: upper_bound > 0 and bins >= 1 required");
}

void Histogram::add(double value) {
  require(value >= 0.0, "Histogram: negative value");
  const double clamped = std::min(value, upper_bound_);
  std::size_t bin = static_cast<std::size_t>(clamped / bin_width_);
  if (bin >= bins_.size()) bin = bins_.size() - 1;
  ++bins_[bin];
  ++count_;
}

double Histogram::quantile(double q) const {
  require(q >= 0.0 && q <= 1.0, "Histogram: quantile must lie in [0, 1]");
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    const double next = cumulative + static_cast<double>(bins_[b]);
    if (next >= target) {
      const double within =
          bins_[b] > 0 ? (target - cumulative) / static_cast<double>(bins_[b])
                       : 0.0;
      return (static_cast<double>(b) + within) * bin_width_;
    }
    cumulative = next;
  }
  return upper_bound_;
}

double Histogram::fraction_above(double threshold) const {
  if (count_ == 0) return 0.0;
  std::size_t above = 0;
  // Count whole bins beyond the threshold; the boundary bin is prorated.
  const double position = threshold / bin_width_;
  const std::size_t boundary = static_cast<std::size_t>(position);
  for (std::size_t b = boundary + 1; b < bins_.size(); ++b) above += bins_[b];
  if (boundary < bins_.size()) {
    const double fraction_of_bin =
        1.0 - (position - static_cast<double>(boundary));
    above += static_cast<std::size_t>(
        fraction_of_bin * static_cast<double>(bins_[boundary]));
  }
  return static_cast<double>(above) / static_cast<double>(count_);
}

BatchMeansResult batch_means(const std::vector<double>& batch_values,
                             std::size_t discard_batches) {
  BatchMeansResult result;
  if (batch_values.size() <= discard_batches) return result;
  result.batches = batch_values.size() - discard_batches;
  WelfordAccumulator acc;
  for (std::size_t b = discard_batches; b < batch_values.size(); ++b) {
    acc.add(batch_values[b]);
  }
  result.mean = acc.mean();
  result.half_width = 1.96 * acc.stderr_mean();
  return result;
}

}  // namespace scshare::sim
