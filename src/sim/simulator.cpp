#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "queueing/forwarding.hpp"

namespace scshare::sim {
namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
constexpr std::uint64_t kNoJob = std::numeric_limits<std::uint64_t>::max();

}  // namespace

Simulator::Simulator(federation::FederationConfig config, SimOptions options)
    : config_(std::move(config)), options_(options), rng_(options.seed) {
  config_.validate();
  require(options_.warmup_time >= 0.0 && options_.measure_time > 0.0,
          "SimOptions: warmup_time >= 0 and measure_time > 0 required");
  require(options_.batches >= 1, "SimOptions: at least one batch required");
  require(options_.warmup_batches < options_.batches,
          "SimOptions: warmup_batches must leave at least one batch for the "
          "confidence intervals");
  if (options_.service == ServiceDistribution::kErlang) {
    require(options_.erlang_shape >= 1, "SimOptions: erlang_shape >= 1");
  }
  if (options_.service == ServiceDistribution::kHyperExponential) {
    require(options_.hyper_scv > 1.0, "SimOptions: hyper_scv must exceed 1");
  }
  if (options_.arrivals == ArrivalProcess::kMmpp) {
    require(options_.mmpp_burst_factor >= 1.0 &&
                options_.mmpp_burst_duration > 0.0 &&
                options_.mmpp_quiet_duration > 0.0,
            "SimOptions: invalid MMPP parameters");
  }
  if (options_.arrivals == ArrivalProcess::kBatch) {
    require(options_.batch_mean_size >= 1.0,
            "SimOptions: batch_mean_size must be >= 1");
  }
  if (options_.arrivals == ArrivalProcess::kSinusoidal) {
    require(options_.sin_amplitude >= 0.0 && options_.sin_amplitude < 1.0 &&
                options_.sin_period > 0.0,
            "SimOptions: invalid sinusoidal parameters");
  }
  scs_.resize(config_.size());
  for (std::size_t i = 0; i < config_.size(); ++i) {
    // Waiting times are bounded by a few SLA windows in practice; size the
    // histogram range generously (fallback for Q = 0: one mean service).
    const double range = std::max(10.0 * config_.scs[i].max_wait,
                                  2.0 / config_.scs[i].mu);
    scs_[i].wait_histogram = Histogram(range, 512);
  }
}

void Simulator::add_outage(std::size_t sc, double start, double end) {
  require(sc < config_.size(), "add_outage: SC index out of range");
  require(start >= 0.0 && end > start, "add_outage: need 0 <= start < end");
  events_.push({start, 0, EventKind::kOutageStart, sc, 0});
  events_.push({end, 0, EventKind::kOutageEnd, sc, 0});
}

int Simulator::free_vms(std::size_t i) const {
  const ScState& s = scs_[i];
  if (s.in_outage) return 0;
  return config_.scs[i].num_vms - s.own_local - s.lent;
}

int Simulator::own_in_system(std::size_t i) const {
  const ScState& s = scs_[i];
  const int queued = static_cast<int>(s.queue.size()) - s.inactive_in_queue;
  return s.own_local + s.borrowed + queued;
}

std::size_t Simulator::pick_donor(std::size_t requester) {
  scratch_.clear();
  int best = std::numeric_limits<int>::max();
  for (std::size_t j = 0; j < scs_.size(); ++j) {
    if (j == requester) continue;
    if (free_vms(j) <= 0) continue;
    if (scs_[j].lent >= config_.shares[j]) continue;
    const int load = own_in_system(j) + scs_[j].lent;
    if (load < best) {
      best = load;
      scratch_.clear();
    }
    if (load == best) scratch_.push_back(j);
  }
  if (scratch_.empty()) return kNone;
  return scratch_[rng_.next_below(scratch_.size())];
}

std::size_t Simulator::pick_beneficiary(std::size_t host) {
  scratch_.clear();
  int best = 0;
  for (std::size_t j = 0; j < scs_.size(); ++j) {
    if (j == host) continue;
    const int queued =
        static_cast<int>(scs_[j].queue.size()) - scs_[j].inactive_in_queue;
    if (queued <= 0) continue;
    if (queued > best) {
      best = queued;
      scratch_.clear();
    }
    if (queued == best) scratch_.push_back(j);
  }
  if (scratch_.empty()) return kNone;
  return scratch_[rng_.next_below(scratch_.size())];
}

std::uint64_t Simulator::pop_active(std::size_t sc) {
  ScState& s = scs_[sc];
  while (!s.queue.empty()) {
    const std::uint64_t id = s.queue.front();
    s.queue.pop_front();
    if (jobs_[id].active) return id;
    --s.inactive_in_queue;  // drop a deadline-forwarded leftover
  }
  return kNoJob;
}

void Simulator::touch(double now, std::size_t i) {
  ScState& s = scs_[i];
  const double n = static_cast<double>(config_.scs[i].num_vms);
  s.lent_avg.update(now, static_cast<double>(s.lent));
  s.borrowed_avg.update(now, static_cast<double>(s.borrowed));
  s.busy_avg.update(now, static_cast<double>(s.own_local + s.lent) / n);
}

void Simulator::start_service(double now, std::size_t host,
                              std::uint64_t job_id) {
  Job& job = jobs_[job_id];
  job.active = false;
  const std::size_t owner = job.owner;
  touch(now, host);
  if (owner != host) touch(now, owner);
  if (owner == host) {
    ++scs_[host].own_local;
    if (measuring_) ++scs_[owner].served_local;
  } else {
    ++scs_[host].lent;
    ++scs_[owner].borrowed;
    if (measuring_) ++scs_[owner].served_remote;
  }
  if (measuring_) {
    const double wait = now - job.arrival;
    scs_[owner].wait.add(wait);
    scs_[owner].wait_histogram.add(wait);
    ++scs_[owner].served_with_wait;
    if (wait > config_.scs[owner].max_wait) ++scs_[owner].waits_over_sla;
  }
  const double mu = config_.scs[owner].mu;
  double service = 0.0;
  switch (options_.service) {
    case ServiceDistribution::kExponential:
      service = rng_.exponential(mu);
      break;
    case ServiceDistribution::kErlang:
      service = rng_.erlang(options_.erlang_shape,
                            static_cast<double>(options_.erlang_shape) * mu);
      break;
    case ServiceDistribution::kHyperExponential:
      service = rng_.hyperexponential(mu, options_.hyper_scv);
      break;
  }
  events_.push({now + service, 0, EventKind::kDeparture, host, job_id});
}

void Simulator::assign_free_vms(double now, std::size_t host) {
  // Serve own queue first, then the longest queue elsewhere (subject to the
  // sharing cap), as long as the host has free VMs.
  while (free_vms(host) > 0) {
    const std::uint64_t own_job = pop_active(host);
    if (own_job != kNoJob) {
      start_service(now, host, own_job);
      continue;
    }
    if (scs_[host].lent >= config_.shares[host]) return;
    const std::size_t beneficiary = pick_beneficiary(host);
    if (beneficiary == kNone) return;
    const std::uint64_t job = pop_active(beneficiary);
    SCSHARE_ASSERT(job != kNoJob, "beneficiary queue unexpectedly empty");
    start_service(now, host, job);
  }
}

void Simulator::schedule_arrival(double now, std::size_t sc) {
  const double lambda = config_.scs[sc].lambda;
  double dt = 0.0;
  switch (options_.arrivals) {
    case ArrivalProcess::kPoisson:
      dt = rng_.exponential(lambda);
      break;
    case ArrivalProcess::kBatch:
      // Batches arrive at rate lambda / mean_size so the request rate stays
      // lambda.
      dt = rng_.exponential(lambda / options_.batch_mean_size);
      break;
    case ArrivalProcess::kSinusoidal: {
      // Non-homogeneous Poisson via thinning against the peak rate.
      const double amplitude = options_.sin_amplitude;
      const double peak = lambda * (1.0 + amplitude);
      const double phase = 2.0 * 3.14159265358979323846 *
                           static_cast<double>(sc) /
                           static_cast<double>(config_.size());
      double t = now;
      for (;;) {
        t += rng_.exponential(peak);
        const double rate =
            lambda * (1.0 + amplitude * std::sin(2.0 * 3.14159265358979323846 *
                                                     t / options_.sin_period +
                                                 phase));
        if (rng_.bernoulli(rate / peak)) break;
      }
      dt = t - now;
      break;
    }
    case ArrivalProcess::kMmpp: {
      // Two-phase MMPP: piecewise-exponential sampling across phase flips;
      // the quiet-phase rate is scaled so the time average stays lambda.
      const double f = options_.mmpp_burst_factor;
      const double db = options_.mmpp_burst_duration;
      const double dq = options_.mmpp_quiet_duration;
      const double quiet_rate = lambda * (db + dq) / (f * db + dq);
      const double burst_rate = f * quiet_rate;
      ScState& s = scs_[sc];
      double t = now;
      for (;;) {
        const double rate = s.mmpp_burst ? burst_rate : quiet_rate;
        const double candidate = t + rng_.exponential(rate);
        if (candidate < s.mmpp_switch_time) {
          t = candidate;
          break;
        }
        // Memorylessness: restart sampling from the phase boundary.
        t = s.mmpp_switch_time;
        s.mmpp_burst = !s.mmpp_burst;
        s.mmpp_switch_time =
            t + rng_.exponential(1.0 / (s.mmpp_burst ? db : dq));
      }
      dt = t - now;
      break;
    }
  }
  events_.push({now + dt, 0, EventKind::kArrival, sc, 0});
}

void Simulator::admit_job(double now, std::size_t sc) {
  if (measuring_) ++scs_[sc].arrivals;

  const std::uint64_t job_id = jobs_.size();
  jobs_.push_back({sc, now, true});

  if (free_vms(sc) > 0) {
    start_service(now, sc, job_id);
    return;
  }
  const std::size_t donor = pick_donor(sc);
  if (donor != kNone) {
    start_service(now, donor, job_id);
    return;
  }

  // No capacity anywhere in the federation: queue or forward.
  if (options_.policy == ForwardingPolicy::kProbabilistic) {
    // The SLA estimator counts the VMs that can actually serve this SC:
    // own VMs (none during an outage) minus lent ones plus borrowed ones.
    const int servers =
        (scs_[sc].in_outage ? 0 : config_.scs[sc].num_vms) -
        scs_[sc].lent + scs_[sc].borrowed;
    const int in_system = own_in_system(sc);
    const double p_queue = queueing::prob_no_forward(
        in_system, std::max(servers, 0), config_.scs[sc].mu,
        config_.scs[sc].max_wait);
    if (rng_.bernoulli(p_queue)) {
      scs_[sc].queue.push_back(job_id);
    } else {
      jobs_[job_id].active = false;
      ++scs_[sc].batch_forwarded;
      if (measuring_) ++scs_[sc].forwarded;
    }
  } else {
    scs_[sc].queue.push_back(job_id);
    events_.push({now + config_.scs[sc].max_wait, 0, EventKind::kDeadline, sc,
                  job_id});
  }
}

void Simulator::handle_arrival(double now, std::size_t sc) {
  schedule_arrival(now, sc);
  int jobs_in_batch = 1;
  if (options_.arrivals == ArrivalProcess::kBatch) {
    // Geometric batch size with mean batch_mean_size.
    const double p = 1.0 / options_.batch_mean_size;
    while (!rng_.bernoulli(p)) ++jobs_in_batch;
  }
  for (int j = 0; j < jobs_in_batch; ++j) admit_job(now, sc);
}

void Simulator::handle_departure(double now, std::size_t host,
                                 std::uint64_t job_id) {
  const std::size_t owner = jobs_[job_id].owner;
  touch(now, host);
  if (owner != host) touch(now, owner);
  if (owner == host) {
    --scs_[host].own_local;
  } else {
    --scs_[host].lent;
    --scs_[owner].borrowed;
  }
  assign_free_vms(now, host);
}

void Simulator::handle_deadline(double now, std::size_t sc,
                                std::uint64_t job_id) {
  (void)now;
  Job& job = jobs_[job_id];
  if (!job.active) return;  // already in service
  // Still queued: forward to the public cloud.
  job.active = false;
  ++scs_[sc].inactive_in_queue;
  ++scs_[sc].batch_forwarded;
  if (measuring_) ++scs_[sc].forwarded;
}

void Simulator::flush_batch(double now) {
  const double batch_duration =
      options_.measure_time / static_cast<double>(options_.batches);
  for (std::size_t i = 0; i < scs_.size(); ++i) {
    touch(now, i);
    ScState& s = scs_[i];
    s.lent_batches.push_back(s.lent_avg.average());
    s.borrowed_batches.push_back(s.borrowed_avg.average());
    s.busy_batches.push_back(s.busy_avg.average());
    s.forward_rate_batches.push_back(
        static_cast<double>(s.batch_forwarded) / batch_duration);
    s.lent_avg.reset(now);
    s.borrowed_avg.reset(now);
    s.busy_avg.reset(now);
    s.batch_forwarded = 0;
  }
}

std::vector<ScSimStats> Simulator::run() {
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& runs_counter = registry.counter("sim.runs");
  static obs::Counter& events_counter = registry.counter("sim.events");
  static obs::Histogram& run_seconds = registry.histogram("sim.run_seconds");
  const obs::ScopedTimer timer(&run_seconds);
  runs_counter.add();
  // Batched locally: one relaxed fetch_add per run, not per event.
  std::uint64_t events_processed = 0;

  // Initial MMPP phases (start quiet) and initial arrivals.
  if (options_.arrivals == ArrivalProcess::kMmpp) {
    for (auto& s : scs_) {
      s.mmpp_burst = false;
      s.mmpp_switch_time =
          rng_.exponential(1.0 / options_.mmpp_quiet_duration);
    }
  }
  for (std::size_t i = 0; i < config_.size(); ++i) schedule_arrival(0.0, i);

  // Boundary schedule: warm-up end, then one flush per batch.
  std::vector<double> boundaries;
  boundaries.push_back(options_.warmup_time);
  const double batch_duration =
      options_.measure_time / static_cast<double>(options_.batches);
  for (std::size_t b = 1; b <= options_.batches; ++b) {
    boundaries.push_back(options_.warmup_time +
                         static_cast<double>(b) * batch_duration);
  }
  std::size_t next_boundary = 0;

  while (next_boundary < boundaries.size()) {
    const double boundary_time = boundaries[next_boundary];
    if (events_.empty() || events_.top().time >= boundary_time) {
      if (next_boundary == 0) {
        // Warm-up ends: restart all accumulators.
        for (std::size_t i = 0; i < scs_.size(); ++i) {
          touch(boundary_time, i);
          scs_[i].lent_avg.reset(boundary_time);
          scs_[i].borrowed_avg.reset(boundary_time);
          scs_[i].busy_avg.reset(boundary_time);
          scs_[i].batch_forwarded = 0;
        }
        measuring_ = true;
      } else {
        flush_batch(boundary_time);
      }
      ++next_boundary;
      continue;
    }
    const Event e = events_.pop();
    ++events_processed;
    switch (e.kind) {
      case EventKind::kArrival:
        handle_arrival(e.time, e.sc);
        break;
      case EventKind::kDeparture:
        handle_departure(e.time, e.sc, e.job);
        break;
      case EventKind::kDeadline:
        handle_deadline(e.time, e.sc, e.job);
        break;
      case EventKind::kOutageStart:
        scs_[e.sc].in_outage = true;
        break;
      case EventKind::kOutageEnd:
        scs_[e.sc].in_outage = false;
        assign_free_vms(e.time, e.sc);
        break;
    }
  }

  events_counter.add(events_processed);

  std::vector<ScSimStats> out(scs_.size());
  for (std::size_t i = 0; i < scs_.size(); ++i) {
    ScState& s = scs_[i];
    const std::size_t discard = options_.warmup_batches;
    const auto lent = batch_means(s.lent_batches, discard);
    const auto borrowed = batch_means(s.borrowed_batches, discard);
    const auto busy = batch_means(s.busy_batches, discard);
    const auto fwd = batch_means(s.forward_rate_batches, discard);
    ScSimStats& r = out[i];
    r.metrics.lent = lent.mean;
    r.metrics.borrowed = borrowed.mean;
    r.metrics.utilization = busy.mean;
    r.metrics.forward_rate = fwd.mean;
    r.metrics.forward_prob =
        s.arrivals > 0
            ? static_cast<double>(s.forwarded) / static_cast<double>(s.arrivals)
            : 0.0;
    r.lent_hw = lent.half_width;
    r.borrowed_hw = borrowed.half_width;
    r.forward_rate_hw = fwd.half_width;
    r.mean_wait = s.wait.mean();
    r.wait_p50 = s.wait_histogram.quantile(0.50);
    r.wait_p95 = s.wait_histogram.quantile(0.95);
    r.wait_p99 = s.wait_histogram.quantile(0.99);
    r.sla_violation_prob =
        s.served_with_wait > 0
            ? static_cast<double>(s.waits_over_sla) /
                  static_cast<double>(s.served_with_wait)
            : 0.0;
    r.arrivals = s.arrivals;
    r.forwarded = s.forwarded;
    r.served_local = s.served_local;
    r.served_remote = s.served_remote;
  }
  return out;
}

federation::FederationMetrics simulate_metrics(
    const federation::FederationConfig& config, const SimOptions& options) {
  Simulator sim(config, options);
  const auto stats = sim.run();
  federation::FederationMetrics metrics(stats.size());
  for (std::size_t i = 0; i < stats.size(); ++i) metrics[i] = stats[i].metrics;
  return metrics;
}

}  // namespace scshare::sim
