// Discrete-event simulator of the SC federation (the "exact" reference used
// by the paper's evaluation, Sect. V-A).
//
// Policy (matching the detailed CTMC of Sect. III-B):
//  * Arrivals at SC i use a free local VM if one exists.
//  * Otherwise they borrow a VM from the least-loaded donor SC (an SC with a
//    free VM and spare sharing capacity), ties broken uniformly at random.
//  * Otherwise, under the probabilistic policy, the request is queued with
//    probability PNF(q, V, Q) and forwarded to the public cloud otherwise;
//    under the deadline policy it is always queued but forwarded the moment
//    its waiting time exceeds Q.
//  * A VM freed at SC h serves h's own queue first; if h's queue is empty and
//    h still has sharing capacity, it serves the queued request of the SC
//    with the longest queue (uniform tie-break); otherwise it idles.
//
// An optional outage window per SC (VMs unusable for new work) supports
// failover experiments.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "federation/config.hpp"
#include "federation/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"

namespace scshare::sim {

enum class ForwardingPolicy : std::uint8_t {
  kProbabilistic,  ///< forward at arrival w.p. 1 - PNF (paper's model policy)
  kDeadline,       ///< queue always; forward when the wait exceeds Q
};

/// Service-time distribution family (paper Sect. VII discusses relaxing the
/// exponential assumption via phase-type fits; the simulator supports the
/// two standard phase-type families directly).
enum class ServiceDistribution : std::uint8_t {
  kExponential,       ///< scv = 1 (the paper's modeling assumption)
  kErlang,            ///< Erlang-k, scv = 1/k < 1 (low-variance services)
  kHyperExponential,  ///< balanced H2, scv > 1 (bursty services)
};

/// Arrival-process family (paper Sect. VII discusses batch Markovian arrival
/// processes; the simulator additionally supports time-varying rates, which
/// model the offset daily peaks that motivate federation in the paper's
/// introduction).
enum class ArrivalProcess : std::uint8_t {
  kPoisson,     ///< homogeneous Poisson (the paper's modeling assumption)
  kMmpp,        ///< 2-state Markov-modulated Poisson process (bursty)
  kBatch,       ///< Poisson batch arrivals with geometric batch sizes
  kSinusoidal,  ///< diurnal profile lambda(t) = lambda (1 + A sin(2 pi t/P + phase_i))
};

struct SimOptions {
  double warmup_time = 2000.0;   ///< discarded initial window (model time)
  double measure_time = 20000.0; ///< measured window after warm-up
  std::size_t batches = 20;      ///< batch count for confidence intervals
  /// Leading measurement batches excluded from the batch-means confidence
  /// intervals (must stay < batches). Residual transient that survives
  /// `warmup_time` concentrates in the first batches and would bias the
  /// point estimate while shrinking the interval around the biased value;
  /// discarding a couple of batches restores exchangeability. 0 keeps the
  /// historical behaviour.
  std::size_t warmup_batches = 0;
  std::uint64_t seed = 1;
  ForwardingPolicy policy = ForwardingPolicy::kProbabilistic;
  /// Service-time family; the mean stays 1/mu_i in every case.
  ServiceDistribution service = ServiceDistribution::kExponential;
  int erlang_shape = 4;          ///< k for kErlang (scv = 1/k)
  double hyper_scv = 4.0;        ///< squared coeff. of variation for kHyperExponential

  /// Arrival-process family; every option keeps the long-run rate lambda_i.
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  /// kMmpp: rate multiplier of the bursty phase (the quiet phase is scaled
  /// so the time-average rate stays lambda_i) and mean phase durations.
  double mmpp_burst_factor = 3.0;
  double mmpp_burst_duration = 50.0;
  double mmpp_quiet_duration = 150.0;
  /// kBatch: mean batch size (geometric on {1, 2, ...}); the batch *rate* is
  /// scaled down so the request rate stays lambda_i.
  double batch_mean_size = 3.0;
  /// kSinusoidal: relative amplitude in [0, 1) and period; SC i's peak is
  /// shifted by i * period / K so peaks are offset across the federation.
  double sin_amplitude = 0.6;
  double sin_period = 2000.0;
};

/// Per-SC outputs: point estimates plus ~95% CI half-widths and counters.
struct ScSimStats {
  federation::ScMetrics metrics;
  double lent_hw = 0.0;          ///< CI half-width of metrics.lent
  double borrowed_hw = 0.0;      ///< CI half-width of metrics.borrowed
  double forward_rate_hw = 0.0;  ///< CI half-width of metrics.forward_rate
  double mean_wait = 0.0;        ///< mean waiting time of eventually-served requests
  double sla_violation_prob = 0.0;  ///< P[wait > Q] among served requests
  double wait_p50 = 0.0;         ///< median waiting time
  double wait_p95 = 0.0;         ///< 95th percentile waiting time
  double wait_p99 = 0.0;         ///< 99th percentile waiting time
  std::uint64_t arrivals = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t served_local = 0;   ///< served on own VMs
  std::uint64_t served_remote = 0;  ///< served on borrowed VMs
};

class Simulator {
 public:
  Simulator(federation::FederationConfig config, SimOptions options);

  /// Marks SC `sc`'s own VMs unusable for new work during [start, end).
  /// Jobs already in service finish normally. Must be called before run().
  void add_outage(std::size_t sc, double start, double end);

  /// Runs warm-up + measurement and returns per-SC statistics.
  [[nodiscard]] std::vector<ScSimStats> run();

 private:
  struct Job {
    std::size_t owner = 0;  ///< SC whose customer issued the request
    double arrival = 0.0;
    bool active = true;     ///< still waiting in a queue (for deadline policy)
  };

  struct ScState {
    int own_local = 0;   ///< own jobs in service on own VMs
    int lent = 0;        ///< other SCs' jobs in service on own VMs
    int borrowed = 0;    ///< own jobs in service on other SCs' VMs
    std::deque<std::uint64_t> queue;  ///< job ids waiting (FCFS)
    int inactive_in_queue = 0;  ///< deadline-forwarded leftovers in `queue`
    bool in_outage = false;
    bool mmpp_burst = false;          ///< current MMPP phase
    double mmpp_switch_time = 0.0;    ///< next MMPP phase flip

    TimeWeightedAverage lent_avg;
    TimeWeightedAverage borrowed_avg;
    TimeWeightedAverage busy_avg;  ///< (own_local + lent) / N
    std::uint64_t batch_forwarded = 0;

    std::vector<double> lent_batches;
    std::vector<double> borrowed_batches;
    std::vector<double> busy_batches;
    std::vector<double> forward_rate_batches;

    WelfordAccumulator wait;
    Histogram wait_histogram{10.0};  ///< rescaled per SC at construction
    std::uint64_t waits_over_sla = 0;
    std::uint64_t served_with_wait = 0;

    std::uint64_t arrivals = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t served_local = 0;
    std::uint64_t served_remote = 0;
  };

  // -- event handlers -------------------------------------------------------
  void handle_arrival(double now, std::size_t sc);
  /// Routes one request through the admission policy (serve locally, borrow,
  /// queue, or forward).
  void admit_job(double now, std::size_t sc);
  void handle_departure(double now, std::size_t host, std::uint64_t job_id);
  void handle_deadline(double now, std::size_t sc, std::uint64_t job_id);

  // -- policy helpers -------------------------------------------------------
  /// Free own VMs usable for new work at SC i (0 during an outage).
  [[nodiscard]] int free_vms(std::size_t i) const;
  /// Own-customer load of SC i: in service (anywhere) + queued.
  [[nodiscard]] int own_in_system(std::size_t i) const;
  /// Picks a donor for a borrow request; returns SIZE_MAX if none exists.
  [[nodiscard]] std::size_t pick_donor(std::size_t requester);
  /// Picks the queued SC (other than `host`) to receive a freed VM;
  /// SIZE_MAX if none qualifies.
  [[nodiscard]] std::size_t pick_beneficiary(std::size_t host);
  /// Starts service of `job_id` at `host`; updates counters + schedules the
  /// departure.
  void start_service(double now, std::size_t host, std::uint64_t job_id);
  /// Assigns free VMs of `host` per policy (own queue, then longest queue).
  void assign_free_vms(double now, std::size_t host);
  /// Pops the next still-active job of SC `sc`'s queue; SIZE_MAX-like
  /// sentinel (UINT64_MAX) if the queue has no active job.
  std::uint64_t pop_active(std::size_t sc);

  // -- bookkeeping ----------------------------------------------------------
  void touch(double now, std::size_t i);
  void flush_batch(double now);
  void schedule_arrival(double now, std::size_t sc);

  federation::FederationConfig config_;
  SimOptions options_;
  Rng rng_;
  EventQueue events_;
  std::vector<ScState> scs_;
  std::vector<Job> jobs_;
  bool measuring_ = false;
  std::vector<std::size_t> scratch_;  ///< candidate buffer for tie-breaking
};

/// Convenience wrapper: runs the simulator and returns plain metrics.
[[nodiscard]] federation::FederationMetrics simulate_metrics(
    const federation::FederationConfig& config, const SimOptions& options = {});

}  // namespace scshare::sim
