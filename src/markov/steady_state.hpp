// Steady-state solvers for finite CTMCs: pi Q = 0, sum(pi) = 1, pi >= 0.
//
// The default method is Gauss–Seidel on the transposed generator with
// periodic renormalization; a uniformized power iteration serves as a robust
// fallback for matrices on which Gauss–Seidel stalls.
//
// Degradation guards: every residual check also scans for NaN/Inf (throws
// scshare::Error with code kNumericalFailure — a poisoned iterate never
// converges and must not masquerade as a distribution) and for residual
// divergence (aborts the iteration early instead of burning the remaining
// budget). solve_steady_state_guarded() adds automatic tolerance relaxation:
// a result that missed the requested tolerance but lies within
// `relax_multiplier^k` of it is accepted as converged-at-relaxed-tolerance
// and flagged, so callers can mark their metrics degraded instead of
// silently consuming a non-converged distribution.
#pragma once

#include <cstddef>
#include <vector>

#include "markov/ctmc.hpp"

namespace scshare::markov {

struct SteadyStateOptions {
  double tolerance = 1e-12;    ///< convergence threshold on max |pi Q|
  std::size_t max_iterations = 200000;
  /// Check residual / renormalize every `check_interval` sweeps.
  std::size_t check_interval = 16;
  /// Divergence guard: abort when the residual exceeds the best residual
  /// seen so far by this factor (0 disables the guard).
  double divergence_factor = 1e6;
};

/// Consolidated argument block of solve_steady_state_guarded(): the plain
/// iteration options plus the relaxation schedule that only the guarded
/// wrapper interprets. Designed for designated initializers, e.g.
///   solve_steady_state_guarded(chain, {.steady_state = {.tolerance = 1e-10},
///                                      .relax_attempts = 3});
struct SolverOptions {
  SteadyStateOptions steady_state;
  /// Tolerance-relaxation retries: attempt k accepts residual <
  /// steady_state.tolerance * relax_multiplier^k (0 disables relaxation).
  std::size_t relax_attempts = 2;
  double relax_multiplier = 100.0;
};

struct SteadyStateResult {
  std::vector<double> pi;     ///< stationary distribution
  double residual = 0.0;      ///< max |(pi Q)_j| at termination
  std::size_t iterations = 0;
  bool converged = false;
  /// The divergence guard aborted the iteration before the budget ran out.
  bool diverged = false;
  /// Relaxation steps solve_steady_state_guarded() needed (0 = converged at
  /// the requested tolerance). converged && relaxations > 0 means the result
  /// is usable but degraded.
  std::size_t relaxations = 0;
  /// The tolerance the result actually satisfies (== options.tolerance when
  /// relaxations == 0).
  double tolerance_used = 0.0;

  /// Converged, and at the originally requested tolerance.
  [[nodiscard]] bool fully_converged() const {
    return converged && relaxations == 0;
  }
};

/// Solves for the stationary distribution of `chain`.
///
/// The chain is assumed irreducible (one recurrent class); for reducible
/// chains the result depends on the (uniform) initial guess. Throws
/// scshare::Error (kNumericalFailure) when the iterate turns NaN/Inf;
/// returns converged = false if the iteration budget is exhausted or the
/// divergence guard fires (callers decide whether to accept the
/// approximation — or use solve_steady_state_guarded).
[[nodiscard]] SteadyStateResult solve_steady_state(
    const Ctmc& chain, const SteadyStateOptions& options = {});

/// Power iteration on the uniformized DTMC. Mostly used for testing
/// solve_steady_state against an independent method.
[[nodiscard]] SteadyStateResult solve_steady_state_power(
    const Ctmc& chain, const SteadyStateOptions& options = {});

/// solve_steady_state plus automatic tolerance relaxation: a non-converged
/// result whose residual still lies within tolerance * relax_multiplier^k
/// for some k <= relax_attempts is accepted and flagged via `relaxations`.
/// Callers must treat relaxations > 0 (or converged == false) as degraded
/// quality — never as an exact answer.
[[nodiscard]] SteadyStateResult solve_steady_state_guarded(
    const Ctmc& chain, const SolverOptions& options = {});

}  // namespace scshare::markov
