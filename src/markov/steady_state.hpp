// Steady-state solvers for finite CTMCs: pi Q = 0, sum(pi) = 1, pi >= 0.
//
// The default method is Gauss–Seidel on the transposed generator with
// periodic renormalization; a uniformized power iteration serves as a robust
// fallback for matrices on which Gauss–Seidel stalls.
#pragma once

#include <cstddef>
#include <vector>

#include "markov/ctmc.hpp"

namespace scshare::markov {

struct SteadyStateOptions {
  double tolerance = 1e-12;    ///< convergence threshold on max |pi Q|
  std::size_t max_iterations = 200000;
  /// Check residual / renormalize every `check_interval` sweeps.
  std::size_t check_interval = 16;
};

struct SteadyStateResult {
  std::vector<double> pi;     ///< stationary distribution
  double residual = 0.0;      ///< max |(pi Q)_j| at termination
  std::size_t iterations = 0;
  bool converged = false;
};

/// Solves for the stationary distribution of `chain`.
///
/// The chain is assumed irreducible (one recurrent class); for reducible
/// chains the result depends on the (uniform) initial guess. Throws on
/// numerical failure; returns converged = false if the iteration budget is
/// exhausted (callers decide whether to accept the approximation).
[[nodiscard]] SteadyStateResult solve_steady_state(
    const Ctmc& chain, const SteadyStateOptions& options = {});

/// Power iteration on the uniformized DTMC. Mostly used for testing
/// solve_steady_state against an independent method.
[[nodiscard]] SteadyStateResult solve_steady_state_power(
    const Ctmc& chain, const SteadyStateOptions& options = {});

}  // namespace scshare::markov
