#include "markov/lumping.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace scshare::markov {

LumpingResult lump(const Ctmc& chain,
                   const std::vector<std::size_t>& initial_partition) {
  const std::size_t n = chain.num_states();
  require(initial_partition.size() == n,
          "lump: initial partition size mismatch");

  // Normalize the initial labels to dense block ids.
  std::vector<std::size_t> block(n);
  {
    std::map<std::size_t, std::size_t> remap;
    for (std::size_t i = 0; i < n; ++i) {
      const auto [it, inserted] =
          remap.try_emplace(initial_partition[i], remap.size());
      block[i] = it->second;
    }
  }

  const auto& q = chain.generator();
  const auto offsets = q.row_offsets();
  const auto cols = q.col_indices();
  const auto vals = q.values();

  // Signature refinement: a state's signature is its (old block, sorted
  // rate-sums into each old block, excluding the diagonal); states are
  // regrouped by signature until the block count stabilizes.
  using Signature = std::vector<std::pair<std::size_t, double>>;
  for (;;) {
    std::map<std::pair<std::size_t, Signature>, std::size_t> groups;
    std::vector<std::size_t> next(n);
    for (std::size_t s = 0; s < n; ++s) {
      std::map<std::size_t, double> into;
      for (std::size_t k = offsets[s]; k < offsets[s + 1]; ++k) {
        if (cols[k] == s) continue;  // diagonal
        // Rates into the state's own block matter too (ordinary
        // lumpability requires equal rates into every *other* block; rates
        // inside the block are unconstrained), so skip same-block targets.
        if (block[cols[k]] == block[s]) continue;
        into[block[cols[k]]] += vals[k];
      }
      Signature signature(into.begin(), into.end());
      // Round rate sums to suppress floating-point jitter in comparisons.
      for (auto& [b, r] : signature) {
        r = std::round(r * 1e12) / 1e12;
      }
      const auto [it, inserted] = groups.try_emplace(
          {block[s], std::move(signature)}, groups.size());
      next[s] = it->second;
    }
    const std::size_t new_count = groups.size();
    const std::size_t old_count =
        1 + *std::max_element(block.begin(), block.end());
    block = std::move(next);
    if (new_count == old_count) break;
  }

  LumpingResult result;
  result.block_of = block;
  result.num_blocks = 1 + *std::max_element(block.begin(), block.end());

  // Build the lumped generator from one representative per block (rates are
  // identical within a block by construction).
  std::vector<std::size_t> representative(result.num_blocks,
                                          static_cast<std::size_t>(-1));
  for (std::size_t s = 0; s < n; ++s) {
    if (representative[block[s]] == static_cast<std::size_t>(-1)) {
      representative[block[s]] = s;
    }
  }
  Ctmc lumped(result.num_blocks);
  for (std::size_t b = 0; b < result.num_blocks; ++b) {
    const std::size_t s = representative[b];
    std::map<std::size_t, double> into;
    for (std::size_t k = offsets[s]; k < offsets[s + 1]; ++k) {
      if (cols[k] == s || block[cols[k]] == b) continue;
      into[block[cols[k]]] += vals[k];
    }
    for (const auto& [target, rate] : into) {
      lumped.add_rate(b, target, rate);
    }
  }
  lumped.finalize();
  result.lumped = std::move(lumped);

  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& runs = registry.counter("markov.lumping.runs");
  static obs::Counter& before =
      registry.counter("markov.lumping.states_before");
  static obs::Counter& after = registry.counter("markov.lumping.states_after");
  runs.add();
  before.add(n);
  after.add(result.num_blocks);
  if (auto* sink = obs::trace_sink()) {
    sink->emit(obs::LumpingStatsEvent{n, result.num_blocks});
  }
  return result;
}

LumpingResult lump(const Ctmc& chain) {
  // The trivial one-block partition is always ordinarily lumpable (and
  // useless), so the label-free overload seeds the refinement with exit-rate
  // classes: an observable quantity that any caller-relevant aggregation
  // would distinguish anyway.
  std::map<long long, std::size_t> classes;
  std::vector<std::size_t> initial(chain.num_states());
  for (std::size_t s = 0; s < chain.num_states(); ++s) {
    const long long key =
        static_cast<long long>(std::llround(chain.exit_rates()[s] * 1e9));
    initial[s] = classes.try_emplace(key, classes.size()).first->second;
  }
  return lump(chain, initial);
}

std::vector<double> aggregate_distribution(const LumpingResult& lumping,
                                           const std::vector<double>& pi) {
  require(pi.size() == lumping.block_of.size(),
          "aggregate_distribution: size mismatch");
  std::vector<double> out(lumping.num_blocks, 0.0);
  for (std::size_t s = 0; s < pi.size(); ++s) {
    out[lumping.block_of[s]] += pi[s];
  }
  return out;
}

}  // namespace scshare::markov
