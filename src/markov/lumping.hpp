// Ordinary lumpability for CTMCs (paper Sect. VII lists "lumping of Markov
// processes" as the route to taming the detailed model's state-space
// explosion, e.g., for federations containing groups of identical SCs).
//
// Given an initial partition (states that must stay distinguishable, e.g.,
// by a reward or observation label), the partition is refined until every
// block is ordinarily lumpable: all states of a block have identical total
// rates into every other block. The lumped chain then preserves aggregated
// transient and stationary behaviour exactly.
#pragma once

#include <cstddef>
#include <vector>

#include "markov/ctmc.hpp"

namespace scshare::markov {

struct LumpingResult {
  std::vector<std::size_t> block_of;  ///< state index -> block index
  std::size_t num_blocks = 0;
  Ctmc lumped;                        ///< chain over the blocks

  LumpingResult() : lumped(1) {}
};

/// Computes the coarsest ordinarily-lumpable refinement of
/// `initial_partition` (a label per state; blocks are only ever split, so
/// states with different labels stay separated) and the corresponding
/// lumped chain. Runs signature-refinement sweeps until a
/// fixed point; worst case O(sweeps * nnz log nnz) with at most
/// `num_states` sweeps.
[[nodiscard]] LumpingResult lump(
    const Ctmc& chain, const std::vector<std::size_t>& initial_partition);

/// Convenience: lump with an initial partition by total exit rate (the
/// trivial single-block partition is always ordinarily lumpable but carries
/// no information; exit-rate classes are the natural label-free seed).
[[nodiscard]] LumpingResult lump(const Ctmc& chain);

/// Aggregates a per-state distribution onto blocks.
[[nodiscard]] std::vector<double> aggregate_distribution(
    const LumpingResult& lumping, const std::vector<double>& pi);

}  // namespace scshare::markov
