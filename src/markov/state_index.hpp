// Bidirectional mapping between structured CTMC states and dense indices.
//
// Federation models enumerate states lazily (constraints make the reachable
// set much smaller than the bounding box), so we map each encountered state
// vector to the next free index with a hash map, and keep the inverse as a
// flat list for metric extraction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"

namespace scshare::markov {

/// Indexer for states represented as small vectors of non-negative integers.
class StateIndex {
 public:
  using State = std::vector<std::int32_t>;

  /// Returns the index of `state`, inserting it if new.
  std::size_t intern(const State& state) {
    const auto [it, inserted] = map_.try_emplace(key_of(state), states_.size());
    if (inserted) states_.push_back(state);
    return it->second;
  }

  /// Returns the index of `state`; throws if absent.
  [[nodiscard]] std::size_t at(const State& state) const {
    const auto it = map_.find(key_of(state));
    require(it != map_.end(), "StateIndex::at: unknown state");
    return it->second;
  }

  /// True if the state has been interned.
  [[nodiscard]] bool contains(const State& state) const {
    return map_.find(key_of(state)) != map_.end();
  }

  [[nodiscard]] const State& state(std::size_t index) const {
    SCSHARE_ASSERT(index < states_.size(), "StateIndex::state: out of range");
    return states_[index];
  }

  [[nodiscard]] std::size_t size() const { return states_.size(); }

 private:
  // FNV-1a over the raw components; collisions resolved by the map using the
  // full key string.
  [[nodiscard]] static std::string key_of(const State& s) {
    return {reinterpret_cast<const char*>(s.data()),
            s.size() * sizeof(std::int32_t)};
  }

  std::unordered_map<std::string, std::size_t> map_;
  std::vector<State> states_;
};

}  // namespace scshare::markov
