// Transient analysis of finite CTMCs via uniformization:
//
//   p(t) = p(0) * sum_k PoissonPmf(k; gamma t) P^k,  P = I + Q / gamma,
//
// with the Poisson sum truncated to a Fox–Glynn style window (see
// common/math.hpp). This is the engine behind the approximate federation
// model's interaction-probability vectors (paper Sect. III-C).
#pragma once

#include <span>
#include <vector>

#include "markov/ctmc.hpp"

namespace scshare::markov {

/// Precomputed uniformization of a chain, reusable across many initial
/// distributions and time points.
class TransientSolver {
 public:
  /// `epsilon` bounds the truncated Poisson mass per evaluation.
  explicit TransientSolver(const Ctmc& chain, double epsilon = 1e-12);

  /// Returns p(t) given initial distribution p0 (must sum to ~1).
  [[nodiscard]] std::vector<double> evolve(std::span<const double> p0,
                                           double t) const;

  /// Returns p(t_i) for every t_i in `ts`, sharing a single power-series
  /// pass over the uniformized DTMC (the dominant cost); much cheaper than
  /// calling evolve() once per time point.
  [[nodiscard]] std::vector<std::vector<double>> evolve_multi(
      std::span<const double> p0, std::span<const double> ts) const;

  /// Expected reward accumulated over [0, t]:
  ///   E[ integral_0^t r(X_s) ds ]
  /// via the uniformization identity
  ///   sum_k (p0 P^k r) * P[Poisson(gamma t) > k] / gamma.
  /// Useful for cost-over-horizon questions (e.g., expected public-cloud
  /// spend during a demand surge).
  [[nodiscard]] double accumulated_reward(std::span<const double> p0,
                                          std::span<const double> rewards,
                                          double t) const;

  [[nodiscard]] double gamma() const { return gamma_; }

 private:
  double gamma_;
  double epsilon_;
  linalg::CsrMatrix dtmc_;
};

}  // namespace scshare::markov
