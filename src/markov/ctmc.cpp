#include "markov/ctmc.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace scshare::markov {

Ctmc::Ctmc(std::size_t num_states)
    : num_states_(num_states), triplets_(num_states, num_states) {
  require(num_states > 0, "Ctmc: chain must have at least one state");
}

void Ctmc::add_rate(std::size_t from, std::size_t to, double rate) {
  require(!finalized_, "Ctmc::add_rate: chain already finalized");
  require(rate >= 0.0, "Ctmc::add_rate: rate must be non-negative");
  SCSHARE_ASSERT(from < num_states_ && to < num_states_,
                 "Ctmc::add_rate: state out of range");
  if (from == to || rate == 0.0) return;
  triplets_.add(from, to, rate);
}

void Ctmc::finalize() {
  require(!finalized_, "Ctmc::finalize: already finalized");
  // Compute exit rates, then add diagonal entries of -exit_rate.
  exit_rates_.assign(num_states_, 0.0);
  for (const auto& e : triplets_.entries()) {
    exit_rates_[e.row] += e.value;
  }
  for (std::size_t i = 0; i < num_states_; ++i) {
    if (exit_rates_[i] != 0.0) triplets_.add(i, i, -exit_rates_[i]);
  }
  generator_ = linalg::CsrMatrix::from_triplets(triplets_);
  // Release builder memory.
  triplets_ = linalg::TripletList(0, 0);
  finalized_ = true;
}

const linalg::CsrMatrix& Ctmc::generator() const {
  require(finalized_, "Ctmc::generator: call finalize() first");
  return generator_;
}

const std::vector<double>& Ctmc::exit_rates() const {
  require(finalized_, "Ctmc::exit_rates: call finalize() first");
  return exit_rates_;
}

double Ctmc::uniformization_rate(double slack) const {
  require(finalized_, "Ctmc::uniformization_rate: call finalize() first");
  require(slack >= 1.0, "Ctmc::uniformization_rate: slack must be >= 1");
  const double max_exit =
      *std::max_element(exit_rates_.begin(), exit_rates_.end());
  // Guard against the degenerate absorbing-only chain (max exit rate 0).
  return max_exit > 0.0 ? max_exit * slack : 1.0;
}

linalg::CsrMatrix Ctmc::uniformized_dtmc(double gamma) const {
  require(finalized_, "Ctmc::uniformized_dtmc: call finalize() first");
  const double max_exit =
      *std::max_element(exit_rates_.begin(), exit_rates_.end());
  require(gamma >= max_exit && gamma > 0.0,
          "Ctmc::uniformized_dtmc: gamma must be >= max exit rate");
  linalg::TripletList t(num_states_, num_states_);
  const auto offsets = generator_.row_offsets();
  const auto cols = generator_.col_indices();
  const auto vals = generator_.values();
  for (std::size_t r = 0; r < num_states_; ++r) {
    double diag = 1.0;  // I term
    for (std::size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
      if (cols[k] == r) {
        diag += vals[k] / gamma;
      } else {
        t.add(r, cols[k], vals[k] / gamma);
      }
    }
    if (diag != 0.0) t.add(r, r, diag);
  }
  return linalg::CsrMatrix::from_triplets(t);
}

}  // namespace scshare::markov
