#include "markov/transient.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace scshare::markov {
namespace {

/// Instruments of the uniformization engine. `window_width` is the Fox–Glynn
/// truncation width (right - left + 1) — the number of Poisson terms and
/// hence mat-vecs a transient evaluation pays for.
struct TransientObs {
  obs::Counter& evolutions;
  obs::Counter& matvecs;
  obs::Histogram& window_width;
  obs::Histogram& seconds;

  TransientObs()
      : evolutions(obs::MetricsRegistry::global().counter(
            "markov.transient.evolutions")),
        matvecs(obs::MetricsRegistry::global().counter(
            "markov.transient.matvecs")),
        window_width(obs::MetricsRegistry::global().histogram(
            "markov.transient.window_width", obs::Histogram::size_bounds())),
        seconds(obs::MetricsRegistry::global().histogram(
            "markov.transient.seconds")) {}
};

TransientObs& transient_obs() {
  static TransientObs instruments;
  return instruments;
}

void record_window(TransientObs& instruments, int left, int right) {
  const auto width = static_cast<std::uint64_t>(right - left + 1);
  instruments.window_width.observe(static_cast<double>(width));
  if (auto* sink = obs::trace_sink()) {
    sink->emit(obs::SolverIterationEvent{"transient", width, 0.0, true});
  }
}

}  // namespace

TransientSolver::TransientSolver(const Ctmc& chain, double epsilon)
    : gamma_(chain.uniformization_rate()),
      epsilon_(epsilon),
      dtmc_(chain.uniformized_dtmc(gamma_)) {
  require(epsilon > 0.0 && epsilon < 1.0,
          "TransientSolver: epsilon must lie in (0, 1)");
}

std::vector<std::vector<double>> TransientSolver::evolve_multi(
    std::span<const double> p0, std::span<const double> ts) const {
  require(p0.size() == dtmc_.rows(),
          "TransientSolver::evolve_multi: size mismatch");
  const obs::Span span("solve.transient");
  TransientObs& instruments = transient_obs();
  const obs::ScopedTimer timer(&instruments.seconds);
  instruments.evolutions.add(ts.size());
  std::vector<std::vector<double>> results(ts.size());
  std::vector<math::PoissonWindow> windows(ts.size());
  int k_max = 0;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    require(ts[i] >= 0.0, "TransientSolver::evolve_multi: negative time");
    results[i].assign(p0.size(), 0.0);
    if (ts[i] == 0.0) {
      std::copy(p0.begin(), p0.end(), results[i].begin());
      continue;
    }
    windows[i] = math::poisson_window(gamma_ * ts[i], epsilon_);
    record_window(instruments, windows[i].left, windows[i].right);
    k_max = std::max(k_max, windows[i].right);
  }

  std::vector<double> current(p0.begin(), p0.end());
  std::vector<double> next(p0.size());
  for (int k = 0; k <= k_max; ++k) {
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (ts[i] == 0.0) continue;
      const auto& w = windows[i];
      if (k < w.left || k > w.right) continue;
      linalg::axpy(w.weights[static_cast<std::size_t>(k - w.left)], current,
                   results[i]);
    }
    if (k < k_max) {
      dtmc_.multiply_transposed(current, next);
      instruments.matvecs.add();
      std::swap(current, next);
      // Support pruning: conditioned starts occupy a thin slice of the state
      // space; dropping negligible mass keeps the mat-vec cost proportional
      // to the genuinely reachable support. The discarded mass is restored
      // by the final renormalization.
      double max_entry = 0.0;
      for (double v : current) max_entry = std::max(max_entry, v);
      const double threshold = max_entry * 1e-12;
      for (double& v : current) {
        if (v < threshold) v = 0.0;
      }
    }
  }
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i] == 0.0) continue;
    linalg::clamp_nonnegative(results[i], 1e-9);
    linalg::normalize_probability(results[i]);
  }
  return results;
}

double TransientSolver::accumulated_reward(std::span<const double> p0,
                                           std::span<const double> rewards,
                                           double t) const {
  require(p0.size() == dtmc_.rows() && rewards.size() == dtmc_.rows(),
          "TransientSolver::accumulated_reward: size mismatch");
  require(t >= 0.0, "TransientSolver::accumulated_reward: negative horizon");
  if (t == 0.0) return 0.0;
  const obs::Span span("solve.transient");
  TransientObs& instruments = transient_obs();
  const obs::ScopedTimer timer(&instruments.seconds);
  instruments.evolutions.add();

  const double mean = gamma_ * t;
  std::vector<double> current(p0.begin(), p0.end());
  std::vector<double> next(p0.size());
  double total = 0.0;
  // sum_k w_k = t with w_k = P[N > k] / gamma; truncate once the remaining
  // weight is negligible relative to the horizon.
  double remaining = t;
  for (int k = 0;; ++k) {
    const double w = math::poisson_sf(k + 1, mean) / gamma_;
    double instant = 0.0;
    for (std::size_t i = 0; i < current.size(); ++i) {
      instant += current[i] * rewards[i];
    }
    total += w * instant;
    remaining -= w;
    if (remaining < epsilon_ * t) break;
    dtmc_.multiply_transposed(current, next);
    instruments.matvecs.add();
    std::swap(current, next);
  }
  return total;
}

std::vector<double> TransientSolver::evolve(std::span<const double> p0,
                                            double t) const {
  require(p0.size() == dtmc_.rows(), "TransientSolver::evolve: size mismatch");
  require(t >= 0.0, "TransientSolver::evolve: t must be non-negative");

  std::vector<double> result(p0.size(), 0.0);
  if (t == 0.0) {
    std::copy(p0.begin(), p0.end(), result.begin());
    return result;
  }
  const obs::Span span("solve.transient");
  TransientObs& instruments = transient_obs();
  const obs::ScopedTimer timer(&instruments.seconds);
  instruments.evolutions.add();

  const auto window = math::poisson_window(gamma_ * t, epsilon_);
  record_window(instruments, window.left, window.right);

  // current = p0 * P^k, accumulated into result with Poisson weights.
  std::vector<double> current(p0.begin(), p0.end());
  std::vector<double> next(p0.size());
  for (int k = 0; k <= window.right; ++k) {
    if (k >= window.left) {
      const double w = window.weights[static_cast<std::size_t>(k - window.left)];
      linalg::axpy(w, current, result);
    }
    if (k < window.right) {
      dtmc_.multiply_transposed(current, next);
      instruments.matvecs.add();
      std::swap(current, next);
    }
  }
  linalg::clamp_nonnegative(result, 1e-9);
  linalg::normalize_probability(result);
  return result;
}

}  // namespace scshare::markov
