#include "markov/steady_state.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace scshare::markov {
namespace {

/// Max |(pi Q)_j| — the stationarity residual.
double residual_norm(const linalg::CsrMatrix& q,
                     const std::vector<double>& pi,
                     std::vector<double>& scratch) {
  // Profiled at the residual check (once per check_interval sweeps), not per
  // inner sweep: the span cost stays far below the mat-vec being measured.
  const obs::Span span("solve.matvec");
  q.multiply_transposed(pi, scratch);
  double m = 0.0;
  for (double v : scratch) m = std::max(m, std::abs(v));
  return m;
}

/// Shared per-solver instruments (handles are stable; see obs/metrics.hpp).
struct SolverObs {
  obs::Counter& solves;
  obs::Counter& iterations;
  obs::Counter& nonconverged;
  obs::Histogram& seconds;

  explicit SolverObs(const char* prefix)
      : solves(obs::MetricsRegistry::global().counter(std::string(prefix) +
                                                      ".solves")),
        iterations(obs::MetricsRegistry::global().counter(
            std::string(prefix) + ".iterations")),
        nonconverged(obs::MetricsRegistry::global().counter(
            std::string(prefix) + ".nonconverged")),
        seconds(obs::MetricsRegistry::global().histogram(std::string(prefix) +
                                                         ".seconds")) {}
};

SolverObs& gauss_seidel_obs() {
  static SolverObs instruments("markov.steady_state.gauss_seidel");
  return instruments;
}

SolverObs& power_obs() {
  static SolverObs instruments("markov.steady_state.power");
  return instruments;
}

obs::Counter& divergence_aborts_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("solver.divergence_aborts");
  return counter;
}

obs::Counter& relaxations_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("solver.tolerance_relaxations");
  return counter;
}

enum class SolverPath { kGaussSeidel, kPower };

void record_solve(SolverObs& instruments, const SolverPath solver,
                  const SteadyStateResult& result) {
  instruments.solves.add();
  instruments.iterations.add(result.iterations);
  if (!result.converged) instruments.nonconverged.add();
  if (auto* sink = obs::trace_sink()) {
    sink->emit(obs::SolverIterationEvent{
        solver == SolverPath::kGaussSeidel ? "gauss_seidel" : "power",
        result.iterations, result.residual, result.converged});
  }
}

/// NaN/Inf guard: a poisoned iterate can never converge and, worse, clamping
/// plus renormalization may launder it into an innocent-looking (and wrong)
/// distribution. Throw instead of iterating on.
void check_finite(const std::vector<double>& pi, double residual,
                  const char* solver) {
  if (std::isfinite(residual) &&
      std::all_of(pi.begin(), pi.end(),
                  [](double v) { return std::isfinite(v); })) {
    return;
  }
  divergence_aborts_counter().add();
  obs::log_warn_limited("solver", "iterate contains NaN/Inf; aborting solve",
                {obs::field("solver", solver)});
  throw Error("iterate contains NaN/Inf (divergent chain or "
              "ill-conditioned generator)",
              ErrorCode::kNumericalFailure, solver);
}

/// Divergence guard: true (and records the abort) when the residual has
/// grown `divergence_factor` beyond the best seen — further sweeps are a
/// waste of the iteration budget.
bool check_divergence(double residual, double best_residual,
                      double divergence_factor) {
  if (divergence_factor <= 0.0) return false;
  if (residual <= best_residual * divergence_factor) return false;
  divergence_aborts_counter().add();
  obs::log_warn_limited("solver", "residual diverged; abandoning iteration budget",
                {obs::field("residual", residual),
                 obs::field("best_residual", best_residual)});
  return true;
}

}  // namespace

SteadyStateResult solve_steady_state(const Ctmc& chain,
                                     const SteadyStateOptions& options) {
  const obs::Span span("solve.gauss_seidel");
  SolverObs& instruments = gauss_seidel_obs();
  const obs::ScopedTimer timer(&instruments.seconds);

  // Gauss–Seidel on Q^T pi^T = 0:
  // for each state j: pi_j = (sum_{i != j} pi_i * Q[i][j]) / -Q[j][j].
  // We precompute the incoming-edge (column) structure once.
  const auto& q = chain.generator();
  const std::size_t n = chain.num_states();

  // Column-oriented copy of Q without the diagonal.
  struct Incoming {
    std::size_t src;
    double rate;
  };
  std::vector<std::vector<Incoming>> incoming(n);
  std::vector<double> diag(n, 0.0);
  {
    const auto offsets = q.row_offsets();
    const auto cols = q.col_indices();
    const auto vals = q.values();
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
        if (cols[k] == r) {
          diag[r] = vals[k];
        } else {
          incoming[cols[k]].push_back({r, vals[k]});
        }
      }
    }
  }

  SteadyStateResult result;
  result.tolerance_used = options.tolerance;
  result.pi.assign(n, 1.0 / static_cast<double>(n));
  std::vector<double> scratch(n);
  double best_residual = std::numeric_limits<double>::infinity();

  for (std::size_t iter = 1; iter <= options.max_iterations; ++iter) {
    // Deadline polled every sweep (not every check_interval) so a request
    // deadline fires within one sweep of work; a null ambient token makes
    // this a single pointer check.
    throw_if_cancelled("gauss_seidel");
    for (std::size_t j = 0; j < n; ++j) {
      if (diag[j] == 0.0) continue;  // absorbing state: mass accumulates there
      double inflow = 0.0;
      for (const auto& e : incoming[j]) inflow += result.pi[e.src] * e.rate;
      result.pi[j] = inflow / -diag[j];
    }
    if (iter % options.check_interval == 0 ||
        iter == options.max_iterations) {
      // Guard the raw iterate first: clamping/renormalizing a NaN-poisoned
      // vector would raise an untyped error (or launder the NaN) instead.
      check_finite(result.pi, 0.0, "gauss_seidel");
      linalg::clamp_nonnegative(result.pi, 1e-9);
      linalg::normalize_probability(result.pi);
      result.residual = residual_norm(q, result.pi, scratch);
      result.iterations = iter;
      check_finite(result.pi, result.residual, "gauss_seidel");
      if (result.residual < options.tolerance) {
        result.converged = true;
        record_solve(instruments, SolverPath::kGaussSeidel, result);
        return result;
      }
      if (check_divergence(result.residual, best_residual,
                           options.divergence_factor)) {
        result.diverged = true;
        break;
      }
      best_residual = std::min(best_residual, result.residual);
    }
  }
  record_solve(instruments, SolverPath::kGaussSeidel, result);
  // Fall back to the power iteration if Gauss–Seidel did not converge.
  SteadyStateResult fallback = solve_steady_state_power(chain, options);
  return fallback.residual < result.residual ? fallback : result;
}

SteadyStateResult solve_steady_state_power(const Ctmc& chain,
                                           const SteadyStateOptions& options) {
  const obs::Span span("solve.power");
  SolverObs& instruments = power_obs();
  const obs::ScopedTimer timer(&instruments.seconds);

  const std::size_t n = chain.num_states();
  const double gamma = chain.uniformization_rate();
  const linalg::CsrMatrix p = chain.uniformized_dtmc(gamma);

  SteadyStateResult result;
  result.tolerance_used = options.tolerance;
  result.pi.assign(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  std::vector<double> scratch(n);
  double best_residual = std::numeric_limits<double>::infinity();

  for (std::size_t iter = 1; iter <= options.max_iterations; ++iter) {
    throw_if_cancelled("power");
    p.multiply_transposed(result.pi, next);
    std::swap(result.pi, next);
    if (iter % options.check_interval == 0 ||
        iter == options.max_iterations) {
      check_finite(result.pi, 0.0, "power");
      linalg::clamp_nonnegative(result.pi, 1e-9);
      linalg::normalize_probability(result.pi);
      result.residual = residual_norm(chain.generator(), result.pi, scratch);
      result.iterations = iter;
      check_finite(result.pi, result.residual, "power");
      if (result.residual < options.tolerance) {
        result.converged = true;
        record_solve(instruments, SolverPath::kPower, result);
        return result;
      }
      if (check_divergence(result.residual, best_residual,
                           options.divergence_factor)) {
        result.diverged = true;
        break;
      }
      best_residual = std::min(best_residual, result.residual);
    }
  }
  record_solve(instruments, SolverPath::kPower, result);
  return result;
}

SteadyStateResult solve_steady_state_guarded(
    const Ctmc& chain, const SolverOptions& options) {
  SteadyStateResult result = solve_steady_state(chain, options.steady_state);
  if (result.converged) return result;
  // Tolerance-relaxation retry. The solvers are deterministic and already
  // spent the full iteration budget, so re-running buys nothing: instead the
  // best residual reached is tested against progressively relaxed
  // tolerances. Acceptance at attempt k means "converged, but k orders
  // looser than requested" — flagged for the caller to mark degraded.
  double relaxed = options.steady_state.tolerance;
  for (std::size_t attempt = 1; attempt <= options.relax_attempts; ++attempt) {
    relaxed *= options.relax_multiplier;
    if (result.residual < relaxed) {
      result.converged = true;
      result.relaxations = attempt;
      result.tolerance_used = relaxed;
      relaxations_counter().add(attempt);
      obs::log_warn_limited(
          "solver", "accepted under relaxed tolerance; result degraded",
          {obs::field("relaxations", static_cast<std::int64_t>(attempt)),
           obs::field("tolerance_used", relaxed),
           obs::field("residual", result.residual)});
      return result;
    }
  }
  return result;
}

}  // namespace scshare::markov
