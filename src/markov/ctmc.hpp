// Continuous-time Markov chain container.
//
// A Ctmc is assembled from off-diagonal transition rates; diagonal entries are
// derived so that every row of the generator Q sums to zero. The class also
// produces the uniformized DTMC P = I + Q / gamma used by both the
// steady-state power iteration and the transient (uniformization) solver.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/csr_matrix.hpp"

namespace scshare::markov {

/// Builder + container for a finite CTMC generator.
class Ctmc {
 public:
  /// Creates a chain with `num_states` states and no transitions.
  explicit Ctmc(std::size_t num_states);

  /// Adds (accumulates) transition rate `rate >= 0` from `from` to `to`.
  /// Self-loops are ignored (they do not change the generator).
  void add_rate(std::size_t from, std::size_t to, double rate);

  /// Freezes the chain: builds the CSR generator. Must be called once after
  /// all add_rate calls and before any query below.
  void finalize();

  [[nodiscard]] bool finalized() const { return finalized_; }
  [[nodiscard]] std::size_t num_states() const { return num_states_; }

  /// Generator matrix Q (rows sum to zero). Requires finalize().
  [[nodiscard]] const linalg::CsrMatrix& generator() const;

  /// Total exit rate of each state (i.e., -Q[i][i]). Requires finalize().
  [[nodiscard]] const std::vector<double>& exit_rates() const;

  /// Uniformization rate: max exit rate times `slack` (> 1 keeps the DTMC
  /// aperiodic). Requires finalize().
  [[nodiscard]] double uniformization_rate(double slack = 1.02) const;

  /// Uniformized DTMC P = I + Q / gamma for the given gamma
  /// (>= max exit rate). Requires finalize().
  [[nodiscard]] linalg::CsrMatrix uniformized_dtmc(double gamma) const;

 private:
  std::size_t num_states_;
  bool finalized_ = false;
  linalg::TripletList triplets_;
  linalg::CsrMatrix generator_;
  std::vector<double> exit_rates_;
};

}  // namespace scshare::markov
