// Non-cooperative repeated sharing game among SCs (paper Algorithm 1).
//
// Each round, every SC best-responds with the share count S_i maximizing its
// utility (Eq. (2)) against the other SCs' shares from the previous round
// (fictitious-play style: SCs know only their own utility). The game stops at
// a pure-strategy equilibrium (no SC changes its share) or after max_rounds.
//
// Best responses are found either exhaustively over S_i in [0, N_i] or with
// Tabu search (paper's choice; cheaper when evaluations are expensive).
#pragma once

#include <vector>

#include "federation/backend.hpp"
#include "federation/config.hpp"
#include "market/cost.hpp"
#include "market/tabu.hpp"
#include "market/utility.hpp"

namespace scshare::market {

enum class BestResponseMethod {
  kExhaustive,  ///< scan every share in [0, N_i]
  kTabu,        ///< Tabu search (paper Sect. IV-B)
};

enum class UpdateRule {
  /// SCs respond in sequence within a round, each seeing the updates of the
  /// SCs before it (the paper's Sect. VII notes SCs follow a prescribed
  /// sequence of actions; sequential updates also avoid the two-cycles that
  /// simultaneous best responses are prone to).
  kSequential,
  /// All SCs respond to the previous round simultaneously (literal reading
  /// of Algorithm 1); kept for comparison experiments.
  kSimultaneous,
};

struct GameOptions {
  std::vector<int> initial_shares;  ///< empty: start from all-zero
  int max_rounds = 64;
  BestResponseMethod method = BestResponseMethod::kTabu;
  UpdateRule update_rule = UpdateRule::kSequential;
  /// An SC changes its share only when the candidate's utility beats the
  /// current one by this relative margin (hysteresis). Models switching
  /// costs and keeps the dynamics stable when the cost oracle is noisy
  /// (e.g., a simulation backend); 0 gives literal best responses.
  double improvement_tolerance = 1e-9;
  TabuOptions tabu;
};

struct GameResult {
  std::vector<int> shares;        ///< final (equilibrium) sharing vector
  std::vector<double> utilities;  ///< per-SC utilities at the final vector
  std::vector<double> costs;      ///< per-SC operating costs (Eq. (1))
  int rounds = 0;
  bool converged = false;
  /// True when any evaluation failed or returned degraded metrics during the
  /// run: the equilibrium is still the best response to what was observable,
  /// but its quality is not guaranteed.
  bool degraded = false;
  /// Backend evaluations that raised a typed error (the candidate was
  /// skipped, or last-known-good metrics were substituted).
  int failed_evaluations = 0;
  /// True when the run stopped early because the ambient CancelToken fired
  /// (request deadline or daemon drain). `shares`/`utilities` then hold the
  /// best vector reached so far — a partial, degraded result, not an
  /// equilibrium claim.
  bool cancelled = false;
  std::vector<std::vector<int>> trajectory;  ///< shares after each round
};

class Game {
 public:
  /// `backend` must outlive the Game. `config.shares` is ignored (the game
  /// controls the sharing vector).
  Game(federation::FederationConfig config, PriceConfig prices,
       UtilityParams utility, federation::PerformanceBackend& backend,
       GameOptions options = {});

  /// Runs Algorithm 1 until equilibrium or the round budget is exhausted.
  [[nodiscard]] GameResult run();

  /// Utility of SC i when the federation uses `shares` (helper for sweeps
  /// and social-optimum search; uses the same memoized backend). Returns
  /// -infinity when the evaluation fails with a typed error, so callers can
  /// skip the candidate instead of aborting the search.
  [[nodiscard]] double utility_of(std::size_t i, const std::vector<int>& shares);

  /// Utilities of every SC under `shares`.
  [[nodiscard]] std::vector<double> utilities_of(const std::vector<int>& shares);

  /// Utilities of every SC computed from already-evaluated metrics (e.g. a
  /// batch the caller obtained from the backend directly). Pure arithmetic —
  /// no backend call, no bookkeeping.
  [[nodiscard]] std::vector<double> utilities_from(
      const federation::FederationMetrics& metrics,
      const std::vector<int>& shares) const;

  [[nodiscard]] const std::vector<Baseline>& baselines() const {
    return baselines_;
  }

 private:
  [[nodiscard]] int best_response(std::size_t i, std::vector<int> shares);

  /// Evaluates `shares` as a batch of one, absorbing typed errors: returns
  /// false on failure (counting it and marking the run degraded), true with
  /// `out` filled on success. Successful metrics are remembered as
  /// last-known-good.
  bool try_evaluate(const std::vector<int>& shares,
                    federation::FederationMetrics& out);

  /// Folds one EvalResult into the game's bookkeeping (failure counters,
  /// degraded flag, last-known-good metrics). Always called on the game's
  /// own thread, in request-submission order, so runs are bit-identical at
  /// any --threads value.
  bool apply_result(federation::EvalResult&& result,
                    federation::FederationMetrics& out);

  /// Metrics for `shares`, substituting last-known-good metrics (marked
  /// degraded) when the evaluation fails. Throws kBackendUnavailable only
  /// when no evaluation has ever succeeded.
  [[nodiscard]] federation::FederationMetrics metrics_or_last_good(
      const std::vector<int>& shares);

  federation::FederationConfig config_;
  PriceConfig prices_;
  UtilityParams utility_;
  federation::PerformanceBackend& backend_;
  GameOptions options_;
  std::vector<Baseline> baselines_;
  federation::FederationMetrics last_good_;
  bool has_last_good_ = false;
  bool degraded_ = false;
  int failed_evaluations_ = 0;
  /// Sum of the chosen best-response utilities in the current round; run()
  /// zeroes it each round and publishes it to the /statusz board as a live
  /// welfare estimate (the exact welfare is computed once, at the end).
  double round_welfare_estimate_ = 0.0;
};

}  // namespace scshare::market
