// Price sweep over the federation-to-public price ratio C^G/C^P
// (paper Sect. V-B, Fig. 7).
//
// For each ratio the sweep (i) runs the repeated game from several initial
// points and keeps, per fairness criterion, the equilibrium with the best
// welfare, and (ii) searches the sharing-vector grid exhaustively for the
// social optimum of each welfare function. Federation efficiency is the
// ratio of the two (see market/fairness.hpp for the proportional-fairness
// convention).
//
// Performance metrics do not depend on prices, so the sweep pre-evaluates
// the whole social-optimum grid as one batch (parallel when the backend has
// an executor attached) and reuses it across every ratio; with a
// CachingBackend the game restarts then cost one backend evaluation per
// distinct sharing vector.
#pragma once

#include <array>
#include <vector>

#include "federation/backend.hpp"
#include "market/fairness.hpp"
#include "market/game.hpp"

namespace scshare::market {

struct SweepOptions {
  std::vector<double> ratios;  ///< C^G/C^P values to evaluate (in (0, 1])
  double public_price = 1.0;   ///< C^P, identical across SCs in the sweep
  /// Game restarts; empty = {all-zero, all-half, all-full}.
  std::vector<std::vector<int>> initial_points;
  GameOptions game;
  /// Stride of the social-optimum grid (1 = exhaustive).
  int optimum_stride = 1;
  UtilityParams utility;
};

struct FairnessOutcome {
  double welfare_ne = 0.0;
  double welfare_opt = 0.0;
  double efficiency = 0.0;
  std::vector<int> ne_shares;
  std::vector<int> opt_shares;
  bool formed = false;  ///< equilibrium has at least one positive share
};

struct SweepPoint {
  double ratio = 0.0;
  std::array<FairnessOutcome, 3> outcomes;  ///< indexed like kAllFairness
  std::vector<GameResult> equilibria;       ///< one per initial point
};

/// Runs the sweep. `backend` should be caching for acceptable cost.
[[nodiscard]] std::vector<SweepPoint> run_price_sweep(
    const federation::FederationConfig& config,
    federation::PerformanceBackend& backend, const SweepOptions& options);

/// Enumerates the sharing-vector grid {0, stride, ...} ^ K (always including
/// each SC's maximum share N_i).
[[nodiscard]] std::vector<std::vector<int>> share_grid(
    const federation::FederationConfig& config, int stride);

}  // namespace scshare::market
