// Discrete Tabu search over an integer strategy domain (paper Sect. IV-B:
// the best-response step of the repeated game uses Tabu search because no
// discrete Tatonnement process is available).
#pragma once

#include <functional>

namespace scshare::market {

struct TabuOptions {
  int distance = 2;        ///< neighborhood radius: candidates x +/- 1..distance
  int tenure = 4;          ///< iterations a visited value stays tabu
  int max_iterations = 32; ///< hard stop
  int stall_limit = 8;     ///< stop after this many non-improving iterations
};

struct TabuResult {
  int best = 0;
  double best_value = 0.0;
  int iterations = 0;       ///< iterations actually executed
  int evaluations = 0;      ///< objective calls
};

/// Maximizes `objective` over the integers [lo, hi], starting from `initial`.
/// The aspiration criterion admits tabu moves that beat the incumbent.
[[nodiscard]] TabuResult tabu_search(int initial, int lo, int hi,
                                     const std::function<double(int)>& objective,
                                     const TabuOptions& options = {});

}  // namespace scshare::market
