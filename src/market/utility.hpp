// SC utility function (paper Eq. (2)):
//
//   U_i = (max(C_i^0 - C_i^S, 0))^2 / (rho_i^S - rho_i^0)^gamma,  gamma in [0,1]
//
// gamma = 0 ("UF0"): pure cost reduction; gamma = 1 ("UF1"): marginal cost
// reduction per unit of utilization increase.
//
// Edge cases (documented in DESIGN.md): a non-participating SC (S_i = 0) has
// utility 0; if the cost reduction is zero the utility is zero regardless of
// the denominator; an (approximately) unchanged utilization is clamped away
// from zero to keep the division well defined under simulation noise.
#pragma once

#include "federation/metrics.hpp"
#include "market/cost.hpp"

namespace scshare::market {

struct UtilityParams {
  double gamma = 0.0;  ///< weight of the utilization increase, in [0, 1]
  /// Minimum utilization increase used in the denominator (guards against
  /// division by ~0 under measurement noise).
  double min_utilization_delta = 1e-6;
};

/// Utility of one SC given its federation metrics and no-sharing baseline.
/// `share` is S_i (0 disables participation and yields utility 0).
/// `power_price`/`num_vms` enable the power-extended cost of Eq. (1); the
/// defaults reproduce the paper exactly.
[[nodiscard]] double sc_utility(const federation::ScMetrics& metrics,
                                const Baseline& baseline, double public_price,
                                double federation_price, int share,
                                const UtilityParams& params,
                                double power_price = 0.0, int num_vms = 0);

/// Utility from precomputed scalars (used by tests and plotting).
[[nodiscard]] double sc_utility_raw(double baseline_cost, double cost,
                                    double baseline_utilization,
                                    double utilization, int share,
                                    const UtilityParams& params);

}  // namespace scshare::market
