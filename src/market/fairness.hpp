// Weighted alpha-fairness welfare (paper Eq. (3)):
//
//   W(alpha) = sum_i S_i * U_i^(1-alpha) / (1-alpha)   (alpha >= 0, != 1)
//   W(1)     = sum_i S_i * log U_i
//
// Three instantiations are evaluated in the paper: alpha = 0 (utilitarian),
// alpha = 1 (proportional fairness), alpha -> infinity (max-min fairness,
// implemented as min_i U_i over participating SCs).
#pragma once

#include <array>
#include <limits>
#include <span>

namespace scshare::market {

enum class Fairness {
  kUtilitarian,   ///< alpha = 0
  kProportional,  ///< alpha = 1
  kMaxMin,        ///< alpha -> infinity
};

inline constexpr std::array<Fairness, 3> kAllFairness = {
    Fairness::kUtilitarian, Fairness::kProportional, Fairness::kMaxMin};

[[nodiscard]] constexpr const char* fairness_name(Fairness f) {
  switch (f) {
    case Fairness::kUtilitarian: return "utilitarian";
    case Fairness::kProportional: return "proportional";
    case Fairness::kMaxMin: return "max-min";
  }
  return "?";
}

/// Welfare of an allocation. Conventions: SCs with S_i = 0 contribute zero
/// weight (and are skipped by the max-min minimum); a participating SC with
/// zero utility makes the proportional welfare -infinity and the max-min
/// welfare zero. Returns 0 when nobody participates.
[[nodiscard]] double welfare(Fairness fairness, std::span<const int> shares,
                             std::span<const double> utilities);

/// Efficiency of an achieved welfare against the social optimum:
/// for utilitarian/max-min the plain ratio (0 when the optimum is 0). The
/// proportional welfare is a weighted *log*-sum, so ratios of W are not
/// scale-meaningful; instead the efficiency compares the weighted geometric
/// mean utilities, exp(W_a / weight_a - W_o / weight_o), where the weights
/// are the total shares of each allocation (0 when the achieved welfare is
/// -infinity or nobody participates). Values are clamped to [0, 1].
[[nodiscard]] double efficiency(Fairness fairness, double achieved,
                                double optimum, double achieved_weight = 1.0,
                                double optimum_weight = 1.0);

}  // namespace scshare::market
