#include "market/utility.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace scshare::market {

double sc_utility_raw(double baseline_cost, double cost,
                      double baseline_utilization, double utilization,
                      int share, const UtilityParams& params) {
  require(params.gamma >= 0.0 && params.gamma <= 1.0,
          "UtilityParams: gamma must lie in [0, 1]");
  if (share <= 0) return 0.0;
  const double reduction = std::max(baseline_cost - cost, 0.0);
  if (reduction == 0.0) return 0.0;
  const double numerator = reduction * reduction;
  if (params.gamma == 0.0) return numerator;
  const double delta_rho = std::max(utilization - baseline_utilization,
                                    params.min_utilization_delta);
  return numerator / std::pow(delta_rho, params.gamma);
}

double sc_utility(const federation::ScMetrics& metrics,
                  const Baseline& baseline, double public_price,
                  double federation_price, int share,
                  const UtilityParams& params, double power_price,
                  int num_vms) {
  const double cost = operating_cost(metrics, public_price, federation_price,
                                     power_price, num_vms);
  return sc_utility_raw(baseline.cost, cost, baseline.utilization,
                        metrics.utilization, share, params);
}

}  // namespace scshare::market
