#include "market/cost.hpp"

#include <cmath>

#include "common/error.hpp"
#include "queueing/no_share_model.hpp"

namespace scshare::market {

void PriceConfig::validate(std::size_t num_scs) const {
  require(public_price.size() == num_scs,
          "PriceConfig: " + std::to_string(public_price.size()) +
              " public prices given for " + std::to_string(num_scs) + " SCs");
  require(std::isfinite(federation_price) && federation_price >= 0.0,
          "PriceConfig: federation_price must be non-negative and finite "
          "(got " + std::to_string(federation_price) + ")");
  require(std::isfinite(power_price) && power_price >= 0.0,
          "PriceConfig: power_price must be non-negative and finite (got " +
              std::to_string(power_price) + ")");
  for (std::size_t i = 0; i < public_price.size(); ++i) {
    const double p = public_price[i];
    require(std::isfinite(p) && p > 0.0,
            "PriceConfig: public_price[" + std::to_string(i) +
                "] must be positive and finite (got " + std::to_string(p) +
                ")");
    require(federation_price <= p,
            "PriceConfig: federation_price " +
                std::to_string(federation_price) +
                " exceeds public_price[" + std::to_string(i) + "] = " +
                std::to_string(p));
  }
}

double operating_cost(const federation::ScMetrics& metrics,
                      double public_price, double federation_price,
                      double power_price, int num_vms) {
  return metrics.forward_rate * public_price +
         (metrics.borrowed - metrics.lent) * federation_price +
         power_price * metrics.utilization * static_cast<double>(num_vms);
}

Baseline compute_baseline(const federation::ScConfig& sc, double public_price,
                          double truncation_epsilon, double power_price) {
  queueing::NoShareParams params;
  params.num_vms = sc.num_vms;
  params.lambda = sc.lambda;
  params.mu = sc.mu;
  params.max_wait = sc.max_wait;
  params.truncation_epsilon = truncation_epsilon;
  const auto solution = queueing::solve_no_share(params);
  Baseline b;
  b.forward_rate = solution.forward_rate;
  b.cost = solution.forward_rate * public_price +
           power_price * solution.utilization *
               static_cast<double>(sc.num_vms);
  b.utilization = solution.utilization;
  return b;
}

std::vector<Baseline> compute_baselines(
    const federation::FederationConfig& config, const PriceConfig& prices) {
  config.validate();
  prices.validate(config.size());
  std::vector<Baseline> baselines;
  baselines.reserve(config.size());
  for (std::size_t i = 0; i < config.size(); ++i) {
    baselines.push_back(compute_baseline(config.scs[i], prices.public_price[i],
                                         config.truncation_epsilon,
                                         prices.power_price));
  }
  return baselines;
}

}  // namespace scshare::market
