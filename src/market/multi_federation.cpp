#include "market/multi_federation.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace scshare::market {

MultiFederationGame::MultiFederationGame(
    federation::FederationConfig base, std::vector<double> federation_prices,
    std::vector<double> public_prices, UtilityParams utility,
    federation::PerformanceBackend& backend, MultiFederationOptions options)
    : base_(std::move(base)),
      federation_prices_(std::move(federation_prices)),
      public_prices_(std::move(public_prices)),
      utility_(utility),
      backend_(backend),
      options_(std::move(options)) {
  base_.validate();
  require(!federation_prices_.empty(),
          "MultiFederationGame: at least one federation required");
  require(public_prices_.size() == base_.size(),
          "MultiFederationGame: one public price per SC required");
  for (std::size_t i = 0; i < base_.size(); ++i) {
    require(public_prices_[i] > 0.0,
            "MultiFederationGame: public prices must be positive");
    for (double g : federation_prices_) {
      require(g >= 0.0 && g <= public_prices_[i],
              "MultiFederationGame: federation prices must lie in "
              "[0, public price]");
    }
    baselines_.push_back(compute_baseline(base_.scs[i], public_prices_[i],
                                          base_.truncation_epsilon));
  }
  if (options_.initial_membership.empty()) {
    // Starting everyone isolated is a coordination trap (joining an empty
    // federation alone never pays). The default studies migration from an
    // existing arrangement: everybody starts in federation 0.
    options_.initial_membership.assign(base_.size(), 0);
  }
  if (options_.initial_shares.empty()) {
    options_.initial_shares.assign(base_.size(), 0);
  }
  require(options_.initial_membership.size() == base_.size() &&
              options_.initial_shares.size() == base_.size(),
          "MultiFederationGame: initial strategy size mismatch");
  for (std::size_t i = 0; i < base_.size(); ++i) {
    const int f = options_.initial_membership[i];
    require(f == kNoFederation ||
                (f >= 0 && f < static_cast<int>(federation_prices_.size())),
            "MultiFederationGame: invalid initial membership");
    require(options_.initial_shares[i] >= 0 &&
                options_.initial_shares[i] <= base_.scs[i].num_vms,
            "MultiFederationGame: invalid initial share");
  }
}

federation::FederationMetrics MultiFederationGame::evaluate(
    const std::vector<int>& membership, const std::vector<int>& shares) {
  std::vector<int> key;
  key.reserve(2 * base_.size());
  key.insert(key.end(), membership.begin(), membership.end());
  key.insert(key.end(), shares.begin(), shares.end());
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  federation::FederationMetrics metrics(base_.size());
  // Isolated SCs: baseline forwarding, no exchange.
  for (std::size_t i = 0; i < base_.size(); ++i) {
    metrics[i].forward_rate = baselines_[i].forward_rate;
    metrics[i].forward_prob =
        baselines_[i].forward_rate / base_.scs[i].lambda;
    metrics[i].utilization = baselines_[i].utilization;
  }
  // Each federation is an independent sub-system; all non-empty federations
  // are submitted as one batch so the backend can evaluate them across
  // worker threads. The results are folded back in federation order on this
  // thread, and the first failure is rethrown — the same surface the old
  // per-federation evaluate() loop had.
  std::vector<std::vector<std::size_t>> groups;
  std::vector<federation::EvalRequest> requests;
  for (int f = 0; f < static_cast<int>(federation_prices_.size()); ++f) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < base_.size(); ++i) {
      if (membership[i] == f) members.push_back(i);
    }
    if (members.empty()) continue;
    federation::EvalRequest request;
    request.config.truncation_epsilon = base_.truncation_epsilon;
    for (std::size_t m : members) {
      request.config.scs.push_back(base_.scs[m]);
      request.config.shares.push_back(shares[m]);
    }
    request.tag = requests.size();
    requests.push_back(std::move(request));
    groups.push_back(std::move(members));
  }
  if (!requests.empty()) {
    auto results = backend_.evaluate_batch(requests);
    for (std::size_t g = 0; g < groups.size(); ++g) {
      federation::EvalResult& result = results[g];
      if (!result.ok) throw result.to_error();
      for (std::size_t local = 0; local < groups[g].size(); ++local) {
        metrics[groups[g][local]] = result.metrics[local];
      }
    }
  }
  return cache_.emplace(std::move(key), std::move(metrics)).first->second;
}

double MultiFederationGame::utility_of(std::size_t i,
                                       const std::vector<int>& membership,
                                       const std::vector<int>& shares) {
  if (membership[i] == kNoFederation) return 0.0;
  const auto metrics = evaluate(membership, shares);
  return sc_utility(metrics[i], baselines_[i], public_prices_[i],
                    federation_prices_[static_cast<std::size_t>(membership[i])],
                    shares[i], utility_);
}

std::pair<int, int> MultiFederationGame::best_response(
    std::size_t i, std::vector<int> membership, std::vector<int> shares) {
  const int current_f = membership[i];
  const int current_s = shares[i];
  const double current_value = utility_of(i, membership, shares);

  int best_f = current_f;
  int best_s = current_s;
  double best_value = current_value;
  for (int f = 0; f < static_cast<int>(federation_prices_.size()); ++f) {
    membership[i] = f;
    for (int s = 0; s <= base_.scs[i].num_vms; ++s) {
      shares[i] = s;
      const double value = utility_of(i, membership, shares);
      if (value > best_value) {
        best_value = value;
        best_f = f;
        best_s = s;
      }
    }
  }

  // Withdrawal: no strategy yields positive utility -> leave.
  if (best_value <= 0.0) return {kNoFederation, 0};
  // Hysteresis against noisy oracles.
  const double threshold =
      current_value * (1.0 + options_.improvement_tolerance) +
      options_.improvement_tolerance * 1e-6;
  if (best_value > threshold) return {best_f, best_s};
  return {current_f, current_s};
}

MultiFederationResult MultiFederationGame::run() {
  MultiFederationResult result;
  std::vector<int> membership = options_.initial_membership;
  std::vector<int> shares = options_.initial_shares;

  for (int round = 1; round <= options_.max_rounds; ++round) {
    bool changed = false;
    for (std::size_t i = 0; i < base_.size(); ++i) {
      const auto [f, s] = best_response(i, membership, shares);
      if (f != membership[i] || s != shares[i]) changed = true;
      membership[i] = f;
      shares[i] = s;
    }
    result.rounds = round;
    result.trajectory.emplace_back(membership, shares);
    if (!changed) {
      result.converged = true;
      break;
    }
    // Cycle detection: the dynamics are deterministic given the memoized
    // oracle, so a repeated joint state will repeat forever.
    const auto seen = std::find(result.trajectory.begin(),
                                result.trajectory.end() - 1,
                                result.trajectory.back());
    if (seen != result.trajectory.end() - 1) break;
  }

  result.membership = membership;
  result.shares = shares;
  result.utilities.resize(base_.size());
  for (std::size_t i = 0; i < base_.size(); ++i) {
    result.utilities[i] = utility_of(i, membership, shares);
  }
  return result;
}

}  // namespace scshare::market
