#include "market/tabu.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace scshare::market {

TabuResult tabu_search(int initial, int lo, int hi,
                       const std::function<double(int)>& objective,
                       const TabuOptions& options) {
  require(lo <= hi, "tabu_search: empty domain");
  require(options.distance >= 1 && options.tenure >= 0 &&
              options.max_iterations >= 1,
          "tabu_search: invalid options");
  const int start = std::clamp(initial, lo, hi);

  // tabu_until[x - lo] = iteration index until which x is tabu.
  std::vector<int> tabu_until(static_cast<std::size_t>(hi - lo + 1), -1);

  TabuResult result;
  result.best = start;
  result.best_value = objective(start);
  result.evaluations = 1;

  int current = start;
  int stall = 0;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    tabu_until[static_cast<std::size_t>(current - lo)] = iter + options.tenure;

    int best_neighbor = current;
    double best_neighbor_value = -std::numeric_limits<double>::infinity();
    for (int d = 1; d <= options.distance; ++d) {
      for (const int candidate : {current - d, current + d}) {
        if (candidate < lo || candidate > hi) continue;
        const bool is_tabu =
            tabu_until[static_cast<std::size_t>(candidate - lo)] > iter;
        const double value = objective(candidate);
        ++result.evaluations;
        // Aspiration: a tabu candidate is admissible if it beats the best.
        if (is_tabu && value <= result.best_value) continue;
        if (value > best_neighbor_value) {
          best_neighbor_value = value;
          best_neighbor = candidate;
        }
      }
    }
    if (best_neighbor == current) break;  // neighborhood exhausted (all tabu)

    current = best_neighbor;
    if (best_neighbor_value > result.best_value) {
      result.best_value = best_neighbor_value;
      result.best = current;
      stall = 0;
    } else if (++stall >= options.stall_limit) {
      break;
    }
  }
  return result;
}

}  // namespace scshare::market
