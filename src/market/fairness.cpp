#include "market/fairness.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace scshare::market {

double welfare(Fairness fairness, std::span<const int> shares,
               std::span<const double> utilities) {
  require(shares.size() == utilities.size(),
          "welfare: shares/utilities size mismatch");
  bool any_participant = false;
  double total = 0.0;
  double minimum = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < shares.size(); ++i) {
    if (shares[i] <= 0) continue;
    any_participant = true;
    const double u = utilities[i];
    const double w = static_cast<double>(shares[i]);
    switch (fairness) {
      case Fairness::kUtilitarian:
        total += w * u;
        break;
      case Fairness::kProportional:
        if (u <= 0.0) return -std::numeric_limits<double>::infinity();
        total += w * std::log(u);
        break;
      case Fairness::kMaxMin:
        minimum = std::min(minimum, u);
        break;
    }
  }
  if (!any_participant) return 0.0;
  return fairness == Fairness::kMaxMin ? minimum : total;
}

double efficiency(Fairness fairness, double achieved, double optimum,
                  double achieved_weight, double optimum_weight) {
  double e = 0.0;
  if (fairness == Fairness::kProportional) {
    // Compare weighted geometric-mean utilities: exp(W / total shares).
    // Scale-correct for a log welfare and defined for either sign of W.
    if (std::isinf(achieved) || std::isinf(optimum)) return 0.0;
    if (achieved_weight <= 0.0 || optimum_weight <= 0.0) return 0.0;
    e = std::exp(achieved / achieved_weight - optimum / optimum_weight);
  } else {
    if (optimum <= 0.0) return 0.0;
    e = achieved / optimum;
  }
  return std::clamp(e, 0.0, 1.0);
}

}  // namespace scshare::market
