// Multi-federation membership game (paper Sect. VII lists participation in
// multiple federations as future work; this module implements the natural
// first model: each SC chooses WHICH federation to join — or none — and how
// many VMs to share there).
//
// Each federation has its own internal price C^G_f. An SC's strategy is the
// pair (federation, share); utilities follow Eq. (2) with the cost of
// Eq. (1) evaluated inside the chosen federation (members only). The
// dynamics are sequential best responses with the same hysteresis /
// withdrawal rules as the single-federation game.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "federation/backend.hpp"
#include "federation/config.hpp"
#include "market/cost.hpp"
#include "market/utility.hpp"

namespace scshare::market {

/// Index of "no federation".
inline constexpr int kNoFederation = -1;

struct MultiFederationOptions {
  int max_rounds = 32;
  /// Relative utility gain required before an SC changes its strategy.
  double improvement_tolerance = 1e-9;
  /// Initial membership per SC (all in federation 0 by default — starting
  /// isolated is a coordination trap) and initial shares (0 by default).
  std::vector<int> initial_membership;
  std::vector<int> initial_shares;
};

struct MultiFederationResult {
  std::vector<int> membership;   ///< federation index or kNoFederation
  std::vector<int> shares;       ///< S_i within the chosen federation
  std::vector<double> utilities;
  int rounds = 0;
  bool converged = false;
  /// membership/share vectors after each round.
  std::vector<std::pair<std::vector<int>, std::vector<int>>> trajectory;
};

class MultiFederationGame {
 public:
  /// `federation_prices[f]` is C^G of federation f; `public_prices[i]` is
  /// C^P_i. `backend` must NOT be a CachingBackend (the member sets change
  /// between evaluations; this class memoizes internally by membership and
  /// shares).
  MultiFederationGame(federation::FederationConfig base,
                      std::vector<double> federation_prices,
                      std::vector<double> public_prices,
                      UtilityParams utility,
                      federation::PerformanceBackend& backend,
                      MultiFederationOptions options = {});

  [[nodiscard]] MultiFederationResult run();

  /// Utility of SC i under an explicit joint strategy.
  [[nodiscard]] double utility_of(std::size_t i,
                                  const std::vector<int>& membership,
                                  const std::vector<int>& shares);

  [[nodiscard]] std::size_t evaluations() const { return cache_.size(); }

 private:
  /// Metrics of every SC under the joint strategy (isolated SCs get their
  /// baseline forwarding and zero lending/borrowing).
  [[nodiscard]] federation::FederationMetrics evaluate(
      const std::vector<int>& membership, const std::vector<int>& shares);

  /// Best (federation, share) response for SC i.
  [[nodiscard]] std::pair<int, int> best_response(
      std::size_t i, std::vector<int> membership, std::vector<int> shares);

  federation::FederationConfig base_;
  std::vector<double> federation_prices_;
  std::vector<double> public_prices_;
  UtilityParams utility_;
  federation::PerformanceBackend& backend_;
  MultiFederationOptions options_;
  std::vector<Baseline> baselines_;  ///< baseline at each SC's public price
  /// Memo keyed by the flattened (membership, shares) vector.
  std::map<std::vector<int>, federation::FederationMetrics> cache_;
};

}  // namespace scshare::market
