// Operating-cost metric of an SC (paper Eq. (1)) and the no-sharing baseline
// used by the utility function.
#pragma once

#include <vector>

#include "federation/config.hpp"
#include "federation/metrics.hpp"

namespace scshare::market {

/// Prices faced by the federation (paper Sect. II-B): a per-SC public-cloud
/// price C_i^P and one federation-wide price C^G for shared VMs, with
/// C^G <= C_i^P.
struct PriceConfig {
  std::vector<double> public_price;  ///< C_i^P per SC
  double federation_price = 0.0;     ///< C^G, identical across SCs
  /// Optional power/operating cost per busy VM per second (the paper lists
  /// power consumption as a future extension of Eq. (1); 0 reproduces the
  /// paper's cost exactly).
  double power_price = 0.0;

  void validate(std::size_t num_scs) const;
};

/// Net operating cost of SC i (Eq. (1), optionally extended with power):
///   C_i = P̄_i * C_i^P + (Ō_i - Ī_i) * C^G + c_pw * rho_i * N_i.
/// The power term charges for every busy VM, including VMs lent to peers
/// (the lender pays the electricity, the C^G revenue compensates).
/// Negative values mean the SC earns more from lending than it spends.
[[nodiscard]] double operating_cost(const federation::ScMetrics& metrics,
                                    double public_price,
                                    double federation_price,
                                    double power_price = 0.0,
                                    int num_vms = 0);

/// No-sharing baseline of one SC: cost C_i^0 = P̄_i^0 * C_i^P and
/// utilization rho_i^0, computed from the standalone model of Sect. III-A.
struct Baseline {
  double cost = 0.0;         ///< C_i^0
  double utilization = 0.0;  ///< rho_i^0
  double forward_rate = 0.0; ///< P̄_i^0
};

[[nodiscard]] Baseline compute_baseline(const federation::ScConfig& sc,
                                        double public_price,
                                        double truncation_epsilon = 1e-9,
                                        double power_price = 0.0);

/// Baselines for every SC of a federation.
[[nodiscard]] std::vector<Baseline> compute_baselines(
    const federation::FederationConfig& config, const PriceConfig& prices);

}  // namespace scshare::market
