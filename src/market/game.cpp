#include "market/game.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace scshare::market {
namespace {

struct GameObs {
  obs::Counter& runs;
  obs::Counter& rounds;
  obs::Counter& best_responses;
  obs::Counter& share_changes;
  obs::Counter& converged;
  obs::Histogram& seconds;

  GameObs()
      : runs(obs::MetricsRegistry::global().counter("market.game.runs")),
        rounds(obs::MetricsRegistry::global().counter("market.game.rounds")),
        best_responses(obs::MetricsRegistry::global().counter(
            "market.game.best_responses")),
        share_changes(obs::MetricsRegistry::global().counter(
            "market.game.share_changes")),
        converged(
            obs::MetricsRegistry::global().counter("market.game.converged")),
        seconds(
            obs::MetricsRegistry::global().histogram("market.game.seconds")) {}
};

GameObs& game_obs() {
  static GameObs instruments;
  return instruments;
}

}  // namespace

Game::Game(federation::FederationConfig config, PriceConfig prices,
           UtilityParams utility, federation::PerformanceBackend& backend,
           GameOptions options)
    : config_(std::move(config)),
      prices_(std::move(prices)),
      utility_(utility),
      backend_(backend),
      options_(std::move(options)) {
  config_.validate();
  prices_.validate(config_.size());
  baselines_ = compute_baselines(config_, prices_);
  if (options_.initial_shares.empty()) {
    options_.initial_shares.assign(config_.size(), 0);
  }
  require(options_.initial_shares.size() == config_.size(),
          "GameOptions: initial_shares size mismatch");
  for (std::size_t i = 0; i < config_.size(); ++i) {
    require(options_.initial_shares[i] >= 0 &&
                options_.initial_shares[i] <= config_.scs[i].num_vms,
            "GameOptions: initial share out of range");
  }
}

double Game::utility_of(std::size_t i, const std::vector<int>& shares) {
  federation::FederationConfig cfg = config_;
  cfg.shares = shares;
  const auto metrics = backend_.evaluate(cfg);
  return sc_utility(metrics[i], baselines_[i], prices_.public_price[i],
                    prices_.federation_price, shares[i], utility_,
                    prices_.power_price, config_.scs[i].num_vms);
}

std::vector<double> Game::utilities_of(const std::vector<int>& shares) {
  federation::FederationConfig cfg = config_;
  cfg.shares = shares;
  const auto metrics = backend_.evaluate(cfg);
  std::vector<double> utilities(config_.size());
  for (std::size_t i = 0; i < config_.size(); ++i) {
    utilities[i] =
        sc_utility(metrics[i], baselines_[i], prices_.public_price[i],
                   prices_.federation_price, shares[i], utility_,
                   prices_.power_price, config_.scs[i].num_vms);
  }
  return utilities;
}

int Game::best_response(std::size_t i, std::vector<int> shares) {
  const int current = shares[i];
  const int hi = config_.scs[i].num_vms;
  const auto objective = [&](int share) {
    shares[i] = share;
    return utility_of(i, shares);
  };

  int best = current;
  const double current_value = objective(current);
  double best_value = current_value;
  if (options_.method == BestResponseMethod::kExhaustive) {
    for (int s = 0; s <= hi; ++s) {
      if (s == current) continue;
      const double v = objective(s);
      if (v > best_value) {
        best_value = v;
        best = s;
      }
    }
  } else {
    // Tabu search, started from the SC's current share.
    const auto result =
        tabu_search(current, 0, hi, objective, options_.tabu);
    best = result.best;
    best_value = result.best_value;
  }

  GameObs& instruments = game_obs();
  instruments.best_responses.add();

  // Sharing without benefit is weakly dominated by leaving the federation
  // (utility 0 either way, but participation carries oversight costs), so an
  // SC whose every option yields zero utility withdraws.
  int chosen;
  double chosen_value;
  if (best_value <= 0.0) {
    chosen = 0;
    chosen_value = 0.0;
  } else {
    // Hysteresis: stay put unless the improvement is material.
    const double threshold =
        current_value * (1.0 + options_.improvement_tolerance) +
        options_.improvement_tolerance * 1e-6;
    chosen = best_value > threshold ? best : current;
    chosen_value = chosen == best ? best_value : current_value;
  }
  if (chosen != current) instruments.share_changes.add();
  if (auto* sink = obs::trace_sink()) {
    sink->emit(obs::BestResponseEvent{static_cast<int>(i), current, chosen,
                                      current_value, chosen_value});
  }
  return chosen;
}

GameResult Game::run() {
  GameObs& instruments = game_obs();
  const obs::ScopedTimer timer(&instruments.seconds);
  instruments.runs.add();

  GameResult result;
  std::vector<int> shares = options_.initial_shares;

  for (int round = 1; round <= options_.max_rounds; ++round) {
    std::vector<int> next;
    if (options_.update_rule == UpdateRule::kSimultaneous) {
      // All SCs respond to the previous round (literal Algorithm 1).
      next.resize(shares.size());
      for (std::size_t i = 0; i < shares.size(); ++i) {
        next[i] = best_response(i, shares);
      }
    } else {
      // Sequential: each SC sees the responses of the SCs before it.
      next = shares;
      for (std::size_t i = 0; i < shares.size(); ++i) {
        next[i] = best_response(i, next);
      }
    }
    result.rounds = round;
    result.trajectory.push_back(next);
    instruments.rounds.add();
    if (auto* sink = obs::trace_sink()) {
      sink->emit(obs::EquilibriumRoundEvent{round, next, next != shares});
    }
    if (next == shares) {
      result.converged = true;
      shares = std::move(next);
      break;
    }
    // Cycle detection: revisiting an earlier vector means the best-response
    // dynamics oscillate; keep the best-welfare vector seen so far by
    // falling back to the last state (reported as non-converged).
    const bool seen =
        std::find(result.trajectory.begin(), result.trajectory.end() - 1,
                  next) != result.trajectory.end() - 1;
    shares = std::move(next);
    if (seen) break;
  }

  if (result.converged) instruments.converged.add();
  result.shares = shares;
  result.utilities = utilities_of(shares);
  federation::FederationConfig cfg = config_;
  cfg.shares = shares;
  const auto metrics = backend_.evaluate(cfg);
  result.costs.resize(config_.size());
  for (std::size_t i = 0; i < config_.size(); ++i) {
    result.costs[i] = operating_cost(metrics[i], prices_.public_price[i],
                                     prices_.federation_price,
                                     prices_.power_price,
                                     config_.scs[i].num_vms);
  }
  return result;
}

}  // namespace scshare::market
