#include "market/game.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/status.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace scshare::market {
namespace {

struct GameObs {
  obs::Counter& runs;
  obs::Counter& rounds;
  obs::Counter& best_responses;
  obs::Counter& share_changes;
  obs::Counter& converged;
  obs::Counter& eval_failures;
  obs::Counter& degraded_runs;
  obs::Counter& cancelled_runs;
  obs::Histogram& seconds;

  GameObs()
      : runs(obs::MetricsRegistry::global().counter("market.game.runs")),
        rounds(obs::MetricsRegistry::global().counter("market.game.rounds")),
        best_responses(obs::MetricsRegistry::global().counter(
            "market.game.best_responses")),
        share_changes(obs::MetricsRegistry::global().counter(
            "market.game.share_changes")),
        converged(
            obs::MetricsRegistry::global().counter("market.game.converged")),
        eval_failures(obs::MetricsRegistry::global().counter(
            "market.game.eval_failures")),
        degraded_runs(obs::MetricsRegistry::global().counter(
            "market.game.degraded_runs")),
        cancelled_runs(obs::MetricsRegistry::global().counter(
            "market.game.cancelled_runs")),
        seconds(
            obs::MetricsRegistry::global().histogram("market.game.seconds")) {}
};

GameObs& game_obs() {
  static GameObs instruments;
  return instruments;
}

}  // namespace

Game::Game(federation::FederationConfig config, PriceConfig prices,
           UtilityParams utility, federation::PerformanceBackend& backend,
           GameOptions options)
    : config_(std::move(config)),
      prices_(std::move(prices)),
      utility_(utility),
      backend_(backend),
      options_(std::move(options)) {
  config_.validate();
  prices_.validate(config_.size());
  baselines_ = compute_baselines(config_, prices_);
  if (options_.initial_shares.empty()) {
    options_.initial_shares.assign(config_.size(), 0);
  }
  require(options_.initial_shares.size() == config_.size(),
          "GameOptions: initial_shares size mismatch");
  for (std::size_t i = 0; i < config_.size(); ++i) {
    require(options_.initial_shares[i] >= 0 &&
                options_.initial_shares[i] <= config_.scs[i].num_vms,
            "GameOptions: initial share out of range");
  }
}

bool Game::apply_result(federation::EvalResult&& result,
                        federation::FederationMetrics& out) {
  if (!result.ok) {
    ++failed_evaluations_;
    degraded_ = true;
    game_obs().eval_failures.add();
    return false;
  }
  out = std::move(result.metrics);
  if (out.degraded()) degraded_ = true;
  last_good_ = out;
  has_last_good_ = true;
  return true;
}

bool Game::try_evaluate(const std::vector<int>& shares,
                        federation::FederationMetrics& out) {
  federation::EvalRequest request;
  request.config = config_;
  request.config.shares = shares;
  auto results = backend_.evaluate_batch({&request, 1});
  return apply_result(std::move(results.front()), out);
}

federation::FederationMetrics Game::metrics_or_last_good(
    const std::vector<int>& shares) {
  federation::FederationMetrics metrics;
  if (try_evaluate(shares, metrics)) return metrics;
  if (!has_last_good_) {
    // No partial result to degrade to. Distinguish "cancelled before
    // anything succeeded" (serve maps it to 504 without a body) from a
    // genuinely unavailable backend.
    throw_if_cancelled("Game");
    throw Error("no successful evaluation to fall back on",
                ErrorCode::kBackendUnavailable, "Game");
  }
  metrics = last_good_;
  metrics.mark_degraded("evaluation failed; reusing last-known-good metrics");
  return metrics;
}

double Game::utility_of(std::size_t i, const std::vector<int>& shares) {
  federation::FederationMetrics metrics;
  if (!try_evaluate(shares, metrics)) {
    // Candidate unevaluable: report it as maximally unattractive so search
    // loops skip it rather than abort.
    return -std::numeric_limits<double>::infinity();
  }
  return sc_utility(metrics[i], baselines_[i], prices_.public_price[i],
                    prices_.federation_price, shares[i], utility_,
                    prices_.power_price, config_.scs[i].num_vms);
}

std::vector<double> Game::utilities_of(const std::vector<int>& shares) {
  return utilities_from(metrics_or_last_good(shares), shares);
}

std::vector<double> Game::utilities_from(
    const federation::FederationMetrics& metrics,
    const std::vector<int>& shares) const {
  std::vector<double> utilities(config_.size());
  for (std::size_t i = 0; i < config_.size(); ++i) {
    utilities[i] =
        sc_utility(metrics[i], baselines_[i], prices_.public_price[i],
                   prices_.federation_price, shares[i], utility_,
                   prices_.power_price, config_.scs[i].num_vms);
  }
  return utilities;
}

int Game::best_response(std::size_t i, std::vector<int> shares) {
  const obs::Span span("game.best_response");
  const int current = shares[i];
  const int hi = config_.scs[i].num_vms;

  int best = current;
  double current_value;
  double best_value;
  if (options_.method == BestResponseMethod::kExhaustive) {
    // All candidates submitted as one batch so the backend can fan out
    // across worker threads. The candidate order — current first (its
    // utility is the hysteresis reference), then 0..hi — matches the old
    // serial scan, and the reduction below runs on this thread in that
    // fixed order, so the outcome is bit-identical at any thread count.
    std::vector<int> candidates;
    candidates.reserve(static_cast<std::size_t>(hi) + 1);
    candidates.push_back(current);
    for (int s = 0; s <= hi; ++s) {
      if (s != current) candidates.push_back(s);
    }
    std::vector<federation::EvalRequest> requests(candidates.size());
    for (std::size_t k = 0; k < candidates.size(); ++k) {
      requests[k].config = config_;
      requests[k].config.shares = shares;
      requests[k].config.shares[i] = candidates[k];
      requests[k].tag = k;
    }
    auto results = backend_.evaluate_batch(requests);
    current_value = -std::numeric_limits<double>::infinity();
    best_value = current_value;
    for (std::size_t k = 0; k < candidates.size(); ++k) {
      federation::FederationMetrics metrics;
      double v = -std::numeric_limits<double>::infinity();
      if (apply_result(std::move(results[k]), metrics)) {
        v = sc_utility(metrics[i], baselines_[i], prices_.public_price[i],
                       prices_.federation_price, candidates[k], utility_,
                       prices_.power_price, config_.scs[i].num_vms);
      }
      if (k == 0) {
        current_value = v;
        best_value = v;
      } else if (v > best_value) {
        best_value = v;
        best = candidates[k];
      }
    }
  } else {
    // Tabu search, started from the SC's current share. Inherently
    // sequential (each move depends on the previous objective), so it stays
    // on the single-evaluation path.
    const auto objective = [&](int share) {
      shares[i] = share;
      return utility_of(i, shares);
    };
    current_value = objective(current);
    const auto result = tabu_search(current, 0, hi, objective, options_.tabu);
    best = result.best;
    best_value = result.best_value;
  }

  GameObs& instruments = game_obs();
  instruments.best_responses.add();

  // Sharing without benefit is weakly dominated by leaving the federation
  // (utility 0 either way, but participation carries oversight costs), so an
  // SC whose every option yields zero utility withdraws.
  int chosen;
  double chosen_value;
  if (!std::isfinite(best_value)) {
    // Every candidate (including the current share) failed to evaluate:
    // keep the current share rather than spuriously withdrawing — there is
    // no evidence the current choice stopped being the best response.
    chosen = current;
    chosen_value = current_value;
  } else if (best_value <= 0.0) {
    chosen = 0;
    chosen_value = 0.0;
  } else {
    // Hysteresis: stay put unless the improvement is material.
    const double threshold =
        current_value * (1.0 + options_.improvement_tolerance) +
        options_.improvement_tolerance * 1e-6;
    chosen = best_value > threshold ? best : current;
    chosen_value = chosen == best ? best_value : current_value;
  }
  if (chosen != current) instruments.share_changes.add();
  if (std::isfinite(chosen_value)) round_welfare_estimate_ += chosen_value;
  if (auto* sink = obs::trace_sink()) {
    sink->emit(obs::BestResponseEvent{static_cast<int>(i), current, chosen,
                                      current_value, chosen_value});
  }
  return chosen;
}

GameResult Game::run() {
  const obs::Span span("game.run");
  GameObs& instruments = game_obs();
  const obs::ScopedTimer timer(&instruments.seconds);
  instruments.runs.add();

  GameResult result;
  degraded_ = false;
  failed_evaluations_ = 0;
  std::vector<int> shares = options_.initial_shares;

  obs::StatusBoard& board = obs::StatusBoard::global();
  board.set("game.max_rounds", options_.max_rounds);
  board.set("game.converged", false);

  for (int round = 1; round <= options_.max_rounds; ++round) {
    // Deadline/drain poll between rounds: a cancelled run stops improving
    // and falls through to the partial-result path below, where the final
    // evaluation substitutes last-known-good metrics if it too is refused.
    if (current_cancel_token().cancelled()) {
      result.cancelled = true;
      degraded_ = true;
      instruments.cancelled_runs.add();
      obs::log_warn("market", "game run cancelled; returning partial result",
                    {obs::field("round", round)});
      break;
    }
    // Fresh correlation id per round: every log line, JSONL trace event, and
    // profiler span produced while this round runs (including from pool
    // workers — parallel_for propagates the id) carries the same ctx, so one
    // grep reconstructs the round across components.
    const obs::ScopedCorrelation round_ctx(obs::next_correlation_id());
    const obs::Span round_span("game.round");
    obs::log_debug("market", "game round starting",
                   {obs::field("round", round)});
    round_welfare_estimate_ = 0.0;
    std::vector<int> next;
    if (options_.update_rule == UpdateRule::kSimultaneous) {
      // All SCs respond to the previous round (literal Algorithm 1).
      next.resize(shares.size());
      for (std::size_t i = 0; i < shares.size(); ++i) {
        next[i] = best_response(i, shares);
      }
    } else {
      // Sequential: each SC sees the responses of the SCs before it.
      next = shares;
      for (std::size_t i = 0; i < shares.size(); ++i) {
        next[i] = best_response(i, next);
      }
    }
    result.rounds = round;
    result.trajectory.push_back(next);
    instruments.rounds.add();
    board.set("game.round", round);
    board.set("game.shares", next);
    board.set("game.welfare_estimate", round_welfare_estimate_);
    board.set("game.degraded", degraded_);
    if (auto* sink = obs::trace_sink()) {
      sink->emit(obs::EquilibriumRoundEvent{round, next, next != shares});
    }
    if (next == shares) {
      result.converged = true;
      shares = std::move(next);
      break;
    }
    // Cycle detection: revisiting an earlier vector means the best-response
    // dynamics oscillate; keep the best-welfare vector seen so far by
    // falling back to the last state (reported as non-converged).
    const bool seen =
        std::find(result.trajectory.begin(), result.trajectory.end() - 1,
                  next) != result.trajectory.end() - 1;
    shares = std::move(next);
    if (seen) break;
  }

  if (result.converged) instruments.converged.add();
  result.shares = shares;
  // One evaluation serves both utilities and costs; if it fails the
  // last-known-good metrics stand in (marked degraded).
  const auto metrics = metrics_or_last_good(shares);
  if (metrics.degraded()) degraded_ = true;
  result.utilities.resize(config_.size());
  result.costs.resize(config_.size());
  for (std::size_t i = 0; i < config_.size(); ++i) {
    result.utilities[i] =
        sc_utility(metrics[i], baselines_[i], prices_.public_price[i],
                   prices_.federation_price, shares[i], utility_,
                   prices_.power_price, config_.scs[i].num_vms);
    result.costs[i] = operating_cost(metrics[i], prices_.public_price[i],
                                     prices_.federation_price,
                                     prices_.power_price,
                                     config_.scs[i].num_vms);
  }
  result.degraded = degraded_ || result.cancelled;
  result.failed_evaluations = failed_evaluations_;
  if (result.degraded) instruments.degraded_runs.add();

  double welfare = 0.0;
  for (double u : result.utilities) welfare += u;
  board.set("game.converged", result.converged);
  board.set("game.welfare", welfare);
  board.set("game.degraded", result.degraded);
  return result;
}

}  // namespace scshare::market
