#include "market/sweep.hpp"

#include <algorithm>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/timer.hpp"

namespace scshare::market {

std::vector<std::vector<int>> share_grid(
    const federation::FederationConfig& config, int stride) {
  require(stride >= 1, "share_grid: stride must be >= 1");
  std::vector<std::vector<int>> per_sc_values;
  for (const auto& sc : config.scs) {
    std::vector<int> values;
    for (int s = 0; s < sc.num_vms; s += stride) values.push_back(s);
    values.push_back(sc.num_vms);
    per_sc_values.push_back(std::move(values));
  }
  std::vector<std::vector<int>> grid;
  std::vector<std::size_t> odometer(config.size(), 0);
  for (;;) {
    std::vector<int> point(config.size());
    for (std::size_t i = 0; i < config.size(); ++i) {
      point[i] = per_sc_values[i][odometer[i]];
    }
    grid.push_back(std::move(point));
    std::size_t i = 0;
    while (i < config.size() && ++odometer[i] == per_sc_values[i].size()) {
      odometer[i] = 0;
      ++i;
    }
    if (i == config.size()) break;
  }
  return grid;
}

std::vector<SweepPoint> run_price_sweep(
    const federation::FederationConfig& config,
    federation::PerformanceBackend& backend, const SweepOptions& options) {
  const obs::Span span("sweep.run");
  config.validate();
  require(!options.ratios.empty(), "SweepOptions: no ratios given");
  for (double r : options.ratios) {
    require(r > 0.0 && r <= 1.0, "SweepOptions: ratios must lie in (0, 1]");
  }

  std::vector<std::vector<int>> initials = options.initial_points;
  if (initials.empty()) {
    std::vector<int> zero(config.size(), 0);
    std::vector<int> half(config.size());
    std::vector<int> full(config.size());
    for (std::size_t i = 0; i < config.size(); ++i) {
      half[i] = config.scs[i].num_vms / 2;
      full[i] = config.scs[i].num_vms;
    }
    initials = {zero, half, full};
  }

  const auto grid = share_grid(config, options.optimum_stride);

  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& points_counter =
      registry.counter("market.sweep.points");
  static obs::Counter& grid_counter =
      registry.counter("market.sweep.grid_evaluations");
  static obs::Histogram& sweep_seconds =
      registry.histogram("market.sweep.seconds");
  const obs::ScopedTimer timer(&sweep_seconds);

  // Pre-evaluate the whole grid as one batch: performance metrics depend
  // only on the sharing vector, never on prices, so a single fan-out serves
  // the social-optimum scan of every ratio and fairness function — and,
  // through a caching backend, warms the cache for the equilibrium games
  // below. A point that fails to evaluate is simply excluded from the
  // optimum scan (its welfare is unknowable, not zero).
  std::vector<federation::EvalRequest> grid_requests(grid.size());
  for (std::size_t k = 0; k < grid.size(); ++k) {
    grid_requests[k].config = config;
    grid_requests[k].config.shares = grid[k];
    grid_requests[k].tag = k;
  }
  std::vector<federation::EvalResult> grid_results;
  {
    const obs::Span grid_span("sweep.grid_eval");
    grid_results = backend.evaluate_batch(grid_requests);
  }
  grid_counter.add(grid.size());

  std::vector<SweepPoint> points;
  points.reserve(options.ratios.size());
  for (double ratio : options.ratios) {
    // A sweep spans many games; poll between ratio points so a deadline
    // abandons the remaining grid rather than finishing it. (Within a point,
    // Game::run and the solver loops carry their own checks.)
    throw_if_cancelled("run_price_sweep");
    const obs::Span point_span("sweep.point");
    points_counter.add();
    PriceConfig prices;
    prices.public_price.assign(config.size(), options.public_price);
    prices.federation_price = ratio * options.public_price;

    SweepPoint point;
    point.ratio = ratio;

    Game game(config, prices, options.utility, backend, options.game);

    // Equilibria from every initial point.
    for (const auto& initial : initials) {
      GameOptions game_options = options.game;
      game_options.initial_shares = initial;
      Game g(config, prices, options.utility, backend, game_options);
      point.equilibria.push_back(g.run());
    }

    // Social optimum over the share grid, per fairness function. Utilities
    // are recomputed per ratio (prices change) from the pre-evaluated batch;
    // no backend call happens here.
    for (std::size_t f = 0; f < kAllFairness.size(); ++f) {
      FairnessOutcome& outcome = point.outcomes[f];
      outcome.welfare_opt = -std::numeric_limits<double>::infinity();
      for (std::size_t k = 0; k < grid.size(); ++k) {
        if (!grid_results[k].ok) continue;
        const auto utilities =
            game.utilities_from(grid_results[k].metrics, grid[k]);
        const double w = welfare(kAllFairness[f], grid[k], utilities);
        if (w > outcome.welfare_opt) {
          outcome.welfare_opt = w;
          outcome.opt_shares = grid[k];
        }
      }
      // Best equilibrium for this fairness function.
      outcome.welfare_ne = -std::numeric_limits<double>::infinity();
      for (const auto& eq : point.equilibria) {
        const double w = welfare(kAllFairness[f], eq.shares, eq.utilities);
        if (w > outcome.welfare_ne) {
          outcome.welfare_ne = w;
          outcome.ne_shares = eq.shares;
        }
      }
      outcome.formed =
          std::any_of(outcome.ne_shares.begin(), outcome.ne_shares.end(),
                      [](int s) { return s > 0; });
      const auto total_shares = [](const std::vector<int>& shares) {
        double total = 0.0;
        for (int s : shares) total += static_cast<double>(s);
        return total;
      };
      outcome.efficiency =
          outcome.formed
              ? efficiency(kAllFairness[f], outcome.welfare_ne,
                           outcome.welfare_opt,
                           total_shares(outcome.ne_shares),
                           total_shares(outcome.opt_shares))
              : 0.0;
    }
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace scshare::market
