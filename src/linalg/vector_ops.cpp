#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace scshare::linalg {

double sum(std::span<const double> v) {
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc;
}

double l1_norm(std::span<const double> v) {
  double acc = 0.0;
  for (double x : v) acc += std::abs(x);
  return acc;
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "max_abs_diff: size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

void normalize_probability(std::span<double> v) {
  const double total = sum(v);
  require(total > 0.0, "normalize_probability: total mass must be positive");
  for (double& x : v) x /= total;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  require(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void clamp_nonnegative(std::span<double> v, double tol) {
  for (double& x : v) {
    if (x < 0.0) {
      require(x >= -tol, "clamp_nonnegative: significantly negative value");
      x = 0.0;
    }
  }
}

}  // namespace scshare::linalg
