// Compressed-sparse-row matrix used to store CTMC generators and
// uniformized transition matrices.
//
// Matrices are built through `TripletList` (duplicate entries are summed),
// then frozen into an immutable CSR structure optimized for repeated
// mat-vec / vec-mat products.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace scshare::linalg {

/// Coordinate-format builder for sparse matrices.
class TripletList {
 public:
  TripletList(std::size_t rows, std::size_t cols);

  /// Accumulates `value` at (row, col). Duplicates are summed on freeze.
  void add(std::size_t row, std::size_t col, double value);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return entries_.size(); }

  struct Entry {
    std::size_t row;
    std::size_t col;
    double value;
  };
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Entry> entries_;
};

/// Immutable CSR sparse matrix.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from triplets; duplicate (row, col) entries are summed and exact
  /// zeros dropped.
  static CsrMatrix from_triplets(const TripletList& triplets);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

  /// y = A x. Requires x.size() == cols(), y.size() == rows().
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// y = x^T A (row vector times matrix). Requires x.size() == rows(),
  /// y.size() == cols(). This is the product used for distribution updates
  /// pi' = pi P.
  void multiply_transposed(std::span<const double> x,
                           std::span<double> y) const;

  /// Element lookup (binary search within the row); 0 if absent.
  [[nodiscard]] double at(std::size_t row, std::size_t col) const;

  /// Sum of entries in `row`.
  [[nodiscard]] double row_sum(std::size_t row) const;

  /// Access to raw structure (used by solvers).
  [[nodiscard]] std::span<const std::size_t> row_offsets() const {
    return row_offsets_;
  }
  [[nodiscard]] std::span<const std::size_t> col_indices() const {
    return col_indices_;
  }
  [[nodiscard]] std::span<const double> values() const { return values_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_offsets_;  // size rows_ + 1
  std::vector<std::size_t> col_indices_;  // size nnz
  std::vector<double> values_;            // size nnz
};

}  // namespace scshare::linalg
