#include "linalg/csr_matrix.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace scshare::linalg {

TripletList::TripletList(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {}

void TripletList::add(std::size_t row, std::size_t col, double value) {
  SCSHARE_ASSERT(row < rows_ && col < cols_,
                 "TripletList::add: index out of range");
  if (value == 0.0) return;
  entries_.push_back({row, col, value});
}

CsrMatrix CsrMatrix::from_triplets(const TripletList& triplets) {
  CsrMatrix m;
  m.rows_ = triplets.rows();
  m.cols_ = triplets.cols();

  // Sort a copy of the entries by (row, col) and merge duplicates.
  std::vector<TripletList::Entry> sorted = triplets.entries();
  std::sort(sorted.begin(), sorted.end(),
            [](const TripletList::Entry& a, const TripletList::Entry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  m.row_offsets_.assign(m.rows_ + 1, 0);
  m.col_indices_.reserve(sorted.size());
  m.values_.reserve(sorted.size());

  std::size_t i = 0;
  while (i < sorted.size()) {
    const std::size_t row = sorted[i].row;
    const std::size_t col = sorted[i].col;
    double value = 0.0;
    while (i < sorted.size() && sorted[i].row == row && sorted[i].col == col) {
      value += sorted[i].value;
      ++i;
    }
    if (value != 0.0) {
      m.col_indices_.push_back(col);
      m.values_.push_back(value);
      ++m.row_offsets_[row + 1];
    }
  }
  std::partial_sum(m.row_offsets_.begin(), m.row_offsets_.end(),
                   m.row_offsets_.begin());
  return m;
}

void CsrMatrix::multiply(std::span<const double> x,
                         std::span<double> y) const {
  require(x.size() == cols_ && y.size() == rows_,
          "CsrMatrix::multiply: size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      acc += values_[k] * x[col_indices_[k]];
    }
    y[r] = acc;
  }
}

void CsrMatrix::multiply_transposed(std::span<const double> x,
                                    std::span<double> y) const {
  require(x.size() == rows_ && y.size() == cols_,
          "CsrMatrix::multiply_transposed: size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      y[col_indices_[k]] += values_[k] * xr;
    }
  }
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
  require(row < rows_ && col < cols_, "CsrMatrix::at: index out of range");
  const auto begin = col_indices_.begin() +
                     static_cast<std::ptrdiff_t>(row_offsets_[row]);
  const auto end = col_indices_.begin() +
                   static_cast<std::ptrdiff_t>(row_offsets_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_indices_.begin())];
}

double CsrMatrix::row_sum(std::size_t row) const {
  require(row < rows_, "CsrMatrix::row_sum: index out of range");
  double acc = 0.0;
  for (std::size_t k = row_offsets_[row]; k < row_offsets_[row + 1]; ++k) {
    acc += values_[k];
  }
  return acc;
}

}  // namespace scshare::linalg
