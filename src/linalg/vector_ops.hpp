// Dense-vector kernels shared by the Markov solvers.
#pragma once

#include <span>
#include <vector>

namespace scshare::linalg {

/// Sum of all elements.
[[nodiscard]] double sum(std::span<const double> v);

/// L1 norm (sum of absolute values).
[[nodiscard]] double l1_norm(std::span<const double> v);

/// L-infinity norm of (a - b). Requires equal sizes.
[[nodiscard]] double max_abs_diff(std::span<const double> a,
                                  std::span<const double> b);

/// Scales `v` in place so that its elements sum to 1. Requires sum > 0.
void normalize_probability(std::span<double> v);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// Clamps tiny negative round-off values (>= -tol) to zero; throws if a value
/// is more negative than -tol.
void clamp_nonnegative(std::span<double> v, double tol = 1e-12);

}  // namespace scshare::linalg
