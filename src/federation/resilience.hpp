// Resilience decorators for performance backends.
//
// The market game drives thousands of backend evaluations per equilibrium
// search; at production scale some of them will fail — a detailed CTMC blows
// past its state budget, an iterative solver exhausts its iterations, a
// remote evaluation service times out. These decorators make the evaluate
// path survive such failures instead of aborting the whole search:
//
//   RetryingBackend        bounded retries of retryable errors with a
//                          deterministic exponential backoff schedule and an
//                          optional per-attempt deadline,
//   FallbackBackend        ordered tier chain (e.g. detailed -> approx ->
//                          simulation); the first tier that succeeds serves
//                          the evaluation, and per-tier serve counts record
//                          who actually answered,
//   FaultInjectingBackend  seeded, deterministic fault injection (failures,
//                          timeouts, virtual latency, metric perturbation)
//                          for testing the two decorators above and every
//                          consumer of degraded metrics.
//
// All three speak the batch API (see backend.hpp): failures travel inside
// EvalResults, retries resubmit the failed sub-batch, fallback descends the
// still-failing sub-batch tier by tier. Every decorator runs its bookkeeping
// on the calling thread — only the leaf ComputeBackend fans out across
// worker threads — so the decorator behaviour is identical at any thread
// count. The instance counters (retries(), serve_counts(), ...) are atomic,
// making the decorators safe for concurrent callers as well.
//
// Composition convention (Framework::make_backend): per tier
//   Retry(Fault(base))  — faults are injected innermost so retries see them,
// then FallbackBackend across tiers, then CachingBackend outermost so only
// successful evaluations are memoized.
//
// Determinism: FaultInjectingBackend seeds an independent RNG per request
// from (spec.seed, evaluation sequence number) and draws a fixed number of
// uniforms from it, and none of the resilience trace events carry wall-clock
// readings, so two runs with identical seeds produce byte-identical
// fault/retry/fallback event sequences — regardless of --threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "federation/backend.hpp"

namespace scshare::federation {

/// Retry schedule of RetryingBackend.
struct RetryPolicy {
  /// Additional attempts after the first failed one (0 = no retries).
  int max_retries = 2;
  /// Deterministic exponential backoff: attempt k is assigned a backoff of
  /// base_backoff_seconds * backoff_multiplier^k. The backoff is recorded in
  /// metrics and trace events; the evaluate path does not sleep (the
  /// backends are CPU-bound library calls, not remote services — the
  /// schedule exists so a deployment wrapping remote backends can honor it).
  double base_backoff_seconds = 0.01;
  double backoff_multiplier = 2.0;
  /// Per-attempt deadline in wall seconds; an attempt that completes but
  /// took longer is treated as ErrorCode::kTimeout and retried. 0 disables
  /// the deadline (keeps runs deterministic).
  double attempt_deadline_seconds = 0.0;
};

/// Retries retryable failures (see is_retryable()) of the inner backend.
/// Non-retryable failures (kInvalidConfig, kGeneric) stay failed without a
/// retry. A request whose retries are exhausted keeps its last failure.
class RetryingBackend final : public PerformanceBackend {
 public:
  explicit RetryingBackend(std::unique_ptr<PerformanceBackend> inner,
                           RetryPolicy policy = {});

  [[nodiscard]] std::vector<EvalResult> evaluate_batch(
      std::span<const EvalRequest> requests) override;
  [[nodiscard]] std::string_view name() const override {
    return inner_->name();
  }

  /// Retries performed (counts every re-attempt, across evaluations).
  [[nodiscard]] std::uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }
  /// Evaluations that failed even after all retries.
  [[nodiscard]] std::uint64_t exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }

 private:
  /// Converts completed-but-too-slow successes into kTimeout failures.
  void apply_deadline(std::vector<EvalResult>& results) const;

  std::unique_ptr<PerformanceBackend> inner_;
  RetryPolicy policy_;
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> exhausted_{0};
};

/// Ordered chain of backends: each request is served by the first tier that
/// succeeds on it. Per-tier serve counts record which tier answered each
/// evaluation (also exported as `federation.backend.tier_served.<name>`
/// counters). A request every tier failed on reports kBackendUnavailable
/// carrying the last tier's error text.
class FallbackBackend final : public PerformanceBackend {
 public:
  explicit FallbackBackend(
      std::vector<std::unique_ptr<PerformanceBackend>> tiers);

  [[nodiscard]] std::vector<EvalResult> evaluate_batch(
      std::span<const EvalRequest> requests) override;
  /// Composed name, e.g. "fallback(detailed>approx>simulation)".
  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] std::size_t num_tiers() const { return tiers_.size(); }
  /// Evaluations served by tier `i` (snapshot copy of the atomic counters).
  [[nodiscard]] std::vector<std::uint64_t> serve_counts() const;
  [[nodiscard]] std::string_view tier_name(std::size_t i) const {
    return tiers_[i]->name();
  }
  /// Tier descents performed (a tier failed and the next one was tried).
  [[nodiscard]] std::uint64_t fallbacks() const {
    return fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::unique_ptr<PerformanceBackend>> tiers_;
  std::string name_;
  std::vector<std::atomic<std::uint64_t>> serve_counts_;
  std::atomic<std::uint64_t> fallbacks_{0};
};

/// What a FaultInjectingBackend injects. All probabilities are per
/// evaluation and drawn independently; `enabled()` is false for the default
/// spec (inject nothing).
struct FaultSpec {
  /// Probability of failing the evaluation outright with `fail_code`.
  double fail_probability = 0.0;
  ErrorCode fail_code = ErrorCode::kBackendUnavailable;
  /// Probability of failing with ErrorCode::kTimeout (a distinct knob so a
  /// chain can exercise both codes in one run).
  double timeout_probability = 0.0;
  /// Probability of attributing virtual latency to a (successful)
  /// evaluation. Recorded in the `federation.backend.injected_latency_seconds`
  /// histogram and the fault trace event; the call does not sleep.
  double latency_probability = 0.0;
  double latency_seconds = 0.0;
  /// Probability of perturbing every metric of the result multiplicatively
  /// by up to +-perturb_magnitude (relative). Perturbed results are marked
  /// degraded.
  double perturb_probability = 0.0;
  double perturb_magnitude = 0.1;
  std::uint64_t seed = 1;

  [[nodiscard]] bool enabled() const {
    return fail_probability > 0.0 || timeout_probability > 0.0 ||
           latency_probability > 0.0 || perturb_probability > 0.0;
  }

  void validate() const;
};

/// Parses the CLI `--fault-spec` mini-language, e.g.
///   "fail=0.3,seed=7"                     30% failures, RNG seed 7
///   "fail=0.2:timeout,timeout=0.05"       20% timeouts + 5% timeouts
///   "latency=0.1:0.25,perturb=0.2:0.05"   latency & perturbation faults
/// Keys: fail=P[:code], timeout=P, latency=P[:seconds],
/// perturb=P[:magnitude], seed=N. Codes: unavailable|timeout|numerical|
/// nonconvergence. Throws kInvalidConfig on unknown keys or bad numbers.
[[nodiscard]] FaultSpec parse_fault_spec(const std::string& spec);

/// Deterministic fault injector. Requests are numbered in submission order
/// (the n requests of a batch take the next n numbers); request number `k`
/// gets its own RNG seeded from (spec.seed, k) and a fixed number of
/// uniforms is drawn from it, so the fault pattern depends only on the
/// submission order — never on which worker thread evaluates the request or
/// which faults fired before it.
class FaultInjectingBackend final : public PerformanceBackend {
 public:
  FaultInjectingBackend(std::unique_ptr<PerformanceBackend> inner,
                        FaultSpec spec);

  [[nodiscard]] std::vector<EvalResult> evaluate_batch(
      std::span<const EvalRequest> requests) override;
  [[nodiscard]] std::string_view name() const override {
    return inner_->name();
  }

  /// Faults injected so far (failures + timeouts + latencies + perturbations).
  [[nodiscard]] std::uint64_t faults_injected() const {
    return faults_.load(std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<PerformanceBackend> inner_;
  FaultSpec spec_;
  std::atomic<std::uint64_t> next_eval_{0};  ///< evaluation sequence numbers
  std::atomic<std::uint64_t> faults_{0};
};

}  // namespace scshare::federation
