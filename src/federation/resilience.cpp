#include "federation/resilience.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/rng.hpp"
#include "exec/executor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace scshare::federation {
namespace {

/// Global resilience instruments, shared by every decorator instance
/// (per-instance numbers stay available through the accessors).
struct ResilienceObs {
  obs::Counter& retries;
  obs::Counter& retry_exhausted;
  obs::Counter& fallbacks;
  obs::Counter& fallback_exhausted;
  obs::Counter& faults_injected;
  obs::Histogram& injected_latency_seconds;

  ResilienceObs()
      : retries(obs::MetricsRegistry::global().counter("backend.retries")),
        retry_exhausted(obs::MetricsRegistry::global().counter(
            "backend.retry_exhausted")),
        fallbacks(obs::MetricsRegistry::global().counter("backend.fallbacks")),
        fallback_exhausted(obs::MetricsRegistry::global().counter(
            "backend.fallback_exhausted")),
        faults_injected(obs::MetricsRegistry::global().counter(
            "backend.faults_injected")),
        injected_latency_seconds(obs::MetricsRegistry::global().histogram(
            "federation.backend.injected_latency_seconds")) {}
};

ResilienceObs& resilience_obs() {
  static ResilienceObs instruments;
  return instruments;
}

EvalResult make_failure(const Error& error, std::uint64_t tag) {
  EvalResult result;
  result.ok = false;
  result.code = error.code();
  result.error = error.what();
  result.tag = tag;
  return result;
}

}  // namespace

// ---- RetryingBackend ------------------------------------------------------

RetryingBackend::RetryingBackend(std::unique_ptr<PerformanceBackend> inner,
                                 RetryPolicy policy)
    : inner_(std::move(inner)), policy_(policy) {
  require(policy_.max_retries >= 0,
          "RetryPolicy: max_retries must be non-negative");
  require(policy_.base_backoff_seconds >= 0.0 &&
              policy_.backoff_multiplier >= 1.0,
          "RetryPolicy: backoff schedule must be non-negative and "
          "non-decreasing");
  require(policy_.attempt_deadline_seconds >= 0.0,
          "RetryPolicy: attempt deadline must be non-negative");
}

void RetryingBackend::apply_deadline(std::vector<EvalResult>& results) const {
  if (policy_.attempt_deadline_seconds <= 0.0) return;
  for (EvalResult& result : results) {
    if (!result.ok || result.wall_seconds <= policy_.attempt_deadline_seconds)
      continue;
    result = make_failure(
        Error("attempt exceeded its deadline of " +
                  std::to_string(policy_.attempt_deadline_seconds) + " s",
              ErrorCode::kTimeout, std::string(inner_->name())),
        result.tag);
  }
}

std::vector<EvalResult> RetryingBackend::evaluate_batch(
    std::span<const EvalRequest> requests) {
  ResilienceObs& instruments = resilience_obs();
  std::vector<EvalResult> results = inner_->evaluate_batch(requests);
  apply_deadline(results);

  std::vector<std::size_t> pending;  // indices still failed but retryable
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok && is_retryable(results[i].code)) pending.push_back(i);
  }

  double backoff = policy_.base_backoff_seconds;
  for (int attempt = 0; attempt < policy_.max_retries && !pending.empty();
       ++attempt) {
    std::vector<EvalRequest> retry_requests;
    retry_requests.reserve(pending.size());
    for (std::size_t idx : pending) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      instruments.retries.add();
      if (auto* sink = obs::trace_sink()) {
        sink->emit(obs::BackendRetryEvent{std::string(inner_->name()),
                                          attempt, backoff,
                                          error_code_name(results[idx].code)});
      }
      EvalRequest retry = requests[idx];
      retry.attempt = requests[idx].attempt + attempt + 1;
      retry_requests.push_back(std::move(retry));
    }

    std::vector<EvalResult> retry_results =
        inner_->evaluate_batch(retry_requests);
    apply_deadline(retry_results);

    std::vector<std::size_t> still_pending;
    for (std::size_t k = 0; k < pending.size(); ++k) {
      const std::size_t idx = pending[k];
      results[idx] = std::move(retry_results[k]);
      if (!results[idx].ok && is_retryable(results[idx].code)) {
        still_pending.push_back(idx);
      }
    }
    pending = std::move(still_pending);
    backoff *= policy_.backoff_multiplier;
  }

  if (!pending.empty()) {
    exhausted_.fetch_add(pending.size(), std::memory_order_relaxed);
    instruments.retry_exhausted.add(pending.size());
  }
  return results;
}

// ---- FallbackBackend ------------------------------------------------------

FallbackBackend::FallbackBackend(
    std::vector<std::unique_ptr<PerformanceBackend>> tiers)
    : tiers_(std::move(tiers)), serve_counts_(tiers_.size()) {
  require(!tiers_.empty(), "FallbackBackend: at least one tier required");
  name_ = "fallback(";
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    if (i > 0) name_ += '>';
    name_ += tiers_[i]->name();
  }
  name_ += ')';
}

std::vector<std::uint64_t> FallbackBackend::serve_counts() const {
  std::vector<std::uint64_t> counts(serve_counts_.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = serve_counts_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::vector<EvalResult> FallbackBackend::evaluate_batch(
    std::span<const EvalRequest> requests) {
  ResilienceObs& instruments = resilience_obs();
  std::vector<EvalResult> results(requests.size());
  std::vector<std::string> last_errors(requests.size());

  std::vector<std::size_t> remaining(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) remaining[i] = i;

  for (std::size_t tier = 0; tier < tiers_.size() && !remaining.empty();
       ++tier) {
    std::vector<EvalRequest> tier_requests;
    tier_requests.reserve(remaining.size());
    for (std::size_t idx : remaining) tier_requests.push_back(requests[idx]);
    std::vector<EvalResult> tier_results =
        tiers_[tier]->evaluate_batch(tier_requests);

    std::vector<std::size_t> still_failing;
    for (std::size_t k = 0; k < remaining.size(); ++k) {
      const std::size_t idx = remaining[k];
      EvalResult& result = tier_results[k];
      if (result.ok) {
        serve_counts_[tier].fetch_add(1, std::memory_order_relaxed);
        obs::MetricsRegistry::global()
            .counter("federation.backend.tier_served." +
                     std::string(tiers_[tier]->name()))
            .add();
        if (tier > 0) {
          // Served by a lower tier than the preferred one: the result may
          // use a coarser model, so flag the quality drop.
          result.metrics.mark_degraded(
              "served by fallback tier " + std::to_string(tier) + " (" +
              std::string(tiers_[tier]->name()) + ")");
        }
        results[idx] = std::move(result);
      } else if (result.code == ErrorCode::kCancelled) {
        // The request (not the tier) is dead: descending would evaluate a
        // coarser model past the deadline/shutdown that cancelled it. Keep
        // the typed cancellation as the final answer.
        results[idx] = std::move(result);
      } else {
        last_errors[idx] = result.error;
        if (tier + 1 < tiers_.size()) {
          fallbacks_.fetch_add(1, std::memory_order_relaxed);
          instruments.fallbacks.add();
        }
        if (auto* sink = obs::trace_sink()) {
          sink->emit(obs::BackendFallbackEvent{
              static_cast<int>(tier), std::string(tiers_[tier]->name()),
              error_code_name(result.code)});
        }
        still_failing.push_back(idx);
      }
    }
    remaining = std::move(still_failing);
  }

  for (std::size_t idx : remaining) {
    instruments.fallback_exhausted.add();
    results[idx] = make_failure(
        Error("all " + std::to_string(tiers_.size()) +
                  " tiers failed; last error: " + last_errors[idx],
              ErrorCode::kBackendUnavailable, "FallbackBackend"),
        requests[idx].tag);
  }
  return results;
}

// ---- FaultInjectingBackend ------------------------------------------------

void FaultSpec::validate() const {
  const auto probability = [](double p, const char* what) {
    require(p >= 0.0 && p <= 1.0,
            std::string("FaultSpec: ") + what +
                " must lie in [0, 1], got " + std::to_string(p));
  };
  probability(fail_probability, "fail probability");
  probability(timeout_probability, "timeout probability");
  probability(latency_probability, "latency probability");
  probability(perturb_probability, "perturb probability");
  require(latency_seconds >= 0.0,
          "FaultSpec: latency_seconds must be non-negative");
  require(perturb_magnitude >= 0.0 && perturb_magnitude < 1.0,
          "FaultSpec: perturb_magnitude must lie in [0, 1)");
  require(is_retryable(fail_code),
          "FaultSpec: fail_code must be a retryable error code");
}

FaultSpec parse_fault_spec(const std::string& spec) {
  FaultSpec parsed;
  const auto to_double = [](const std::string& s) {
    try {
      std::size_t pos = 0;
      const double v = std::stod(s, &pos);
      require(pos == s.size(), "trailing characters");
      return v;
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      throw Error("fault-spec: not a number: '" + s + "'",
                  ErrorCode::kInvalidConfig);
    }
  };
  const auto to_code = [](const std::string& s) {
    if (s == "unavailable") return ErrorCode::kBackendUnavailable;
    if (s == "timeout") return ErrorCode::kTimeout;
    if (s == "numerical") return ErrorCode::kNumericalFailure;
    if (s == "nonconvergence") return ErrorCode::kSolverNonConvergence;
    throw Error("fault-spec: unknown error code '" + s +
                    "' (use unavailable|timeout|numerical|nonconvergence)",
                ErrorCode::kInvalidConfig);
  };

  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', start), spec.size());
    const std::string entry = spec.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    require(eq != std::string::npos,
            "fault-spec: expected key=value, got '" + entry + "'");
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    const std::size_t colon = value.find(':');
    const std::string head = value.substr(0, colon);
    const std::string tail =
        colon == std::string::npos ? std::string() : value.substr(colon + 1);
    if (key == "fail") {
      parsed.fail_probability = to_double(head);
      if (!tail.empty()) parsed.fail_code = to_code(tail);
    } else if (key == "timeout") {
      parsed.timeout_probability = to_double(head);
    } else if (key == "latency") {
      parsed.latency_probability = to_double(head);
      if (!tail.empty()) parsed.latency_seconds = to_double(tail);
    } else if (key == "perturb") {
      parsed.perturb_probability = to_double(head);
      if (!tail.empty()) parsed.perturb_magnitude = to_double(tail);
    } else if (key == "seed") {
      parsed.seed = static_cast<std::uint64_t>(to_double(head));
    } else {
      throw Error("fault-spec: unknown key '" + key +
                      "' (use fail|timeout|latency|perturb|seed)",
                  ErrorCode::kInvalidConfig);
    }
  }
  parsed.validate();
  return parsed;
}

FaultInjectingBackend::FaultInjectingBackend(
    std::unique_ptr<PerformanceBackend> inner, FaultSpec spec)
    : inner_(std::move(inner)), spec_(spec) {
  spec_.validate();
}

std::vector<EvalResult> FaultInjectingBackend::evaluate_batch(
    std::span<const EvalRequest> requests) {
  ResilienceObs& instruments = resilience_obs();
  std::vector<EvalResult> results(requests.size());

  // Reserve a contiguous block of evaluation sequence numbers for this
  // batch: request i draws from the stream seeded by (spec.seed, base + i).
  // Batches are submitted in a deterministic order by the (serial) decorator
  // chain above, so the fault pattern is reproducible at any thread count.
  const std::uint64_t base =
      next_eval_.fetch_add(requests.size(), std::memory_order_relaxed);

  const auto inject = [&](const char* kind, ErrorCode code) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    instruments.faults_injected.add();
    if (auto* sink = obs::trace_sink()) {
      sink->emit(obs::BackendFaultEvent{std::string(inner_->name()), kind,
                                        error_code_name(code)});
    }
  };

  // Pass 1 (request order): decide failures/timeouts/latency up front; the
  // surviving requests are forwarded as one inner batch.
  struct Forwarded {
    std::size_t idx;
    double u_perturb;
    double u_sign;
  };
  std::vector<Forwarded> forwarded;
  forwarded.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    // Fixed draw order and count per request, regardless of which faults
    // fire: the per-request streams stay aligned across runs, so
    // retry/fallback behaviour is reproducible under a fixed seed.
    Rng rng(exec::task_seed(spec_.seed, base + i));
    const double u_fail = rng.next_double();
    const double u_timeout = rng.next_double();
    const double u_latency = rng.next_double();
    const double u_perturb = rng.next_double();
    const double u_sign = rng.next_double();

    if (u_fail < spec_.fail_probability) {
      inject("fail", spec_.fail_code);
      results[i] = make_failure(Error("injected fault", spec_.fail_code,
                                      std::string(inner_->name())),
                                requests[i].tag);
      continue;
    }
    if (u_timeout < spec_.timeout_probability) {
      inject("timeout", ErrorCode::kTimeout);
      results[i] = make_failure(Error("injected timeout", ErrorCode::kTimeout,
                                      std::string(inner_->name())),
                                requests[i].tag);
      continue;
    }
    if (u_latency < spec_.latency_probability) {
      faults_.fetch_add(1, std::memory_order_relaxed);
      instruments.faults_injected.add();
      instruments.injected_latency_seconds.observe(spec_.latency_seconds);
      if (auto* sink = obs::trace_sink()) {
        sink->emit(obs::BackendFaultEvent{std::string(inner_->name()),
                                          "latency", ""});
      }
      // Virtual latency only: recorded, not slept. A deployment fronting a
      // remote backend would block here; the library stays fast and
      // deterministic.
    }
    forwarded.push_back({i, u_perturb, u_sign});
  }
  if (forwarded.empty()) return results;

  std::vector<EvalRequest> inner_requests;
  inner_requests.reserve(forwarded.size());
  for (const Forwarded& f : forwarded) {
    inner_requests.push_back(requests[f.idx]);
  }
  std::vector<EvalResult> inner_results =
      inner_->evaluate_batch(inner_requests);

  // Pass 2 (request order): apply perturbations to the successes.
  for (std::size_t k = 0; k < forwarded.size(); ++k) {
    const Forwarded& f = forwarded[k];
    results[f.idx] = std::move(inner_results[k]);
    EvalResult& result = results[f.idx];
    if (!result.ok || f.u_perturb >= spec_.perturb_probability) continue;
    faults_.fetch_add(1, std::memory_order_relaxed);
    instruments.faults_injected.add();
    if (auto* sink = obs::trace_sink()) {
      sink->emit(obs::BackendFaultEvent{std::string(inner_->name()),
                                        "perturb", ""});
    }
    // Multiplicative relative noise, one shared factor per evaluation so
    // perturbed metrics stay internally consistent (rates scale together).
    const double factor =
        1.0 + spec_.perturb_magnitude * (2.0 * f.u_sign - 1.0);
    for (auto& m : result.metrics) {
      m.lent = std::max(0.0, m.lent * factor);
      m.borrowed = std::max(0.0, m.borrowed * factor);
      m.forward_rate = std::max(0.0, m.forward_rate * factor);
      m.forward_prob = std::clamp(m.forward_prob * factor, 0.0, 1.0);
      m.utilization = std::clamp(m.utilization * factor, 0.0, 1.0);
    }
    result.metrics.mark_degraded("metrics perturbed by fault injection");
  }
  return results;
}

}  // namespace scshare::federation
