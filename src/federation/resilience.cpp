#include "federation/resilience.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace scshare::federation {
namespace {

/// Global resilience instruments, shared by every decorator instance
/// (per-instance numbers stay available through the accessors).
struct ResilienceObs {
  obs::Counter& retries;
  obs::Counter& retry_exhausted;
  obs::Counter& fallbacks;
  obs::Counter& fallback_exhausted;
  obs::Counter& faults_injected;
  obs::Histogram& injected_latency_seconds;

  ResilienceObs()
      : retries(obs::MetricsRegistry::global().counter("backend.retries")),
        retry_exhausted(obs::MetricsRegistry::global().counter(
            "backend.retry_exhausted")),
        fallbacks(obs::MetricsRegistry::global().counter("backend.fallbacks")),
        fallback_exhausted(obs::MetricsRegistry::global().counter(
            "backend.fallback_exhausted")),
        faults_injected(obs::MetricsRegistry::global().counter(
            "backend.faults_injected")),
        injected_latency_seconds(obs::MetricsRegistry::global().histogram(
            "federation.backend.injected_latency_seconds")) {}
};

ResilienceObs& resilience_obs() {
  static ResilienceObs instruments;
  return instruments;
}

}  // namespace

// ---- RetryingBackend ------------------------------------------------------

RetryingBackend::RetryingBackend(std::unique_ptr<PerformanceBackend> inner,
                                 RetryPolicy policy)
    : inner_(std::move(inner)), policy_(policy) {
  require(policy_.max_retries >= 0,
          "RetryPolicy: max_retries must be non-negative");
  require(policy_.base_backoff_seconds >= 0.0 &&
              policy_.backoff_multiplier >= 1.0,
          "RetryPolicy: backoff schedule must be non-negative and "
          "non-decreasing");
  require(policy_.attempt_deadline_seconds >= 0.0,
          "RetryPolicy: attempt deadline must be non-negative");
}

FederationMetrics RetryingBackend::evaluate(const FederationConfig& config) {
  ResilienceObs& instruments = resilience_obs();
  double backoff = policy_.base_backoff_seconds;
  for (int attempt = 0;; ++attempt) {
    try {
      const obs::Stopwatch stopwatch;
      FederationMetrics metrics = inner_->evaluate(config);
      if (policy_.attempt_deadline_seconds > 0.0 &&
          stopwatch.seconds() > policy_.attempt_deadline_seconds) {
        throw Error("attempt exceeded its deadline of " +
                        std::to_string(policy_.attempt_deadline_seconds) +
                        " s",
                    ErrorCode::kTimeout, std::string(inner_->name()));
      }
      return metrics;
    } catch (const Error& e) {
      if (!is_retryable(e.code()) || attempt >= policy_.max_retries) {
        if (is_retryable(e.code())) {
          ++exhausted_;
          instruments.retry_exhausted.add();
        }
        throw;
      }
      ++retries_;
      instruments.retries.add();
      if (auto* sink = obs::trace_sink()) {
        sink->emit(obs::BackendRetryEvent{std::string(inner_->name()),
                                          attempt, backoff,
                                          error_code_name(e.code())});
      }
      backoff *= policy_.backoff_multiplier;
    }
  }
}

// ---- FallbackBackend ------------------------------------------------------

FallbackBackend::FallbackBackend(
    std::vector<std::unique_ptr<PerformanceBackend>> tiers)
    : tiers_(std::move(tiers)), serve_counts_(tiers_.size(), 0) {
  require(!tiers_.empty(), "FallbackBackend: at least one tier required");
  name_ = "fallback(";
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    if (i > 0) name_ += '>';
    name_ += tiers_[i]->name();
  }
  name_ += ')';
}

FederationMetrics FallbackBackend::evaluate(const FederationConfig& config) {
  ResilienceObs& instruments = resilience_obs();
  std::string last_error;
  for (std::size_t tier = 0; tier < tiers_.size(); ++tier) {
    try {
      FederationMetrics metrics = tiers_[tier]->evaluate(config);
      ++serve_counts_[tier];
      obs::MetricsRegistry::global()
          .counter("federation.backend.tier_served." +
                   std::string(tiers_[tier]->name()))
          .add();
      if (tier > 0) {
        // Served by a lower tier than the preferred one: the result may use
        // a coarser model, so flag the quality drop.
        metrics.mark_degraded("served by fallback tier " +
                              std::to_string(tier) + " (" +
                              std::string(tiers_[tier]->name()) + ")");
      }
      return metrics;
    } catch (const Error& e) {
      last_error = e.what();
      if (tier + 1 < tiers_.size()) {
        ++fallbacks_;
        instruments.fallbacks.add();
      }
      if (auto* sink = obs::trace_sink()) {
        sink->emit(obs::BackendFallbackEvent{static_cast<int>(tier),
                                             std::string(tiers_[tier]->name()),
                                             error_code_name(e.code())});
      }
    }
  }
  instruments.fallback_exhausted.add();
  throw Error("all " + std::to_string(tiers_.size()) +
                  " tiers failed; last error: " + last_error,
              ErrorCode::kBackendUnavailable, "FallbackBackend");
}

// ---- FaultInjectingBackend ------------------------------------------------

void FaultSpec::validate() const {
  const auto probability = [](double p, const char* what) {
    require(p >= 0.0 && p <= 1.0,
            std::string("FaultSpec: ") + what +
                " must lie in [0, 1], got " + std::to_string(p));
  };
  probability(fail_probability, "fail probability");
  probability(timeout_probability, "timeout probability");
  probability(latency_probability, "latency probability");
  probability(perturb_probability, "perturb probability");
  require(latency_seconds >= 0.0,
          "FaultSpec: latency_seconds must be non-negative");
  require(perturb_magnitude >= 0.0 && perturb_magnitude < 1.0,
          "FaultSpec: perturb_magnitude must lie in [0, 1)");
  require(is_retryable(fail_code),
          "FaultSpec: fail_code must be a retryable error code");
}

FaultSpec parse_fault_spec(const std::string& spec) {
  FaultSpec parsed;
  const auto to_double = [](const std::string& s) {
    try {
      std::size_t pos = 0;
      const double v = std::stod(s, &pos);
      require(pos == s.size(), "trailing characters");
      return v;
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      throw Error("fault-spec: not a number: '" + s + "'",
                  ErrorCode::kInvalidConfig);
    }
  };
  const auto to_code = [](const std::string& s) {
    if (s == "unavailable") return ErrorCode::kBackendUnavailable;
    if (s == "timeout") return ErrorCode::kTimeout;
    if (s == "numerical") return ErrorCode::kNumericalFailure;
    if (s == "nonconvergence") return ErrorCode::kSolverNonConvergence;
    throw Error("fault-spec: unknown error code '" + s +
                    "' (use unavailable|timeout|numerical|nonconvergence)",
                ErrorCode::kInvalidConfig);
  };

  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', start), spec.size());
    const std::string entry = spec.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    require(eq != std::string::npos,
            "fault-spec: expected key=value, got '" + entry + "'");
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    const std::size_t colon = value.find(':');
    const std::string head = value.substr(0, colon);
    const std::string tail =
        colon == std::string::npos ? std::string() : value.substr(colon + 1);
    if (key == "fail") {
      parsed.fail_probability = to_double(head);
      if (!tail.empty()) parsed.fail_code = to_code(tail);
    } else if (key == "timeout") {
      parsed.timeout_probability = to_double(head);
    } else if (key == "latency") {
      parsed.latency_probability = to_double(head);
      if (!tail.empty()) parsed.latency_seconds = to_double(tail);
    } else if (key == "perturb") {
      parsed.perturb_probability = to_double(head);
      if (!tail.empty()) parsed.perturb_magnitude = to_double(tail);
    } else if (key == "seed") {
      parsed.seed = static_cast<std::uint64_t>(to_double(head));
    } else {
      throw Error("fault-spec: unknown key '" + key +
                      "' (use fail|timeout|latency|perturb|seed)",
                  ErrorCode::kInvalidConfig);
    }
  }
  parsed.validate();
  return parsed;
}

FaultInjectingBackend::FaultInjectingBackend(
    std::unique_ptr<PerformanceBackend> inner, FaultSpec spec)
    : inner_(std::move(inner)), spec_(spec), rng_(spec.seed) {
  spec_.validate();
}

FederationMetrics FaultInjectingBackend::evaluate(
    const FederationConfig& config) {
  ResilienceObs& instruments = resilience_obs();
  // Fixed draw order and count per evaluation, regardless of which faults
  // fire: the RNG stream stays aligned across runs, so retry/fallback
  // behaviour is reproducible under a fixed seed.
  const double u_fail = rng_.next_double();
  const double u_timeout = rng_.next_double();
  const double u_latency = rng_.next_double();
  const double u_perturb = rng_.next_double();
  const double u_sign = rng_.next_double();

  const auto inject = [&](const char* kind, ErrorCode code) {
    ++faults_;
    instruments.faults_injected.add();
    if (auto* sink = obs::trace_sink()) {
      sink->emit(obs::BackendFaultEvent{std::string(inner_->name()), kind,
                                        error_code_name(code)});
    }
  };

  if (u_fail < spec_.fail_probability) {
    inject("fail", spec_.fail_code);
    throw Error("injected fault", spec_.fail_code,
                std::string(inner_->name()));
  }
  if (u_timeout < spec_.timeout_probability) {
    inject("timeout", ErrorCode::kTimeout);
    throw Error("injected timeout", ErrorCode::kTimeout,
                std::string(inner_->name()));
  }
  if (u_latency < spec_.latency_probability) {
    ++faults_;
    instruments.faults_injected.add();
    instruments.injected_latency_seconds.observe(spec_.latency_seconds);
    if (auto* sink = obs::trace_sink()) {
      sink->emit(obs::BackendFaultEvent{std::string(inner_->name()),
                                        "latency", ""});
    }
    // Virtual latency only: recorded, not slept. A deployment fronting a
    // remote backend would block here; the library stays fast and
    // deterministic.
  }

  FederationMetrics metrics = inner_->evaluate(config);

  if (u_perturb < spec_.perturb_probability) {
    ++faults_;
    instruments.faults_injected.add();
    if (auto* sink = obs::trace_sink()) {
      sink->emit(obs::BackendFaultEvent{std::string(inner_->name()),
                                        "perturb", ""});
    }
    // Multiplicative relative noise, one shared factor per evaluation so
    // perturbed metrics stay internally consistent (rates scale together).
    const double factor =
        1.0 + spec_.perturb_magnitude * (2.0 * u_sign - 1.0);
    for (auto& m : metrics) {
      m.lent = std::max(0.0, m.lent * factor);
      m.borrowed = std::max(0.0, m.borrowed * factor);
      m.forward_rate = std::max(0.0, m.forward_rate * factor);
      m.forward_prob = std::clamp(m.forward_prob * factor, 0.0, 1.0);
      m.utilization = std::clamp(m.utilization * factor, 0.0, 1.0);
    }
    metrics.mark_degraded("metrics perturbed by fault injection");
  }
  return metrics;
}

}  // namespace scshare::federation
