// Performance metrics produced by every backend; these feed the cost function
// of Eq. (1) and the utility of Eq. (2).
#pragma once

#include <vector>

namespace scshare::federation {

/// Steady-state performance of one SC inside the federation.
struct ScMetrics {
  double lent = 0.0;       ///< Ī_i: mean # of this SC's VMs serving other SCs
  double borrowed = 0.0;   ///< Ō_i: mean # of other SCs' VMs serving this SC
  double forward_rate = 0.0;  ///< P̄_i: requests/second forwarded to public cloud
  double forward_prob = 0.0;  ///< fraction of arrivals forwarded
  double utilization = 0.0;   ///< rho_i: mean busy VMs (own work + lent) / N_i
};

/// Metrics for all SCs of a federation.
using FederationMetrics = std::vector<ScMetrics>;

}  // namespace scshare::federation
