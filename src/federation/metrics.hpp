// Performance metrics produced by every backend; these feed the cost function
// of Eq. (1) and the utility of Eq. (2).
//
// Metrics carry a quality flag: a backend that could not fully converge (or
// whose output was perturbed by fault injection) marks its result `degraded`
// instead of silently returning a possibly-wrong answer. Consumers — the
// market game, the sharing controller — propagate the flag so an operator can
// tell an exact equilibrium from one computed on shaky numbers.
#pragma once

#include <string>
#include <vector>

namespace scshare::federation {

/// Steady-state performance of one SC inside the federation.
struct ScMetrics {
  double lent = 0.0;       ///< Ī_i: mean # of this SC's VMs serving other SCs
  double borrowed = 0.0;   ///< Ō_i: mean # of other SCs' VMs serving this SC
  double forward_rate = 0.0;  ///< P̄_i: requests/second forwarded to public cloud
  double forward_prob = 0.0;  ///< fraction of arrivals forwarded
  double utilization = 0.0;   ///< rho_i: mean busy VMs (own work + lent) / N_i
  /// Quality flag: true when the producing model did not fully converge for
  /// this SC (accepted at a relaxed tolerance, iteration budget exhausted,
  /// or perturbed by fault injection). The numbers are best-effort.
  bool degraded = false;
};

/// Metrics for all SCs of a federation, plus federation-level quality
/// information. Derives from std::vector so the ubiquitous `metrics[i]` /
/// `metrics.size()` call sites keep working unchanged.
struct FederationMetrics : public std::vector<ScMetrics> {
  using std::vector<ScMetrics>::vector;

  /// Why the evaluation is degraded (empty = fully converged). Reasons
  /// accumulate ";"-separated when several stages degrade.
  std::string degradation;

  /// True when the federation-level evaluation or any per-SC entry is
  /// degraded.
  [[nodiscard]] bool degraded() const {
    if (!degradation.empty()) return true;
    for (const auto& m : *this) {
      if (m.degraded) return true;
    }
    return false;
  }

  /// Marks every SC entry degraded and appends `reason`.
  void mark_degraded(const std::string& reason) {
    if (!degradation.empty()) degradation += "; ";
    degradation += reason;
    for (auto& m : *this) m.degraded = true;
  }
};

}  // namespace scshare::federation
