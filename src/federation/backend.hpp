// Pluggable performance backends.
//
// The market game only consumes the three steady-state metrics (lent,
// borrowed, forward rate) per SC; any of the three performance models can
// provide them. CachingBackend memoizes evaluations by sharing vector, which
// makes repeated-game sweeps over prices essentially free after the first
// pass (metrics do not depend on prices).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "federation/approx_model.hpp"
#include "federation/config.hpp"
#include "federation/detailed_model.hpp"
#include "federation/metrics.hpp"
#include "sim/simulator.hpp"

namespace scshare::federation {

/// Interface: evaluate the federation metrics for a configuration.
class PerformanceBackend {
 public:
  virtual ~PerformanceBackend() = default;
  [[nodiscard]] virtual FederationMetrics evaluate(
      const FederationConfig& config) = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Backend running the hierarchical approximate model (paper Sect. III-C).
class ApproxBackend final : public PerformanceBackend {
 public:
  explicit ApproxBackend(ApproxModelOptions options = {})
      : options_(options) {}
  [[nodiscard]] FederationMetrics evaluate(
      const FederationConfig& config) override {
    return solve_approx(config, options_);
  }
  [[nodiscard]] std::string_view name() const override { return "approx"; }

 private:
  ApproxModelOptions options_;
};

/// Backend running the exact detailed CTMC (small federations only).
class DetailedBackend final : public PerformanceBackend {
 public:
  explicit DetailedBackend(DetailedModelOptions options = {})
      : options_(options) {}
  [[nodiscard]] FederationMetrics evaluate(
      const FederationConfig& config) override {
    return solve_detailed(config, options_);
  }
  [[nodiscard]] std::string_view name() const override { return "detailed"; }

 private:
  DetailedModelOptions options_;
};

/// Backend running the discrete-event simulator.
class SimulationBackend final : public PerformanceBackend {
 public:
  explicit SimulationBackend(sim::SimOptions options = {})
      : options_(options) {}
  [[nodiscard]] FederationMetrics evaluate(
      const FederationConfig& config) override {
    return sim::simulate_metrics(config, options_);
  }
  [[nodiscard]] std::string_view name() const override { return "simulation"; }

 private:
  sim::SimOptions options_;
};

/// Memoizing decorator keyed by the sharing vector. The SC parameters are
/// assumed fixed across calls (the game only mutates `shares`).
///
/// Every evaluation is accounted as a hit or a miss (see hits()/misses()
/// and the global `federation.cache.*` counters) and emitted as a
/// BackendEval trace event carrying the sharing vector and — for misses —
/// the inner model's wall time. A non-zero `max_entries` bounds the cache
/// with FIFO eviction (evictions() counts the displaced entries); 0 keeps
/// it unbounded, which is right for price sweeps where every distinct
/// sharing vector is revisited.
class CachingBackend final : public PerformanceBackend {
 public:
  explicit CachingBackend(std::unique_ptr<PerformanceBackend> inner,
                          std::size_t max_entries = 0);

  [[nodiscard]] FederationMetrics evaluate(
      const FederationConfig& config) override;

  [[nodiscard]] std::string_view name() const override {
    return inner_->name();
  }

  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
  /// Inner-model evaluations performed (== misses).
  [[nodiscard]] std::size_t evaluations() const { return misses_; }
  [[nodiscard]] std::size_t hits() const { return hits_; }
  [[nodiscard]] std::size_t misses() const { return misses_; }
  [[nodiscard]] std::size_t evictions() const { return evictions_; }

 private:
  std::unique_ptr<PerformanceBackend> inner_;
  std::size_t max_entries_;
  std::map<std::vector<int>, FederationMetrics> cache_;
  std::deque<std::vector<int>> insertion_order_;  ///< FIFO eviction queue
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace scshare::federation
