// Pluggable performance backends and the batch evaluation API.
//
// The market game only consumes the three steady-state metrics (lent,
// borrowed, forward rate) per SC; any of the three performance models can
// provide them. The primary interface is batched: callers describe every
// independent evaluation of a fan-out (the candidate shares of a best
// response, the points of a sweep grid, the federations of a multi-federation
// round) as EvalRequests and receive EvalResults in request order. Batches
// are what the execution layer (src/exec/) parallelizes — the leaf compute
// backends fan a batch out across an attached exec::Executor while every
// decorator (retry, fallback, fault injection, caching) stays on the calling
// thread, which keeps bookkeeping, trace order, and RNG consumption
// independent of the thread count.
//
// Single evaluations are expressed as one-element batches; helpers that
// need throw-on-failure semantics unwrap the EvalResult themselves (see
// EvalResult::to_error()). The historical single-shot evaluate(cfg) adapter
// has been removed.
//
// CachingBackend memoizes evaluations by sharing vector, which makes
// repeated-game sweeps over prices essentially free after the first pass
// (metrics do not depend on prices). It is safe for concurrent callers: the
// map is sharded with striped mutexes and the hit/miss/eviction counters are
// atomic.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "exec/executor.hpp"
#include "federation/approx_model.hpp"
#include "federation/config.hpp"
#include "federation/detailed_model.hpp"
#include "federation/metrics.hpp"
#include "sim/simulator.hpp"

namespace scshare::federation {

/// One evaluation of a batch: the configuration to evaluate (the sharing
/// vector travels inside `config.shares`) plus caller bookkeeping.
struct EvalRequest {
  FederationConfig config;
  /// Opaque caller correlation id, echoed into the matching EvalResult
  /// (e.g. the candidate share a game best response is probing).
  std::uint64_t tag = 0;
  /// Retry generation: 0 for the first attempt; RetryingBackend resubmits
  /// failed requests with attempt + 1.
  int attempt = 0;
};

/// Outcome of one EvalRequest. Per-request failures are captured here (code
/// + what() text) instead of thrown, so one bad candidate cannot abort the
/// rest of the batch; degradation info travels inside
/// `metrics.degradation` (see FederationMetrics::degraded()).
struct EvalResult {
  FederationMetrics metrics;  ///< valid only when ok
  bool ok = false;
  ErrorCode code = ErrorCode::kGeneric;
  std::string error;  ///< what() of the captured failure ("" when ok)
  std::uint64_t tag = 0;       ///< echoed from the request
  double wall_seconds = 0.0;   ///< leaf compute wall time (0 for cache hits)

  /// Reconstructs the captured failure (only meaningful when !ok).
  [[nodiscard]] Error to_error() const { return Error(error, code); }
};

/// Interface: evaluate federation metrics for a batch of configurations.
class PerformanceBackend {
 public:
  virtual ~PerformanceBackend() = default;

  /// Evaluates every request; the result vector matches `requests` by index.
  /// Typed evaluation failures (scshare::Error) are captured per result,
  /// never thrown. Implementations may run leaf evaluations concurrently but
  /// must produce results — counters, trace events, RNG draws — identical to
  /// processing the batch front to back on one thread.
  [[nodiscard]] virtual std::vector<EvalResult> evaluate_batch(
      std::span<const EvalRequest> requests) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Base of the leaf (model-running) backends: implements evaluate_batch by
/// fanning the per-request compute() calls out across the attached
/// exec::Executor (inline when none is attached), capturing typed errors and
/// stamping per-request wall time. Decorators do NOT derive from this — the
/// executor fan-out happens exactly once, at the leaf, so the decorator
/// chain above runs deterministically on the calling thread.
class ComputeBackend : public PerformanceBackend {
 public:
  [[nodiscard]] std::vector<EvalResult> evaluate_batch(
      std::span<const EvalRequest> requests) override;

  /// Attaches the executor used for batch fan-out (nullptr = inline).
  /// Not synchronized: attach before sharing the backend across threads.
  /// The executor must outlive the backend's last evaluate_batch call.
  void set_executor(exec::Executor* executor) noexcept {
    executor_ = executor;
  }
  [[nodiscard]] exec::Executor* executor() const noexcept { return executor_; }

 protected:
  /// One evaluation; runs on a worker thread when an executor is attached,
  /// so overrides must be const-like: no unsynchronized mutable state.
  [[nodiscard]] virtual FederationMetrics compute(
      const FederationConfig& config) = 0;

 private:
  exec::Executor* executor_ = nullptr;
};

/// Backend running the hierarchical approximate model (paper Sect. III-C).
class ApproxBackend final : public ComputeBackend {
 public:
  explicit ApproxBackend(ApproxModelOptions options = {})
      : options_(options) {}
  [[nodiscard]] std::string_view name() const override { return "approx"; }

 protected:
  [[nodiscard]] FederationMetrics compute(
      const FederationConfig& config) override {
    return solve_approx(config, options_);
  }

 private:
  ApproxModelOptions options_;
};

/// Backend running the exact detailed CTMC (small federations only).
class DetailedBackend final : public ComputeBackend {
 public:
  explicit DetailedBackend(DetailedModelOptions options = {})
      : options_(options) {}
  [[nodiscard]] std::string_view name() const override { return "detailed"; }

 protected:
  [[nodiscard]] FederationMetrics compute(
      const FederationConfig& config) override {
    return solve_detailed(config, options_);
  }

 private:
  DetailedModelOptions options_;
};

/// Backend running the discrete-event simulator.
class SimulationBackend final : public ComputeBackend {
 public:
  explicit SimulationBackend(sim::SimOptions options = {})
      : options_(options) {}
  [[nodiscard]] std::string_view name() const override { return "simulation"; }

 protected:
  [[nodiscard]] FederationMetrics compute(
      const FederationConfig& config) override {
    return sim::simulate_metrics(config, options_);
  }

 private:
  sim::SimOptions options_;
};

/// Memoizing decorator keyed by the sharing vector. The SC parameters are
/// assumed fixed across calls (the game only mutates `shares`).
///
/// Every evaluation is accounted as a hit or a miss (see hits()/misses()
/// and the global `federation.cache.*` counters) and emitted as a
/// BackendEval trace event carrying the sharing vector and — for misses —
/// the inner model's wall time. A non-zero `max_entries` bounds the cache
/// with global FIFO eviction (evictions() counts the displaced entries); 0
/// keeps it unbounded, which is right for price sweeps where every distinct
/// sharing vector is revisited. Only successful evaluations are memoized.
///
/// Thread safety: entries live in kShards independently locked shards
/// (stripe = hash of the sharing vector); the FIFO eviction order has its
/// own lock, and the two are never held together. Counters are atomic, so
/// hits() + misses() always equals the number of requests served. Batch
/// requests are looked up against the cache state at batch entry; callers
/// should not put duplicate sharing vectors into one batch (the duplicates
/// would evaluate twice, exactly as a pre-warm-free serial pass would).
class CachingBackend final : public PerformanceBackend {
 public:
  explicit CachingBackend(std::unique_ptr<PerformanceBackend> inner,
                          std::size_t max_entries = 0);

  [[nodiscard]] std::vector<EvalResult> evaluate_batch(
      std::span<const EvalRequest> requests) override;

  [[nodiscard]] std::string_view name() const override {
    return inner_->name();
  }

  [[nodiscard]] std::size_t cache_size() const {
    return size_.load(std::memory_order_relaxed);
  }
  /// Inner-model evaluations performed (== misses).
  [[nodiscard]] std::size_t evaluations() const { return misses(); }
  [[nodiscard]] std::size_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 16;

  struct Shard {
    std::mutex mutex;
    std::map<std::vector<int>, FederationMetrics> entries;
  };

  [[nodiscard]] Shard& shard_for(const std::vector<int>& key);
  /// Looks `key` up; true + `out` filled on a hit.
  [[nodiscard]] bool find(const std::vector<int>& key, FederationMetrics& out);
  /// Inserts a successful result and applies the FIFO bound.
  void insert(const std::vector<int>& key, const FederationMetrics& metrics);

  std::unique_ptr<PerformanceBackend> inner_;
  std::size_t max_entries_;
  std::array<Shard, kShards> shards_;
  std::mutex order_mutex_;
  std::deque<std::vector<int>> insertion_order_;  ///< global FIFO queue
  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> evictions_{0};
};

}  // namespace scshare::federation
