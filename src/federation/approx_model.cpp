#include "federation/approx_model.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/math.hpp"
#include "markov/ctmc.hpp"
#include "markov/steady_state.hpp"
#include "markov/state_index.hpp"
#include "markov/transient.hpp"
#include "queueing/forwarding.hpp"
#include "queueing/no_share_model.hpp"

namespace scshare::federation {
namespace {

/// Sparse distribution over aggregate-allocation pairs (a_loc, a_rem).
/// `demand` is the conditional probability that the aggregate of lower SCs
/// has at least one queued request (gates the C4/C5 lending branches: a
/// freed VM is handed to the aggregate only when somebody is waiting).
/// `avail[c]` is the conditional probability that the immediately-lower SC
/// can donate one more VM when `c` of its sharable VMs are already claimed by
/// the consumer level (idle VM + spare share cap); it gates C2 borrowing when
/// the rest of the pool is exhausted.
struct AllocPair {
  int a_loc = 0;
  int a_rem = 0;
  double p = 1.0;
  double demand = 0.0;
  std::vector<double> avail;
};
using PairDist = std::vector<AllocPair>;

/// Cached hypergeometric pmfs: `draws` units taken from a population of
/// `population` of which `successes` belong to the pool of interest.
class HypergeomCache {
 public:
  HypergeomCache() = default;
  HypergeomCache(int population, int successes)
      : population_(population), successes_(successes) {
    SCSHARE_ASSERT(successes_ <= population_,
                   "HypergeomCache: successes exceed population");
  }

  /// pmf[x] = P[X = x] for x = 0..min(successes, draws).
  const std::vector<double>& pmf(int draws) {
    auto it = cache_.find(draws);
    if (it != cache_.end()) return it->second;
    std::vector<double> p(static_cast<std::size_t>(
                              std::min(successes_, draws)) + 1,
                          0.0);
    if (population_ == 0 || draws == 0) {
      p[0] = 1.0;
    } else {
      const double log_denom = log_choose(population_, draws);
      const int lo = std::max(0, draws - (population_ - successes_));
      const int hi = std::min(successes_, draws);
      double total = 0.0;
      for (int x = lo; x <= hi; ++x) {
        const double lp = log_choose(successes_, x) +
                          log_choose(population_ - successes_, draws - x) -
                          log_denom;
        p[static_cast<std::size_t>(x)] = std::exp(lp);
        total += p[static_cast<std::size_t>(x)];
      }
      for (double& v : p) v /= total;
    }
    return cache_.emplace(draws, std::move(p)).first->second;
  }

 private:
  static double log_choose(int n, int k) {
    return math::log_factorial(n) - math::log_factorial(k) -
           math::log_factorial(n - k);
  }

  int population_ = 0;
  int successes_ = 0;
  std::unordered_map<int, std::vector<double>> cache_;
};

}  // namespace

/// One level M^i of the hierarchy: the chain of SC `sc` on top of the solved
/// lower level (nullptr for M^1).
/// Two-state environment describing the availability of pool owners that a
/// level cannot observe through the hierarchy (SCs other than itself and the
/// immediately-lower SC). `alpha` is the available -> unavailable rate,
/// `beta` the reverse; `active` is false when that set is empty.
struct PoolEnvironment {
  bool active = false;
  double alpha = 0.0;
  double beta = 0.0;
};

class ApproxModel::Level {
 public:
  /// Pool units owned by SCs outside {this SC, the immediately-lower SC}
  /// are not represented in the hierarchy below this level; their collective
  /// availability is modeled by the Markov-modulated `env` bit (fitted from
  /// those SCs' standalone busy/idle dynamics) instead of the paper's
  /// implicit assumption of permanent availability.
  Level(const FederationConfig& config, const ApproxModelOptions& options,
        std::size_t sc, Level* lower, PoolEnvironment env)
      : options_(options),
        sc_(sc),
        n_(config.scs[sc].num_vms),
        share_(config.shares[sc]),
        pool_(config.shared_pool_excluding(sc)),
        lambda_(config.scs[sc].lambda),
        mu_(config.scs[sc].mu),
        max_wait_(config.scs[sc].max_wait),
        lower_(lower),
        lower_share_(lower != nullptr ? lower->share_ : 0),
        lower_n_(lower != nullptr ? lower->n_ : 0),
        lower_lambda_(lower != nullptr ? lower->lambda_ : 0.0),
        lower_mu_(lower != nullptr ? lower->mu_ : 0.0),
        env_(env) {
    // In-system truncation per effective server count V = N - s + o.
    trunc_.resize(static_cast<std::size_t>(n_ + pool_) + 1, 0);
    for (int v = 1; v <= n_ + pool_; ++v) {
      trunc_[static_cast<std::size_t>(v)] = queueing::truncation_queue_length(
          v, mu_, max_wait_, config.truncation_epsilon);
    }
    build(config);
  }

  [[nodiscard]] std::size_t num_states() const { return index_.size(); }

  /// Must be called before a higher level uses this one: `next_pool_s` is the
  /// sharing cap S of the SC whose chain will consume the interaction
  /// vectors (its pool units are the hypergeometric "successes") and
  /// `event_times` the consumer's candidate mean inter-event times; all of
  /// them are evolved in one shared power-series pass per usage class.
  void prepare_interaction(int next_pool_s, std::vector<double> event_times) {
    hyper_ = HypergeomCache(pool_ /* pools other than this SC */, next_pool_s);
    transient_ = std::make_unique<markov::TransientSolver>(
        chain_, options_.transient_epsilon);
    times_.clear();
    for (double t : event_times) {
      const double rep = bucketize(t);
      if (std::find(times_.begin(), times_.end(), rep) == times_.end()) {
        times_.push_back(rep);
      }
    }
    std::sort(times_.begin(), times_.end());

    // Group stationary mass by total usage U = s + o + a and precompute the
    // conditioned (restricted + renormalized) initial distributions.
    const int max_usage = share_ + pool_;
    std::vector<double> mass(static_cast<std::size_t>(max_usage) + 1, 0.0);
    for (std::size_t x = 0; x < index_.size(); ++x) {
      mass[static_cast<std::size_t>(usage_of(x))] += pi_[x];
    }
    restricted_.assign(mass.size(), {});
    usage_fallback_.assign(mass.size(), 0);
    for (int u = 0; u <= max_usage; ++u) {
      // Nearest usage class with non-negligible mass (prefer smaller |delta|,
      // then the lower class).
      int best = -1;
      for (int delta = 0; delta <= max_usage; ++delta) {
        if (u - delta >= 0 && mass[static_cast<std::size_t>(u - delta)] > 1e-14) {
          best = u - delta;
          break;
        }
        if (u + delta <= max_usage &&
            mass[static_cast<std::size_t>(u + delta)] > 1e-14) {
          best = u + delta;
          break;
        }
      }
      require(best >= 0, "ApproxModel: empty stationary distribution");
      usage_fallback_[static_cast<std::size_t>(u)] = best;
    }
    for (int u = 0; u <= max_usage; ++u) {
      if (mass[static_cast<std::size_t>(u)] <= 1e-14) continue;
      std::vector<double> init(index_.size(), 0.0);
      for (std::size_t x = 0; x < index_.size(); ++x) {
        if (usage_of(x) == u) init[x] = pi_[x];
      }
      const double total = mass[static_cast<std::size_t>(u)];
      for (double& v : init) v /= total;
      restricted_[static_cast<std::size_t>(u)] = std::move(init);
    }
  }

  /// Bucketized representative of an inter-event time (geometric grid),
  /// clamped to the interaction horizon.
  [[nodiscard]] double bucketize(double t) const {
    t = std::min(t, options_.interaction_horizon);
    if (options_.time_bucket_ratio <= 1.0) return t;
    const double log_ratio = std::log(options_.time_bucket_ratio);
    const double k = std::round(std::log(std::max(t, 1e-9)) / log_ratio);
    return std::exp(k * log_ratio);
  }

  /// Interaction probability vector: distribution of (a_loc, a_rem) after an
  /// inter-event period of mean `t`, conditioned on current total usage
  /// `usage` (unclamped; the consumer applies its own caps).
  const PairDist& raw_interaction(int usage, double t) {
    const int max_usage = static_cast<int>(usage_fallback_.size()) - 1;
    const int u = usage_fallback_[static_cast<std::size_t>(
        std::clamp(usage, 0, max_usage))];
    const double t_rep = bucketize(t);
    const auto key = std::make_pair(u, t_rep);
    const auto it = interaction_cache_.find(key);
    if (it != interaction_cache_.end()) return it->second;

    // First query for this usage class: evolve all announced event times in
    // one shared power-series pass and cache every projection.
    if (std::find(times_.begin(), times_.end(), t_rep) != times_.end()) {
      const auto evolved_all = transient_->evolve_multi(
          restricted_[static_cast<std::size_t>(u)], times_);
      for (std::size_t i = 0; i < times_.size(); ++i) {
        interaction_cache_.emplace(std::make_pair(u, times_[i]),
                                   project(evolved_all[i]));
      }
      return interaction_cache_.at(key);
    }

    // Unannounced time (should be rare): single evolution.
    const std::vector<double> evolved =
        transient_->evolve(restricted_[static_cast<std::size_t>(u)], t_rep);
    return interaction_cache_.emplace(key, project(evolved)).first->second;
  }

  /// Projects an evolved distribution of this chain onto (a_loc, a_rem)
  /// pairs with demand and availability annotations.
  [[nodiscard]] PairDist project(const std::vector<double>& evolved) {

    // Project onto (a_loc, a_rem): this level's own pool usage s'' always
    // counts toward a_rem (it is not the consumer's pool); the remaining
    // o'' + a'' units are spread over the other pools hypergeometrically.
    // Alongside each pair we carry the probability that the aggregate has
    // queued work (this level's own queue is the observable proxy).
    struct Acc {
      double weight = 0.0;
      double demand_weight = 0.0;
      std::vector<double> avail_weight;
    };
    const std::size_t claims = static_cast<std::size_t>(share_) + 1;
    std::map<std::pair<int, int>, Acc> acc;
    for (std::size_t x = 0; x < index_.size(); ++x) {
      const double w = evolved[x];
      if (w < 1e-15) continue;
      const auto& st = index_.state(x);
      const int s_pool = st[1];
      const int spread = st[2] + st[3];  // o'' + a''
      // Demand for a consumer-donated VM: own queue non-empty, or — during
      // outside-donor-unavailable spells — work in excess of own capacity
      // (it is either queued already or will queue at the next arrivals).
      const bool queued = st[0] > n_ - s_pool ||
                          (st[4] == 0 && st[0] + st[2] > n_ - s_pool);
      const auto& h = hyper_.pmf(spread);
      for (int a_loc = 0; a_loc < static_cast<int>(h.size()); ++a_loc) {
        const double hp = h[static_cast<std::size_t>(a_loc)];
        if (hp == 0.0) continue;
        Acc& cell = acc[{a_loc, s_pool + spread - a_loc}];
        if (cell.avail_weight.empty()) cell.avail_weight.assign(claims, 0.0);
        cell.weight += w * hp;
        if (queued) cell.demand_weight += w * hp;
        // Donatable with c extra VMs already claimed by the consumer:
        // a free VM beyond own work + claims, and spare share capacity.
        for (std::size_t c = 0; c < claims; ++c) {
          const int used = s_pool + static_cast<int>(c);
          if (st[0] + used < n_ && used < share_) {
            cell.avail_weight[c] += w * hp;
          }
        }
      }
    }
    PairDist dist;
    for (auto& [pair, cell] : acc) {
      if (cell.weight < options_.pair_epsilon) continue;
      for (double& v : cell.avail_weight) v /= cell.weight;
      dist.push_back({pair.first, pair.second, cell.weight,
                      cell.demand_weight / cell.weight,
                      std::move(cell.avail_weight)});
    }
    // Mass-coverage pruning: the hypergeometric split produces long tails of
    // negligible pairs whose only effect is to blow up the generator's
    // fan-out. Keep the highest-probability pairs covering 1 - epsilon of
    // the mass, then renormalize.
    std::sort(dist.begin(), dist.end(),
              [](const AllocPair& a, const AllocPair& b) { return a.p > b.p; });
    double total = 0.0;
    for (const auto& e : dist) total += e.p;
    require(total > 0.0, "ApproxModel: interaction distribution vanished");
    double kept = 0.0;
    std::size_t count = 0;
    while (count < dist.size() &&
           kept < total * (1.0 - options_.pair_coverage_epsilon)) {
      kept += dist[count].p;
      ++count;
    }
    dist.resize(std::max<std::size_t>(count, 1));
    for (auto& e : dist) e.p /= kept;
    return dist;
  }

  /// Performance parameters of this level's SC (valid when this is the
  /// target, i.e., the last level).
  [[nodiscard]] ScMetrics metrics() const {
    ScMetrics m;
    for (std::size_t x = 0; x < index_.size(); ++x) {
      const double p = pi_[x];
      const auto& st = index_.state(x);
      const int q = st[0];
      const int s = st[1];
      const int o = st[2];
      const int own_local = std::min(q, n_ - s);
      m.lent += static_cast<double>(s) * p;
      m.borrowed += static_cast<double>(o) * p;
      m.utilization += static_cast<double>(own_local + s) /
                       static_cast<double>(n_) * p;
      m.forward_prob += forward_frac_[x] * p;
    }
    m.forward_rate = lambda_ * m.forward_prob;
    m.degraded = degraded_;
    return m;
  }

 private:
  using State = markov::StateIndex::State;  // {q, s, o, a}

  [[nodiscard]] int usage_of(std::size_t x) const {
    const auto& st = index_.state(x);
    return st[1] + st[2] + st[3];
  }

  /// Max own-request count q for allocation (s, o): keep q while the SLA
  /// admission probability is non-negligible.
  [[nodiscard]] int q_cap(int s, int o) const {
    return trunc_[static_cast<std::size_t>(n_ - s + o)] - o;
  }

  /// Clamped interaction distribution for the current state. Base level
  /// (no lower model) always yields the deterministic pair (0, 0).
  void interaction_for(const State& st, double t, PairDist& out) {
    out.clear();
    if (lower_ == nullptr) {
      // No modeled aggregate below: the whole pool belongs to outside SCs,
      // whose availability is carried by the environment bit.
      out.push_back({0, 0, 1.0, 0.0, {0.0}});
      return;
    }
    const int q = st[0];
    const int s = st[1];
    const int o = st[2];
    const int a = st[3];
    const int cap_loc = std::min(share_, std::max(n_ - q, s));
    const int cap_rem = pool_ - o;
    const PairDist& raw = lower_->raw_interaction(s + a, t);
    // Clamp and merge duplicates (demand is averaged with probability
    // weights); raw lists are short, so quadratic merge beats a map.
    for (const auto& e : raw) {
      const int al = std::min(e.a_loc, cap_loc);
      const int ar = std::min(e.a_rem, cap_rem);
      bool merged = false;
      for (auto& existing : out) {
        if (existing.a_loc == al && existing.a_rem == ar) {
          const double total = existing.p + e.p;
          existing.demand =
              (existing.demand * existing.p + e.demand * e.p) / total;
          for (std::size_t c = 0; c < existing.avail.size(); ++c) {
            existing.avail[c] =
                (existing.avail[c] * existing.p + e.avail[c] * e.p) / total;
          }
          existing.p += e.p;
          merged = true;
          break;
        }
      }
      if (!merged) {
        out.push_back(e.a_loc == al && e.a_rem == ar
                          ? e
                          : AllocPair{al, ar, e.p, e.demand, e.avail});
      }
    }
  }

  void build(const FederationConfig& config) {
    // State: {q, s, o, a, e} with e the pool-environment bit (stuck at 1
    // when the environment is inactive).
    index_.intern({0, 0, 0, 0, 1});

    struct Edge {
      std::size_t from;
      std::size_t to;
      double rate;
    };
    std::vector<Edge> edges;
    PairDist pairs;

    for (std::size_t current = 0; current < index_.size(); ++current) {
      require(index_.size() <= options_.max_states,
              "ApproxModel: state space exceeds max_states",
              ErrorCode::kBackendUnavailable);
      const State st = index_.state(current);  // copy: interning invalidates
      const int q = st[0];
      const int s = st[1];
      const int o = st[2];
      const int e = st[4];

      auto emit = [&](int nq, int ns, int no, int na, double rate) {
        if (rate <= 0.0) return;
        edges.push_back({current, index_.intern({nq, ns, no, na, e}), rate});
      };

      // Environment flips (outside pool owners becoming busy / available).
      // The 0 -> 1 flip is a donor freeing a VM: if this SC has queued work
      // and pool capacity remains, that VM immediately serves a queued job
      // (the detailed model's donation-on-departure behaviour).
      if (env_.active) {
        if (e == 1 && env_.alpha > 0.0) {
          edges.push_back(
              {current, index_.intern({q, s, o, st[3], 0}), env_.alpha});
        }
        if (e == 0 && env_.beta > 0.0) {
          const bool queued_own = q > n_ - s;
          const int free_beyond =
              (pool_ - lower_share_) -
              std::max(0, (st[3] + o) - lower_share_);
          if (queued_own && free_beyond > 0 && o + st[3] + 1 <= pool_) {
            edges.push_back({current,
                             index_.intern({q - 1, s, o + 1, st[3], 1}),
                             env_.beta});
          } else {
            edges.push_back(
                {current, index_.intern({q, s, o, st[3], 1}), env_.beta});
          }
        }
      }

      // Donation-on-departure by the immediately-lower SC: while this SC has
      // queued work, each service completion at a donatable lower SC frees a
      // VM that serves one queued job. The completion rate is bounded by the
      // lower SC's capacity and offered load.
      if (lower_ != nullptr && q > n_ - s) {
        const double nu =
            std::min(lower_lambda_,
                     static_cast<double>(lower_n_) * lower_mu_);
        if (nu > 0.0) {
          interaction_for(st, 1.0 / nu, pairs);
          for (const auto& [al, ar, w, demand, avail] : pairs) {
            (void)demand;
            if (q + al <= n_) continue;  // queue emptied by the resample
            if (o + ar + 1 > pool_) continue;
            const int claims =
                pool_ > 0 ? std::min(lower_share_,
                                     (o * lower_share_ + pool_ / 2) / pool_)
                          : 0;
            const double p_lower = avail[static_cast<std::size_t>(claims)];
            if (p_lower > 0.0) {
              emit(q - 1, al, o + 1, ar, nu * w * p_lower);
            }
          }
        }
      }

      // ---- C1-C3: arrival of an own customer ---------------------------
      interaction_for(st, 1.0 / lambda_, pairs);
      double fwd = 0.0;
      for (const auto& [al, ar, w, demand, avail] : pairs) {
        (void)demand;
        if (q + al < n_) {
          emit(q + 1, al, o, ar, lambda_ * w);  // C1: free local VM
          continue;
        }
        // C2: borrow from the pool. Units of the immediately-lower SC
        // require it to be donatable given how many of its VMs the consumer
        // already claims (proportional attribution of o); units of every
        // other pool owner are available exactly when the environment bit
        // says some outside donor is idle.
        double borrow_p = 0.0;
        if (o + ar + 1 <= pool_) {
          const int free_beyond_lower =
              (pool_ - lower_share_) - std::max(0, (ar + o) - lower_share_);
          const double p_beyond =
              (free_beyond_lower > 0 && (!env_.active || e == 1)) ? 1.0 : 0.0;
          const int claims =
              pool_ > 0 ? std::min(lower_share_,
                                   (o * lower_share_ + pool_ / 2) / pool_)
                        : 0;
          const double p_lower = avail[static_cast<std::size_t>(claims)];
          borrow_p = 1.0 - (1.0 - p_beyond) * (1.0 - p_lower);
        }
        if (borrow_p > 0.0) {
          emit(q, al, o + 1, ar, lambda_ * w * borrow_p);
        }
        const double rest = w * (1.0 - borrow_p);
        if (rest > 0.0) {
          // C3: federation full; queue w.p. PNF, forward otherwise.
          const double pnf = queueing::prob_no_forward(
              q + o, n_ - al + o, mu_, max_wait_);
          if (q + 1 <= q_cap(al, o)) {
            emit(q + 1, al, o, ar, lambda_ * rest * pnf);
            fwd += rest * (1.0 - pnf);
          } else {
            fwd += rest;  // truncated tail: treated as forwarded
          }
        }
      }
      if (forward_frac_.size() < index_.size()) {
        forward_frac_.resize(index_.size(), 0.0);
      }
      forward_frac_[current] = fwd;

      // ---- C4: departure of an own job served locally -------------------
      const int local_busy = std::min(q, n_ - s);
      if (local_busy > 0) {
        const double rate = static_cast<double>(local_busy) * mu_;
        interaction_for(st, 1.0 / rate, pairs);
        for (const auto& [al, ar, w, demand, avail] : pairs) {
          (void)avail;
          if (q + al > n_) {
            emit(q - 1, al, o, ar, rate * w);  // own queue takes the VM
          } else if (lower_ != nullptr && al < share_) {
            // Lend only if the aggregate actually has queued work.
            emit(q - 1, al + 1, o, ar, rate * w * demand);
            emit(q - 1, al, o, ar, rate * w * (1.0 - demand));
          } else {
            emit(q - 1, al, o, ar, rate * w);
          }
        }
      }

      // ---- C5: departure of an own job served on a borrowed VM ----------
      if (o > 0) {
        const double rate = static_cast<double>(o) * mu_;
        interaction_for(st, 1.0 / rate, pairs);
        for (const auto& [al, ar, w, demand, avail] : pairs) {
          (void)avail;
          if (q + al > n_) {
            // A queued own job moves onto the still-borrowed VM.
            emit(q - 1, al, o, ar, rate * w);
          } else {
            // Freed pool VM: grabbed by the queued aggregate w.p. demand
            // ((o-1) + (ar+1) = o + ar <= B keeps the state legal),
            // returned to the pool otherwise.
            emit(q, al, o - 1, ar + 1, rate * w * demand);
            emit(q, al, o - 1, ar, rate * w * (1.0 - demand));
          }
        }
      }
    }

    forward_frac_.resize(index_.size(), 0.0);

    chain_ = markov::Ctmc(index_.size());
    for (const auto& e : edges) chain_.add_rate(e.from, e.to, e.rate);
    chain_.finalize();

    markov::SolverOptions so;
    so.steady_state.tolerance = options_.steady_state_tolerance;
    so.steady_state.max_iterations = options_.steady_state_max_iterations;
    so.relax_attempts = options_.relax_attempts;
    auto solution = markov::solve_steady_state_guarded(chain_, so);
    if (!solution.converged && options_.throw_on_nonconvergence) {
      throw Error("level steady-state solver exhausted " +
                      std::to_string(solution.iterations) +
                      " iterations (residual " +
                      std::to_string(solution.residual) + ")",
                  ErrorCode::kSolverNonConvergence,
                  "ApproxModel level " + std::to_string(sc_));
    }
    // A level built on top of a degraded lower level inherits the flag: its
    // interaction vectors were derived from an unreliable distribution.
    degraded_ = (lower_ != nullptr && lower_->degraded_) ||
                !solution.converged || solution.relaxations > 0;
    pi_ = std::move(solution.pi);
    (void)config;
  }

  ApproxModelOptions options_;
  std::size_t sc_;
  int n_;
  int share_;
  int pool_;  ///< B_i: shared VMs of all other SCs
  double lambda_;
  double mu_;
  double max_wait_;
  Level* lower_;
  int lower_share_;  ///< S of the level below (0 for the base level)
  int lower_n_;
  double lower_lambda_;
  double lower_mu_;
  PoolEnvironment env_;

  std::vector<int> trunc_;  ///< in-system truncation by effective servers V
  bool degraded_ = false;   ///< solver relaxed/non-converged here or below
  markov::StateIndex index_;
  markov::Ctmc chain_{1};
  std::vector<double> pi_;
  std::vector<double> forward_frac_;

  // Interaction machinery (populated by prepare_interaction).
  HypergeomCache hyper_;
  std::unique_ptr<markov::TransientSolver> transient_;
  std::vector<std::vector<double>> restricted_;  ///< by usage class
  std::vector<int> usage_fallback_;
  std::vector<double> times_;  ///< bucketized consumer event times
  std::map<std::pair<int, double>, PairDist> interaction_cache_;
};

ApproxModel::ApproxModel(FederationConfig config, ApproxModelOptions options)
    : config_(std::move(config)), options_(options) {
  config_.validate();
}

ApproxModel::~ApproxModel() = default;
ApproxModel::ApproxModel(ApproxModel&&) noexcept = default;
ApproxModel& ApproxModel::operator=(ApproxModel&&) noexcept = default;

ScMetrics ApproxModel::solve_target(std::size_t target) {
  return solve_target_sweep(target, {config_.scs[target].lambda})[0];
}

std::vector<ScMetrics> ApproxModel::solve_target_sweep(
    std::size_t target, const std::vector<double>& lambdas) {
  require(target < config_.size(), "ApproxModel: target out of range");
  require(!lambdas.empty(), "ApproxModel: no arrival rates given");

  std::vector<std::size_t> order;
  for (std::size_t j = 0; j < config_.size(); ++j) {
    if (j != target) order.push_back(j);
  }
  order.push_back(target);

  // Standalone donor statistics per SC: idle probability P[q_j < N_j] and
  // the boundary masses pi(N_j - 1), pi(N_j) used to fit the two-state
  // pool-availability environment of each level.
  if (idle_prob_.empty()) {
    idle_prob_.resize(config_.size());
    pi_boundary_.resize(config_.size());
    for (std::size_t j = 0; j < config_.size(); ++j) {
      queueing::NoShareParams params;
      params.num_vms = config_.scs[j].num_vms;
      params.lambda = config_.scs[j].lambda;
      params.mu = config_.scs[j].mu;
      params.max_wait = config_.scs[j].max_wait;
      params.truncation_epsilon = config_.truncation_epsilon;
      const auto solo = queueing::solve_no_share(params);
      const int n = config_.scs[j].num_vms;
      double idle = 0.0;
      for (int q = 0; q < n && q < static_cast<int>(solo.pi.size()); ++q) {
        idle += solo.pi[static_cast<std::size_t>(q)];
      }
      idle_prob_[j] = idle;
      const auto at = [&](int q) {
        return q >= 0 && q < static_cast<int>(solo.pi.size())
                   ? solo.pi[static_cast<std::size_t>(q)]
                   : 0.0;
      };
      pi_boundary_[j] = {at(n - 1), at(n)};
    }
  }

  last_total_states_ = 0;
  std::unique_ptr<Level> prev;
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const std::size_t sc = order[pos];
    const bool is_target = pos + 1 == order.size();
    if (prev) {
      // Candidate mean inter-event times of the consumer chain: arrivals
      // (one per swept rate for the target), local departures (L busy VMs),
      // remote departures (o borrowed VMs), and lower-SC donation events.
      std::vector<double> times;
      if (is_target) {
        for (double lambda : lambdas) times.push_back(1.0 / lambda);
      } else {
        times.push_back(1.0 / config_.scs[sc].lambda);
      }
      for (int l = 1; l <= config_.scs[sc].num_vms; ++l) {
        times.push_back(1.0 / (static_cast<double>(l) * config_.scs[sc].mu));
      }
      const int pool = config_.shared_pool_excluding(sc);
      for (int o = 1; o <= pool; ++o) {
        times.push_back(1.0 / (static_cast<double>(o) * config_.scs[sc].mu));
      }
      const std::size_t low = order[pos - 1];
      const double nu =
          std::min(config_.scs[low].lambda,
                   static_cast<double>(config_.scs[low].num_vms) *
                       config_.scs[low].mu);
      if (nu > 0.0) times.push_back(1.0 / nu);
      prev->prepare_interaction(config_.shares[sc], std::move(times));
    }

    // Fit the two-state availability environment of the pool owners outside
    // {sc, immediate lower}: available -> unavailable when the last idle
    // donor fills up, unavailable -> available when any donor frees a VM.
    PoolEnvironment env;
    double none_idle = 1.0;
    double to_busy_flow = 0.0;
    double to_idle_rate = 0.0;
    for (std::size_t j = 0; j < config_.size(); ++j) {
      if (j == sc || (pos > 0 && j == order[pos - 1])) continue;
      if (config_.shares[j] <= 0) continue;
      env.active = true;
      const double busy_j = 1.0 - idle_prob_[j];
      none_idle *= busy_j;
      double others_busy = 1.0;
      for (std::size_t k = 0; k < config_.size(); ++k) {
        if (k == j || k == sc || (pos > 0 && k == order[pos - 1])) continue;
        if (config_.shares[k] <= 0) continue;
        others_busy *= 1.0 - idle_prob_[k];
      }
      to_busy_flow += config_.scs[j].lambda * pi_boundary_[j].first *
                      others_busy;
      if (busy_j > 1e-12) {
        to_idle_rate += static_cast<double>(config_.scs[j].num_vms) *
                        config_.scs[j].mu * pi_boundary_[j].second / busy_j;
      }
    }
    if (env.active) {
      const double p_avail = 1.0 - none_idle;
      env.alpha = p_avail > 1e-12 ? to_busy_flow / p_avail : 0.0;
      env.beta = to_idle_rate;
      // Cap the flip rates relative to the level's own dynamics so that the
      // uniformization rate (and with it every transient solve) stays
      // bounded; faster flips are indistinguishable from averaged
      // availability anyway.
      const double cap = 2.0 * static_cast<double>(config_.scs[sc].num_vms) *
                         config_.scs[sc].mu;
      env.alpha = std::min(env.alpha, cap);
      env.beta = std::min(env.beta, cap);
      if (env.alpha <= 0.0 || env.beta <= 0.0) {
        // Degenerate fit (donors essentially always idle or always busy):
        // pin the environment to the dominant regime.
        env.active = env.alpha > 0.0;
        env.alpha = std::max(env.alpha, 0.0);
        env.beta = std::max(env.beta, 1e-9);
      }
    }

    if (is_target) {
      // One target chain per swept arrival rate, on top of the shared lower
      // hierarchy.
      std::vector<ScMetrics> results;
      results.reserve(lambdas.size());
      for (double lambda : lambdas) {
        FederationConfig cfg = config_;
        cfg.scs[target].lambda = lambda;
        auto top =
            std::make_unique<Level>(cfg, options_, sc, prev.get(), env);
        last_chain_states_ = top->num_states();
        last_total_states_ += top->num_states();
        results.push_back(top->metrics());
      }
      return results;
    }
    auto current =
        std::make_unique<Level>(config_, options_, sc, prev.get(), env);
    last_total_states_ += current->num_states();
    // The lower level must stay alive during construction of `current`
    // (interaction queries) but can be dropped afterwards.
    prev = std::move(current);
  }
  // order always ends with the target, so the loop returns before this point
  // unless the federation has a single SC handled above.
  require(false, "ApproxModel: unreachable");
  return {};
}

FederationMetrics ApproxModel::solve_all() {
  FederationMetrics metrics(config_.size());
  bool any_degraded = false;
  for (std::size_t i = 0; i < config_.size(); ++i) {
    metrics[i] = solve_target(i);
    any_degraded = any_degraded || metrics[i].degraded;
  }
  if (any_degraded) {
    metrics.degradation =
        "approx model: steady state relaxed or not converged on some level";
  }
  return metrics;
}

ScMetrics solve_approx_target(const FederationConfig& config,
                              std::size_t target,
                              const ApproxModelOptions& options) {
  ApproxModel model(config, options);
  return model.solve_target(target);
}

FederationMetrics solve_approx(const FederationConfig& config,
                               const ApproxModelOptions& options) {
  ApproxModel model(config, options);
  return model.solve_all();
}

}  // namespace scshare::federation
