// Approximate hierarchical performance model of the federation
// (paper Sect. III-C).
//
// For a target SC, the SCs are ordered with the target last and a sequence of
// small CTMCs M^1, ..., M^K is built. M^i describes SC i interacting with an
// aggregate of SCs {1..i-1} whose behaviour is summarized by the solution of
// M^{i-1}:
//
//   state of M^i:  (q, s, o, a)
//     q  own requests at SC i (in service locally + queued), truncated where
//        the SLA admission probability PNF vanishes,
//     s  VMs of SC i used by SCs {1..i-1}                (bounded by S_i),
//     o  shared VMs used by SC i                          (o + a <= B_i),
//     a  shared VMs (not SC i's) used by SCs {1..i-1}.
//
// At every event of M^i (arrival, local departure, remote departure) the
// aggregate allocation (s, a) is resampled from an "interaction probability
// vector": the distribution of (a_loc, a_rem) obtained by conditioning
// M^{i-1}'s stationary distribution on the current total usage s + a,
// evolving it for the mean inter-event time with uniformization, and
// splitting the resulting aggregate usage across pools hypergeometrically
// (VMs are homogeneous, so units are exchangeable across pools). The split
// and the conditioning are this implementation's reading of the paper's
// "Conditional Probability Distribution" step; see DESIGN.md.
//
// Complexity is linear in the number of SCs (one chain per SC) instead of
// exponential (one joint chain), at the cost of the documented approximation
// error (paper: ~10% at moderate load, ~20% at rho > 0.9).
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "federation/config.hpp"
#include "federation/metrics.hpp"

namespace scshare::federation {

struct ApproxModelOptions {
  double steady_state_tolerance = 1e-10;
  /// Iteration budget of the per-level steady-state solver (exposed so
  /// callers — and tests — can force the non-convergence path).
  std::size_t steady_state_max_iterations = 200000;
  /// Tolerance-relaxation retries when a level's solver misses the requested
  /// tolerance (see markov::solve_steady_state_guarded); accepted-relaxed
  /// levels mark the resulting metrics degraded.
  std::size_t relax_attempts = 2;
  /// When true a non-converged level raises kSolverNonConvergence instead
  /// of producing degraded metrics.
  bool throw_on_nonconvergence = false;
  /// Interaction pairs with probability below this are pruned (renormalized).
  double pair_epsilon = 1e-7;
  /// Keep only the highest-probability interaction pairs covering
  /// 1 - pair_coverage_epsilon of the mass (caps the generator fan-out).
  double pair_coverage_epsilon = 1e-4;
  /// Inter-event times are clamped to this horizon before transient
  /// evolution: beyond roughly one relaxation time the conditioned
  /// distribution barely changes, while the uniformization window (and with
  /// it the dominant mat-vec cost) keeps growing linearly in t.
  double interaction_horizon = 0.5;
  /// Geometric bucketing ratio for inter-event times in the interaction
  /// cache; values <= 1 disable bucketing (exact times, more transient
  /// solves).
  double time_bucket_ratio = 1.2;
  /// Truncation of the uniformization Poisson window.
  double transient_epsilon = 1e-10;
  std::size_t max_states = 2'000'000;
};

/// Hierarchical approximate model. Construction validates the configuration;
/// solve_target() builds and solves the chain hierarchy.
class ApproxModel {
 public:
  explicit ApproxModel(FederationConfig config, ApproxModelOptions options = {});
  ~ApproxModel();
  ApproxModel(ApproxModel&&) noexcept;
  ApproxModel& operator=(ApproxModel&&) noexcept;

  /// Performance metrics of SC `target`, computed with the target as the last
  /// level of the hierarchy (all other SCs in index order below it).
  [[nodiscard]] ScMetrics solve_target(std::size_t target);

  /// Metrics of SC `target` for several arrival rates, reusing the lower
  /// hierarchy across the sweep (the dominant cost). The availability
  /// environments of the lower levels are fitted with the target's
  /// configured arrival rate, a second-order effect documented in DESIGN.md.
  [[nodiscard]] std::vector<ScMetrics> solve_target_sweep(
      std::size_t target, const std::vector<double>& lambdas);

  /// Metrics of every SC (K independent hierarchy solves, as each SC would
  /// compute on its own in a decentralized deployment).
  [[nodiscard]] FederationMetrics solve_all();

  /// Number of states of the most recently solved (target) chain.
  [[nodiscard]] std::size_t last_chain_states() const {
    return last_chain_states_;
  }

  /// Total states across all levels of the most recent solve_target().
  [[nodiscard]] std::size_t last_total_states() const {
    return last_total_states_;
  }

 private:
  class Level;  // one M^i (defined in the .cpp)

  FederationConfig config_;
  ApproxModelOptions options_;
  /// Standalone idle probability per SC (donor prior), computed lazily.
  std::vector<double> idle_prob_;
  /// Standalone boundary masses (pi(N-1), pi(N)) per SC.
  std::vector<std::pair<double, double>> pi_boundary_;
  std::size_t last_chain_states_ = 0;
  std::size_t last_total_states_ = 0;
};

/// One-call helper for a single SC.
[[nodiscard]] ScMetrics solve_approx_target(const FederationConfig& config,
                                            std::size_t target,
                                            const ApproxModelOptions& options = {});

/// One-call helper for all SCs.
[[nodiscard]] FederationMetrics solve_approx(
    const FederationConfig& config, const ApproxModelOptions& options = {});

}  // namespace scshare::federation
