// Exact CTMC of the federation (paper Sect. III-B).
//
// State: own-customer counts q_i (in service locally + queued) for every SC,
// plus the borrow matrix s_{i,j} (i != j) giving the number of VMs at SC j
// serving SC i's requests. The diagonal s_{j,j} = sum_i s_{i,j} (VMs lent by
// SC j) is derived. Queues are truncated where the SLA admission probability
// becomes negligible.
//
// The state space grows exponentially with the number of SCs, so this model
// is only practical for small federations; it exists as the ground truth for
// validating the simulator and the approximate model.
#pragma once

#include <cstddef>
#include <vector>

#include "federation/config.hpp"
#include "federation/metrics.hpp"
#include "markov/state_index.hpp"

namespace scshare::federation {

struct DetailedModelOptions {
  double steady_state_tolerance = 1e-12;
  /// Iteration budget of the steady-state solver (exposed so callers — and
  /// tests — can force the non-convergence path).
  std::size_t max_iterations = 200000;
  /// Tolerance-relaxation retries when the solver misses the requested
  /// tolerance (see markov::solve_steady_state_guarded); accepted-relaxed
  /// results are marked degraded.
  std::size_t relax_attempts = 2;
  /// When true a non-converged solve raises kSolverNonConvergence instead
  /// of returning degraded metrics.
  bool throw_on_nonconvergence = false;
  /// Refuse to build chains larger than this many states.
  std::size_t max_states = 5'000'000;
};

class DetailedModel {
 public:
  DetailedModel(FederationConfig config, DetailedModelOptions options = {});

  /// Builds the chain, solves for the stationary distribution, and returns
  /// per-SC metrics.
  [[nodiscard]] FederationMetrics solve();

  /// Number of states enumerated by the last solve() (0 before).
  [[nodiscard]] std::size_t num_states() const { return num_states_; }

 private:
  FederationConfig config_;
  DetailedModelOptions options_;
  std::vector<int> q_max_;  ///< per-SC queue truncation bound
  std::size_t num_states_ = 0;
};

/// One-call helper.
[[nodiscard]] FederationMetrics solve_detailed(
    const FederationConfig& config, const DetailedModelOptions& options = {});

}  // namespace scshare::federation
