#include "federation/detailed_model.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/error.hpp"
#include "markov/ctmc.hpp"
#include "markov/steady_state.hpp"
#include "queueing/forwarding.hpp"

namespace scshare::federation {
namespace {

using State = markov::StateIndex::State;

/// View over the packed state vector: [q_0..q_{K-1} | s_{i,j} for i != j].
class StateView {
 public:
  StateView(const State& s, std::size_t k) : s_(s), k_(k) {}

  [[nodiscard]] int q(std::size_t i) const {
    return s_[i];
  }

  /// VMs at SC j serving SC i's requests (i != j).
  [[nodiscard]] int borrow(std::size_t i, std::size_t j) const {
    return s_[k_ + flat(i, j)];
  }

  /// VMs lent by SC j (= sum over borrowers).
  [[nodiscard]] int lent(std::size_t j) const {
    int total = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      if (i != j) total += borrow(i, j);
    }
    return total;
  }

  /// VMs borrowed by SC i from everywhere.
  [[nodiscard]] int borrowed(std::size_t i) const {
    int total = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      if (j != i) total += borrow(i, j);
    }
    return total;
  }

  [[nodiscard]] std::size_t flat(std::size_t i, std::size_t j) const {
    SCSHARE_ASSERT(i != j, "StateView::flat: diagonal not stored");
    return i * (k_ - 1) + (j < i ? j : j - 1);
  }

 private:
  const State& s_;
  std::size_t k_;
};

struct Derived {
  int own_local = 0;  ///< own jobs in service on own VMs
  int queued = 0;     ///< own jobs waiting
  int free = 0;       ///< idle own VMs
  int lent = 0;
  int borrowed = 0;
};

Derived derive(const StateView& v, const FederationConfig& cfg,
               std::size_t i) {
  Derived d;
  d.lent = v.lent(i);
  d.borrowed = v.borrowed(i);
  const int capacity = cfg.scs[i].num_vms - d.lent;
  d.own_local = std::min(v.q(i), capacity);
  d.queued = v.q(i) - d.own_local;
  d.free = capacity - d.own_local;
  return d;
}

}  // namespace

DetailedModel::DetailedModel(FederationConfig config,
                             DetailedModelOptions options)
    : config_(std::move(config)), options_(options) {
  config_.validate();
  const std::size_t k = config_.size();
  q_max_.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    // The queue of SC i can only grow while the whole federation is full; the
    // SLA check then uses at most N_i + B_i effective servers, so truncating
    // against that capacity is conservative.
    const int effective = config_.scs[i].num_vms + config_.shared_pool_excluding(i);
    q_max_[i] = queueing::truncation_queue_length(
        effective, config_.scs[i].mu, config_.scs[i].max_wait,
        config_.truncation_epsilon);
  }
}

FederationMetrics DetailedModel::solve() {
  const std::size_t k = config_.size();
  markov::StateIndex index;

  State initial(k + k * (k - 1), 0);
  index.intern(initial);

  struct Edge {
    std::size_t from;
    std::size_t to;
    double rate;
  };
  std::vector<Edge> edges;

  std::vector<std::size_t> candidates;

  // Breadth-first exploration of the reachable state space.
  for (std::size_t current = 0; current < index.size(); ++current) {
    // kBackendUnavailable: a fallback chain reacts by descending to a
    // coarser model instead of giving up on the evaluation.
    require(index.size() <= options_.max_states,
            "DetailedModel: state space exceeds max_states",
            ErrorCode::kBackendUnavailable);
    // Copy: interning new states may invalidate references into the index.
    const State state = index.state(current);
    const StateView view(state, k);

    std::vector<Derived> d(k);
    for (std::size_t i = 0; i < k; ++i) d[i] = derive(view, config_, i);

    auto emit = [&](State next, double rate) {
      if (rate <= 0.0) return;
      edges.push_back({current, index.intern(next), rate});
    };

    for (std::size_t i = 0; i < k; ++i) {
      const double lambda = config_.scs[i].lambda;
      const double mu = config_.scs[i].mu;

      // ---- Arrival of an SC-i customer --------------------------------
      if (d[i].free > 0) {
        State next = state;
        ++next[i];
        emit(std::move(next), lambda);
      } else {
        // Donors: free VM + spare sharing capacity, least-loaded first.
        candidates.clear();
        int best = std::numeric_limits<int>::max();
        for (std::size_t j = 0; j < k; ++j) {
          if (j == i || d[j].free <= 0 || d[j].lent >= config_.shares[j]) {
            continue;
          }
          const int load = view.q(j) + d[j].lent;
          if (load < best) {
            best = load;
            candidates.clear();
          }
          if (load == best) candidates.push_back(j);
        }
        if (!candidates.empty()) {
          const double rate = lambda / static_cast<double>(candidates.size());
          for (std::size_t j : candidates) {
            State next = state;
            ++next[k + view.flat(i, j)];
            emit(std::move(next), rate);
          }
        } else if (view.q(i) < q_max_[i]) {
          // Federation full: queue with probability PNF, forward otherwise
          // (forwarding leaves the state unchanged).
          const int servers =
              config_.scs[i].num_vms - d[i].lent + d[i].borrowed;
          const int in_system = view.q(i) + d[i].borrowed;
          const double p_queue = queueing::prob_no_forward(
              in_system, servers, mu, config_.scs[i].max_wait);
          State next = state;
          ++next[i];
          emit(std::move(next), lambda * p_queue);
        }
      }

      // ---- Departure of an own-local job ------------------------------
      if (d[i].own_local > 0) {
        const double rate = static_cast<double>(d[i].own_local) * mu;
        if (d[i].queued > 0) {
          // Freed VM immediately serves the own queue.
          State next = state;
          --next[i];
          emit(std::move(next), rate);
        } else {
          // Own queue empty: lend the freed VM to the longest queue.
          candidates.clear();
          int best = 0;
          if (d[i].lent < config_.shares[i]) {
            for (std::size_t j = 0; j < k; ++j) {
              if (j == i || d[j].queued <= 0) continue;
              if (d[j].queued > best) {
                best = d[j].queued;
                candidates.clear();
              }
              if (d[j].queued == best) candidates.push_back(j);
            }
          }
          if (candidates.empty()) {
            State next = state;
            --next[i];
            emit(std::move(next), rate);
          } else {
            const double split =
                rate / static_cast<double>(candidates.size());
            for (std::size_t j : candidates) {
              State next = state;
              --next[i];
              --next[j];
              ++next[k + view.flat(j, i)];
              emit(std::move(next), split);
            }
          }
        }
      }

      // ---- Departure of a borrowed job (SC i's job at host j) ----------
      for (std::size_t j = 0; j < k; ++j) {
        if (j == i) continue;
        const int using_vms = view.borrow(i, j);
        if (using_vms == 0) continue;
        const double rate = static_cast<double>(using_vms) * mu;
        // After the departure the host j has one freed VM.
        if (d[j].queued > 0) {
          // Host's own queue takes it (own_local is derived, so only the
          // borrow entry changes).
          State next = state;
          --next[k + view.flat(i, j)];
          emit(std::move(next), rate);
        } else {
          // Host queue empty: lend again if within the (unchanged) cap.
          candidates.clear();
          int best = 0;
          if (d[j].lent - 1 < config_.shares[j]) {
            for (std::size_t m = 0; m < k; ++m) {
              if (m == j) continue;
              // SC i's queue state is unaffected by this departure (the job
              // was in service remotely, not in q_i).
              const int queued_m = d[m].queued;
              if (queued_m <= 0) continue;
              if (queued_m > best) {
                best = queued_m;
                candidates.clear();
              }
              if (queued_m == best) candidates.push_back(m);
            }
          }
          if (candidates.empty()) {
            State next = state;
            --next[k + view.flat(i, j)];
            emit(std::move(next), rate);
          } else {
            const double split =
                rate / static_cast<double>(candidates.size());
            for (std::size_t m : candidates) {
              State next = state;
              --next[k + view.flat(i, j)];
              --next[m];
              ++next[k + view.flat(m, j)];
              emit(std::move(next), split);
            }
          }
        }
      }
    }
  }

  num_states_ = index.size();

  markov::Ctmc chain(index.size());
  for (const auto& e : edges) chain.add_rate(e.from, e.to, e.rate);
  chain.finalize();

  markov::SolverOptions so;
  so.steady_state.tolerance = options_.steady_state_tolerance;
  so.steady_state.max_iterations = options_.max_iterations;
  so.relax_attempts = options_.relax_attempts;
  const auto solution = markov::solve_steady_state_guarded(chain, so);
  if (!solution.converged && options_.throw_on_nonconvergence) {
    throw Error("steady-state solver exhausted " +
                    std::to_string(solution.iterations) +
                    " iterations (residual " +
                    std::to_string(solution.residual) + ")",
                ErrorCode::kSolverNonConvergence, "DetailedModel");
  }

  FederationMetrics metrics(k);
  if (!solution.converged) {
    metrics.mark_degraded("detailed model: steady state not converged "
                          "(residual " + std::to_string(solution.residual) +
                          ")");
  } else if (solution.relaxations > 0) {
    metrics.mark_degraded("detailed model: steady state accepted at relaxed "
                          "tolerance " +
                          std::to_string(solution.tolerance_used));
  }
  for (std::size_t s = 0; s < index.size(); ++s) {
    const double p = solution.pi[s];
    if (p == 0.0) continue;
    const State& state = index.state(s);
    const StateView view(state, k);
    // Recompute whether an arrival at SC i in this state would face the
    // queue-or-forward decision.
    std::vector<Derived> d(k);
    bool any_free_with_capacity = false;
    for (std::size_t i = 0; i < k; ++i) d[i] = derive(view, config_, i);
    for (std::size_t i = 0; i < k; ++i) {
      ScMetrics& m = metrics[i];
      m.lent += static_cast<double>(d[i].lent) * p;
      m.borrowed += static_cast<double>(d[i].borrowed) * p;
      m.utilization += static_cast<double>(d[i].own_local + d[i].lent) /
                       static_cast<double>(config_.scs[i].num_vms) * p;
      // Forwarding happens only when SC i has no free VM and no donor exists.
      if (d[i].free > 0) continue;
      any_free_with_capacity = false;
      for (std::size_t j = 0; j < k; ++j) {
        if (j != i && d[j].free > 0 && d[j].lent < config_.shares[j]) {
          any_free_with_capacity = true;
          break;
        }
      }
      if (any_free_with_capacity) continue;
      const int servers = config_.scs[i].num_vms - d[i].lent + d[i].borrowed;
      const int in_system = view.q(i) + d[i].borrowed;
      const double p_queue = queueing::prob_no_forward(
          in_system, servers, config_.scs[i].mu, config_.scs[i].max_wait);
      double forward_fraction = 1.0 - p_queue;
      if (view.q(i) >= q_max_[i]) forward_fraction = 1.0;  // truncated tail
      m.forward_prob += forward_fraction * p;
    }
  }
  for (std::size_t i = 0; i < k; ++i) {
    metrics[i].forward_rate = config_.scs[i].lambda * metrics[i].forward_prob;
  }
  return metrics;
}

FederationMetrics solve_detailed(const FederationConfig& config,
                                 const DetailedModelOptions& options) {
  DetailedModel model(config, options);
  return model.solve();
}

}  // namespace scshare::federation
