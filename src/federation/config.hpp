// Configuration types shared by every performance backend (detailed CTMC,
// approximate hierarchical model, discrete-event simulator).
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace scshare::federation {

/// Static description of one small cloud (paper Sect. II-A).
struct ScConfig {
  int num_vms = 10;      ///< N_i: homogeneous VMs owned by the SC
  double lambda = 1.0;   ///< Poisson arrival rate of VM requests
  double mu = 1.0;       ///< exponential service rate of each request
  double max_wait = 0.2; ///< Q_i: SLA bound on waiting time before service
};

/// A federation: per-SC configs plus the sharing vector S.
struct FederationConfig {
  std::vector<ScConfig> scs;
  std::vector<int> shares;  ///< S_i: max VMs SC i lends at any instant

  /// PNF threshold below which queues are truncated in Markov models.
  double truncation_epsilon = 1e-9;

  [[nodiscard]] std::size_t size() const { return scs.size(); }

  /// Throws scshare::Error when the configuration is inconsistent.
  void validate() const {
    require(!scs.empty(), "FederationConfig: at least one SC required");
    require(shares.size() == scs.size(),
            "FederationConfig: shares must match number of SCs");
    for (std::size_t i = 0; i < scs.size(); ++i) {
      const auto& sc = scs[i];
      require(sc.num_vms > 0, "ScConfig: num_vms must be positive");
      require(sc.lambda > 0.0, "ScConfig: lambda must be positive");
      require(sc.mu > 0.0, "ScConfig: mu must be positive");
      require(sc.max_wait >= 0.0, "ScConfig: max_wait must be non-negative");
      require(shares[i] >= 0 && shares[i] <= sc.num_vms,
              "FederationConfig: share must lie in [0, num_vms]");
    }
    require(truncation_epsilon > 0.0 && truncation_epsilon < 1.0,
            "FederationConfig: truncation_epsilon in (0, 1)");
  }

  /// Total VMs shared by SCs other than `i` (B_i in the paper).
  [[nodiscard]] int shared_pool_excluding(std::size_t i) const {
    int total = 0;
    for (std::size_t j = 0; j < shares.size(); ++j) {
      if (j != i) total += shares[j];
    }
    return total;
  }
};

}  // namespace scshare::federation
