// Configuration types shared by every performance backend (detailed CTMC,
// approximate hierarchical model, discrete-event simulator).
#pragma once

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace scshare::federation {

/// Static description of one small cloud (paper Sect. II-A).
struct ScConfig {
  int num_vms = 10;      ///< N_i: homogeneous VMs owned by the SC
  double lambda = 1.0;   ///< Poisson arrival rate of VM requests
  double mu = 1.0;       ///< exponential service rate of each request
  double max_wait = 0.2; ///< Q_i: SLA bound on waiting time before service
};

/// A federation: per-SC configs plus the sharing vector S.
struct FederationConfig {
  std::vector<ScConfig> scs;
  std::vector<int> shares;  ///< S_i: max VMs SC i lends at any instant

  /// PNF threshold below which queues are truncated in Markov models.
  double truncation_epsilon = 1e-9;

  [[nodiscard]] std::size_t size() const { return scs.size(); }

  /// Throws scshare::Error (code kInvalidConfig) when the configuration is
  /// inconsistent. Error messages name the offending SC index and field so
  /// bad inputs are rejected at the boundary instead of surfacing later as
  /// inscrutable solver failures deep in the stack.
  void validate() const {
    require(!scs.empty(), "FederationConfig: at least one SC required");
    require(shares.size() == scs.size(),
            "FederationConfig: shares has " + std::to_string(shares.size()) +
                " entries but there are " + std::to_string(scs.size()) +
                " SCs");
    for (std::size_t i = 0; i < scs.size(); ++i) {
      const auto& sc = scs[i];
      const std::string at = "FederationConfig: scs[" + std::to_string(i) + "]";
      require(sc.num_vms > 0,
              at + ".num_vms must be positive (got " +
                  std::to_string(sc.num_vms) + "); zero-server SCs cannot " +
                  "serve or share anything");
      require(std::isfinite(sc.lambda) && sc.lambda > 0.0,
              at + ".lambda must be positive and finite (got " +
                  std::to_string(sc.lambda) + ")");
      require(std::isfinite(sc.mu) && sc.mu > 0.0,
              at + ".mu must be positive and finite (got " +
                  std::to_string(sc.mu) + ")");
      require(std::isfinite(sc.max_wait) && sc.max_wait >= 0.0,
              at + ".max_wait must be non-negative and finite (got " +
                  std::to_string(sc.max_wait) + ")");
      require(shares[i] >= 0,
              at + " share S_i must be non-negative (got " +
                  std::to_string(shares[i]) + ")");
      require(shares[i] <= sc.num_vms,
              at + " share S_i = " + std::to_string(shares[i]) +
                  " exceeds num_vms = " + std::to_string(sc.num_vms));
    }
    require(std::isfinite(truncation_epsilon) && truncation_epsilon > 0.0 &&
                truncation_epsilon < 1.0,
            "FederationConfig: truncation_epsilon must lie in (0, 1), got " +
                std::to_string(truncation_epsilon));
  }

  /// Total VMs shared by SCs other than `i` (B_i in the paper).
  [[nodiscard]] int shared_pool_excluding(std::size_t i) const {
    int total = 0;
    for (std::size_t j = 0; j < shares.size(); ++j) {
      if (j != i) total += shares[j];
    }
    return total;
  }
};

}  // namespace scshare::federation
