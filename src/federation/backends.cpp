// Out-of-line backend machinery. This translation unit anchors the vtable of
// PerformanceBackend (key function idiom) and implements the instrumented
// CachingBackend.
#include "federation/backend.hpp"

#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace scshare::federation {
namespace {

/// Global cache/backend instruments shared by every CachingBackend instance
/// (per-instance numbers stay available through hits()/misses()).
struct CacheObs {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Histogram& eval_seconds;

  CacheObs()
      : hits(obs::MetricsRegistry::global().counter("federation.cache.hits")),
        misses(obs::MetricsRegistry::global().counter(
            "federation.cache.misses")),
        evictions(obs::MetricsRegistry::global().counter(
            "federation.cache.evictions")),
        eval_seconds(obs::MetricsRegistry::global().histogram(
            "federation.backend.eval_seconds")) {}
};

CacheObs& cache_obs() {
  static CacheObs instruments;
  return instruments;
}

}  // namespace

CachingBackend::CachingBackend(std::unique_ptr<PerformanceBackend> inner,
                               std::size_t max_entries)
    : inner_(std::move(inner)), max_entries_(max_entries) {}

FederationMetrics CachingBackend::evaluate(const FederationConfig& config) {
  CacheObs& instruments = cache_obs();
  const auto it = cache_.find(config.shares);
  if (it != cache_.end()) {
    ++hits_;
    instruments.hits.add();
    if (auto* sink = obs::trace_sink()) {
      sink->emit(obs::BackendEvalEvent{std::string(inner_->name()),
                                       config.shares, /*cache_hit=*/true,
                                       0.0});
    }
    return it->second;
  }

  ++misses_;
  instruments.misses.add();
  const obs::Stopwatch stopwatch;
  auto metrics = inner_->evaluate(config);
  const double wall_seconds = stopwatch.seconds();
  instruments.eval_seconds.observe(wall_seconds);
  if (auto* sink = obs::trace_sink()) {
    sink->emit(obs::BackendEvalEvent{std::string(inner_->name()),
                                     config.shares, /*cache_hit=*/false,
                                     wall_seconds});
  }

  if (max_entries_ > 0 && cache_.size() >= max_entries_) {
    // FIFO eviction: drop the oldest inserted sharing vector.
    cache_.erase(insertion_order_.front());
    insertion_order_.pop_front();
    ++evictions_;
    instruments.evictions.add();
  }
  cache_.emplace(config.shares, metrics);
  if (max_entries_ > 0) insertion_order_.push_back(config.shares);
  return metrics;
}

}  // namespace scshare::federation
