// Out-of-line backend machinery. This translation unit implements the
// ComputeBackend executor fan-out and the instrumented concurrent
// CachingBackend.
#include "federation/backend.hpp"

#include <string>
#include <utility>

#include "common/cancel.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace scshare::federation {
namespace {

/// Global cache/backend instruments shared by every CachingBackend instance
/// (per-instance numbers stay available through hits()/misses()).
struct CacheObs {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Histogram& eval_seconds;

  CacheObs()
      : hits(obs::MetricsRegistry::global().counter("federation.cache.hits")),
        misses(obs::MetricsRegistry::global().counter(
            "federation.cache.misses")),
        evictions(obs::MetricsRegistry::global().counter(
            "federation.cache.evictions")),
        eval_seconds(obs::MetricsRegistry::global().histogram(
            "federation.backend.eval_seconds")) {}
};

CacheObs& cache_obs() {
  static CacheObs instruments;
  return instruments;
}

/// Batch-dispatch instruments of the leaf backends.
struct BatchObs {
  obs::Counter& calls;
  obs::Counter& requests;

  BatchObs()
      : calls(obs::MetricsRegistry::global().counter("exec.batch.calls")),
        requests(
            obs::MetricsRegistry::global().counter("exec.batch.requests")) {}
};

BatchObs& batch_obs() {
  static BatchObs instruments;
  return instruments;
}

/// FNV-1a over the sharing vector: the cache's shard selector.
std::size_t hash_shares(const std::vector<int>& shares) {
  std::uint64_t h = 1469598103934665603ULL;
  for (int s : shares) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(s));
    h *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(h);
}

}  // namespace

std::vector<EvalResult> ComputeBackend::evaluate_batch(
    std::span<const EvalRequest> requests) {
  const obs::Span batch_span("backend.eval_batch");
  BatchObs& instruments = batch_obs();
  instruments.calls.add();
  instruments.requests.add(requests.size());

  std::vector<EvalResult> results(requests.size());
  const auto eval_one = [&](std::size_t i) {
    // Runs on a pool worker when an executor is attached; parents under the
    // eval_batch span via the pool's ScopedSpanParent adoption.
    const obs::Span span("backend.eval");
    EvalResult& result = results[i];
    result.tag = requests[i].tag;
    // Short-circuit before computing: once the request's deadline fired,
    // every remaining candidate in the batch resolves instantly as a typed
    // cancellation instead of burning a full solve each.
    if (current_cancel_token().cancelled()) {
      result.ok = false;
      result.code = ErrorCode::kCancelled;
      result.error = "evaluation cancelled before start";
      return;
    }
    const obs::Stopwatch stopwatch;
    try {
      result.metrics = compute(requests[i].config);
      result.ok = true;
    } catch (const Error& e) {
      result.ok = false;
      result.code = e.code();
      result.error = e.what();
    }
    result.wall_seconds = stopwatch.seconds();
  };

  if (executor_ != nullptr && requests.size() > 1) {
    if (auto* sink = obs::trace_sink()) {
      sink->emit(obs::ExecBatchEvent{
          std::string(name()), static_cast<std::uint64_t>(requests.size()),
          static_cast<std::uint64_t>(executor_->concurrency())});
    }
    executor_->parallel_for(requests.size(), eval_one);
  } else {
    for (std::size_t i = 0; i < requests.size(); ++i) eval_one(i);
  }
  return results;
}

CachingBackend::CachingBackend(std::unique_ptr<PerformanceBackend> inner,
                               std::size_t max_entries)
    : inner_(std::move(inner)), max_entries_(max_entries) {}

CachingBackend::Shard& CachingBackend::shard_for(const std::vector<int>& key) {
  return shards_[hash_shares(key) % kShards];
}

bool CachingBackend::find(const std::vector<int>& key,
                          FederationMetrics& out) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return false;
  out = it->second;
  return true;
}

void CachingBackend::insert(const std::vector<int>& key,
                            const FederationMetrics& metrics) {
  {
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (!shard.entries.emplace(key, metrics).second) return;  // racing insert
  }
  size_.fetch_add(1, std::memory_order_relaxed);
  if (max_entries_ == 0) return;

  // FIFO bound. The order queue has its own lock and the victim's shard is
  // locked only after the queue lock is released — no lock is ever nested in
  // another, so concurrent inserts into different shards cannot deadlock.
  std::vector<int> victim;
  bool have_victim = false;
  {
    const std::lock_guard<std::mutex> lock(order_mutex_);
    insertion_order_.push_back(key);
    if (insertion_order_.size() > max_entries_) {
      victim = std::move(insertion_order_.front());
      insertion_order_.pop_front();
      have_victim = true;
    }
  }
  if (!have_victim) return;
  bool erased = false;
  {
    Shard& shard = shard_for(victim);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    erased = shard.entries.erase(victim) > 0;
  }
  if (erased) {
    size_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    cache_obs().evictions.add();
  }
}

std::vector<EvalResult> CachingBackend::evaluate_batch(
    std::span<const EvalRequest> requests) {
  CacheObs& instruments = cache_obs();
  std::vector<EvalResult> results(requests.size());

  // Pass 1 (caller thread, request order): serve hits, collect misses.
  std::vector<std::size_t> miss_indices;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EvalResult& result = results[i];
    result.tag = requests[i].tag;
    if (find(requests[i].config.shares, result.metrics)) {
      result.ok = true;
      hits_.fetch_add(1, std::memory_order_relaxed);
      instruments.hits.add();
      if (auto* sink = obs::trace_sink()) {
        sink->emit(obs::BackendEvalEvent{std::string(inner_->name()),
                                         requests[i].config.shares,
                                         /*cache_hit=*/true, 0.0});
      }
    } else {
      misses_.fetch_add(1, std::memory_order_relaxed);
      instruments.misses.add();
      miss_indices.push_back(i);
    }
  }
  if (miss_indices.empty()) return results;

  // Pass 2: one inner batch over the misses (this is where a parallel leaf
  // backend fans out).
  std::vector<EvalRequest> miss_requests;
  miss_requests.reserve(miss_indices.size());
  for (std::size_t idx : miss_indices) miss_requests.push_back(requests[idx]);
  std::vector<EvalResult> miss_results = inner_->evaluate_batch(miss_requests);

  // Pass 3 (caller thread, request order): account, memoize successes.
  for (std::size_t k = 0; k < miss_indices.size(); ++k) {
    const std::size_t idx = miss_indices[k];
    results[idx] = std::move(miss_results[k]);
    const EvalResult& result = results[idx];
    if (!result.ok) continue;  // failures are not memoized
    instruments.eval_seconds.observe(result.wall_seconds);
    if (auto* sink = obs::trace_sink()) {
      sink->emit(obs::BackendEvalEvent{std::string(inner_->name()),
                                       requests[idx].config.shares,
                                       /*cache_hit=*/false,
                                       result.wall_seconds});
    }
    insert(requests[idx].config.shares, result.metrics);
  }
  return results;
}

}  // namespace scshare::federation
