// The backend classes are header-only; this translation unit anchors the
// vtable of PerformanceBackend (key function idiom keeps RTTI/vtable in one
// object file).
#include "federation/backend.hpp"

namespace scshare::federation {

// Intentionally empty: see file comment.

}  // namespace scshare::federation
