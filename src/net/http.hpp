// Minimal blocking-accept HTTP/1.1 server (and a tiny client for tests).
//
// Purpose-built for the embedded telemetry plane (obs::TelemetryServer):
// a scrape endpoint needs GET + small responses + clean shutdown, nothing
// more. Deliberately NOT a general web server:
//  * one dedicated accept thread, connections served inline one at a time
//    (a Prometheus scraper opens one connection per scrape; serving inline
//    keeps the server to exactly one thread and zero queues);
//  * request line + headers parsed from at most kMaxRequestBytes; bodies are
//    ignored (GET/HEAD only — anything else gets 405);
//  * every response carries Content-Length and Connection: close, so clients
//    never need chunked decoding;
//  * binds 127.0.0.1 only: telemetry is operator-facing, not public. Expose
//    it beyond the host with a reverse proxy, not by widening the bind.
//
// No third-party dependencies: POSIX sockets only. Standard-library errors
// (std::runtime_error) on bind/listen failures so callers without the
// scshare error taxonomy can still use the listener.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace scshare::net {

/// One parsed request: method, request-target path (query string stripped),
/// and the raw target as sent.
struct HttpRequest {
  std::string method;  ///< "GET", "HEAD", ...
  std::string path;    ///< "/metrics" (query string removed)
  std::string target;  ///< raw request-target, query string included
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Standard reason phrase for the handful of statuses the server emits.
[[nodiscard]] const char* http_status_reason(int status) noexcept;

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Binds 127.0.0.1:`port` (0 = kernel-chosen ephemeral port) and starts
  /// the accept thread. Throws std::runtime_error when the socket cannot be
  /// created, bound, or listened on.
  HttpServer(std::uint16_t port, Handler handler);

  /// stop()s and joins.
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The actually bound port (resolves port 0 to the kernel's choice).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Idempotent: closes the listener, wakes the accept thread, joins it.
  /// In-flight responses complete before the thread exits.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return !stopping_.load(std::memory_order_acquire);
  }

  /// Requests served so far (any status).
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

  /// Largest request head (request line + headers) accepted; longer
  /// requests get 431 and the connection is closed.
  static constexpr std::size_t kMaxRequestBytes = 8192;

 private:
  void accept_loop();
  void serve_connection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> served_{0};
  std::thread thread_;
};

/// Blocking single-request client used by tests and smoke tooling: connects
/// to 127.0.0.1:`port`, issues `GET target`, returns the parsed status and
/// body. Throws std::runtime_error on connect/IO failure or a malformed
/// status line.
struct HttpGetResult {
  int status = 0;
  std::string body;
  std::string headers;  ///< raw header block (without the status line)
};

[[nodiscard]] HttpGetResult http_get(std::uint16_t port,
                                     const std::string& target);

}  // namespace scshare::net
