// Minimal HTTP/1.1 server (and a tiny client for tests).
//
// Serves two roles:
//  * the embedded telemetry plane (obs::TelemetryServer): GET-only scrape
//    endpoints, one io thread, small responses — the original design;
//  * the scshare_serve daemon (src/serve/): POST requests with JSON bodies
//    served concurrently by a small io-thread pool, hardened against slow
//    and oversized clients.
//
// Deliberately NOT a general web server:
//  * one dedicated accept thread hands accepted connections to a bounded
//    queue drained by `io_threads` workers; when the queue is full the
//    accept thread answers 503 immediately (never blocks on a slow worker);
//  * request head (request line + headers) is capped at kMaxRequestBytes
//    (431 beyond); bodies are read only for POST, up to
//    `max_body_bytes` (413 beyond, without reading the excess);
//  * every connection carries a kernel receive timeout (`read_timeout_ms`) —
//    a slowloris client that trickles its request gets 408 and is dropped
//    instead of pinning an io thread;
//  * every response carries Content-Length and Connection: close, so clients
//    never need chunked decoding; Expect: 100-continue is honored so curl
//    can POST large bodies;
//  * binds 127.0.0.1 only: the daemon is operator-facing, not public.
//    Expose it beyond the host with a reverse proxy, not by widening the
//    bind. SO_REUSEADDR is set so drain-and-restart cycles (tests, rolling
//    restarts) cannot hit EADDRINUSE on lingering sockets.
//
// Shutdown is two-phase to support graceful drain: stop_accepting() closes
// the listener (new connects are refused by the kernel) while the io
// threads keep serving whatever was already accepted; stop() then drains
// the pending queue and joins everything. stop() alone performs both.
//
// No third-party dependencies: POSIX sockets only. Standard-library errors
// (std::runtime_error) on bind/listen failures so callers without the
// scshare error taxonomy can still use the listener.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace scshare::net {

/// One parsed request: method, request-target path (query string stripped),
/// the raw target as sent, and — for POST — the request body. The two
/// timestamps (steady clock, nanoseconds) bracket the server-side intake:
/// `accepted_at_ns` is stamped by the accept thread, `parsed_at_ns` when the
/// head and body have been fully read, just before the handler runs — their
/// difference is queue wait plus read time, which the serve layer records as
/// the per-job "queue_wait" stage.
struct HttpRequest {
  std::string method;  ///< "GET", "HEAD", "POST", ...
  std::string path;    ///< "/metrics" (query string removed)
  std::string target;  ///< raw request-target, query string included
  std::string body;    ///< request body (POST only; "" otherwise)
  std::int64_t accepted_at_ns = 0;  ///< accept() time (steady clock)
  std::int64_t parsed_at_ns = 0;    ///< request fully read (steady clock)
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra response headers (e.g. {"Retry-After", "1"}); Content-Type,
  /// Content-Length, and Connection are always emitted by the server.
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Standard reason phrase for the handful of statuses the server emits.
[[nodiscard]] const char* http_status_reason(int status) noexcept;

struct HttpServerOptions {
  /// TCP port on 127.0.0.1; 0 = kernel-chosen ephemeral port.
  std::uint16_t port = 0;
  /// Connection-serving worker threads. 1 (the telemetry default) serves
  /// connections strictly one at a time; the daemon uses more so long
  /// handler calls cannot starve /metrics scrapes.
  std::size_t io_threads = 1;
  /// Largest accepted POST body; larger requests get 413 without the body
  /// being read.
  std::size_t max_body_bytes = 1 << 20;
  /// Kernel receive timeout per connection (slowloris guard): a client that
  /// fails to deliver its complete request head + body within this budget
  /// gets 408. <= 0 disables the timeout.
  int read_timeout_ms = 10000;
  /// Accepted-but-not-yet-served connection bound; beyond it the accept
  /// thread answers 503 + Retry-After immediately.
  std::size_t max_pending_connections = 128;
  /// Called once per served request after the response is written, with the
  /// (possibly partially parsed) request, the response status, and the
  /// accept-to-response duration in seconds. Lets an upper layer attach
  /// HTTP-plane self-metrics without the net layer depending on obs. Must
  /// not throw; runs on the io thread.
  std::function<void(const HttpRequest&, int status, double seconds)>
      observer;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Binds 127.0.0.1 and starts the accept + io threads. Throws
  /// std::runtime_error when the socket cannot be created, bound, or
  /// listened on.
  HttpServer(HttpServerOptions options, Handler handler);

  /// Telemetry-compatible convenience constructor (defaults elsewhere).
  HttpServer(std::uint16_t port, Handler handler)
      : HttpServer(options_for_port(port), std::move(handler)) {}

  /// stop()s and joins.
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The actually bound port (resolves port 0 to the kernel's choice).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Drain phase 1: closes the listener and joins the accept thread; new
  /// connects are refused by the kernel while the io threads keep serving
  /// already-accepted connections. Idempotent.
  void stop_accepting();

  /// Idempotent: stop_accepting(), then lets the io threads drain the
  /// pending-connection queue (in-flight responses complete) and joins them.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return !stopping_.load(std::memory_order_acquire);
  }

  [[nodiscard]] bool accepting() const noexcept {
    return !closed_listener_.load(std::memory_order_acquire);
  }

  /// Requests served so far (any status).
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

  /// Connections answered 503 because the pending queue was full.
  [[nodiscard]] std::uint64_t connections_shed() const noexcept {
    return shed_.load(std::memory_order_relaxed);
  }

  /// Largest request head (request line + headers) accepted; longer
  /// requests get 431 and the connection is closed.
  static constexpr std::size_t kMaxRequestBytes = 8192;

 private:
  static HttpServerOptions options_for_port(std::uint16_t port) {
    HttpServerOptions options;
    options.port = port;
    return options;
  }

  struct PendingConnection {
    int fd = -1;
    std::int64_t accepted_ns = 0;
  };

  void accept_loop();
  void io_loop();
  void serve_connection(int fd, std::int64_t accepted_ns);

  HttpServerOptions options_;
  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> closed_listener_{false};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> shed_{0};

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<PendingConnection> pending_;  ///< accepted, awaiting an io thread
  std::thread accept_thread_;
  std::vector<std::thread> io_threads_;
};

/// Blocking single-request client used by tests and smoke tooling: connects
/// to 127.0.0.1:`port`, issues `GET target` (or `method` with `body`),
/// returns the parsed status and body. Throws std::runtime_error on
/// connect/IO failure or a malformed status line.
struct HttpGetResult {
  int status = 0;
  std::string body;
  std::string headers;  ///< raw header block (without the status line)
};

[[nodiscard]] HttpGetResult http_get(std::uint16_t port,
                                     const std::string& target);

/// Single-request client with a method and body (for POST in tests).
[[nodiscard]] HttpGetResult http_request(std::uint16_t port,
                                         const std::string& method,
                                         const std::string& target,
                                         const std::string& body);

}  // namespace scshare::net
