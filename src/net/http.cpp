#include "net/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace scshare::net {
namespace {

/// send() the whole buffer, suppressing SIGPIPE; false on any failure (the
/// client hung up — nothing useful to do beyond dropping the connection).
bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads until the blank line ending the request head, kMaxRequestBytes cap.
/// Returns false on EOF/error before a complete head arrived.
bool read_head(int fd, std::string& head, bool& too_large) {
  too_large = false;
  char buf[1024];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    if (head.size() >= HttpServer::kMaxRequestBytes) {
      too_large = true;
      return true;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    head.append(buf, static_cast<std::size_t>(n));
  }
  return true;
}

/// "GET /metrics?x=1 HTTP/1.1" -> method + target; false when malformed.
bool parse_request_line(const std::string& head, HttpRequest& request) {
  const std::size_t eol = head.find_first_of("\r\n");
  const std::string line = head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  request.method = line.substr(0, sp1);
  request.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = request.target.find('?');
  request.path = request.target.substr(0, query);
  return !request.method.empty() && !request.path.empty() &&
         request.path[0] == '/';
}

void write_response(int fd, const HttpResponse& response, bool head_only) {
  std::string out;
  out.reserve(128 + response.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += http_status_reason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  if (!head_only) out += response.body;
  (void)send_all(fd, out.data(), out.size());
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("HttpServer: ") + what + ": " +
                           std::strerror(errno));
}

}  // namespace

const char* http_status_reason(int status) noexcept {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

HttpServer::HttpServer(std::uint16_t port, Handler handler)
    : handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");

  const int on = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("bind");
  }
  if (::listen(listen_fd_, 16) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("listen");
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }

  thread_ = std::thread([this] { accept_loop(); });
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // shutdown() wakes the blocking accept() with an error; close() alone is
  // not guaranteed to on all kernels.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (stopping_.load(std::memory_order_acquire)) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener gone — treat as shutdown
    }
    serve_connection(fd);
    ::close(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  std::string head;
  bool too_large = false;
  if (!read_head(fd, head, too_large)) return;
  served_.fetch_add(1, std::memory_order_relaxed);

  HttpRequest request;
  HttpResponse response;
  if (too_large) {
    response.status = 431;
    response.body = "request head too large\n";
    write_response(fd, response, false);
    return;
  }
  if (!parse_request_line(head, request)) {
    response.status = 400;
    response.body = "malformed request line\n";
    write_response(fd, response, false);
    return;
  }
  const bool head_only = request.method == "HEAD";
  if (request.method != "GET" && !head_only) {
    response.status = 405;
    response.body = "only GET is supported\n";
    write_response(fd, response, head_only);
    return;
  }
  try {
    response = handler_(request);
  } catch (const std::exception& e) {
    response = HttpResponse{};
    response.status = 500;
    response.body = std::string("handler error: ") + e.what() + "\n";
  }
  write_response(fd, response, head_only);
}

HttpGetResult http_get(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("client socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect");
  }

  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      "Connection: close\r\n\r\n";
  if (!send_all(fd, request.data(), request.size())) {
    ::close(fd);
    throw std::runtime_error("HttpServer: client send failed");
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("client recv");
    }
    if (n == 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  HttpGetResult result;
  if (raw.rfind("HTTP/1.", 0) != 0) {
    throw std::runtime_error("HttpServer: malformed status line");
  }
  const std::size_t sp = raw.find(' ');
  result.status = std::atoi(raw.c_str() + sp + 1);
  std::size_t body_at = raw.find("\r\n\r\n");
  std::size_t skip = 4;
  if (body_at == std::string::npos) {
    body_at = raw.find("\n\n");
    skip = 2;
  }
  if (body_at == std::string::npos) {
    throw std::runtime_error("HttpServer: response missing header terminator");
  }
  const std::size_t line_end = raw.find_first_of("\r\n");
  result.headers = raw.substr(line_end, body_at - line_end);
  result.body = raw.substr(body_at + skip);
  return result;
}

}  // namespace scshare::net
