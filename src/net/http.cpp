#include "net/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace scshare::net {
namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// send() the whole buffer, suppressing SIGPIPE; false on any failure (the
/// client hung up — nothing useful to do beyond dropping the connection).
bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

enum class ReadStatus { kOk, kClosed, kTimedOut, kTooLarge };

/// Reads until the blank line ending the request head, kMaxRequestBytes cap.
/// Bytes past the header terminator (pipelined body prefix) stay in `raw`;
/// `head_end` points one past the terminator.
ReadStatus read_head(int fd, std::string& raw, std::size_t& head_end) {
  char buf[2048];
  for (;;) {
    std::size_t at = raw.find("\r\n\r\n");
    std::size_t skip = 4;
    if (at == std::string::npos) {
      at = raw.find("\n\n");
      skip = 2;
    }
    if (at != std::string::npos) {
      head_end = at + skip;
      return ReadStatus::kOk;
    }
    if (raw.size() >= HttpServer::kMaxRequestBytes) {
      return ReadStatus::kTooLarge;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return ReadStatus::kTimedOut;  // SO_RCVTIMEO fired (slowloris)
      }
      return ReadStatus::kClosed;
    }
    if (n == 0) return ReadStatus::kClosed;
    raw.append(buf, static_cast<std::size_t>(n));
  }
}

/// Reads until `body` holds `want` bytes (prefix may already be present).
ReadStatus read_body(int fd, std::string& body, std::size_t want) {
  char buf[4096];
  while (body.size() < want) {
    const std::size_t chunk = std::min(sizeof(buf), want - body.size());
    const ssize_t n = ::recv(fd, buf, chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return ReadStatus::kTimedOut;
      }
      return ReadStatus::kClosed;
    }
    if (n == 0) return ReadStatus::kClosed;
    body.append(buf, static_cast<std::size_t>(n));
  }
  return ReadStatus::kOk;
}

/// "GET /metrics?x=1 HTTP/1.1" -> method + target; false when malformed.
bool parse_request_line(const std::string& head, HttpRequest& request) {
  const std::size_t eol = head.find_first_of("\r\n");
  const std::string line = head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  request.method = line.substr(0, sp1);
  request.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = request.target.find('?');
  request.path = request.target.substr(0, query);
  return !request.method.empty() && !request.path.empty() &&
         request.path[0] == '/';
}

/// Case-insensitive lookup of a header value in the raw head block. Returns
/// false when absent; the value is trimmed of surrounding whitespace.
bool find_header(const std::string& head, const char* name,
                 std::string& value) {
  const std::size_t name_len = std::strlen(name);
  std::size_t pos = head.find('\n');  // skip the request line
  while (pos != std::string::npos && pos + 1 < head.size()) {
    const std::size_t line_start = pos + 1;
    std::size_t line_end = head.find('\n', line_start);
    if (line_end == std::string::npos) line_end = head.size();
    const std::size_t colon = head.find(':', line_start);
    if (colon != std::string::npos && colon < line_end &&
        colon - line_start == name_len) {
      bool match = true;
      for (std::size_t i = 0; i < name_len; ++i) {
        if (std::tolower(static_cast<unsigned char>(head[line_start + i])) !=
            std::tolower(static_cast<unsigned char>(name[i]))) {
          match = false;
          break;
        }
      }
      if (match) {
        std::size_t vb = colon + 1;
        std::size_t ve = line_end;
        while (vb < ve && std::isspace(static_cast<unsigned char>(head[vb]))) {
          ++vb;
        }
        while (ve > vb &&
               std::isspace(static_cast<unsigned char>(head[ve - 1]))) {
          --ve;
        }
        value = head.substr(vb, ve - vb);
        return true;
      }
    }
    pos = line_end;
    if (pos >= head.size()) break;
  }
  return false;
}

void write_response(int fd, const HttpResponse& response, bool head_only) {
  std::string out;
  out.reserve(192 + response.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += http_status_reason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  for (const auto& [name, value] : response.headers) {
    out += "\r\n";
    out += name;
    out += ": ";
    out += value;
  }
  out += "\r\nConnection: close\r\n\r\n";
  if (!head_only) out += response.body;
  (void)send_all(fd, out.data(), out.size());
}

void write_simple(int fd, int status, const std::string& body,
                  bool retry_after = false) {
  HttpResponse response;
  response.status = status;
  response.body = body;
  if (retry_after) response.headers.emplace_back("Retry-After", "1");
  write_response(fd, response, false);
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("HttpServer: ") + what + ": " +
                           std::strerror(errno));
}

}  // namespace

const char* http_status_reason(int status) noexcept {
  switch (status) {
    case 200:
      return "OK";
    case 202:
      return "Accepted";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Content Too Large";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

HttpServer::HttpServer(HttpServerOptions options, Handler handler)
    : options_(options), handler_(std::move(handler)) {
  if (options_.io_threads == 0) options_.io_threads = 1;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");

  // Drain-and-restart cycles must not hit EADDRINUSE on lingering sockets.
  const int on = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("bind");
  }
  if (::listen(listen_fd_, 64) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("listen");
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = options_.port;
  }

  io_threads_.reserve(options_.io_threads);
  for (std::size_t i = 0; i < options_.io_threads; ++i) {
    io_threads_.emplace_back([this] { io_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop_accepting() {
  if (closed_listener_.exchange(true, std::memory_order_acq_rel)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // shutdown() wakes the blocking accept() with an error; close() alone is
  // not guaranteed to on all kernels.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::stop() {
  stop_accepting();
  if (!stopping_.exchange(true, std::memory_order_acq_rel)) {
    wake_.notify_all();
  }
  for (auto& t : io_threads_) {
    if (t.joinable()) t.join();
  }
}

void HttpServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (closed_listener_.load(std::memory_order_acquire)) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener gone — treat as shutdown
    }
    if (options_.read_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = options_.read_timeout_ms / 1000;
      tv.tv_usec = (options_.read_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (pending_.size() >= options_.max_pending_connections) {
        shed = true;
      } else {
        pending_.push_back(PendingConnection{fd, steady_now_ns()});
      }
    }
    if (shed) {
      // Answer from the accept thread: a full queue must never make new
      // clients wait on a slow io thread.
      shed_.fetch_add(1, std::memory_order_relaxed);
      write_simple(fd, 503, "server overloaded\n", /*retry_after=*/true);
      ::close(fd);
    } else {
      wake_.notify_one();
    }
  }
}

void HttpServer::io_loop() {
  for (;;) {
    PendingConnection connection;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] {
        return !pending_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (!pending_.empty()) {
        connection = pending_.front();
        pending_.pop_front();
      } else {
        return;  // stopping and the queue is drained
      }
    }
    serve_connection(connection.fd, connection.accepted_ns);
    ::close(connection.fd);
  }
}

void HttpServer::serve_connection(int fd, std::int64_t accepted_ns) {
  HttpRequest request;
  request.accepted_at_ns = accepted_ns;
  // Reports every written response (request may be partially parsed on the
  // early-reject paths); connections that vanish without a response are not
  // observed.
  const auto observe = [&](int status) {
    if (!options_.observer) return;
    const double seconds =
        static_cast<double>(steady_now_ns() - accepted_ns) * 1e-9;
    try {
      options_.observer(request, status, seconds);
    } catch (...) {
      // Observer failures must never take down the io thread.
    }
  };

  std::string raw;
  std::size_t head_end = 0;
  const ReadStatus head_status = read_head(fd, raw, head_end);
  if (head_status == ReadStatus::kClosed) return;
  served_.fetch_add(1, std::memory_order_relaxed);
  if (head_status == ReadStatus::kTimedOut) {
    write_simple(fd, 408, "timed out reading request\n");
    observe(408);
    return;
  }
  if (head_status == ReadStatus::kTooLarge) {
    write_simple(fd, 431, "request head too large\n");
    observe(431);
    return;
  }

  HttpResponse response;
  const std::string head = raw.substr(0, head_end);
  if (!parse_request_line(head, request)) {
    write_simple(fd, 400, "malformed request line\n");
    observe(400);
    return;
  }
  const bool head_only = request.method == "HEAD";
  if (request.method != "GET" && !head_only && request.method != "POST") {
    response.status = 405;
    response.body = "only GET, HEAD, and POST are supported\n";
    write_response(fd, response, head_only);
    observe(405);
    return;
  }

  if (request.method == "POST") {
    std::string value;
    if (find_header(head, "transfer-encoding", value)) {
      write_simple(fd, 400, "chunked transfer encoding not supported\n");
      observe(400);
      return;
    }
    std::size_t content_length = 0;
    if (find_header(head, "content-length", value)) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        write_simple(fd, 400, "malformed Content-Length\n");
        observe(400);
        return;
      }
      content_length = static_cast<std::size_t>(parsed);
    }
    if (content_length > options_.max_body_bytes) {
      // Refuse before reading: an oversized body is never pulled off the
      // socket. Connection: close makes the abandoned bytes the kernel's
      // problem, not ours.
      write_simple(fd, 413, "request body too large\n");
      observe(413);
      return;
    }
    if (find_header(head, "expect", value) &&
        value.find("100-continue") != std::string::npos) {
      static const char kContinue[] = "HTTP/1.1 100 Continue\r\n\r\n";
      if (!send_all(fd, kContinue, sizeof(kContinue) - 1)) return;
    }
    request.body = raw.substr(head_end);  // prefix read alongside the head
    if (request.body.size() > content_length) {
      request.body.resize(content_length);
    }
    const ReadStatus body_status = read_body(fd, request.body, content_length);
    if (body_status == ReadStatus::kTimedOut) {
      write_simple(fd, 408, "timed out reading request body\n");
      observe(408);
      return;
    }
    if (body_status == ReadStatus::kClosed) return;
  }

  request.parsed_at_ns = steady_now_ns();
  try {
    response = handler_(request);
  } catch (const std::exception& e) {
    response = HttpResponse{};
    response.status = 500;
    response.body = std::string("handler error: ") + e.what() + "\n";
  }
  write_response(fd, response, head_only);
  observe(response.status);
}

HttpGetResult http_request(std::uint16_t port, const std::string& method,
                           const std::string& target,
                           const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("client socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect");
  }

  std::string request = method + " " + target +
                        " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                        "Connection: close\r\n";
  if (method == "POST" || !body.empty()) {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    request += "Content-Type: application/json\r\n";
  }
  request += "\r\n";
  request += body;
  if (!send_all(fd, request.data(), request.size())) {
    ::close(fd);
    throw std::runtime_error("HttpServer: client send failed");
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("client recv");
    }
    if (n == 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // Skip interim 1xx responses (100 Continue) to the final status line.
  for (;;) {
    if (raw.rfind("HTTP/1.", 0) != 0) {
      throw std::runtime_error("HttpServer: malformed status line");
    }
    const std::size_t sp = raw.find(' ');
    const int status = std::atoi(raw.c_str() + sp + 1);
    if (status < 100 || status > 199) break;
    std::size_t at = raw.find("\r\n\r\n");
    std::size_t skip = 4;
    if (at == std::string::npos) {
      at = raw.find("\n\n");
      skip = 2;
    }
    if (at == std::string::npos) {
      throw std::runtime_error("HttpServer: interim response unterminated");
    }
    raw.erase(0, at + skip);
  }

  HttpGetResult result;
  const std::size_t sp = raw.find(' ');
  result.status = std::atoi(raw.c_str() + sp + 1);
  std::size_t body_at = raw.find("\r\n\r\n");
  std::size_t skip = 4;
  if (body_at == std::string::npos) {
    body_at = raw.find("\n\n");
    skip = 2;
  }
  if (body_at == std::string::npos) {
    throw std::runtime_error("HttpServer: response missing header terminator");
  }
  const std::size_t line_end = raw.find_first_of("\r\n");
  result.headers = raw.substr(line_end, body_at - line_end);
  result.body = raw.substr(body_at + skip);
  return result;
}

HttpGetResult http_get(std::uint16_t port, const std::string& target) {
  return http_request(port, "GET", target, std::string{});
}

}  // namespace scshare::net
