// JSON (de)serialization for scshare configuration and result types. This is
// the interchange layer behind the `scshare` CLI tool; the schema is
// documented in examples/configs/three_sc.json.
#pragma once

#include <memory>
#include <string>

#include "federation/config.hpp"
#include "federation/metrics.hpp"
#include "io/json.hpp"
#include "market/cost.hpp"
#include "market/game.hpp"
#include "market/sweep.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace scshare::io {

/// Parses a federation description:
///   {"scs": [{"num_vms": 10, "lambda": 7.0, "mu": 1.0, "max_wait": 0.2,
///             "share": 3}, ...],
///    "truncation_epsilon": 1e-9}
/// The per-SC "share" defaults to 0.
[[nodiscard]] federation::FederationConfig parse_federation(const Json& json);

/// Parses prices:
///   {"public_price": 1.0 | [per-SC...], "federation_price": 0.5,
///    "power_price": 0.0}
[[nodiscard]] market::PriceConfig parse_prices(const Json& json,
                                               std::size_t num_scs);

/// Parses utility parameters: {"gamma": 0.0}.
[[nodiscard]] market::UtilityParams parse_utility(const Json& json);

/// Parses simulator options (all fields optional):
///   {"warmup_time":..., "measure_time":..., "seed":..., "batches":...,
///    "warmup_batches":...,
///    "policy": "probabilistic"|"deadline",
///    "service": "exponential"|"erlang"|"hyperexponential",
///    "arrivals": "poisson"|"mmpp"|"batch"|"sinusoidal", ...}
[[nodiscard]] sim::SimOptions parse_sim_options(const Json& json);

/// Parses game options (all fields optional):
///   {"max_rounds":..., "method": "tabu"|"exhaustive",
///    "update_rule": "sequential"|"simultaneous",
///    "improvement_tolerance":..., "initial_shares": [...],
///    "tabu": {"distance":..., "tenure":..., "max_iterations":...}}
[[nodiscard]] market::GameOptions parse_game_options(const Json& json);

// ---- serialization --------------------------------------------------------

[[nodiscard]] Json to_json(const federation::FederationConfig& config);
[[nodiscard]] Json to_json(const federation::ScMetrics& metrics);
[[nodiscard]] Json to_json(const federation::FederationMetrics& metrics);
[[nodiscard]] Json to_json(const market::Baseline& baseline);
[[nodiscard]] Json to_json(const market::GameResult& result);
[[nodiscard]] Json to_json(const sim::ScSimStats& stats);
[[nodiscard]] Json to_json(const market::SweepPoint& point);

// Observability (see src/obs/): metric snapshots, trace events, and the
// Framework::report() summary written by `scshare ... --metrics-out=FILE`.
[[nodiscard]] Json to_json(const obs::HistogramSnapshot& histogram);
[[nodiscard]] Json to_json(const obs::MetricsSnapshot& snapshot);
[[nodiscard]] Json to_json(const obs::TraceEvent& event);
[[nodiscard]] Json to_json(const obs::ProfileNode& node);
[[nodiscard]] Json to_json(const obs::RunReport& report);

/// Constructs the RunReport exporter for a wire format: "json" (the
/// to_json(RunReport) document) or "prom" (OpenMetrics text exposition).
/// Throws scshare::Error on an unknown format.
[[nodiscard]] std::unique_ptr<obs::Exporter> make_exporter(
    const std::string& format);

}  // namespace scshare::io
