#include "io/config_io.hpp"

#include "common/error.hpp"

namespace scshare::io {
namespace {

template <typename Enum>
Enum parse_enum(const std::string& value,
                std::initializer_list<std::pair<const char*, Enum>> table,
                const char* what) {
  for (const auto& [name, e] : table) {
    if (value == name) return e;
  }
  require(false, std::string("unknown ") + what + ": '" + value + "'");
  return Enum{};
}

}  // namespace

federation::FederationConfig parse_federation(const Json& json) {
  federation::FederationConfig config;
  const auto& scs = json.at("scs").as_array();
  for (const auto& sc : scs) {
    federation::ScConfig parsed;
    parsed.num_vms = sc.at("num_vms").as_int();
    parsed.lambda = sc.at("lambda").as_double();
    parsed.mu = sc.get_or("mu", 1.0);
    parsed.max_wait = sc.get_or("max_wait", 0.2);
    config.scs.push_back(parsed);
    config.shares.push_back(sc.get_or("share", 0));
  }
  config.truncation_epsilon = json.get_or("truncation_epsilon", 1e-9);
  config.validate();
  return config;
}

market::PriceConfig parse_prices(const Json& json, std::size_t num_scs) {
  market::PriceConfig prices;
  const Json& pp = json.at("public_price");
  if (pp.is_array()) {
    for (const auto& p : pp.as_array()) {
      prices.public_price.push_back(p.as_double());
    }
  } else {
    prices.public_price.assign(num_scs, pp.as_double());
  }
  prices.federation_price = json.at("federation_price").as_double();
  prices.power_price = json.get_or("power_price", 0.0);
  prices.validate(num_scs);
  return prices;
}

market::UtilityParams parse_utility(const Json& json) {
  market::UtilityParams params;
  params.gamma = json.get_or("gamma", 0.0);
  params.min_utilization_delta =
      json.get_or("min_utilization_delta", params.min_utilization_delta);
  return params;
}

sim::SimOptions parse_sim_options(const Json& json) {
  sim::SimOptions options;
  options.warmup_time = json.get_or("warmup_time", options.warmup_time);
  options.measure_time = json.get_or("measure_time", options.measure_time);
  options.batches = static_cast<std::size_t>(
      json.get_or("batches", static_cast<int>(options.batches)));
  options.warmup_batches = static_cast<std::size_t>(
      json.get_or("warmup_batches", static_cast<int>(options.warmup_batches)));
  options.seed = static_cast<std::uint64_t>(json.get_or("seed", 1));
  options.policy = parse_enum<sim::ForwardingPolicy>(
      json.get_or("policy", std::string("probabilistic")),
      {{"probabilistic", sim::ForwardingPolicy::kProbabilistic},
       {"deadline", sim::ForwardingPolicy::kDeadline}},
      "forwarding policy");
  options.service = parse_enum<sim::ServiceDistribution>(
      json.get_or("service", std::string("exponential")),
      {{"exponential", sim::ServiceDistribution::kExponential},
       {"erlang", sim::ServiceDistribution::kErlang},
       {"hyperexponential", sim::ServiceDistribution::kHyperExponential}},
      "service distribution");
  options.erlang_shape = json.get_or("erlang_shape", options.erlang_shape);
  options.hyper_scv = json.get_or("hyper_scv", options.hyper_scv);
  options.arrivals = parse_enum<sim::ArrivalProcess>(
      json.get_or("arrivals", std::string("poisson")),
      {{"poisson", sim::ArrivalProcess::kPoisson},
       {"mmpp", sim::ArrivalProcess::kMmpp},
       {"batch", sim::ArrivalProcess::kBatch},
       {"sinusoidal", sim::ArrivalProcess::kSinusoidal}},
      "arrival process");
  options.mmpp_burst_factor =
      json.get_or("mmpp_burst_factor", options.mmpp_burst_factor);
  options.mmpp_burst_duration =
      json.get_or("mmpp_burst_duration", options.mmpp_burst_duration);
  options.mmpp_quiet_duration =
      json.get_or("mmpp_quiet_duration", options.mmpp_quiet_duration);
  options.batch_mean_size =
      json.get_or("batch_mean_size", options.batch_mean_size);
  options.sin_amplitude = json.get_or("sin_amplitude", options.sin_amplitude);
  options.sin_period = json.get_or("sin_period", options.sin_period);
  return options;
}

market::GameOptions parse_game_options(const Json& json) {
  market::GameOptions options;
  options.max_rounds = json.get_or("max_rounds", options.max_rounds);
  options.method = parse_enum<market::BestResponseMethod>(
      json.get_or("method", std::string("tabu")),
      {{"tabu", market::BestResponseMethod::kTabu},
       {"exhaustive", market::BestResponseMethod::kExhaustive}},
      "best-response method");
  options.update_rule = parse_enum<market::UpdateRule>(
      json.get_or("update_rule", std::string("sequential")),
      {{"sequential", market::UpdateRule::kSequential},
       {"simultaneous", market::UpdateRule::kSimultaneous}},
      "update rule");
  options.improvement_tolerance =
      json.get_or("improvement_tolerance", options.improvement_tolerance);
  if (json.contains("initial_shares")) {
    for (const auto& s : json.at("initial_shares").as_array()) {
      options.initial_shares.push_back(s.as_int());
    }
  }
  if (json.contains("tabu")) {
    const Json& tabu = json.at("tabu");
    options.tabu.distance = tabu.get_or("distance", options.tabu.distance);
    options.tabu.tenure = tabu.get_or("tenure", options.tabu.tenure);
    options.tabu.max_iterations =
        tabu.get_or("max_iterations", options.tabu.max_iterations);
    options.tabu.stall_limit =
        tabu.get_or("stall_limit", options.tabu.stall_limit);
  }
  return options;
}

Json to_json(const federation::FederationConfig& config) {
  JsonArray scs;
  for (std::size_t i = 0; i < config.size(); ++i) {
    JsonObject sc;
    sc["num_vms"] = config.scs[i].num_vms;
    sc["lambda"] = config.scs[i].lambda;
    sc["mu"] = config.scs[i].mu;
    sc["max_wait"] = config.scs[i].max_wait;
    sc["share"] = config.shares[i];
    scs.emplace_back(std::move(sc));
  }
  JsonObject out;
  out["scs"] = Json(std::move(scs));
  out["truncation_epsilon"] = config.truncation_epsilon;
  return Json(std::move(out));
}

Json to_json(const federation::ScMetrics& metrics) {
  JsonObject out;
  out["lent"] = metrics.lent;
  out["borrowed"] = metrics.borrowed;
  out["forward_rate"] = metrics.forward_rate;
  out["forward_prob"] = metrics.forward_prob;
  out["utilization"] = metrics.utilization;
  out["degraded"] = metrics.degraded;
  return Json(std::move(out));
}

Json to_json(const federation::FederationMetrics& metrics) {
  JsonArray out;
  for (const auto& m : metrics) out.push_back(to_json(m));
  return Json(std::move(out));
}

Json to_json(const market::Baseline& baseline) {
  JsonObject out;
  out["cost"] = baseline.cost;
  out["utilization"] = baseline.utilization;
  out["forward_rate"] = baseline.forward_rate;
  return Json(std::move(out));
}

Json to_json(const market::GameResult& result) {
  JsonObject out;
  JsonArray shares, utilities, costs, trajectory;
  for (int s : result.shares) shares.emplace_back(s);
  for (double u : result.utilities) utilities.emplace_back(u);
  for (double c : result.costs) costs.emplace_back(c);
  for (const auto& round : result.trajectory) {
    JsonArray r;
    for (int s : round) r.emplace_back(s);
    trajectory.emplace_back(std::move(r));
  }
  out["shares"] = Json(std::move(shares));
  out["utilities"] = Json(std::move(utilities));
  out["costs"] = Json(std::move(costs));
  out["rounds"] = result.rounds;
  out["converged"] = result.converged;
  out["degraded"] = result.degraded;
  out["cancelled"] = result.cancelled;
  out["failed_evaluations"] = result.failed_evaluations;
  out["trajectory"] = Json(std::move(trajectory));
  return Json(std::move(out));
}

Json to_json(const sim::ScSimStats& stats) {
  JsonObject out;
  out["metrics"] = to_json(stats.metrics);
  out["lent_ci_half_width"] = stats.lent_hw;
  out["borrowed_ci_half_width"] = stats.borrowed_hw;
  out["forward_rate_ci_half_width"] = stats.forward_rate_hw;
  out["mean_wait"] = stats.mean_wait;
  out["sla_violation_prob"] = stats.sla_violation_prob;
  out["arrivals"] = static_cast<double>(stats.arrivals);
  out["forwarded"] = static_cast<double>(stats.forwarded);
  out["served_local"] = static_cast<double>(stats.served_local);
  out["served_remote"] = static_cast<double>(stats.served_remote);
  return Json(std::move(out));
}

Json to_json(const market::SweepPoint& point) {
  JsonObject out;
  out["ratio"] = point.ratio;
  JsonObject outcomes;
  for (std::size_t f = 0; f < market::kAllFairness.size(); ++f) {
    const auto& o = point.outcomes[f];
    JsonObject entry;
    entry["welfare_ne"] = o.welfare_ne;
    entry["welfare_opt"] = o.welfare_opt;
    entry["efficiency"] = o.efficiency;
    entry["formed"] = o.formed;
    JsonArray ne, opt;
    for (int s : o.ne_shares) ne.emplace_back(s);
    for (int s : o.opt_shares) opt.emplace_back(s);
    entry["ne_shares"] = Json(std::move(ne));
    entry["opt_shares"] = Json(std::move(opt));
    outcomes[market::fairness_name(market::kAllFairness[f])] =
        Json(std::move(entry));
  }
  out["outcomes"] = Json(std::move(outcomes));
  return Json(std::move(out));
}

Json to_json(const obs::HistogramSnapshot& histogram) {
  JsonObject out;
  JsonArray bounds, counts;
  for (double b : histogram.bounds) bounds.emplace_back(b);
  for (std::uint64_t c : histogram.counts) {
    counts.emplace_back(static_cast<double>(c));
  }
  out["bounds"] = Json(std::move(bounds));
  out["counts"] = Json(std::move(counts));
  out["count"] = static_cast<double>(histogram.count);
  out["sum"] = histogram.sum;
  out["mean"] = histogram.mean();
  if (histogram.count > 0) {
    out["min"] = histogram.min;
    out["max"] = histogram.max;
  }
  return Json(std::move(out));
}

Json to_json(const obs::MetricsSnapshot& snapshot) {
  JsonObject counters, gauges, histograms;
  for (const auto& [name, value] : snapshot.counters) {
    counters[name] = static_cast<double>(value);
  }
  for (const auto& [name, value] : snapshot.gauges) gauges[name] = value;
  for (const auto& [name, h] : snapshot.histograms) {
    histograms[name] = to_json(h);
  }
  JsonObject out;
  out["counters"] = Json(std::move(counters));
  out["gauges"] = Json(std::move(gauges));
  out["histograms"] = Json(std::move(histograms));
  return Json(std::move(out));
}

Json to_json(const obs::TraceEvent& event) {
  // The obs layer already knows how to encode events as JSON lines (the
  // JSONL trace wire format); reuse it so the two encodings cannot drift.
  return Json::parse(obs::to_json_line(event));
}

Json to_json(const obs::ProfileNode& node) {
  JsonObject out;
  out["name"] = node.name;
  out["count"] = static_cast<double>(node.count);
  out["total_seconds"] = node.total_seconds;
  out["self_seconds"] = node.self_seconds;
  JsonArray children;
  for (const auto& child : node.children) children.push_back(to_json(child));
  out["children"] = Json(std::move(children));
  return Json(std::move(out));
}

Json to_json(const obs::RunReport& report) {
  JsonObject out;
  out["backend"] = report.backend;
  if (!report.build.version.empty()) {
    JsonObject build;
    build["version"] = report.build.version;
    build["compiler"] = report.build.compiler;
    build["build_type"] = report.build.build_type;
    out["build"] = Json(std::move(build));
  }
  out["metrics"] = to_json(report.metrics);
  JsonArray events;
  for (const auto& e : report.events) events.push_back(to_json(e));
  out["events"] = Json(std::move(events));
  out["events_total"] = static_cast<double>(report.events_total);
  out["events_dropped"] = static_cast<double>(report.events_dropped);
  if (report.profiled) out["profile"] = to_json(report.profile);
  return Json(std::move(out));
}

namespace {

/// Machine-readable JSON rendering of the full RunReport (the same document
/// `--metrics-out` has always written).
class JsonReportExporter final : public obs::Exporter {
 public:
  [[nodiscard]] const char* format_name() const noexcept override {
    return "json";
  }
  [[nodiscard]] std::string render(
      const obs::RunReport& report) const override {
    return to_json(report).dump(2) + "\n";
  }
};

}  // namespace

std::unique_ptr<obs::Exporter> make_exporter(const std::string& format) {
  if (format == "json") return std::make_unique<JsonReportExporter>();
  if (format == "prom") return std::make_unique<obs::OpenMetricsExporter>();
  throw Error("unknown metrics format: " + format + " (expected json|prom)",
              ErrorCode::kInvalidConfig, "make_exporter");
}

}  // namespace scshare::io
