#include "io/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace scshare::io {
namespace {

/// Recursive-descent JSON parser over a string view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    require(pos_ == text_.size(), error("trailing characters"));
    return value;
  }

 private:
  [[nodiscard]] std::string error(const std::string& what) const {
    return "Json::parse: " + what + " at offset " + std::to_string(pos_);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    skip_whitespace();
    require(pos_ < text_.size(), error("unexpected end of input"));
    return text_[pos_];
  }

  void expect(char c) {
    require(peek() == c, error(std::string("expected '") + c + "'"));
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        require(consume_literal("true"), error("invalid literal"));
        return Json(true);
      case 'f':
        require(consume_literal("false"), error("invalid literal"));
        return Json(false);
      case 'n':
        require(consume_literal("null"), error("invalid literal"));
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject object;
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    for (;;) {
      require(peek() == '"', error("expected object key"));
      std::string key = parse_string();
      expect(':');
      object.emplace(std::move(key), parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(object));
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray array;
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    for (;;) {
      array.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(array));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      require(pos_ < text_.size(), error("unterminated escape"));
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          require(pos_ + 4 <= text_.size(), error("truncated \\u escape"));
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              require(false, error("invalid \\u escape"));
            }
          }
          // UTF-8 encode the code point (BMP only; surrogates rejected).
          require(code < 0xD800 || code > 0xDFFF,
                  error("surrogate pairs not supported"));
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: require(false, error("invalid escape"));
      }
    }
    require(pos_ < text_.size(), error("unterminated string"));
    ++pos_;  // closing quote
    return out;
  }

  Json parse_number() {
    skip_whitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto result =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    require(result.ec == std::errc() && result.ptr == text_.data() + pos_ &&
                pos_ > start,
            error("invalid number"));
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(std::string& out, double value) {
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::abs(value) < 1e15) {
    out += std::to_string(static_cast<long long>(value));
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

bool Json::as_bool() const {
  require(type_ == Type::kBool, "Json: not a boolean");
  return bool_;
}

double Json::as_double() const {
  require(type_ == Type::kNumber, "Json: not a number");
  return number_;
}

int Json::as_int() const {
  require(type_ == Type::kNumber, "Json: not a number");
  const int value = static_cast<int>(number_);
  require(static_cast<double>(value) == number_, "Json: not an integer");
  return value;
}

const std::string& Json::as_string() const {
  require(type_ == Type::kString, "Json: not a string");
  return string_;
}

const JsonArray& Json::as_array() const {
  require(type_ == Type::kArray, "Json: not an array");
  return array_;
}

const JsonObject& Json::as_object() const {
  require(type_ == Type::kObject, "Json: not an object");
  return object_;
}

const Json& Json::at(const std::string& key) const {
  const auto& object = as_object();
  const auto it = object.find(key);
  require(it != object.end(), "Json: missing key '" + key + "'");
  return it->second;
}

double Json::get_or(const std::string& key, double fallback) const {
  return contains(key) ? at(key).as_double() : fallback;
}

int Json::get_or(const std::string& key, int fallback) const {
  return contains(key) ? at(key).as_int() : fallback;
}

std::string Json::get_or(const std::string& key,
                         const std::string& fallback) const {
  return contains(key) ? at(key).as_string() : fallback;
}

bool Json::get_or(const std::string& key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}

bool Json::contains(const std::string& key) const {
  return type_ == Type::kObject && object_.find(key) != object_.end();
}

const Json& Json::at(std::size_t index) const {
  const auto& array = as_array();
  require(index < array.size(), "Json: array index out of range");
  return array[index];
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  require(false, "Json: size() requires an array or object");
  return 0;
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d),
               ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: dump_number(out, number_); break;
    case Type::kString: dump_string(out, string_); break;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const auto& element : array_) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        element.dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        dump_string(out, key);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        value.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace scshare::io
