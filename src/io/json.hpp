// Minimal JSON value type, parser, and writer — enough to read federation
// configuration files and emit machine-readable results from the CLI and
// benches. Supports the full JSON grammar except \u escapes beyond the
// Basic Latin range (which are preserved verbatim).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace scshare::io {

class Json;

using JsonArray = std::vector<Json>;
/// std::map keeps object keys ordered, which makes dumps deterministic.
using JsonObject = std::map<std::string, Json>;

/// Immutable-ish JSON value (null, bool, number, string, array, object).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}  // NOLINT(runtime/explicit)
  Json(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT(runtime/explicit)
  Json(double n) : type_(Type::kNumber), number_(n) {}  // NOLINT
  Json(int n) : Json(static_cast<double>(n)) {}         // NOLINT
  Json(std::string s)                                   // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}
  Json(const char* s) : Json(std::string(s)) {}  // NOLINT(runtime/explicit)
  Json(JsonArray a)                              // NOLINT(runtime/explicit)
      : type_(Type::kArray), array_(std::move(a)) {}
  Json(JsonObject o)                             // NOLINT(runtime/explicit)
      : type_(Type::kObject), object_(std::move(o)) {}

  /// Parses a complete JSON document; throws scshare::Error with a position
  /// on malformed input.
  static Json parse(std::string_view text);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw scshare::Error on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] int as_int() const;  ///< also checks integrality
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;

  /// Object lookup; throws if not an object or the key is absent.
  [[nodiscard]] const Json& at(const std::string& key) const;
  /// Object lookup with default.
  [[nodiscard]] double get_or(const std::string& key, double fallback) const;
  [[nodiscard]] int get_or(const std::string& key, int fallback) const;
  [[nodiscard]] std::string get_or(const std::string& key,
                                   const std::string& fallback) const;
  [[nodiscard]] bool get_or(const std::string& key, bool fallback) const;
  [[nodiscard]] bool contains(const std::string& key) const;

  /// Array element; throws if not an array or out of range.
  [[nodiscard]] const Json& at(std::size_t index) const;
  [[nodiscard]] std::size_t size() const;  ///< array/object size

  /// Serializes; indent < 0 produces compact output, otherwise pretty-prints
  /// with the given indentation width.
  [[nodiscard]] std::string dump(int indent = -1) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

}  // namespace scshare::io
