// Adaptive sharing controller: the deployment loop the paper sketches in
// Sect. VII — each SC keeps collecting arrival traces, and when a long-term
// workload change is confirmed, the federation re-runs the market game with
// the re-estimated rates.
#pragma once

#include <cstddef>
#include <vector>

#include "control/workload_monitor.hpp"
#include "federation/backend.hpp"
#include "federation/config.hpp"
#include "market/cost.hpp"
#include "market/game.hpp"

namespace scshare::control {

struct ControllerOptions {
  MonitorOptions monitor;
  market::GameOptions game;
  market::UtilityParams utility;
};

/// Outcome of a re-negotiation.
struct Renegotiation {
  double time = 0.0;
  std::vector<double> estimated_lambdas;
  std::vector<int> old_shares;
  std::vector<int> new_shares;
  bool converged = false;
  /// True when the game ran on failed/degraded evaluations, or when the game
  /// itself could not run at all (old shares kept in that case).
  bool degraded = false;
};

/// Observes per-SC arrivals, detects regime changes, and re-runs the sharing
/// game when one is confirmed. The backend should be caching if evaluations
/// are expensive; note the cache stays valid only while the estimated
/// arrival rates do (the controller constructs a fresh game per
/// re-negotiation with the updated configuration).
class SharingController {
 public:
  SharingController(federation::FederationConfig config,
                    market::PriceConfig prices,
                    federation::PerformanceBackend& backend,
                    ControllerOptions options = {});

  /// Records an arrival of SC `sc` at time `t` (non-decreasing per SC).
  void observe_arrival(std::size_t sc, double t);

  /// True when some SC has a confirmed workload change.
  [[nodiscard]] bool renegotiation_due() const;

  /// Re-estimates rates, re-runs the game, installs the new sharing vector,
  /// and returns the decision record. Call when renegotiation_due().
  Renegotiation renegotiate(double now);

  /// Current configuration (lambdas updated by renegotiations).
  [[nodiscard]] const federation::FederationConfig& config() const {
    return config_;
  }
  [[nodiscard]] const std::vector<int>& shares() const {
    return config_.shares;
  }
  [[nodiscard]] const WorkloadMonitor& monitor(std::size_t sc) const {
    return monitors_[sc];
  }

 private:
  federation::FederationConfig config_;
  market::PriceConfig prices_;
  federation::PerformanceBackend& backend_;
  ControllerOptions options_;
  std::vector<WorkloadMonitor> monitors_;
};

}  // namespace scshare::control
