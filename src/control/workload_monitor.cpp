#include "control/workload_monitor.hpp"

#include <cmath>

#include "common/error.hpp"

namespace scshare::control {

WorkloadMonitor::WorkloadMonitor(MonitorOptions options) : options_(options) {
  require(options_.fast_window > 0.0 &&
              options_.slow_window > options_.fast_window,
          "MonitorOptions: need 0 < fast_window < slow_window");
  require(options_.change_threshold > 0.0,
          "MonitorOptions: change_threshold must be positive");
  require(options_.confirmation_time >= 0.0,
          "MonitorOptions: confirmation_time must be non-negative");
}

void WorkloadMonitor::decay_to(double t) {
  require(t >= last_time_, "WorkloadMonitor: time went backwards");
  const double dt = t - last_time_;
  if (dt > 0.0) {
    fast_raw_ *= std::exp(-dt / options_.fast_window);
    slow_raw_ *= std::exp(-dt / options_.slow_window);
    observed_ += dt;
    last_time_ = t;
  }
}

namespace {

/// Bias-corrected EWMA estimate: divide by the kernel mass accumulated over
/// the observed horizon (the standard warm-up correction).
double corrected(double raw, double window, double observed) {
  const double mass = 1.0 - std::exp(-observed / window);
  return mass > 1e-9 ? raw / mass : 0.0;
}

}  // namespace

double WorkloadMonitor::fast_rate() const {
  return corrected(fast_raw_, options_.fast_window, observed_);
}

double WorkloadMonitor::slow_rate() const {
  return corrected(slow_raw_, options_.slow_window, observed_);
}

void WorkloadMonitor::record_arrival(double t) {
  decay_to(t);
  // An EWMA of a unit impulse train with time constant W estimates the rate
  // when each arrival adds 1/W.
  fast_raw_ += 1.0 / options_.fast_window;
  slow_raw_ += 1.0 / options_.slow_window;

  // Comparing the two estimates needs at least one fast window of data.
  if (observed_ < options_.fast_window) return;

  const double fast = fast_rate();
  const double slow = slow_rate();
  const double divergence =
      slow > 1e-12 ? std::abs(fast - slow) / slow : (fast > 1e-12 ? 1.0 : 0.0);
  if (divergence > options_.change_threshold) {
    if (divergence_since_ < 0.0) divergence_since_ = t;
    if (t - divergence_since_ >= options_.confirmation_time) {
      change_detected_ = true;
    }
  } else {
    divergence_since_ = -1.0;
  }
}

void WorkloadMonitor::acknowledge_change() {
  // Re-anchor the long-term estimate at the current regime.
  slow_raw_ = fast_rate() * (1.0 - std::exp(-observed_ / options_.slow_window));
  divergence_since_ = -1.0;
  change_detected_ = false;
}

}  // namespace scshare::control
