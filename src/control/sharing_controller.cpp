#include "control/sharing_controller.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace scshare::control {

SharingController::SharingController(federation::FederationConfig config,
                                     market::PriceConfig prices,
                                     federation::PerformanceBackend& backend,
                                     ControllerOptions options)
    : config_(std::move(config)),
      prices_(std::move(prices)),
      backend_(backend),
      options_(std::move(options)) {
  config_.validate();
  prices_.validate(config_.size());
  monitors_.assign(config_.size(), WorkloadMonitor(options_.monitor));
}

void SharingController::observe_arrival(std::size_t sc, double t) {
  require(sc < monitors_.size(), "SharingController: SC index out of range");
  monitors_[sc].record_arrival(t);
}

bool SharingController::renegotiation_due() const {
  return std::any_of(monitors_.begin(), monitors_.end(),
                     [](const WorkloadMonitor& m) {
                       return m.change_detected();
                     });
}

Renegotiation SharingController::renegotiate(double now) {
  Renegotiation record;
  record.time = now;
  record.old_shares = config_.shares;

  // Re-estimate every SC's rate from its fast tracker (a confirmed change at
  // one SC still shifts everybody's best response).
  for (std::size_t i = 0; i < config_.size(); ++i) {
    const double estimate = monitors_[i].fast_rate();
    if (estimate > 1e-9) config_.scs[i].lambda = estimate;
    record.estimated_lambdas.push_back(config_.scs[i].lambda);
  }

  market::GameOptions game_options = options_.game;
  game_options.initial_shares = config_.shares;  // warm start from status quo
  try {
    market::Game game(config_, prices_, options_.utility, backend_,
                      game_options);
    const auto result = game.run();
    config_.shares = result.shares;
    record.new_shares = result.shares;
    record.converged = result.converged;
    record.degraded = result.degraded;
  } catch (const Error&) {
    // The evaluation pipeline is down: keep the installed sharing vector
    // (the status quo remains in force until the next confirmed change).
    record.new_shares = config_.shares;
    record.converged = false;
    record.degraded = true;
  }

  for (auto& monitor : monitors_) monitor.acknowledge_change();
  return record;
}

}  // namespace scshare::control
