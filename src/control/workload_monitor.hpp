// Online workload monitoring (paper Sect. VII, "Stable System Parameters":
// an SC collects traces and updates its sharing decision after observing a
// long-term change). WorkloadMonitor tracks a fast and a slow exponentially
// weighted arrival-rate estimate per SC; a persistent divergence between the
// two signals a regime change worth re-negotiating over.
#pragma once

#include <cstddef>
#include <vector>

namespace scshare::control {

struct MonitorOptions {
  /// Time constants of the fast / slow EWMA rate estimates (model seconds).
  double fast_window = 200.0;
  double slow_window = 2000.0;
  /// Relative divergence |fast - slow| / slow that flags a change.
  double change_threshold = 0.25;
  /// The divergence must persist this long before a change is reported
  /// (suppresses bursts that are noise, not regime shifts).
  double confirmation_time = 300.0;
};

/// Per-stream arrival-rate tracker with regime-change detection.
class WorkloadMonitor {
 public:
  explicit WorkloadMonitor(MonitorOptions options = {});

  /// Records one arrival at (non-decreasing) time t.
  void record_arrival(double t);

  /// Fast (recent) bias-corrected rate estimate.
  [[nodiscard]] double fast_rate() const;
  /// Slow (long-term) bias-corrected rate estimate.
  [[nodiscard]] double slow_rate() const;

  /// True when the fast estimate has diverged from the slow one beyond the
  /// threshold for at least the confirmation time.
  [[nodiscard]] bool change_detected() const { return change_detected_; }

  /// Accepts the current fast rate as the new long-term regime and clears
  /// the change flag (called after re-negotiation).
  void acknowledge_change();

 private:
  void decay_to(double t);

  MonitorOptions options_;
  double last_time_ = 0.0;
  double fast_raw_ = 0.0;   ///< uncorrected EWMA accumulators
  double slow_raw_ = 0.0;
  double observed_ = 0.0;   ///< time span observed so far (for bias correction)
  double divergence_since_ = -1.0;  ///< < 0: currently in agreement
  bool change_detected_ = false;
};

}  // namespace scshare::control
