// scshare::Framework — the SC-Share facade (paper Sect. II-C).
//
// Wires a performance backend (approximate model by default) into the cost /
// utility / market machinery so that applications can, in a few calls:
//   * estimate an SC's operating cost and utility for any sharing vector,
//   * find a market equilibrium of the repeated sharing game,
//   * sweep the federation price to pick an efficient operating point.
//
// Example:
//   scshare::federation::FederationConfig cfg = ...;
//   scshare::market::PriceConfig prices = ...;
//   scshare::Framework fw(cfg, prices, {.gamma = 0.0});
//   auto eq = fw.find_equilibrium();
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "federation/backend.hpp"
#include "federation/config.hpp"
#include "federation/resilience.hpp"
#include "market/cost.hpp"
#include "market/fairness.hpp"
#include "market/game.hpp"
#include "market/sweep.hpp"
#include "market/utility.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace scshare {

enum class BackendKind {
  kApprox,      ///< hierarchical approximate model (default)
  kDetailed,    ///< exact CTMC (small federations only)
  kSimulation,  ///< discrete-event simulation
};

/// Execution and resilience options, consolidated into one designated-
/// initializer-friendly block: how many worker threads evaluate backend
/// batches and which decorator chain wraps the base backend(s).
struct ExecOptions {
  /// Worker threads of the evaluation thread pool (1 = fully serial, no pool
  /// is created). Results are bit-identical at any thread count: only the
  /// leaf ComputeBackend fans out, and every reduction is ordered.
  std::size_t threads = 1;
  /// Ordered fallback chain of backends (first is primary). When non-empty
  /// this overrides FrameworkOptions::backend; each tier is wrapped with the
  /// retry and fault-injection decorators below, then composed into a
  /// FallbackBackend. Decorator order (innermost first):
  /// Fault → Retry → Fallback → Cache.
  std::vector<BackendKind> chain;
  /// Retry decorator around every tier; disabled unless max_retries > 0.
  federation::RetryPolicy retry{.max_retries = 0};
  /// Fault injection (testing/soak runs); disabled unless a probability is
  /// set. Applied innermost, so retries and fallbacks react to the faults.
  federation::FaultSpec faults;
};

struct FrameworkOptions {
  BackendKind backend = BackendKind::kApprox;
  federation::ApproxModelOptions approx;
  federation::DetailedModelOptions detailed;
  sim::SimOptions sim;
  bool cache = true;  ///< memoize backend evaluations by sharing vector
  /// Cache bound (0 = unbounded); see CachingBackend.
  std::size_t cache_capacity = 0;
  /// Ring-buffer capacity for the trace events captured into report().
  std::size_t trace_capacity = 4096;
  /// Thread pool + decorator chain (see ExecOptions).
  ExecOptions exec;
};

class Framework {
 public:
  Framework(federation::FederationConfig config, market::PriceConfig prices,
            market::UtilityParams utility, FrameworkOptions options = {});

  /// Restores the trace sink that was installed before construction.
  ~Framework();
  Framework(const Framework&) = delete;
  Framework& operator=(const Framework&) = delete;

  /// Metrics under the configuration's own sharing vector.
  [[nodiscard]] federation::FederationMetrics metrics();

  /// Metrics under an explicit sharing vector.
  [[nodiscard]] federation::FederationMetrics metrics_for(
      const std::vector<int>& shares);

  /// No-sharing baselines (cost and utilization) per SC.
  [[nodiscard]] const std::vector<market::Baseline>& baselines() const {
    return baselines_;
  }

  /// Operating costs (Eq. (1)) per SC under `shares`.
  [[nodiscard]] std::vector<double> costs(const std::vector<int>& shares);

  /// Utilities (Eq. (2)) per SC under `shares`.
  [[nodiscard]] std::vector<double> utilities(const std::vector<int>& shares);

  /// Welfare (Eq. (3)) of `shares` under a fairness criterion.
  [[nodiscard]] double welfare_of(market::Fairness fairness,
                                  const std::vector<int>& shares);

  /// Runs the repeated game (Algorithm 1) to a market equilibrium.
  [[nodiscard]] market::GameResult find_equilibrium(
      market::GameOptions options = {});

  /// Sweeps the price ratio C^G/C^P (Fig. 7-style analysis).
  [[nodiscard]] std::vector<market::SweepPoint> sweep_prices(
      market::SweepOptions options);

  /// The underlying (possibly caching) backend.
  [[nodiscard]] federation::PerformanceBackend& backend() { return *backend_; }

  /// Observability summary of everything this Framework ran so far: global
  /// registry counters as deltas since construction, current gauges and
  /// histograms, and the trace events captured in the Framework's ring
  /// buffer. The Framework installs its ring buffer as the process trace
  /// sink at construction (tee-ing into any sink already installed) and
  /// restores the previous sink on destruction.
  [[nodiscard]] obs::RunReport report() const;

  [[nodiscard]] const federation::FederationConfig& config() const {
    return config_;
  }
  [[nodiscard]] const market::PriceConfig& prices() const { return prices_; }

 private:
  federation::FederationConfig config_;
  market::PriceConfig prices_;
  market::UtilityParams utility_;
  /// Declared before backend_ so the pool outlives the backends that hold a
  /// raw Executor pointer into it. Null when exec.threads == 1.
  std::unique_ptr<exec::ThreadPool> pool_;
  std::unique_ptr<federation::PerformanceBackend> backend_;
  std::vector<market::Baseline> baselines_;

  // Observability scope: counter baseline + trace capture (see report()).
  std::string backend_name_;
  obs::MetricsSnapshot metrics_baseline_;
  std::unique_ptr<obs::RingBufferSink> ring_;
  std::unique_ptr<obs::TeeSink> tee_;
  obs::TraceSink* previous_sink_ = nullptr;
};

}  // namespace scshare
