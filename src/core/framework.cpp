#include "core/framework.hpp"

#include "common/error.hpp"

namespace scshare {
namespace {

std::unique_ptr<federation::ComputeBackend> make_base_backend(
    BackendKind kind, const FrameworkOptions& options) {
  switch (kind) {
    case BackendKind::kApprox:
      return std::make_unique<federation::ApproxBackend>(options.approx);
    case BackendKind::kDetailed:
      return std::make_unique<federation::DetailedBackend>(options.detailed);
    case BackendKind::kSimulation:
      return std::make_unique<federation::SimulationBackend>(options.sim);
  }
  throw Error("unknown backend kind", ErrorCode::kInvalidConfig, "Framework");
}

/// Decorator order, innermost first: Fault (so retries and fallbacks see the
/// injected faults) -> Retry -> Fallback across tiers -> Cache outermost
/// (only successful evaluations are memoized). The executor (null = serial)
/// is attached to the leaf ComputeBackends only; every decorator runs its
/// bookkeeping on the calling thread, which keeps results and trace
/// sequences identical at any thread count.
std::unique_ptr<federation::PerformanceBackend> make_backend(
    const FrameworkOptions& options, exec::Executor* executor) {
  options.exec.faults.validate();
  std::vector<BackendKind> chain = options.exec.chain;
  if (chain.empty()) chain.push_back(options.backend);

  std::vector<std::unique_ptr<federation::PerformanceBackend>> tiers;
  tiers.reserve(chain.size());
  for (std::size_t t = 0; t < chain.size(); ++t) {
    auto base = make_base_backend(chain[t], options);
    base->set_executor(executor);
    std::unique_ptr<federation::PerformanceBackend> tier = std::move(base);
    if (options.exec.faults.enabled()) {
      // Per-tier seed offset: tiers draw from independent streams, so a
      // fallback tier does not replay the primary tier's fault pattern.
      federation::FaultSpec spec = options.exec.faults;
      spec.seed += t;
      tier = std::make_unique<federation::FaultInjectingBackend>(
          std::move(tier), spec);
    }
    if (options.exec.retry.max_retries > 0) {
      tier = std::make_unique<federation::RetryingBackend>(
          std::move(tier), options.exec.retry);
    }
    tiers.push_back(std::move(tier));
  }

  std::unique_ptr<federation::PerformanceBackend> inner;
  if (tiers.size() == 1) {
    inner = std::move(tiers.front());
  } else {
    inner = std::make_unique<federation::FallbackBackend>(std::move(tiers));
  }
  if (options.cache) {
    return std::make_unique<federation::CachingBackend>(
        std::move(inner), options.cache_capacity);
  }
  return inner;
}

/// Single evaluation through the batch API (the Framework does not use the
/// deprecated PerformanceBackend::evaluate adapter).
federation::FederationMetrics evaluate_one(
    federation::PerformanceBackend& backend,
    const federation::FederationConfig& cfg) {
  federation::EvalRequest request;
  request.config = cfg;
  auto results = backend.evaluate_batch({&request, 1});
  federation::EvalResult& result = results.front();
  if (!result.ok) throw result.to_error();
  return std::move(result.metrics);
}

}  // namespace

Framework::Framework(federation::FederationConfig config,
                     market::PriceConfig prices,
                     market::UtilityParams utility, FrameworkOptions options)
    : config_(std::move(config)),
      prices_(std::move(prices)),
      utility_(utility),
      pool_(options.exec.threads > 1
                ? std::make_unique<exec::ThreadPool>(options.exec.threads)
                : nullptr),
      backend_(make_backend(options, pool_.get())) {
  config_.validate();
  prices_.validate(config_.size());

  // Open the observability scope before the first backend evaluation so the
  // baseline-cost solves below are already captured.
  backend_name_ = std::string(backend_->name());
  metrics_baseline_ = obs::MetricsRegistry::global().snapshot();
  ring_ = std::make_unique<obs::RingBufferSink>(options.trace_capacity);
  previous_sink_ = obs::trace_sink();
  if (previous_sink_ != nullptr) {
    tee_ = std::make_unique<obs::TeeSink>(previous_sink_, ring_.get());
    obs::set_trace_sink(tee_.get());
  } else {
    obs::set_trace_sink(ring_.get());
  }

  baselines_ = market::compute_baselines(config_, prices_);
}

Framework::~Framework() {
  // Restore only if we are still the installed sink (LIFO discipline); if
  // someone installed another sink on top of ours, leave theirs in place.
  obs::TraceSink* ours =
      tee_ != nullptr ? static_cast<obs::TraceSink*>(tee_.get())
                      : static_cast<obs::TraceSink*>(ring_.get());
  if (obs::trace_sink() == ours) obs::set_trace_sink(previous_sink_);
}

obs::RunReport Framework::report() const {
  obs::RunReport report;
  report.backend = backend_name_;
  report.build = obs::build_identity();
  report.metrics = obs::MetricsRegistry::global().snapshot().delta_from(
      metrics_baseline_);
  report.events = ring_->events();
  report.events_total = ring_->total_emitted();
  report.events_dropped = ring_->dropped();
  if (obs::profiler_enabled()) {
    report.profiled = true;
    report.profile =
        obs::build_profile_tree(obs::Profiler::instance().records());
  }
  return report;
}

federation::FederationMetrics Framework::metrics() {
  return evaluate_one(*backend_, config_);
}

federation::FederationMetrics Framework::metrics_for(
    const std::vector<int>& shares) {
  federation::FederationConfig cfg = config_;
  cfg.shares = shares;
  cfg.validate();
  return evaluate_one(*backend_, cfg);
}

std::vector<double> Framework::costs(const std::vector<int>& shares) {
  const auto metrics = metrics_for(shares);
  std::vector<double> costs(config_.size());
  for (std::size_t i = 0; i < config_.size(); ++i) {
    costs[i] = market::operating_cost(metrics[i], prices_.public_price[i],
                                      prices_.federation_price,
                                      prices_.power_price,
                                      config_.scs[i].num_vms);
  }
  return costs;
}

std::vector<double> Framework::utilities(const std::vector<int>& shares) {
  const auto metrics = metrics_for(shares);
  std::vector<double> utilities(config_.size());
  for (std::size_t i = 0; i < config_.size(); ++i) {
    utilities[i] = market::sc_utility(metrics[i], baselines_[i],
                                      prices_.public_price[i],
                                      prices_.federation_price,
                                      shares[i], utility_,
                                      prices_.power_price,
                                      config_.scs[i].num_vms);
  }
  return utilities;
}

double Framework::welfare_of(market::Fairness fairness,
                             const std::vector<int>& shares) {
  return market::welfare(fairness, shares, utilities(shares));
}

market::GameResult Framework::find_equilibrium(market::GameOptions options) {
  market::Game game(config_, prices_, utility_, *backend_, std::move(options));
  return game.run();
}

std::vector<market::SweepPoint> Framework::sweep_prices(
    market::SweepOptions options) {
  options.utility = utility_;
  return market::run_price_sweep(config_, *backend_, options);
}

}  // namespace scshare
