#include "core/framework.hpp"

#include "common/error.hpp"

namespace scshare {
namespace {

std::unique_ptr<federation::PerformanceBackend> make_backend(
    const FrameworkOptions& options) {
  std::unique_ptr<federation::PerformanceBackend> inner;
  switch (options.backend) {
    case BackendKind::kApprox:
      inner = std::make_unique<federation::ApproxBackend>(options.approx);
      break;
    case BackendKind::kDetailed:
      inner = std::make_unique<federation::DetailedBackend>(options.detailed);
      break;
    case BackendKind::kSimulation:
      inner = std::make_unique<federation::SimulationBackend>(options.sim);
      break;
  }
  if (options.cache) {
    return std::make_unique<federation::CachingBackend>(std::move(inner));
  }
  return inner;
}

}  // namespace

Framework::Framework(federation::FederationConfig config,
                     market::PriceConfig prices,
                     market::UtilityParams utility, FrameworkOptions options)
    : config_(std::move(config)),
      prices_(std::move(prices)),
      utility_(utility),
      backend_(make_backend(options)) {
  config_.validate();
  prices_.validate(config_.size());
  baselines_ = market::compute_baselines(config_, prices_);
}

federation::FederationMetrics Framework::metrics() {
  return backend_->evaluate(config_);
}

federation::FederationMetrics Framework::metrics_for(
    const std::vector<int>& shares) {
  federation::FederationConfig cfg = config_;
  cfg.shares = shares;
  cfg.validate();
  return backend_->evaluate(cfg);
}

std::vector<double> Framework::costs(const std::vector<int>& shares) {
  const auto metrics = metrics_for(shares);
  std::vector<double> costs(config_.size());
  for (std::size_t i = 0; i < config_.size(); ++i) {
    costs[i] = market::operating_cost(metrics[i], prices_.public_price[i],
                                      prices_.federation_price,
                                      prices_.power_price,
                                      config_.scs[i].num_vms);
  }
  return costs;
}

std::vector<double> Framework::utilities(const std::vector<int>& shares) {
  const auto metrics = metrics_for(shares);
  std::vector<double> utilities(config_.size());
  for (std::size_t i = 0; i < config_.size(); ++i) {
    utilities[i] = market::sc_utility(metrics[i], baselines_[i],
                                      prices_.public_price[i],
                                      prices_.federation_price,
                                      shares[i], utility_,
                                      prices_.power_price,
                                      config_.scs[i].num_vms);
  }
  return utilities;
}

double Framework::welfare_of(market::Fairness fairness,
                             const std::vector<int>& shares) {
  return market::welfare(fairness, shares, utilities(shares));
}

market::GameResult Framework::find_equilibrium(market::GameOptions options) {
  market::Game game(config_, prices_, utility_, *backend_, std::move(options));
  return game.run();
}

std::vector<market::SweepPoint> Framework::sweep_prices(
    market::SweepOptions options) {
  options.utility = utility_;
  return market::run_price_sweep(config_, *backend_, options);
}

}  // namespace scshare
