// Statistical comparison primitives for the validation harness.
//
// Two oracle values agree when |a - b| fits inside a tolerance envelope that
// combines an absolute floor, a relative band, and — when one side is a
// simulation estimate — a multiple of the batch-means confidence-interval
// half-width. The tolerance *ladder* assigns an envelope per oracle pair:
// exact-vs-closed-form is near machine precision, approx-vs-exact uses the
// documented accuracy bands of the hierarchical model (tests/
// test_approx_accuracy.cpp), and sim-vs-anything is CI-driven. The ladder is
// documented in docs/ARCHITECTURE.md ("Validation") — a disagreement outside
// it is a bug in one of the models, not noise to be widened away.
#pragma once

#include <string>
#include <vector>

#include "federation/config.hpp"
#include "federation/metrics.hpp"

namespace scshare::validation {

/// Agreement envelope: pass iff
///   |a - b| <= abs + rel * max(|a|, |b|) + ci_multiplier * half_width.
struct Tolerance {
  double abs = 1e-9;
  double rel = 0.0;
  double ci_multiplier = 0.0;  ///< scales the sim CI half-width term
};

/// True when `a` and `b` agree under `t` (`half_width` is the ~95% CI
/// half-width of whichever side is stochastic; 0 for deterministic pairs).
[[nodiscard]] bool within(double a, double b, double half_width,
                          const Tolerance& t);

/// Signed slack of the comparison: <= 0 passes, > 0 is the excess beyond the
/// envelope (useful for ranking the worst disagreements in reports).
[[nodiscard]] double excess(double a, double b, double half_width,
                            const Tolerance& t);

/// One recorded comparison between two oracles on one scalar metric.
struct MetricCheck {
  std::string metric;  ///< e.g. "forward_rate[1]", "utility[0]"
  std::string left;    ///< oracle names
  std::string right;
  double left_value = 0.0;
  double right_value = 0.0;
  double half_width = 0.0;  ///< CI half-width used (0 if none)
  Tolerance tolerance;
  bool pass = true;
  double excess = 0.0;  ///< overshoot beyond the envelope (0 when passing)
};

/// Runs one comparison and records it into `checks`; returns pass/fail.
bool check(std::vector<MetricCheck>& checks, const std::string& metric,
           const std::string& left_name, double left_value,
           const std::string& right_name, double right_value,
           double half_width, const Tolerance& tolerance);

/// Per-metric tolerances for one oracle pair.
struct MetricTolerances {
  Tolerance lent;
  Tolerance borrowed;
  Tolerance forward_rate;
  Tolerance utilization;
  Tolerance utility;
};

/// The tolerance ladder of the harness, loosest to tightest:
///  * approx vs detailed — the hierarchical model's documented error bands
///    (relative error on lent/borrowed/forwarding, absolute on utilization);
///  * sim vs detailed    — CI-dominated with a small absolute floor;
///  * sim vs approx      — CI term plus the approx bands;
///  * exact vs closed form — near machine precision (both are exact).
struct ToleranceLadder {
  MetricTolerances approx_vs_detailed;
  MetricTolerances sim_vs_detailed;
  MetricTolerances sim_vs_approx;
  MetricTolerances exact_vs_closed_form;

  /// The defaults documented in docs/ARCHITECTURE.md.
  [[nodiscard]] static ToleranceLadder defaults();
};

/// Model-independent sanity invariants of one federation evaluation; returns
/// human-readable violation messages (empty = all hold). `oracle` prefixes
/// the messages.
[[nodiscard]] std::vector<std::string> invariant_violations(
    const std::string& oracle, const federation::FederationConfig& config,
    const federation::FederationMetrics& metrics);

}  // namespace scshare::validation
