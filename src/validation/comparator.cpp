#include "validation/comparator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace scshare::validation {
namespace {

double envelope(double a, double b, double half_width, const Tolerance& t) {
  return t.abs + t.rel * std::max(std::fabs(a), std::fabs(b)) +
         t.ci_multiplier * half_width;
}

}  // namespace

bool within(double a, double b, double half_width, const Tolerance& t) {
  if (!std::isfinite(a) || !std::isfinite(b)) return false;
  return std::fabs(a - b) <= envelope(a, b, half_width, t);
}

double excess(double a, double b, double half_width, const Tolerance& t) {
  if (!std::isfinite(a) || !std::isfinite(b)) {
    return std::numeric_limits<double>::infinity();
  }
  return std::fabs(a - b) - envelope(a, b, half_width, t);
}

bool check(std::vector<MetricCheck>& checks, const std::string& metric,
           const std::string& left_name, double left_value,
           const std::string& right_name, double right_value,
           double half_width, const Tolerance& tolerance) {
  MetricCheck entry;
  entry.metric = metric;
  entry.left = left_name;
  entry.right = right_name;
  entry.left_value = left_value;
  entry.right_value = right_value;
  entry.half_width = half_width;
  entry.tolerance = tolerance;
  entry.pass = within(left_value, right_value, half_width, tolerance);
  entry.excess =
      entry.pass ? 0.0 : excess(left_value, right_value, half_width, tolerance);
  checks.push_back(entry);
  return entry.pass;
}

ToleranceLadder ToleranceLadder::defaults() {
  ToleranceLadder ladder;

  // Approx vs detailed: the hierarchical model's documented accuracy bands.
  // tests/test_approx_accuracy.cpp observes relative errors up to ~0.6 on
  // lent and ~0.15 on borrowed at high load on its fixed grids; the random
  // validation sweep additionally reaches ~0.5 relative on the forwarding
  // rate and ~0.13 absolute on utilization in heavy-traffic multi-SC draws
  // (the model books borrowed-VM busy time against the lender's pool).
  // Small absolute floors cover near-zero metrics whose relative error is
  // meaningless.
  ladder.approx_vs_detailed.lent = {0.08, 0.75, 0.0};
  ladder.approx_vs_detailed.borrowed = {0.08, 0.75, 0.0};
  ladder.approx_vs_detailed.forward_rate = {0.10, 0.55, 0.0};
  ladder.approx_vs_detailed.utilization = {0.15, 0.0, 0.0};
  // Utilities square the cost reduction (Eq. (2)), roughly doubling the
  // relative error of the inputs; near-zero utilities get a loose floor.
  ladder.approx_vs_detailed.utility = {0.15, 1.5, 0.0};

  // Sim vs detailed: both target the same CTMC, so the gap is pure Monte
  // Carlo noise — dominated by the CI term, with an absolute floor for the
  // bias the finite horizon leaves behind.
  ladder.sim_vs_detailed.lent = {0.06, 0.05, 6.0};
  ladder.sim_vs_detailed.borrowed = {0.06, 0.05, 6.0};
  ladder.sim_vs_detailed.forward_rate = {0.08, 0.08, 6.0};
  ladder.sim_vs_detailed.utilization = {0.04, 0.0, 0.0};
  ladder.sim_vs_detailed.utility = {0.15, 0.8, 6.0};

  // Sim vs approx: approximation error plus Monte Carlo noise.
  ladder.sim_vs_approx.lent = {0.10, 0.80, 6.0};
  ladder.sim_vs_approx.borrowed = {0.10, 0.80, 6.0};
  ladder.sim_vs_approx.forward_rate = {0.12, 0.60, 6.0};
  ladder.sim_vs_approx.utilization = {0.15, 0.0, 0.0};
  ladder.sim_vs_approx.utility = {0.20, 1.5, 6.0};

  // Exact vs closed form: both solve the same chain, one numerically and one
  // analytically; only solver tolerance and rounding separate them.
  const Tolerance exact{1e-6, 1e-6, 0.0};
  ladder.exact_vs_closed_form.lent = exact;
  ladder.exact_vs_closed_form.borrowed = exact;
  ladder.exact_vs_closed_form.forward_rate = exact;
  ladder.exact_vs_closed_form.utilization = exact;
  ladder.exact_vs_closed_form.utility = {1e-5, 1e-5, 0.0};

  return ladder;
}

std::vector<std::string> invariant_violations(
    const std::string& oracle, const federation::FederationConfig& config,
    const federation::FederationMetrics& metrics) {
  std::vector<std::string> violations;
  const auto flag = [&](std::size_t i, const std::string& what) {
    violations.push_back(oracle + ": sc[" + std::to_string(i) + "] " + what);
  };
  if (metrics.size() != config.size()) {
    violations.push_back(oracle + ": metrics size " +
                         std::to_string(metrics.size()) + " != " +
                         std::to_string(config.size()) + " SCs");
    return violations;
  }
  constexpr double kSlack = 1e-6;
  double total_lent = 0.0;
  double total_borrowed = 0.0;
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const auto& m = metrics[i];
    if (!(m.forward_rate >= -kSlack)) {
      flag(i, "forward_rate " + std::to_string(m.forward_rate) + " < 0");
    }
    if (!(m.forward_prob >= -kSlack && m.forward_prob <= 1.0 + kSlack)) {
      flag(i, "forward_prob " + std::to_string(m.forward_prob) +
                  " outside [0, 1]");
    }
    if (!(m.utilization >= -kSlack && m.utilization <= 1.0 + kSlack)) {
      flag(i, "utilization " + std::to_string(m.utilization) +
                  " outside [0, 1]");
    }
    if (!(m.lent >= -kSlack &&
          m.lent <= static_cast<double>(config.shares[i]) + kSlack)) {
      flag(i, "lent " + std::to_string(m.lent) + " outside [0, S_i = " +
                  std::to_string(config.shares[i]) + "]");
    }
    if (!(m.borrowed >= -kSlack &&
          m.borrowed <= static_cast<double>(
                            config.shared_pool_excluding(i)) +
                            kSlack)) {
      flag(i, "borrowed " + std::to_string(m.borrowed) +
                  " outside [0, B_i = " +
                  std::to_string(config.shared_pool_excluding(i)) + "]");
    }
    if (!(m.forward_rate <= config.scs[i].lambda * (1.0 + kSlack) + kSlack)) {
      flag(i, "forward_rate " + std::to_string(m.forward_rate) +
                  " exceeds arrival rate " +
                  std::to_string(config.scs[i].lambda));
    }
    total_lent += m.lent;
    total_borrowed += m.borrowed;
  }
  // Conservation: every borrowed VM is some other SC's lent VM. This binds
  // the exact and stochastic oracles (the CTMC and the simulator track real
  // transfers), but the hierarchical approximation solves each SC
  // independently against an aggregated pool and can miss the balance by a
  // large fraction — the cross-oracle comparisons, not this invariant, bound
  // its error, so conservation is not checked for it.
  if (oracle == "approx") return violations;
  const double conservation_slack =
      0.05 + 0.05 * std::max(total_lent, total_borrowed);
  if (std::fabs(total_lent - total_borrowed) > conservation_slack) {
    violations.push_back(
        oracle + ": lent/borrowed conservation broken: sum lent = " +
        std::to_string(total_lent) + ", sum borrowed = " +
        std::to_string(total_borrowed));
  }
  return violations;
}

}  // namespace scshare::validation
