// Oracle registry of the validation harness: every independent way the
// library can evaluate a federation, run side by side on one scenario.
//
//  * detailed     — the exact CTMC (ground truth; only feasible when the
//                   joint state space stays small, so it reports itself
//                   inapplicable on large scenarios instead of failing);
//  * approx       — the hierarchical approximation (always applicable);
//  * simulation   — the discrete-event simulator with batch-means CIs,
//                   seeded per scenario for reproducibility;
//  * closed_form  — per-SC birth–death solutions (Sect. III-A), applicable
//                   exactly when the sharing vector is all-zero and the
//                   federation decouples.
//
// Each oracle also derives the Eq. (2) utilities from its metrics (same
// baselines, same prices), so the harness compares the economics layer on
// top of the performance layer.
//
// `flip_approx_forward_sign` is the harness's built-in fault: it negates the
// approx oracle's forwarding metrics after the solve. It exists so the test
// suite can prove the harness catches a wrong-sign regression (see
// tests/test_validation.cpp) — never enable it outside that self-test.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "federation/config.hpp"
#include "federation/metrics.hpp"
#include "sim/simulator.hpp"
#include "validation/scenario.hpp"

namespace scshare::validation {

struct OracleOptions {
  /// State-count ceiling for the detailed CTMC; scenarios whose joint chain
  /// would exceed it mark the oracle inapplicable (not failed).
  std::size_t detailed_max_states = 300'000;
  /// Simulation windows. Kept short: the CI term of the tolerance ladder
  /// absorbs the noise, and 200 scenarios must finish in CI minutes.
  double sim_warmup_time = 300.0;
  double sim_measure_time = 6000.0;
  std::size_t sim_batches = 12;
  std::size_t sim_warmup_batches = 2;
  /// Self-test fault: negate the approx oracle's forward_rate/forward_prob.
  bool flip_approx_forward_sign = false;
};

/// Outcome of one oracle on one scenario.
struct OracleRun {
  std::string name;
  bool applicable = false;  ///< false: skipped by design (with `error` = why)
  bool ok = false;          ///< true: metrics/utilities are valid
  std::string error;        ///< failure or inapplicability reason
  federation::FederationMetrics metrics;
  std::vector<double> utilities;  ///< Eq. (2) per SC, from this oracle's metrics
  /// Per-SC CI half-widths (simulation only; empty otherwise). Order:
  /// lent, borrowed, forward_rate per SC.
  std::vector<sim::ScSimStats> sim_stats;
};

/// Runs every oracle on `spec`. Result order is fixed: detailed, approx,
/// simulation, closed_form — the harness and report rely on it.
[[nodiscard]] std::vector<OracleRun> run_oracles(const ScenarioSpec& spec,
                                                 const OracleOptions& options);

/// Eq. (2) utilities from arbitrary metrics under the scenario's prices
/// (shared by the oracles and the equilibrium cross-check).
[[nodiscard]] std::vector<double> utilities_for(
    const ScenarioSpec& spec, const federation::FederationMetrics& metrics);

}  // namespace scshare::validation
