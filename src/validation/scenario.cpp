#include "validation/scenario.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "exec/executor.hpp"
#include "io/config_io.hpp"

namespace scshare::validation {
namespace {

federation::ScConfig make_sc(int num_vms, double lambda, double mu,
                             double max_wait) {
  federation::ScConfig sc;
  sc.num_vms = num_vms;
  sc.lambda = lambda;
  sc.mu = mu;
  sc.max_wait = max_wait;
  return sc;
}

market::PriceConfig default_prices(std::size_t num_scs,
                                   double federation_price = 0.5) {
  market::PriceConfig prices;
  prices.public_price.assign(num_scs, 1.0);
  prices.federation_price = federation_price;
  return prices;
}

/// The fixed degenerate corners, cycled through in order. Each reduces (part
/// of) the federation to a closed form the comparator can check exactly.
ScenarioSpec make_corner(std::size_t which) {
  ScenarioSpec spec;
  switch (which % 6) {
    case 0: {
      // Zero SLA wait: arrivals finding all VMs busy are always forwarded,
      // so the SC is an M/M/c/c loss system and forward_prob is Erlang-B.
      spec.name = "corner:mmc-erlang-b";
      spec.config.scs = {make_sc(5, 3.5, 1.0, 0.0)};
      spec.config.shares = {0};
      break;
    }
    case 1: {
      // Huge SLA wait at light load: (almost) nothing is ever forwarded and
      // the SC behaves as a plain M/M/c with utilization lambda / (c mu).
      spec.name = "corner:mmc-light-traffic";
      spec.config.scs = {make_sc(6, 3.0, 1.0, 50.0)};
      spec.config.shares = {0};
      break;
    }
    case 2: {
      // All-zero sharing vector: the federation decouples into standalone
      // SCs, each solvable by the birth-death closed form (Sect. III-A).
      spec.name = "corner:zero-shares";
      spec.config.scs = {make_sc(4, 2.5, 1.0, 0.2), make_sc(5, 4.0, 1.0, 0.1),
                         make_sc(3, 1.5, 0.5, 0.3)};
      spec.config.shares = {0, 0, 0};
      break;
    }
    case 3: {
      // Saturated public cloud: lambda far above capacity. Forwarding
      // dominates; checks the heavy-traffic regime where the approximation
      // error peaks.
      spec.name = "corner:saturated-public-cloud";
      spec.config.scs = {make_sc(4, 12.0, 1.0, 0.2)};
      spec.config.shares = {0};
      break;
    }
    case 4: {
      // Free federation VMs (C^G = 0): pure performance play. Metrics are
      // price-independent, so the oracles must still agree; the utility
      // comparison exercises the zero-price branch of Eq. (1).
      spec.name = "corner:zero-price-federation";
      spec.config.scs = {make_sc(4, 3.0, 1.0, 0.2), make_sc(4, 2.0, 1.0, 0.2)};
      spec.config.shares = {2, 2};
      spec.prices = default_prices(2, 0.0);
      break;
    }
    default: {
      // Identical SCs with identical shares: every per-SC metric must be
      // symmetric across the two (and stays so under relabeling).
      spec.name = "corner:identical-scs";
      spec.config.scs = {make_sc(4, 2.8, 1.0, 0.2), make_sc(4, 2.8, 1.0, 0.2)};
      spec.config.shares = {2, 2};
      break;
    }
  }
  if (spec.prices.public_price.empty()) {
    spec.prices = default_prices(spec.config.size());
  }
  return spec;
}

}  // namespace

ScenarioGenerator::ScenarioGenerator(std::uint64_t base_seed,
                                     GeneratorOptions options)
    : base_seed_(base_seed), options_(options) {
  require(options_.max_scs >= 1, "GeneratorOptions: max_scs must be >= 1");
  require(options_.max_vms >= 2, "GeneratorOptions: max_vms must be >= 2");
}

ScenarioSpec ScenarioGenerator::make(std::size_t index) const {
  // One independent stream per scenario: the draw sequence of scenario i can
  // never shift because another scenario changed shape.
  Rng rng(exec::task_seed(base_seed_, index));

  ScenarioSpec spec;
  if (index % kCornerPeriod == 0) {
    spec = make_corner(index / kCornerPeriod);
  } else {
    spec.name = "random";
    const std::size_t num_scs = 1 + rng.next_below(options_.max_scs);
    for (std::size_t i = 0; i < num_scs; ++i) {
      const int num_vms =
          2 + static_cast<int>(rng.next_below(
                  static_cast<std::uint64_t>(options_.max_vms - 1)));
      // mu from a small grid; lambda as a load factor in [0.3, 1.1) of
      // capacity so scenarios span light load through overload.
      const double mu = 0.5 * static_cast<double>(1 + rng.next_below(4));
      const double load = 0.3 + 0.8 * rng.next_double();
      const double lambda = load * num_vms * mu;
      // max_wait grid includes the zero-wait (loss-system) boundary.
      static constexpr double kWaits[] = {0.0, 0.1, 0.2, 0.5};
      const double max_wait = kWaits[rng.next_below(4)];
      spec.config.scs.push_back(make_sc(num_vms, lambda, mu, max_wait));
      const int max_share = spec.config.scs.back().num_vms / 2;
      spec.config.shares.push_back(static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(max_share + 1))));
    }
    spec.prices = default_prices(num_scs, 0.2 + 0.7 * rng.next_double());
    spec.utility.gamma = rng.bernoulli(0.5) ? 1.0 : 0.0;
  }
  spec.index = index;
  spec.sim_seed = exec::task_seed(base_seed_ ^ 0xa5a5a5a5a5a5a5a5ULL, index);
  spec.config.validate();
  spec.prices.validate(spec.config.size());
  return spec;
}

std::vector<ScenarioSpec> parse_scenarios(const io::Json& json) {
  std::vector<ScenarioSpec> specs;
  const auto& list = json.at("scenarios").as_array();
  for (std::size_t i = 0; i < list.size(); ++i) {
    const io::Json& entry = list[i];
    ScenarioSpec spec;
    spec.index = i;
    spec.name = entry.get_or("name", std::string("scenario"));
    spec.sim_seed =
        static_cast<std::uint64_t>(entry.get_or("sim_seed", 1));
    spec.config = io::parse_federation(entry.at("federation"));
    if (entry.contains("prices")) {
      spec.prices = io::parse_prices(entry.at("prices"), spec.config.size());
    } else {
      spec.prices.public_price.assign(spec.config.size(), 1.0);
      spec.prices.federation_price = 0.5;
    }
    if (entry.contains("utility")) {
      spec.utility = io::parse_utility(entry.at("utility"));
    }
    specs.push_back(std::move(spec));
  }
  require(!specs.empty(), "scenario file contains no scenarios");
  return specs;
}

}  // namespace scshare::validation
