// Differential validation harness: random scenarios × oracle registry ×
// statistical comparator, reduced to a deterministic machine-readable report.
//
// For each scenario the harness
//   1. runs every applicable oracle (validation/oracles.hpp),
//   2. checks model-independent invariants on each result,
//   3. compares every oracle pair per SC per metric under the tolerance
//      ladder (validation/comparator.hpp),
//   4. on small two-SC scenarios, cross-checks the game equilibrium computed
//      on the detailed backend against the approx backend's (measured as the
//      detailed-utility welfare gap between the two equilibria),
// and aggregates everything into a ValidationReport whose JSON encoding is
// byte-identical at any --threads value: scenarios are self-seeded
// (exec::task_seed), outcomes are stored by index, and nothing
// schedule-dependent (wall time, thread ids) enters the report.
//
// Progress counters land in obs::MetricsRegistry::global() under
// `validation.*`; the CLI front end is tools/scshare_validate.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "io/json.hpp"
#include "validation/comparator.hpp"
#include "validation/oracles.hpp"
#include "validation/scenario.hpp"

namespace scshare::validation {

struct HarnessOptions {
  std::size_t scenarios = 50;   ///< generated scenarios (ignored with `explicit_scenarios`)
  std::uint64_t seed = 42;      ///< base seed of the scenario generator
  std::size_t threads = 1;      ///< scenario-level parallelism (1 = serial)
  /// When non-empty these scenarios are validated instead of generated ones
  /// (e.g. examples/configs/validation_corner_cases.json).
  std::vector<ScenarioSpec> explicit_scenarios;
  GeneratorOptions generator;
  OracleOptions oracles;
  ToleranceLadder ladder = ToleranceLadder::defaults();
  /// Cross-check game equilibria (detailed vs approx backend) on scenarios
  /// small enough for exhaustive best responses (two SCs, few VMs).
  bool check_equilibria = true;
};

/// Equilibrium cross-check outcome (only on qualifying scenarios).
struct EquilibriumCheck {
  bool ran = false;
  std::vector<int> detailed_shares;  ///< S* under the detailed backend
  std::vector<int> approx_shares;    ///< S* under the approx backend
  /// Welfare gap under *detailed* utilities:
  ///   sum_i U_i^det(S*_det) - sum_i U_i^det(S*_app) (>= 0 when the approx
  /// equilibrium loses welfare; small gaps mean the approximation steers the
  /// market to an (almost) equally good operating point).
  double welfare_gap = 0.0;
  bool pass = true;
};

/// Everything recorded about one scenario.
struct ScenarioOutcome {
  std::size_t index = 0;
  std::string name;
  std::uint64_t sim_seed = 0;
  federation::FederationConfig config;
  /// Oracle status (fixed order: detailed, approx, simulation, closed_form).
  std::vector<OracleRun> oracles;
  std::size_t comparisons = 0;       ///< metric checks performed
  std::vector<MetricCheck> failures; ///< only the failing checks (space)
  std::vector<std::string> invariant_violations;
  std::vector<std::string> oracle_errors;  ///< applicable-but-failed oracles
  EquilibriumCheck equilibrium;
  [[nodiscard]] bool pass() const {
    return failures.empty() && invariant_violations.empty() &&
           oracle_errors.empty() && equilibrium.pass;
  }
};

struct ValidationReport {
  std::uint64_t seed = 0;
  std::size_t scenarios = 0;
  std::size_t comparisons = 0;
  std::size_t disagreements = 0;  ///< failed checks + invariant/oracle failures
  std::vector<ScenarioOutcome> outcomes;
  [[nodiscard]] bool pass() const { return disagreements == 0; }
};

/// Runs the full harness. Deterministic for fixed options (thread count
/// included — see the header comment).
[[nodiscard]] ValidationReport run_validation(const HarnessOptions& options);

/// JSON encoding of the report (deterministic: io::Json objects are ordered
/// maps and numbers print reproducibly).
[[nodiscard]] io::Json to_json(const ValidationReport& report);

// ---- metamorphic properties ----------------------------------------------
//
// Each check returns human-readable violation messages (empty = property
// holds). They are exercised by tests/test_validation.cpp and documented in
// docs/ARCHITECTURE.md.

/// P̄ of SC `observer` is monotone non-increasing in the pooled capacity:
/// raising donor shares step by step must never increase the observer's
/// forwarding rate (detailed model; `slack` absorbs solver tolerance).
[[nodiscard]] std::vector<std::string> check_pool_monotonicity(
    const federation::FederationConfig& base, std::size_t observer,
    std::size_t donor, int max_share, double slack = 1e-6);

/// Detailed-model metrics are equivariant under SC relabeling: permuting the
/// SCs permutes the per-SC metrics and nothing else. (The approx hierarchy
/// is order-dependent by design, so this property is exact only for the
/// detailed model.)
[[nodiscard]] std::vector<std::string> check_relabel_invariance(
    const federation::FederationConfig& config,
    const std::vector<std::size_t>& permutation, double slack = 1e-7);

/// Lumped and unlumped steady states agree: for a random chain drawn from
/// `seed`, the aggregated stationary distribution of the full chain matches
/// the stationary distribution of the lumped chain.
[[nodiscard]] std::vector<std::string> check_lumping_equivalence(
    std::uint64_t seed, std::size_t num_states, double slack = 1e-8);

}  // namespace scshare::validation
